# Convenience targets; everything also works as plain pytest/python.

.PHONY: install test bench examples validate experiments all clean

install:
	pip install -e .

test:
	PYTHONPATH=src python -m pytest -x -q

bench:
	pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done
	@echo "all examples ran cleanly"

validate:
	python -m repro validate

experiments:
	python -m repro experiment all --json benchmarks/results/json

all: install test bench validate

clean:
	rm -rf build *.egg-info src/*.egg-info .pytest_cache benchmarks/results
