"""Setup shim.

The environment this project targets is offline and has no ``wheel``
package, so PEP-660 editable installs are unavailable; shipping a
``setup.py`` (and omitting ``[build-system]`` from pyproject.toml)
lets ``pip install -e .`` fall back to the legacy develop install.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
