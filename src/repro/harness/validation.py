"""Artifact-style self-validation.

``repro validate`` runs the reproduction's own trust chain end to end
at laptop scale and reports PASS/FAIL per check:

1. the functional solver converges to the closed-form discrete solution
   (periodic and Dirichlet);
2. a distributed solve over simulated MPI is bit-identical to serial;
3. communication-avoiding smoothing changes nothing;
4. the analytic harness's kernel/exchange/byte schedule equals the
   functional solver's instrumented schedule exactly;
5. the HPGMG-style baseline's residual history matches the brick
   solver's (same numerics, different layout);
6. the cache and TLB simulations rank brick storage above the
   conventional layout.

Each check is also covered by the pytest suite; this module packages
them as a user-facing smoke test, the way the paper's artifact ships a
run-and-eyeball script.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CheckResult:
    name: str
    passed: bool
    detail: str


def _check(name: str, passed: bool, detail: str) -> CheckResult:
    return CheckResult(name=name, passed=bool(passed), detail=detail)


def run_validation() -> list[CheckResult]:
    """Execute all self-checks; returns one result per check."""
    from repro.gmg import ArrayGMG, GMGSolver, SolverConfig, discrete_solution
    from repro.gmg.problem import discrete_solution_dirichlet
    from repro.harness.vcycle_sim import TimedSolve, WorkloadConfig
    from repro.machines import PERLMUTTER
    from repro.memsim import (
        BrickLayout,
        CacheConfig,
        RowMajorLayout,
        TLBConfig,
        measure_sweep,
        measure_sweep_tlb,
    )

    results: list[CheckResult] = []
    base = dict(global_cells=32, num_levels=3, brick_dim=4,
                max_smooths=8, bottom_smooths=40)

    # 1a. periodic convergence to the closed form
    serial = GMGSolver(SolverConfig(**base))
    res = serial.solve()
    exact = discrete_solution((32, 32, 32), 1 / 32)
    err = float(np.abs(serial.solution() - exact).max())
    results.append(_check(
        "periodic solve hits closed-form solution",
        res.converged and err < 1e-11,
        f"converged={res.converged} in {res.num_vcycles} cycles, err={err:.1e}",
    ))

    # 1b. Dirichlet convergence
    dirichlet = GMGSolver(SolverConfig(**base, boundary="dirichlet"))
    dres = dirichlet.solve()
    dexact = discrete_solution_dirichlet((32, 32, 32), 1 / 32)
    derr = float(np.abs(dirichlet.solution() - dexact).max())
    results.append(_check(
        "Dirichlet solve hits closed-form solution",
        dres.converged and derr < 1e-11,
        f"converged={dres.converged} in {dres.num_vcycles} cycles, err={derr:.1e}",
    ))

    # 2. distributed == serial, bitwise
    dist = GMGSolver(SolverConfig(**base, rank_dims=(2, 2, 2)))
    dist.solve()
    diff = float(np.abs(dist.solution() - serial.solution()).max())
    results.append(_check(
        "8-rank simulated-MPI solve bit-identical to serial",
        diff == 0.0,
        f"max |distributed - serial| = {diff:.1e}",
    ))

    # 3. CA == non-CA, bitwise (periodic)
    no_ca = GMGSolver(SolverConfig(**base, communication_avoiding=False))
    no_ca.solve()
    ca_diff = float(np.abs(no_ca.solution() - serial.solution()).max())
    results.append(_check(
        "communication-avoiding changes nothing",
        ca_diff == 0.0,
        f"max |CA - non-CA| = {ca_diff:.1e}",
    ))

    # 4. analytic schedule == instrumented schedule
    cfg = SolverConfig(global_cells=32, num_levels=3, brick_dim=4,
                       max_smooths=5, bottom_smooths=7, tol=0.0,
                       max_vcycles=2, rank_dims=(2, 1, 1))
    counted = GMGSolver(cfg)
    cres = counted.solve()
    w = WorkloadConfig(per_rank_cells=(16, 32, 32), num_levels=3,
                       max_smooths=5, bottom_smooths=7,
                       rank_dims=(2, 1, 1), brick_dim=4)
    ts = TimedSolve(PERLMUTTER, w)
    n, checks = cres.num_vcycles, len(cres.residual_history)
    ok = (
        ts.schedule_kernel_counts(n, checks) == counted.recorder.kernel_counts()
        and ts.schedule_exchange_counts(n, checks)
        == counted.recorder.exchange_counts()
        and ts.schedule_message_bytes(n, checks)
        == counted.recorder.message_bytes_by_level()
    )
    results.append(_check(
        "priced schedule equals instrumented schedule",
        ok,
        "kernel counts, exchange phases and message bytes all match"
        if ok else "MISMATCH between model and functional solver",
    ))

    # 5. baseline numerics identical
    baseline = ArrayGMG(global_cells=32, num_levels=3, max_smooths=8,
                        bottom_smooths=40)
    bhist = baseline.solve()
    same = bhist == res.residual_history
    results.append(_check(
        "HPGMG-style baseline matches brick solver numerics",
        same,
        "residual histories identical" if same else "histories diverge",
    ))

    # 6. layout rankings from the simulators
    cache = CacheConfig(capacity_bytes=4096, line_bytes=64, ways=8)
    brick_traffic = measure_sweep(BrickLayout(16, 4), 4, cache).dram_bytes
    conv_traffic = measure_sweep(RowMajorLayout(16), 4, cache).dram_bytes
    # TLB reach needs a domain larger than the TLB's coverage: 32^3
    tlb = TLBConfig(entries=8)
    brick_walks = measure_sweep_tlb(BrickLayout(32, 4), 4, tlb).page_walks
    conv_walks = measure_sweep_tlb(RowMajorLayout(32), 4, tlb).page_walks
    ok = brick_traffic < conv_traffic and brick_walks < conv_walks
    results.append(_check(
        "brick layout moves less data (cache + TLB simulation)",
        ok,
        f"DRAM {brick_traffic}/{conv_traffic} B, "
        f"page walks {brick_walks}/{conv_walks}",
    ))
    return results


def render_validation(results: list[CheckResult]) -> str:
    lines = []
    for r in results:
        status = "PASS" if r.passed else "FAIL"
        lines.append(f"[{status}] {r.name}")
        lines.append(f"       {r.detail}")
    passed = sum(r.passed for r in results)
    lines.append(f"{passed}/{len(results)} checks passed")
    return "\n".join(lines) + "\n"
