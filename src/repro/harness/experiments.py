"""One driver per paper figure/table.

Each function returns plain data (dataclasses/dicts of floats) so the
benchmarks can both print paper-style output and assert the qualitative
claims (who wins, by what factor, where the crossovers sit).  See
DESIGN.md's per-experiment index for the mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.comm.topology import factor_ranks
from repro.dsl.library import VCYCLE_OPERATIONS
from repro.harness.vcycle_sim import TimedSolve, WorkloadConfig, decompose_for
from repro.machines.gpu_model import (
    gstencil_per_invocation,
    theoretical_gstencil_ceiling,
)
from repro.machines.specs import MACHINES, PERLMUTTER, MachineSpec
from repro.perf.linear_model import LatencyBandwidthFit, fit_from_times
from repro.perf.portability import efficiency_table_phi
from repro.perf.speedup import machine_speedup_points

#: The 8-node workload every Section VI experiment uses.
PAPER_WORKLOAD = WorkloadConfig()


def _machines(names: list[str] | None = None) -> dict[str, MachineSpec]:
    if names is None:
        return dict(MACHINES)
    return {n: MACHINES[n] for n in names}


# ----------------------------------------------------------------------
# Figure 3: total execution time per level
# ----------------------------------------------------------------------
@dataclass
class Fig3Result:
    workload: WorkloadConfig
    #: machine -> per-level total seconds over the full solve
    level_totals: dict[str, list[float]]
    #: machine -> per-level per-op seconds
    level_breakdown: dict[str, list[dict[str, float]]]


def fig3_time_per_level(workload: WorkloadConfig | None = None) -> Fig3Result:
    workload = workload or PAPER_WORKLOAD
    totals: dict[str, list[float]] = {}
    breakdown: dict[str, list[dict[str, float]]] = {}
    for name, machine in _machines().items():
        ts = TimedSolve(machine, workload)
        levels = ts.solve_level_times()
        breakdown[name] = levels
        totals[name] = [sum(lv.values()) for lv in levels]
    return Fig3Result(workload, totals, breakdown)


# ----------------------------------------------------------------------
# Figure 4: relative performance vs HPGMG
# ----------------------------------------------------------------------
@dataclass
class Fig4Result:
    hpgmg_vcycle_seconds: float  # HPGMG-CUDA on Perlmutter (its only port)
    ours_vcycle_seconds: dict[str, float]
    #: machine -> HPGMG time / our time (paper: 1.58, 1.46, ~1.0)
    relative_performance: dict[str, float]


def fig4_vs_hpgmg(workload: WorkloadConfig | None = None) -> Fig4Result:
    workload = workload or PAPER_WORKLOAD
    hpgmg = TimedSolve(
        PERLMUTTER, replace(workload, baseline=True)
    ).time_per_vcycle()
    ours = {
        name: TimedSolve(machine, workload).time_per_vcycle()
        for name, machine in _machines().items()
    }
    return Fig4Result(
        hpgmg_vcycle_seconds=hpgmg,
        ours_vcycle_seconds=ours,
        relative_performance={name: hpgmg / t for name, t in ours.items()},
    )


# ----------------------------------------------------------------------
# Table II: finest-level operation breakdown
# ----------------------------------------------------------------------
#: Paper Table II values for cross-checking.
TABLE2_PAPER = {
    "Perlmutter": {
        "applyOp": 0.250,
        "smooth+residual": 0.545,
        "restriction": 0.010,
        "interpolation+increment": 0.019,
        "exchange": 0.175,
    },
    "Frontier": {
        "applyOp": 0.307,
        "smooth+residual": 0.500,
        "restriction": 0.011,
        "interpolation+increment": 0.054,
        "exchange": 0.128,
    },
    "Sunspot": {
        "applyOp": 0.225,
        "smooth+residual": 0.531,
        "restriction": 0.015,
        "interpolation+increment": 0.025,
        "exchange": 0.204,
    },
}


def table2_op_breakdown(
    workload: WorkloadConfig | None = None,
) -> dict[str, dict[str, float]]:
    workload = workload or PAPER_WORKLOAD
    return {
        name: TimedSolve(machine, workload).op_fractions_finest()
        for name, machine in _machines().items()
    }


# ----------------------------------------------------------------------
# Figure 5: kernel GStencil/s across levels + linear-model fit
# ----------------------------------------------------------------------
@dataclass
class KernelThroughputSeries:
    op: str
    machine: str
    points: list[int]
    gstencil: list[float]
    fit: LatencyBandwidthFit
    ceiling_gstencil: float  # dashed line: measured BW / compulsory bytes


def fig5_kernel_throughput(
    op: str = "applyOp", workload: WorkloadConfig | None = None
) -> dict[str, KernelThroughputSeries]:
    workload = workload or PAPER_WORKLOAD
    out = {}
    for name, machine in _machines().items():
        ts = TimedSolve(machine, workload)
        points = [geo.points for geo in ts.levels]
        rates = [gstencil_per_invocation(ts.machine, op, p) for p in points]
        times = np.array([p / (r * 1e9) for p, r in zip(points, rates)])
        fit = fit_from_times(np.array(points, dtype=float), times)
        out[name] = KernelThroughputSeries(
            op=op,
            machine=name,
            points=points,
            gstencil=rates,
            fit=fit,
            ceiling_gstencil=theoretical_gstencil_ceiling(machine, op),
        )
    return out


# ----------------------------------------------------------------------
# Figure 6: exchange bandwidth across levels + linear-model fit
# ----------------------------------------------------------------------
@dataclass
class ExchangeBandwidthSeries:
    machine: str
    total_bytes: list[int]
    gbs: list[float]
    fit: LatencyBandwidthFit
    nic_peak_gbs: float


def fig6_exchange_bandwidth(
    workload: WorkloadConfig | None = None,
) -> dict[str, ExchangeBandwidthSeries]:
    workload = workload or PAPER_WORKLOAD
    out = {}
    for name, machine in _machines().items():
        ts = TimedSolve(machine, workload)
        sizes, times = [], []
        for lev in range(workload.num_levels):
            sizes.append(ts.exchange_total_bytes(lev, nfields=1))
            times.append(ts.exchange_seconds(lev, nfields=1))
        fit = fit_from_times(np.array(sizes, dtype=float), np.array(times))
        out[name] = ExchangeBandwidthSeries(
            machine=name,
            total_bytes=sizes,
            gbs=[s / t / 1e9 for s, t in zip(sizes, times)],
            fit=fit,
            nic_peak_gbs=machine.network.nic_peak_gbs,
        )
    return out


# ----------------------------------------------------------------------
# Tables III / V: performance portability
# ----------------------------------------------------------------------
@dataclass
class PortabilityResult:
    #: op -> machine -> efficiency
    efficiencies: dict[str, dict[str, float]]
    #: op -> Phi across machines
    per_op_phi: dict[str, float]
    overall_phi: float


def _portability(attr: str) -> PortabilityResult:
    table = {
        op: {
            name: getattr(machine.gpu, attr)[op]
            for name, machine in _machines().items()
        }
        for op in VCYCLE_OPERATIONS
    }
    per_op, overall = efficiency_table_phi(table)
    return PortabilityResult(table, per_op, overall)


def table3_portability_roofline() -> PortabilityResult:
    """Phi from fraction-of-Roofline efficiencies (paper: >= 73%)."""
    return _portability("op_roofline_fraction")


def table5_portability_ai() -> PortabilityResult:
    """Phi from fraction-of-theoretical-AI (paper: ~92%)."""
    return _portability("op_ai_fraction")


# ----------------------------------------------------------------------
# Figure 7: potential speedup scatter
# ----------------------------------------------------------------------
def fig7_potential_speedup() -> dict[str, dict[str, tuple[float, float, float]]]:
    """machine -> op -> (ai_fraction, roofline_fraction, speedup)."""
    return {
        name: machine_speedup_points(machine)
        for name, machine in _machines().items()
    }


# ----------------------------------------------------------------------
# Figures 8/9: weak and strong scaling
# ----------------------------------------------------------------------
@dataclass
class ScalingResult:
    machine: str
    mode: str  # 'weak' | 'strong'
    nodes: list[int]
    ranks: list[int]
    gstencil: list[float]
    efficiency: list[float]
    solve_seconds: list[float]


#: Node ladders: Perlmutter/Frontier scale to 128 nodes, Sunspot (a
#: 128-node testbed with partial access) to 16 (Section VIII).
WEAK_NODE_LADDER = {
    "Perlmutter": [2, 4, 8, 16, 32, 64, 128],
    "Frontier": [2, 4, 8, 16, 32, 64, 128],
    "Sunspot": [2, 4, 8, 16],  # paper: "12 to 96 INTEL PVC GPUs" = 2..16 nodes
}

#: Fixed global domains for strong scaling (Section VIII).
STRONG_GLOBAL_CELLS = {
    "Perlmutter": (1024, 1024, 1024),
    "Frontier": (2048, 1024, 1024),  # 2 x 1024^3
    "Sunspot": (3072, 1024, 1024),  # 3 x 1024^3
}


def fig8_weak_scaling(
    machine_name: str, per_rank: int = 512, num_levels: int = 6
) -> ScalingResult:
    machine = MACHINES[machine_name]
    rpn = machine.node.ranks_per_node
    nodes_list = WEAK_NODE_LADDER[machine_name]
    gst, secs, ranks_list = [], [], []
    for nodes in nodes_list:
        ranks = nodes * rpn
        w = WorkloadConfig(
            per_rank_cells=(per_rank,) * 3,
            num_levels=num_levels,
            rank_dims=factor_ranks(ranks),
            ranks_per_node=rpn,
        )
        ts = TimedSolve(machine, w)
        secs.append(ts.total_solve_time())
        gst.append(ts.gstencil_per_second())
        ranks_list.append(ranks)
    eff = [secs[0] / t for t in secs]
    return ScalingResult(
        machine=machine_name,
        mode="weak",
        nodes=nodes_list,
        ranks=ranks_list,
        gstencil=gst,
        efficiency=eff,
        solve_seconds=secs,
    )


def fig9_strong_scaling(machine_name: str, num_levels: int = 6) -> ScalingResult:
    machine = MACHINES[machine_name]
    rpn = machine.node.ranks_per_node
    nodes_list = WEAK_NODE_LADDER[machine_name]
    global_cells = STRONG_GLOBAL_CELLS[machine_name]
    gst, secs, ranks_list = [], [], []
    for nodes in nodes_list:
        ranks = nodes * rpn
        dims = decompose_for(global_cells, ranks)
        per_rank = tuple(c // d for c, d in zip(global_cells, dims))
        w = WorkloadConfig(
            per_rank_cells=per_rank,
            num_levels=num_levels,
            rank_dims=dims,
            ranks_per_node=rpn,
        )
        ts = TimedSolve(machine, w)
        secs.append(ts.total_solve_time())
        gst.append(ts.gstencil_per_second())
        ranks_list.append(ranks)
    base_rate = gst[0] / ranks_list[0]
    eff = [g / (base_rate * r) for g, r in zip(gst, ranks_list)]
    return ScalingResult(
        machine=machine_name,
        mode="strong",
        nodes=nodes_list,
        ranks=ranks_list,
        gstencil=gst,
        efficiency=eff,
        solve_seconds=secs,
    )


# ----------------------------------------------------------------------
# Ablations (Section V optimisations / Section IX discussion)
# ----------------------------------------------------------------------
@dataclass
class AblationResult:
    machine: str
    #: variant name -> time per V-cycle (seconds)
    vcycle_seconds: dict[str, float]


def ablation_optimizations(machine_name: str = "Perlmutter") -> AblationResult:
    """Time per V-cycle with individual optimisations disabled."""
    machine = MACHINES[machine_name]
    base = PAPER_WORKLOAD
    variants = {
        "all-optimizations": base,
        "no-communication-avoiding": replace(base, communication_avoiding=False),
        "lexicographic-ordering": replace(base, ordering="lexicographic"),
        "no-gpu-aware-mpi": replace(base, gpu_aware=False),
        "brick-4": replace(base, brick_dim=4),
        "brick-16": replace(base, brick_dim=16),
        "hpgmg-baseline": replace(base, baseline=True),
    }
    return AblationResult(
        machine=machine_name,
        vcycle_seconds={
            name: TimedSolve(machine, w).time_per_vcycle()
            for name, w in variants.items()
        },
    )


# ----------------------------------------------------------------------
# Section IX: where does strong scaling's time go?
# ----------------------------------------------------------------------
@dataclass
class LatencyBreakdown:
    machine: str
    nodes: list[int]
    #: per node count: {bucket: seconds per V-cycle}
    decompositions: list[dict[str, float]]
    latency_fractions: list[float]


def strong_scaling_breakdown(machine_name: str) -> LatencyBreakdown:
    """Latency-vs-streaming decomposition along the Fig. 9 ladder.

    Quantifies the paper's Section IX diagnosis: as strong scaling
    shrinks the per-rank problem, kernel-launch and per-message
    overheads stop amortising and come to dominate the V-cycle.
    """
    machine = MACHINES[machine_name]
    rpn = machine.node.ranks_per_node
    global_cells = STRONG_GLOBAL_CELLS[machine_name]
    nodes_list = WEAK_NODE_LADDER[machine_name]
    decomps, fractions = [], []
    for nodes in nodes_list:
        ranks = nodes * rpn
        dims = decompose_for(global_cells, ranks)
        per_rank = tuple(c // d for c, d in zip(global_cells, dims))
        w = WorkloadConfig(per_rank_cells=per_rank, num_levels=6,
                           rank_dims=dims, ranks_per_node=rpn)
        ts = TimedSolve(machine, w)
        decomps.append(ts.time_decomposition())
        fractions.append(ts.latency_fraction())
    return LatencyBreakdown(
        machine=machine_name,
        nodes=nodes_list,
        decompositions=decomps,
        latency_fractions=fractions,
    )
