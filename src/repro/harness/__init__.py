"""Experiment harness: the paper's figures and tables, regenerated.

:mod:`~repro.harness.vcycle_sim` prices one GMG solve on a machine
model, producing per-level, per-operation times with exactly the
operation and message schedule of the functional solver (tests assert
the two agree).  :mod:`~repro.harness.experiments` packages one driver
per paper figure/table; :mod:`~repro.harness.reporting` renders results
in the paper's output formats.
"""

from repro.harness.vcycle_sim import TimedSolve, WorkloadConfig, decompose_for
from repro.harness import experiments, reporting

__all__ = [
    "WorkloadConfig",
    "TimedSolve",
    "decompose_for",
    "experiments",
    "reporting",
]
