"""Structured export of experiment results.

Every figure/table driver's output can be serialised to JSON so the
series behind each plot are machine-readable (gnuplot/pandas-ready)
rather than trapped in rendered text.  ``export_all`` regenerates the
complete set, which is what ``python -m repro experiment all --json``
writes next to the rendered reports.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any

from repro.harness import experiments as E
from repro.perf import ai_comparison_rows


def _plain(value: Any) -> Any:
    """Recursively convert experiment results to JSON-compatible data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _plain(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return str(value)


def experiment_payloads() -> dict[str, Any]:
    """All experiment results as plain data, keyed by paper element."""
    return {
        "fig3": _plain(E.fig3_time_per_level()),
        "fig4": _plain(E.fig4_vs_hpgmg()),
        "table2": _plain(E.table2_op_breakdown()),
        "fig5_applyOp": _plain(E.fig5_kernel_throughput("applyOp")),
        "fig5_smooth_residual": _plain(
            E.fig5_kernel_throughput("smooth+residual")
        ),
        "fig6": _plain(E.fig6_exchange_bandwidth()),
        "table3": _plain(E.table3_portability_roofline()),
        "table4": [
            {"operation": op, "ours": ours, "paper": paper, "diff": diff}
            for op, ours, paper, diff in ai_comparison_rows()
        ],
        "table5": _plain(E.table5_portability_ai()),
        "fig7": _plain(E.fig7_potential_speedup()),
        "fig8": {
            m: _plain(E.fig8_weak_scaling(m))
            for m in ("Perlmutter", "Frontier", "Sunspot")
        },
        "fig9": {
            m: _plain(E.fig9_strong_scaling(m))
            for m in ("Perlmutter", "Frontier", "Sunspot")
        },
        "ablations": {
            m: _plain(E.ablation_optimizations(m))
            for m in ("Perlmutter", "Frontier", "Sunspot")
        },
    }


def export_all(directory: str | pathlib.Path) -> list[pathlib.Path]:
    """Write one ``<element>.json`` per experiment; returns the paths."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name, payload in experiment_payloads().items():
        path = directory / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        written.append(path)
    return written
