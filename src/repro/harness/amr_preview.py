"""AMR load-balancing preview (the paper's Section IX future work).

"We will also extend our work to explore adaptive mesh refinement,
where specific grid regions are subjected to refinement and load
balancing becomes critical."  This module quantifies that criticality
with the machine model before any AMR numerics exist:

* a synthetic refinement map tags a fraction of the domain's coarse
  patches for one level of refinement (a sphere of refinement around a
  feature, the archetypal AMR scenario);
* patches are assigned to ranks by two policies — naive block
  assignment (contiguous chunks of patch index space) and a
  Morton-order round-robin that interleaves refined and unrefined
  patches across ranks;
* per-rank work is priced with the machine's smoother rates, and the
  bulk-synchronous V-cycle runs at the *slowest* rank, so parallel
  efficiency is mean(work)/max(work).

The punchline (asserted by the bench): with naive assignment, a 10%
refined region can halve efficiency, while interleaved assignment stays
near 1 — load balancing is indeed critical, and the infrastructure here
(patch pricing through the calibrated machine model) is what an AMR
extension would schedule against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machines.gpu_model import kernel_time
from repro.machines.specs import MachineSpec


def _morton_key(coord: tuple[int, int, int], bits: int = 10) -> int:
    """Interleave coordinate bits (Z-order / Morton curve)."""
    key = 0
    for bit in range(bits):
        for axis in range(3):
            key |= ((coord[axis] >> bit) & 1) << (3 * bit + axis)
    return key


@dataclass(frozen=True)
class RefinementStudy:
    """Synthetic AMR scenario: patches, refinement, machine."""

    patches_per_dim: int = 8
    patch_cells: int = 32  # cells per dim per coarse patch
    refine_fraction: float = 0.1  # target fraction of refined patches
    refinement_ratio: int = 2

    def refinement_map(self) -> np.ndarray:
        """Boolean (p, p, p) array: refined patches form a central ball
        sized to hit ``refine_fraction``."""
        p = self.patches_per_dim
        centre = (p - 1) / 2.0
        coords = np.arange(p) - centre
        r2 = (
            coords[:, None, None] ** 2
            + coords[None, :, None] ** 2
            + coords[None, None, :] ** 2
        )
        target = max(1, round(self.refine_fraction * p**3))
        order = np.argsort(r2.reshape(-1))
        mask = np.zeros(p**3, dtype=bool)
        mask[order[:target]] = True
        return mask.reshape(p, p, p)

    def patch_work_seconds(self, machine: MachineSpec, refined: bool) -> float:
        """One smoothing pass (applyOp + smooth) over one patch.

        A refined patch carries ``ratio^3`` fine cells *plus* its
        coarse cells (AMR keeps the coarse representation for the
        composite solve).
        """
        cells = self.patch_cells**3
        work = kernel_time(machine, "applyOp", cells) + kernel_time(
            machine, "smooth+residual", cells
        )
        if refined:
            fine = cells * self.refinement_ratio**3
            work += kernel_time(machine, "applyOp", fine) + kernel_time(
                machine, "smooth+residual", fine
            )
        return work


@dataclass
class BalanceResult:
    machine: str
    policy: str
    num_ranks: int
    refined_patches: int
    total_patches: int
    per_rank_seconds: list[float]

    @property
    def efficiency(self) -> float:
        """mean/max — the bulk-synchronous load-balance efficiency."""
        return float(np.mean(self.per_rank_seconds) / np.max(self.per_rank_seconds))


def assign_patches(
    study: RefinementStudy, num_ranks: int, policy: str
) -> list[list[bool]]:
    """Per-rank lists of patch refinement flags under a policy.

    ``"block"`` hands each rank a contiguous chunk of lexicographic
    patch order (clustered refinement lands on few ranks);
    ``"morton"`` orders patches along the Z-curve and deals them
    round-robin (refined patches interleave across ranks).
    """
    refine = study.refinement_map()
    p = study.patches_per_dim
    patches = [(x, y, z) for x in range(p) for y in range(p) for z in range(p)]
    if policy == "block":
        ordered = patches
        chunks = np.array_split(np.arange(len(patches)), num_ranks)
        return [
            [bool(refine[patches[i]]) for i in chunk] for chunk in chunks
        ]
    if policy == "morton":
        ordered = sorted(patches, key=_morton_key)
        out: list[list[bool]] = [[] for _ in range(num_ranks)]
        for idx, patch in enumerate(ordered):
            out[idx % num_ranks].append(bool(refine[patch]))
        return out
    raise ValueError(f"unknown policy {policy!r}; use 'block' or 'morton'")


def load_balance(
    machine: MachineSpec,
    study: RefinementStudy | None = None,
    num_ranks: int = 8,
    policy: str = "block",
) -> BalanceResult:
    """Price a refinement scenario under an assignment policy."""
    study = study or RefinementStudy()
    assignment = assign_patches(study, num_ranks, policy)
    per_rank = [
        sum(study.patch_work_seconds(machine, refined) for refined in flags)
        for flags in assignment
    ]
    refine = study.refinement_map()
    return BalanceResult(
        machine=machine.name,
        policy=policy,
        num_ranks=num_ranks,
        refined_patches=int(refine.sum()),
        total_patches=refine.size,
        per_rank_seconds=per_rank,
    )


def render_balance(results: list[BalanceResult]) -> str:
    lines = ["AMR load-balance preview (one refined region, two policies):"]
    for r in results:
        lines.append(
            f"  {r.machine:<11s} {r.policy:<7s} ranks={r.num_ranks:<3d} "
            f"refined {r.refined_patches}/{r.total_patches} patches  "
            f"efficiency {r.efficiency * 100:5.1f}%"
        )
    return "\n".join(lines) + "\n"
