"""Render experiment results in the paper's output formats."""

from __future__ import annotations

import io

from repro.harness.experiments import (
    AblationResult,
    ExchangeBandwidthSeries,
    Fig3Result,
    Fig4Result,
    KernelThroughputSeries,
    PortabilityResult,
    ScalingResult,
)


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    buf = io.StringIO()
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    buf.write(line + "\n")
    buf.write("-" * len(line) + "\n")
    for r in rows:
        buf.write("  ".join(c.ljust(w) for c, w in zip(r, widths)) + "\n")
    return buf.getvalue()


def render_fig3(result: Fig3Result) -> str:
    machines = list(result.level_totals)
    levels = len(next(iter(result.level_totals.values())))
    rows = [
        [f"level {lev}"]
        + [f"{result.level_totals[m][lev]:.4f}" for m in machines]
        for lev in range(levels)
    ]
    header = "Figure 3 — total execution time per level (seconds, full solve)\n"
    return header + _table(["level"] + machines, rows)


def render_fig4(result: Fig4Result) -> str:
    rows = [
        [
            m,
            f"{result.ours_vcycle_seconds[m] * 1e3:.1f} ms",
            f"{result.relative_performance[m]:.2f}x",
        ]
        for m in result.relative_performance
    ]
    header = (
        "Figure 4 — relative performance vs HPGMG "
        f"(HPGMG-CUDA on Perlmutter: {result.hpgmg_vcycle_seconds * 1e3:.1f} "
        "ms per V-cycle)\n"
    )
    return header + _table(["machine", "ours / V-cycle", "rel. perf"], rows)


def render_table2(fractions: dict[str, dict[str, float]]) -> str:
    ops = list(next(iter(fractions.values())))
    machines = list(fractions)
    rows = [
        [op] + [f"{fractions[m][op] * 100:.1f}%" for m in machines] for op in ops
    ]
    header = "Table II — share of finest-level time per operation\n"
    return header + _table(["Operation"] + machines, rows)


def render_fig5(series: dict[str, KernelThroughputSeries]) -> str:
    first = next(iter(series.values()))
    buf = io.StringIO()
    buf.write(f"Figure 5 — {first.op} GStencil/s per invocation across levels\n")
    for name, s in series.items():
        buf.write(
            f"{name}: ceiling {s.ceiling_gstencil:.1f} GStencil/s, fitted "
            f"alpha {s.fit.alpha * 1e6:.1f} us, beta "
            f"{s.fit.beta / 1e9:.1f} GStencil/s\n"
        )
        for p, g in zip(s.points, s.gstencil):
            buf.write(f"  {p:>12d} pts  {g:8.2f} GStencil/s\n")
    return buf.getvalue()


def render_fig6(series: dict[str, ExchangeBandwidthSeries]) -> str:
    buf = io.StringIO()
    buf.write("Figure 6 — exchange GB/s across levels (NIC peak 25 GB/s)\n")
    for name, s in series.items():
        buf.write(
            f"{name}: fitted alpha {s.fit.alpha * 1e6:.0f} us, beta "
            f"{s.fit.beta / 1e9:.1f} GB/s\n"
        )
        for b, g in zip(s.total_bytes, s.gbs):
            buf.write(f"  {b / 1e6:10.3f} MB  {g:7.2f} GB/s\n")
    return buf.getvalue()


def render_portability(result: PortabilityResult, title: str) -> str:
    machines = list(next(iter(result.efficiencies.values())))
    rows = []
    for op, effs in result.efficiencies.items():
        rows.append(
            [op]
            + [f"{effs[m] * 100:.0f}%" for m in machines]
            + [f"{result.per_op_phi[op] * 100:.0f}%"]
        )
    header = f"{title} (overall Phi = {result.overall_phi * 100:.0f}%)\n"
    return header + _table(["Operation"] + machines + ["Phi"], rows)


def render_table4(rows: list[tuple[str, float, float, float]]) -> str:
    body = [
        [op, f"{ours:.3f}", f"{paper:.3f}", f"{diff:.3f}"]
        for op, ours, paper, diff in rows
    ]
    header = "Table IV — theoretical arithmetic intensity (FLOP:byte)\n"
    return header + _table(["Operation", "ours", "paper", "|diff|"], body)


def render_fig7(points: dict[str, dict[str, tuple[float, float, float]]]) -> str:
    buf = io.StringIO()
    buf.write(
        "Figure 7 — potential speedup (x: fraction theoretical AI, "
        "y: fraction Roofline)\n"
    )
    for machine, ops in points.items():
        buf.write(f"{machine}:\n")
        for op, (fa, fr, sp) in ops.items():
            buf.write(
                f"  {op:<26s} x={fa:.2f} y={fr:.2f} potential={sp:.2f}x\n"
            )
    return buf.getvalue()


def render_scaling(result: ScalingResult) -> str:
    rows = [
        [
            str(n),
            str(r),
            f"{g:.2f}",
            f"{e * 100:.1f}%",
            f"{t:.2f}",
        ]
        for n, r, g, e, t in zip(
            result.nodes,
            result.ranks,
            result.gstencil,
            result.efficiency,
            result.solve_seconds,
        )
    ]
    header = (
        f"Figure {'8' if result.mode == 'weak' else '9'} — {result.mode} "
        f"scaling on {result.machine}\n"
    )
    return header + _table(
        ["nodes", "ranks", "GStencil/s", "efficiency", "solve (s)"], rows
    )


def render_ablation(result: AblationResult) -> str:
    base = result.vcycle_seconds["all-optimizations"]
    rows = [
        [name, f"{t * 1e3:.1f} ms", f"{t / base:.2f}x"]
        for name, t in result.vcycle_seconds.items()
    ]
    header = f"Ablation — time per V-cycle on {result.machine}\n"
    return header + _table(["variant", "V-cycle", "vs all-opts"], rows)
