"""Configuration auto-tuning over the machine model.

The paper sets brick sizes "according to our observations" (8^3 on
Perlmutter/Frontier, 4^3 on Sunspot) and hand-picks the mapping,
protocol and CA settings per machine.  This module automates the
search: it sweeps the discrete configuration space through the timed
model and reports the ranking, giving the ablation benches a
machine-picked best configuration to compare against the paper's
choices.

The model prices communication effects of the brick size (message
volume vs exchange frequency) but not the per-brick kernel-efficiency
differences the paper's silicon measurements capture, so the tuner's
brick-size choice can legitimately differ from the paper's — the
ablation bench documents exactly that.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace

from repro.harness.vcycle_sim import TimedSolve, WorkloadConfig
from repro.machines.specs import MachineSpec


@dataclass(frozen=True)
class TuningChoice:
    """One point of the configuration space with its predicted time."""

    brick_dim: int
    ordering: str
    communication_avoiding: bool
    gpu_aware: bool
    vcycle_seconds: float

    def label(self) -> str:
        return (
            f"brick={self.brick_dim} {self.ordering} "
            f"{'CA' if self.communication_avoiding else 'no-CA'} "
            f"{'gpu-aware' if self.gpu_aware else 'host-staged'}"
        )


@dataclass
class TuningResult:
    """Ranked configurations for one machine/workload."""

    machine: str
    choices: list[TuningChoice]  # sorted fastest first

    @property
    def best(self) -> TuningChoice:
        return self.choices[0]

    @property
    def worst(self) -> TuningChoice:
        return self.choices[-1]

    @property
    def tuning_headroom(self) -> float:
        """Worst/best time ratio across the space."""
        return self.worst.vcycle_seconds / self.best.vcycle_seconds


def autotune(
    machine: MachineSpec,
    workload: WorkloadConfig | None = None,
    brick_dims: tuple[int, ...] = (2, 4, 8, 16),
    orderings: tuple[str, ...] = ("surface-major", "lexicographic"),
) -> TuningResult:
    """Exhaustively price the configuration space and rank it."""
    workload = workload or WorkloadConfig()
    choices = []
    for brick, ordering, ca, aware in itertools.product(
        brick_dims, orderings, (True, False), (True, False)
    ):
        w = replace(
            workload,
            brick_dim=brick,
            ordering=ordering,
            communication_avoiding=ca,
            gpu_aware=aware,
        )
        t = TimedSolve(machine, w).time_per_vcycle()
        choices.append(
            TuningChoice(
                brick_dim=brick,
                ordering=ordering,
                communication_avoiding=ca,
                gpu_aware=aware,
                vcycle_seconds=t,
            )
        )
    choices.sort(key=lambda c: c.vcycle_seconds)
    return TuningResult(machine=machine.name, choices=choices)


def render_tuning(result: TuningResult, top: int = 8) -> str:
    """Human-readable ranking (fastest ``top`` plus the worst)."""
    lines = [f"auto-tuning on {result.machine} "
             f"(headroom {result.tuning_headroom:.2f}x):"]
    for c in result.choices[:top]:
        lines.append(f"  {c.vcycle_seconds * 1e3:8.1f} ms  {c.label()}")
    lines.append("  ...")
    c = result.worst
    lines.append(f"  {c.vcycle_seconds * 1e3:8.1f} ms  {c.label()}  (worst)")
    return "\n".join(lines) + "\n"
