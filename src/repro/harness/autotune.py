"""Configuration auto-tuning over the machine model.

The paper sets brick sizes "according to our observations" (8^3 on
Perlmutter/Frontier, 4^3 on Sunspot) and hand-picks the mapping,
protocol and CA settings per machine.  This module automates the
search: it sweeps the discrete configuration space through the timed
model and reports the ranking, giving the ablation benches a
machine-picked best configuration to compare against the paper's
choices.

The model prices communication effects of the brick size (message
volume vs exchange frequency) but not the per-brick kernel-efficiency
differences the paper's silicon measurements capture, so the tuner's
brick-size choice can legitimately differ from the paper's — the
ablation bench documents exactly that.

A **measured prior** closes part of that gap: :func:`sweep_prior`
harvests per-brick-dimension wallclock medians from committed
``repro sweep`` ledger series, and :func:`autotune` biases the model
ranking by the measured-vs-modelled ratio wherever history exists —
the first half of the ROADMAP's ledger-driven autotuning loop.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace

from repro.harness.vcycle_sim import TimedSolve, WorkloadConfig
from repro.machines.specs import MachineSpec


def sweep_prior(ledger_root, prefix: str = "sweep_") -> dict[int, float]:
    """Best measured median wallclock (ms) per brick dimension.

    Scans every ``sweep_*`` series in the ledger for entries whose cell
    axes (or problem context) pin a ``brick_dim``, keeping the fastest
    median per dimension.  Returns ``{}`` when no sweep history exists
    — the tuner then runs pure-model, exactly as before.
    """
    from repro.obs.ledger import PerfLedger

    ledger = PerfLedger(ledger_root)
    best: dict[int, float] = {}
    for name in ledger.benchmarks():
        if not name.startswith(prefix):
            continue
        for entry in ledger.entries(name):
            context = entry.context
            brick = context.get("axes", {}).get("brick_dim")
            if brick is None:
                brick = context.get("problem", {}).get("brick_dim")
            median = entry.metrics.get(
                "wallclock_ms.median", entry.metrics.get("wallclock_ms")
            )
            if brick is None or median is None:
                continue
            brick = int(brick)
            if brick not in best or median < best[brick]:
                best[brick] = float(median)
    return best


@dataclass(frozen=True)
class TuningChoice:
    """One point of the configuration space with its predicted time."""

    brick_dim: int
    ordering: str
    communication_avoiding: bool
    gpu_aware: bool
    vcycle_seconds: float
    #: best measured median (ms) for this brick dimension from the
    #: sweep-ledger prior, when history covers it
    measured_ms: float | None = None
    #: model time after the measured-prior bias; equals
    #: ``vcycle_seconds`` when no prior applies
    effective_seconds: float = 0.0

    def label(self) -> str:
        return (
            f"brick={self.brick_dim} {self.ordering} "
            f"{'CA' if self.communication_avoiding else 'no-CA'} "
            f"{'gpu-aware' if self.gpu_aware else 'host-staged'}"
        )


@dataclass
class TuningResult:
    """Ranked configurations for one machine/workload."""

    machine: str
    choices: list[TuningChoice]  # sorted fastest first
    #: brick dims the measured prior covered (empty: pure-model ranking)
    prior_bricks: tuple[int, ...] = ()

    @property
    def best(self) -> TuningChoice:
        return self.choices[0]

    @property
    def worst(self) -> TuningChoice:
        return self.choices[-1]

    @property
    def tuning_headroom(self) -> float:
        """Worst/best time ratio across the space."""
        return self.worst.vcycle_seconds / self.best.vcycle_seconds


def autotune(
    machine: MachineSpec,
    workload: WorkloadConfig | None = None,
    brick_dims: tuple[int, ...] = (2, 4, 8, 16),
    orderings: tuple[str, ...] = ("surface-major", "lexicographic"),
    prior: dict[int, float] | None = None,
) -> TuningResult:
    """Exhaustively price the configuration space and rank it.

    ``prior`` (see :func:`sweep_prior`) maps brick dimensions to
    measured median wallclock.  When it covers at least two of the
    swept dimensions, each covered dimension's model time is biased by
    ``measured_rel / model_rel`` — the ratio of its measured standing
    (vs the fastest measured brick) to its modelled standing — so a
    brick the model flatters but the machine dislikes sinks in the
    ranking.  Uncovered dimensions keep their pure model time, and the
    per-brick internal ordering (CA, mapping, ordering) stays
    model-driven either way.
    """
    workload = workload or WorkloadConfig()
    raw = []
    for brick, ordering, ca, aware in itertools.product(
        brick_dims, orderings, (True, False), (True, False)
    ):
        w = replace(
            workload,
            brick_dim=brick,
            ordering=ordering,
            communication_avoiding=ca,
            gpu_aware=aware,
        )
        t = TimedSolve(machine, w).time_per_vcycle()
        raw.append((brick, ordering, ca, aware, t))

    covered = sorted(
        b for b in {r[0] for r in raw} if prior and b in prior
    )
    bias: dict[int, float] = {}
    if len(covered) >= 2:
        model_best = {
            b: min(t for brick, *_, t in raw if brick == b)
            for b in {r[0] for r in raw}
        }
        model_floor = min(model_best[b] for b in covered)
        measured_floor = min(prior[b] for b in covered)
        for b in covered:
            model_rel = model_best[b] / model_floor
            measured_rel = prior[b] / measured_floor
            bias[b] = measured_rel / model_rel
    else:
        covered = []

    choices = [
        TuningChoice(
            brick_dim=brick,
            ordering=ordering,
            communication_avoiding=ca,
            gpu_aware=aware,
            vcycle_seconds=t,
            measured_ms=prior.get(brick) if prior else None,
            effective_seconds=t * bias.get(brick, 1.0),
        )
        for brick, ordering, ca, aware, t in raw
    ]
    choices.sort(key=lambda c: c.effective_seconds)
    return TuningResult(
        machine=machine.name, choices=choices, prior_bricks=tuple(covered)
    )


def render_tuning(result: TuningResult, top: int = 8) -> str:
    """Human-readable ranking (fastest ``top`` plus the worst)."""
    title = f"auto-tuning on {result.machine} "
    if result.prior_bricks:
        title += (
            f"(headroom {result.tuning_headroom:.2f}x; measured prior "
            f"for bricks {list(result.prior_bricks)}):"
        )
    else:
        title += f"(headroom {result.tuning_headroom:.2f}x):"
    lines = [title]

    def row(c: TuningChoice) -> str:
        measured = (
            f"  [measured {c.measured_ms:.1f} ms]"
            if c.measured_ms is not None and result.prior_bricks
            else ""
        )
        return f"  {c.vcycle_seconds * 1e3:8.1f} ms  {c.label()}{measured}"

    for c in result.choices[:top]:
        lines.append(row(c))
    lines.append("  ...")
    lines.append(row(result.worst) + "  (worst)")
    return "\n".join(lines) + "\n"
