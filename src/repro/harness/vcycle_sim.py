"""Analytic timed V-cycle: exact operation counts, modelled times.

The functional solver executes real numerics at laptop scale; the
paper's experiments run 512^3 points per rank on up to 512 GPUs, far
beyond what Python can execute directly.  This module prices the
*exact* schedule of Algorithm 2 — the same kernel-invocation and
message counts the functional solver records (a test asserts equality
on overlapping scales) — using the calibrated machine models.

The result object exposes per-level/per-operation times (Fig. 3,
Table II), per-invocation kernel and exchange rates (Figs. 5/6),
V-cycle and total solve time (Fig. 4), and the GStencil/s throughput
metric of the scaling studies (Figs. 8/9), defined as total
finest-level cells divided by total solve time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from functools import cached_property

from repro.bricks.brick_grid import NEIGHBOR_DIRECTIONS
from repro.comm.topology import CartTopology
from repro.gmg.level import level_brick_dim
from repro.machines.gpu_model import kernel_time, pack_time
from repro.machines.network import allreduce_time, exchange_time
from repro.machines.specs import MachineSpec

#: Operations shown in the paper's per-level breakdowns.
BREAKDOWN_OPS = (
    "applyOp",
    "smooth",
    "smooth+residual",
    "restriction",
    "interpolation+increment",
    "exchange",
)


def decompose_for(
    global_cells: tuple[int, int, int], num_ranks: int
) -> tuple[int, int, int]:
    """Rank-grid factorisation of ``num_ranks`` dividing ``global_cells``.

    Greedy: peel prime factors largest-first onto the dimension that
    keeps subdomains most cubic among the dimensions the factor
    divides.  Raises if no valid decomposition exists.
    """
    if num_ranks < 1:
        raise ValueError(f"num_ranks must be positive: {num_ranks}")
    factors = []
    m, f = num_ranks, 2
    while m > 1:
        while m % f == 0:
            factors.append(f)
            m //= f
        f += 1 if f == 2 else 2
        if f * f > m and m > 1:
            factors.append(m)
            break
    dims = [1, 1, 1]
    cells = list(global_cells)
    for p in sorted(factors, reverse=True):
        candidates = [d for d in range(3) if cells[d] % p == 0]
        if not candidates:
            raise ValueError(
                f"cannot decompose {global_cells} over {num_ranks} ranks: "
                f"prime factor {p} divides no dimension"
            )
        d = max(candidates, key=lambda d: cells[d])
        dims[d] *= p
        cells[d] //= p
    return tuple(dims)


@dataclass(frozen=True)
class WorkloadConfig:
    """One experiment's workload (defaults: the paper's 8-node run)."""

    per_rank_cells: tuple[int, int, int] = (512, 512, 512)
    num_levels: int = 6
    max_smooths: int = 12
    bottom_smooths: int = 100
    num_vcycles: int = 12  # paper: "converged in 12 V-cycles"
    rank_dims: tuple[int, int, int] = (2, 2, 2)
    ranks_per_node: int = 1  # Section VI experiments bind 1 rank/node
    communication_avoiding: bool = True
    ordering: str = "surface-major"
    brick_dim: int | None = None  # None -> the machine's default
    gpu_aware: bool | None = None  # None -> the machine's default
    baseline: bool = False  # HPGMG-style array layout, no CA
    #: throughput haircut of the conventional layout's kernels relative
    #: to bricks (extra address streams / ghost copies); the memsim
    #: package measures this ratio from first principles and the Fig. 4
    #: bench feeds its measurement in here.
    baseline_layout_factor: float = 0.75
    #: extra DRAM bytes per point the HPGMG-FV baseline moves relative
    #: to the constant-coefficient brick kernels: HPGMG's second-order
    #: FV operator carries variable coefficients (three face-centred
    #: beta arrays plus alpha) that stream alongside x/b/r.
    baseline_traffic_factor: float = 1.45
    #: field precision: "fp64" (paper) or "fp32" (mixed-precision inner
    #: cycles): every byte count — kernel traffic and message payloads —
    #: halves, which is the whole bandwidth-bound speedup story of the
    #: paper's reference [28].
    precision: str = "fp64"

    def __post_init__(self) -> None:
        if self.num_levels < 1 or self.max_smooths < 1 or self.bottom_smooths < 1:
            raise ValueError("levels and smooth counts must be positive")
        for c in self.per_rank_cells:
            if c % (1 << (self.num_levels - 1)):
                raise ValueError(
                    f"per-rank cells {self.per_rank_cells} not divisible by "
                    f"2^{self.num_levels - 1}"
                )
        if not 0 < self.baseline_layout_factor <= 1:
            raise ValueError("baseline_layout_factor must be in (0, 1]")
        if self.precision not in ("fp64", "fp32"):
            raise ValueError(
                f"precision must be 'fp64' or 'fp32': {self.precision!r}"
            )

    @property
    def itemsize(self) -> int:
        return 4 if self.precision == "fp32" else 8

    @property
    def num_ranks(self) -> int:
        p = self.rank_dims
        return p[0] * p[1] * p[2]

    @property
    def global_cells(self) -> tuple[int, int, int]:
        return tuple(c * p for c, p in zip(self.per_rank_cells, self.rank_dims))

    @property
    def total_finest_points(self) -> int:
        g = self.global_cells
        return g[0] * g[1] * g[2]


@dataclass
class LevelGeometry:
    """Per-level sizes the cost model needs."""

    index: int
    cells: tuple[int, int, int]
    brick_dim: int

    @property
    def points(self) -> int:
        return self.cells[0] * self.cells[1] * self.cells[2]

    @property
    def shape_bricks(self) -> tuple[int, int, int]:
        return tuple(c // self.brick_dim for c in self.cells)

    def message_bytes(
        self, d: tuple[int, int, int], ghost_cells: int, itemsize: int = 8
    ) -> int:
        """Payload for the exchange region along ``d`` (one field).

        ``ghost_cells`` is the halo depth in cells: the brick dimension
        for brick exchanges, 1 for the conventional baseline.
        """
        nbytes = itemsize
        for c, n in zip(d, self.cells):
            nbytes *= n if c == 0 else ghost_cells
        return nbytes


class TimedSolve:
    """Priced GMG solve of one workload on one machine."""

    def __init__(self, machine: MachineSpec, workload: WorkloadConfig) -> None:
        self.machine = machine
        self.workload = workload
        self.brick_dim = workload.brick_dim or machine.brick_dim
        self.gpu_aware = (
            machine.gpu_aware_mpi if workload.gpu_aware is None else workload.gpu_aware
        )
        # The network model reads gpu_aware off the machine spec; apply
        # any override by cloning the spec.
        if self.gpu_aware != machine.gpu_aware_mpi:
            self.machine = replace(machine, gpu_aware_mpi=self.gpu_aware)
        self.topology = CartTopology(workload.rank_dims, workload.ranks_per_node)
        self.levels = [
            self._level_geometry(lev) for lev in range(workload.num_levels)
        ]

    def _level_geometry(self, lev: int) -> LevelGeometry:
        cells = tuple(c >> lev for c in self.workload.per_rank_cells)
        if self.workload.baseline:
            bdim = 1  # conventional layout: ghost width one cell
        else:
            bdim = level_brick_dim(min(cells), self.brick_dim)
        return LevelGeometry(index=lev, cells=cells, brick_dim=bdim)

    # ------------------------------------------------------------------
    # schedule counts (mirrors repro.gmg.vcycle exactly)
    # ------------------------------------------------------------------
    def ghost_depth(self, lev: int) -> int:
        """Halo cells validated per exchange at level ``lev``."""
        if self.workload.baseline or not self.workload.communication_avoiding:
            return 1
        return self.levels[lev].brick_dim

    def exchanges_per_visit(self, lev: int, smooths: int) -> int:
        return math.ceil(smooths / self.ghost_depth(lev))

    def visits_per_vcycle(self, lev: int) -> int:
        """Smoothing visits per V-cycle: 2 for intermediate levels
        (down + up), 1 for the coarsest (bottom solve)."""
        return 1 if lev == self.workload.num_levels - 1 else 2

    # ------------------------------------------------------------------
    # priced pieces
    # ------------------------------------------------------------------
    def kernel_seconds(self, op: str, lev: int, points: int | None = None) -> float:
        """One invocation of ``op`` at level ``lev``."""
        pts = self.levels[lev].points if points is None else points
        t = kernel_time(self.machine, op, pts)
        if self.workload.itemsize != 8:
            # bandwidth-bound kernels scale with bytes moved
            launch = self.machine.gpu.kernel_launch_latency_s
            t = launch + (t - launch) * self.workload.itemsize / 8
        if self.workload.baseline:
            # Conventional layout streams less efficiently (extra
            # address streams, ghost copies) and the HPGMG-FV operator
            # moves more bytes per point (variable coefficients):
            # scale the size-dependent part, keep the launch latency.
            launch = self.machine.gpu.kernel_launch_latency_s
            scale = (
                self.workload.baseline_traffic_factor
                / self.workload.baseline_layout_factor
            )
            t = launch + (t - launch) * scale
        return t

    @cached_property
    def _worst_rank_neighbor_split(self) -> tuple[int, int]:
        """(remote, local) direction counts of the worst-placed rank."""
        worst = (26, 0)
        best_seen = None
        for rank in range(self.topology.size):
            remote = sum(
                0 if self.topology.is_intra_node(rank, nb) else 1
                for nb in self.topology.neighbors(rank).values()
            )
            if best_seen is None or remote > best_seen:
                best_seen = remote
                worst = (remote, 26 - remote)
            if remote == 26:
                break
        return worst

    def exchange_seconds(self, lev: int, nfields: int = 1) -> float:
        """One exchange phase at ``lev`` (worst rank = barrier time)."""
        geo = self.levels[lev]
        ghost = self.ghost_depth(lev) if not self.workload.baseline else 1
        if not self.workload.communication_avoiding and not self.workload.baseline:
            # Brick exchanges always move whole ghost bricks even when
            # only one cell of validity is consumed per iteration.
            ghost = geo.brick_dim
        n_remote, n_local = self._worst_rank_neighbor_split
        sizes = [
            geo.message_bytes(d, ghost, self.workload.itemsize) * nfields
            for d in NEIGHBOR_DIRECTIONS
        ]
        # Distribute direction sizes across remote/local in proportion:
        # faces dominate; the worst rank's remote set contains the
        # largest messages, so sort descending and take the biggest as
        # remote (conservative barrier estimate).
        sizes.sort(reverse=True)
        remote, local = sizes[:n_remote], sizes[n_remote:]
        t = exchange_time(
            self.machine,
            remote,
            local,
            num_nodes=self.topology.num_nodes,
            ranks_per_node=self.workload.ranks_per_node,
        )
        if self._needs_packing():
            total = sum(sizes)
            t += pack_time(self.machine, total) + pack_time(self.machine, total)
        return t

    def _needs_packing(self) -> bool:
        """Pack/unpack kernels required per exchange?

        The surface-major brick ordering sends and receives straight
        from contiguous storage segments (PPoPP'21); the lexicographic
        ordering and the conventional array layout must gather/scatter.
        """
        return self.workload.baseline or self.workload.ordering != "surface-major"

    def exchange_total_bytes(self, lev: int, nfields: int = 1) -> int:
        """Total payload of one exchange at ``lev`` (Fig. 6's x-axis)."""
        geo = self.levels[lev]
        ghost = geo.brick_dim if not self.workload.baseline else 1
        return sum(
            geo.message_bytes(d, ghost, self.workload.itemsize) * nfields
            for d in NEIGHBOR_DIRECTIONS
        )

    # ------------------------------------------------------------------
    # assembled times
    # ------------------------------------------------------------------
    def _visit_time(self, lev: int, smooths: int, with_residual: bool) -> dict:
        """Time of one smoothing visit, split by operation."""
        out: dict[str, float] = {}
        n_ex = self.exchanges_per_visit(lev, smooths)
        # first exchange of the visit aggregates x and b
        t_ex = self.exchange_seconds(lev, nfields=2)
        if n_ex > 1:
            t_ex += (n_ex - 1) * self.exchange_seconds(lev, nfields=1)
        out["exchange"] = t_ex
        out["applyOp"] = smooths * self.kernel_seconds("applyOp", lev)
        smooth_op = "smooth+residual" if with_residual else "smooth"
        out[smooth_op] = smooths * self.kernel_seconds(smooth_op, lev)
        return out

    def vcycle_level_times(self) -> list[dict[str, float]]:
        """Per-level, per-operation seconds for ONE V-cycle.

        Inter-grid operations are attributed to the finer level, as in
        the paper's Table II (restriction and interpolation+increment
        appear in the finest level's breakdown).
        """
        W = self.workload
        L = W.num_levels
        times: list[dict[str, float]] = [
            {op: 0.0 for op in BREAKDOWN_OPS} | {"initZero": 0.0} for _ in range(L)
        ]

        def add(lev: int, parts: dict[str, float]) -> None:
            for op, t in parts.items():
                times[lev][op] = times[lev].get(op, 0.0) + t

        for lev in range(L - 1):
            # down-sweep visit
            add(lev, self._visit_time(lev, W.max_smooths, with_residual=True))
            coarse_pts = self.levels[lev + 1].points
            add(lev, {"restriction": self.kernel_seconds("restriction", lev, coarse_pts)})
            add(lev + 1, {"initZero": self.kernel_seconds("initZero", lev + 1)})
            # up-sweep visit
            add(lev, {
                "interpolation+increment": self.kernel_seconds(
                    "interpolation+increment", lev, coarse_pts
                )
            })
            add(lev, self._visit_time(lev, W.max_smooths, with_residual=True))
        add(L - 1, self._visit_time(L - 1, W.bottom_smooths, with_residual=False))
        return times

    def convergence_check_time(self) -> float:
        """Exchange + applyOp + residual + allreduce on the finest level."""
        t = self.exchange_seconds(0, nfields=1)
        t += self.kernel_seconds("applyOp", 0)
        t += self.kernel_seconds("residual", 0)
        t += allreduce_time(
            self.machine, self.topology.size, self.topology.num_nodes
        )
        return t

    def time_per_vcycle(self) -> float:
        return sum(sum(lv.values()) for lv in self.vcycle_level_times())

    def total_solve_time(self) -> float:
        """``num_vcycles`` V-cycles plus a convergence check per cycle."""
        per_cycle = self.time_per_vcycle() + self.convergence_check_time()
        return self.workload.num_vcycles * per_cycle

    def solve_level_times(self) -> list[dict[str, float]]:
        """Fig. 3's quantity: per-level totals over the full solve."""
        per_cycle = self.vcycle_level_times()
        n = self.workload.num_vcycles
        out = [{op: t * n for op, t in lv.items()} for lv in per_cycle]
        # convergence checks live on the finest level
        out[0]["exchange"] += n * self.exchange_seconds(0, nfields=1)
        out[0]["applyOp"] += n * self.kernel_seconds("applyOp", 0)
        return out

    def op_fractions_finest(self) -> dict[str, float]:
        """Table II: share of finest-level time per operation."""
        lv0 = self.vcycle_level_times()[0]
        keep = {
            op: lv0.get(op, 0.0)
            for op in (
                "applyOp",
                "smooth+residual",
                "restriction",
                "interpolation+increment",
                "exchange",
            )
        }
        total = sum(keep.values())
        return {op: t / total for op, t in keep.items()}

    def gstencil_per_second(self) -> float:
        """Scaling throughput: global finest cells / total solve time / 1e9."""
        return self.workload.total_finest_points / self.total_solve_time() / 1e9

    def time_decomposition(self) -> dict[str, float]:
        """Split the per-V-cycle time into latency and streaming parts.

        Returns seconds per V-cycle in five buckets: kernel launch
        latency, kernel streaming (bytes/bandwidth), network per-message
        overhead (incl. host staging), network streaming, and the
        convergence check's allreduce.  The latency buckets are what
        strong scaling runs into (Section IX: "computation and
        communication timings plateau at latency/overhead limits").
        """
        W = self.workload
        launch = self.machine.gpu.kernel_launch_latency_s
        kernel_launch = 0.0
        kernel_stream = 0.0
        counts = self.schedule_kernel_counts(1, 1)
        R = self.topology.size
        for (lev, op), n in counts.items():
            per_rank = n // R
            if op == "restriction" or op == "interpolation+increment":
                pts = self.levels[min(lev + 1, W.num_levels - 1)].points
            else:
                pts = self.levels[lev].points
            t = self.kernel_seconds(op, lev, pts)
            kernel_launch += per_rank * launch
            kernel_stream += per_rank * (t - launch)

        net_overhead = 0.0
        net_stream = 0.0
        n_remote, n_local = self._worst_rank_neighbor_split
        for lev, n_ex in self.schedule_exchange_counts(1, 1).items():
            alpha_only = exchange_time(
                self.machine,
                [0] * n_remote,
                [0] * n_local,
                num_nodes=self.topology.num_nodes,
                ranks_per_node=W.ranks_per_node,
            )
            full = self.exchange_seconds(lev, nfields=1)
            net_overhead += n_ex * alpha_only
            net_stream += n_ex * max(full - alpha_only, 0.0)

        reduce_t = allreduce_time(
            self.machine, self.topology.size, self.topology.num_nodes
        )
        return {
            "kernel_launch": kernel_launch,
            "kernel_stream": kernel_stream,
            "net_overhead": net_overhead,
            "net_stream": net_stream,
            "allreduce": reduce_t,
        }

    def latency_fraction(self) -> float:
        """Share of a V-cycle spent on latency/overhead terms."""
        d = self.time_decomposition()
        latency = d["kernel_launch"] + d["net_overhead"] + d["allreduce"]
        return latency / sum(d.values())

    # ------------------------------------------------------------------
    # schedule counts for cross-validation against the functional solver
    # ------------------------------------------------------------------
    def schedule_kernel_counts(self, num_vcycles: int, num_checks: int) -> dict:
        """Expected ``Recorder.kernel_counts()`` of a functional solve.

        ``num_vcycles`` V-cycles plus ``num_checks`` convergence checks
        (Algorithm 1 evaluates the residual once before the first cycle
        and once after each).  Counts are totals across all ranks.
        """
        W = self.workload
        R = self.topology.size
        counts: dict[tuple[int, str], int] = {}

        def add(lev: int, op: str, n: int) -> None:
            counts[(lev, op)] = counts.get((lev, op), 0) + n

        L = W.num_levels
        for _ in range(num_vcycles):
            for lev in range(L - 1):
                add(lev, "applyOp", 2 * W.max_smooths * R)
                add(lev, "smooth+residual", 2 * W.max_smooths * R)
                add(lev, "restriction", R)
                add(lev + 1, "initZero", R)
                add(lev, "interpolation+increment", R)
            add(L - 1, "applyOp", W.bottom_smooths * R)
            add(L - 1, "smooth", W.bottom_smooths * R)
        add(0, "applyOp", num_checks * R)
        add(0, "residual", num_checks * R)
        return counts

    def schedule_exchange_counts(self, num_vcycles: int, num_checks: int) -> dict:
        """Expected ``Recorder.exchange_counts()`` (phases per level)."""
        W = self.workload
        L = W.num_levels
        out: dict[int, int] = {}
        for lev in range(L - 1):
            out[lev] = num_vcycles * 2 * self.exchanges_per_visit(lev, W.max_smooths)
        out[L - 1] = num_vcycles * self.exchanges_per_visit(
            L - 1, W.bottom_smooths
        )
        out[0] += num_checks
        return out

    def schedule_message_bytes(self, num_vcycles: int, num_checks: int) -> dict:
        """Expected ``Recorder.message_bytes_by_level()`` totals."""
        W = self.workload
        R = self.topology.size
        L = W.num_levels
        out: dict[int, int] = {}
        for lev in range(L):
            visits = self.visits_per_vcycle(lev)
            smooths = W.bottom_smooths if lev == L - 1 else W.max_smooths
            n_ex = self.exchanges_per_visit(lev, smooths)
            one_field = self.exchange_total_bytes(lev, nfields=1)
            per_visit = 2 * one_field + (n_ex - 1) * one_field
            out[lev] = num_vcycles * visits * per_visit * R
        out[0] += num_checks * self.exchange_total_bytes(0, nfields=1) * R
        return out
