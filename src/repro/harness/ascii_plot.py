"""ASCII rendering of the paper's figures.

The benchmark harness prints tables; these helpers add character-grid
plots so Figs. 5/6/8/9 can be eyeballed directly in the terminal and in
``bench_output.txt`` — log-log throughput curves with one glyph per
machine, matching the paper's presentation.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

#: Per-series glyphs, assigned in insertion order.
GLYPHS = "*o+x#@%"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError(f"log axis requires positive values: {value}")
        return math.log10(value)
    return value


def ascii_plot(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 18,
    logx: bool = True,
    logy: bool = True,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named ``(xs, ys)`` series on one character grid.

    Points from different series that land on the same cell show the
    later series' glyph; the legend maps glyphs to names.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 8 or height < 4:
        raise ValueError("plot must be at least 8x4 characters")
    pts = []
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r} has mismatched lengths")
        pts.extend((x, y) for x, y in zip(xs, ys))
    tx = [_transform(x, logx) for x, _ in pts]
    ty = [_transform(y, logy) for _, y in pts]
    x_lo, x_hi = min(tx), max(tx)
    y_lo, y_hi = min(ty), max(ty)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, (xs, ys)) in enumerate(series.items()):
        glyph = GLYPHS[idx % len(GLYPHS)]
        for x, y in zip(xs, ys):
            cx = round((_transform(x, logx) - x_lo) / x_span * (width - 1))
            cy = round((_transform(y, logy) - y_lo) / y_span * (height - 1))
            grid[height - 1 - cy][cx] = glyph

    lines = []
    top = f"{max(v for _, (_, ys) in series.items() for v in ys):.3g}"
    bottom = f"{min(v for _, (_, ys) in series.items() for v in ys):.3g}"
    margin = max(len(top), len(bottom)) + 1
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            label = top.rjust(margin - 1)
        elif row_idx == height - 1:
            label = bottom.rjust(margin - 1)
        else:
            label = " " * (margin - 1)
        lines.append(f"{label}|" + "".join(row))
    lines.append(" " * margin + "-" * width)
    x_min = min(v for _, (xs, _) in series.items() for v in xs)
    x_max = max(v for _, (xs, _) in series.items() for v in xs)
    footer = f"{x_min:.3g}".ljust(width // 2) + f"{x_max:.3g}".rjust(width // 2)
    lines.append(" " * margin + footer)
    axes = f"x: {x_label}{' (log)' if logx else ''}, " + (
        f"y: {y_label}{' (log)' if logy else ''}"
    )
    legend = "  ".join(
        f"{GLYPHS[i % len(GLYPHS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * margin + axes)
    lines.append(" " * margin + legend)
    return "\n".join(lines) + "\n"


def _format_cell(value: float) -> str:
    """Compact human form: integers verbatim below 10^6, else 3-sig-fig
    engineering-ish notation (``2.36e+06``)."""
    if float(value) == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{float(value):.3g}"


def ascii_matrix(
    matrix,
    title: str = "",
    row_label: str = "src",
    col_label: str = "dst",
) -> str:
    """Render a 2-D numeric matrix as an aligned character table.

    Rows are ``row_label`` (e.g. sending rank), columns ``col_label``
    (receiving rank) — the rank x rank traffic-matrix presentation of
    ``repro commviz``.  Zero cells print as ``.`` so sparse
    communication patterns (face neighbours only) read at a glance.
    """
    rows = [list(r) for r in matrix]
    if not rows or any(len(r) != len(rows[0]) for r in rows):
        raise ValueError("matrix must be rectangular and non-empty")
    ncols = len(rows[0])
    cells = [
        ["." if float(v) == 0 else _format_cell(v) for v in row] for row in rows
    ]
    headers = [f"{col_label}{j}" for j in range(ncols)]
    widths = [
        max(len(headers[j]), max(len(cells[i][j]) for i in range(len(rows))))
        for j in range(ncols)
    ]
    stub = max(len(f"{row_label}{len(rows) - 1}"), len(row_label))
    lines = [title] if title else []
    lines.append(
        " " * stub
        + "  "
        + "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    )
    for i, row in enumerate(cells):
        lines.append(
            f"{row_label}{i}".ljust(stub)
            + "  "
            + "  ".join(c.rjust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines) + "\n"


def plot_kernel_throughput(fig5_series) -> str:
    """Figure 5 as ASCII: GStencil/s vs points, log-log."""
    series = {
        name: (s.points, s.gstencil) for name, s in fig5_series.items()
    }
    first = next(iter(fig5_series.values()))
    return ascii_plot(
        series, x_label="subdomain points", y_label=f"{first.op} GStencil/s"
    )


def plot_exchange_bandwidth(fig6_series) -> str:
    """Figure 6 as ASCII: GB/s vs total message bytes, log-log."""
    series = {
        name: (s.total_bytes, s.gbs) for name, s in fig6_series.items()
    }
    return ascii_plot(series, x_label="total message bytes", y_label="GB/s")


def plot_scaling(results) -> str:
    """Figures 8/9 as ASCII: GStencil/s vs nodes, log-log."""
    series = {r.machine: (r.nodes, r.gstencil) for r in results}
    mode = results[0].mode
    return ascii_plot(series, x_label="nodes", y_label=f"{mode} GStencil/s")
