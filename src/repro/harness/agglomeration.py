"""Coarse-level agglomeration: the paper's strong-scaling remedy, modelled.

Section IX proposes to "restructure the algorithm ... by exploring the
ability to pack more computation from several ranks into fewer ones to
avoid network contention or solving small size problems" — the classic
multigrid *agglomeration* technique (HPGMG does exactly this).  This
module prices it:

* below a per-rank size threshold, a level is gathered onto fewer
  ranks, by factors of 8 (one 2x coarsening of the rank grid per step),
  until the active per-rank problem is large enough or one rank holds
  everything;
* active ranks run kernels over 8x/64x/... more points (amortising the
  launch latency that strangles strong scaling) and exchange
  correspondingly larger, bandwidth-bound messages with fewer fellow
  active ranks at reduced fabric contention;
* each agglomerated level visit pays a gather on entry and a scatter on
  exit: the retired ranks' share of the level's ``x`` and ``b`` moves
  through the network at the sustained rate.

The bench asserts the paper's expectation: agglomeration leaves the
8-node baseline untouched and meaningfully lifts strong-scaling
efficiency at high concurrency, where the latency fraction of the
V-cycle is largest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.vcycle_sim import TimedSolve, WorkloadConfig
from repro.machines.network import exchange_time, message_time
from repro.machines.specs import MachineSpec


class AgglomeratedTimedSolve(TimedSolve):
    """A :class:`TimedSolve` that gathers small coarse levels.

    ``threshold_points`` is the minimum per-active-rank level size; a
    level below it is agglomerated by factors of 8 until it meets the
    threshold (or a single rank owns it).
    """

    def __init__(
        self,
        machine: MachineSpec,
        workload: WorkloadConfig,
        threshold_points: int = 64**3,
    ) -> None:
        super().__init__(machine, workload)
        if threshold_points < 1:
            raise ValueError(f"threshold must be positive: {threshold_points}")
        self.threshold_points = int(threshold_points)
        self._factor_cache: dict[int, int] = {}

    def agglomeration_factor(self, lev: int) -> int:
        """How many original ranks' shares one active rank holds.

        Chosen greedily per level: among factors 1, 8, 64, ... (one 2x
        rank-grid coarsening per step) the one minimising the modelled
        per-visit cost wins — agglomeration is only applied where it
        helps, which is the paper's "restructure the algorithm" spirit.
        Factor 1 is always a candidate, so the agglomerated solve can
        never be slower than the baseline at any level.
        """
        cached = self._factor_cache.get(lev)
        if cached is not None:
            return cached
        total_ranks = self.topology.size
        candidates = [1]
        while candidates[-1] * 8 <= total_ranks:
            candidates.append(candidates[-1] * 8)
        best = min(candidates, key=lambda f: self._visit_cost(lev, f))
        self._factor_cache[lev] = best
        return best

    def _visit_cost(self, lev: int, factor: int) -> float:
        """Modelled cost of one smoothing visit at agglomeration ``factor``."""
        W = self.workload
        smooths = W.bottom_smooths if lev == W.num_levels - 1 else W.max_smooths
        pts = self.levels[lev].points * factor
        t = smooths * (
            super().kernel_seconds("applyOp", lev, pts)
            + super().kernel_seconds("smooth+residual", lev, pts)
        )
        n_ex = self.exchanges_per_visit(lev, smooths)
        t += n_ex * self._exchange_at_factor(lev, factor, nfields=1)
        t += self._gather_at_factor(lev, factor)
        return t

    def active_ranks(self, lev: int) -> int:
        return max(1, self.topology.size // self.agglomeration_factor(lev))

    # ------------------------------------------------------------------
    # priced pieces with agglomeration applied
    # ------------------------------------------------------------------
    def kernel_seconds(self, op: str, lev: int, points: int | None = None) -> float:
        f = self.agglomeration_factor(lev)
        pts = self.levels[lev].points if points is None else points
        return super().kernel_seconds(op, lev, pts * f)

    def exchange_seconds(self, lev: int, nfields: int = 1) -> float:
        return self._exchange_at_factor(
            lev, self.agglomeration_factor(lev), nfields
        )

    def _exchange_at_factor(self, lev: int, f: int, nfields: int) -> float:
        if f == 1:
            return super().exchange_seconds(lev, nfields)
        geo = self.levels[lev]
        ghost = self.ghost_depth(lev)
        from repro.bricks.brick_grid import NEIGHBOR_DIRECTIONS
        from repro.machines.gpu_model import pack_time

        total_ranks = self.topology.size
        if f >= total_ranks:
            # one rank owns the level: the "exchange" is a periodic
            # wrap within device memory — one copy pass over the
            # surface, no NIC at all (the whole point of agglomeration)
            surface_factor = float(total_ranks) ** (2.0 / 3.0)
            nbytes = sum(
                geo.message_bytes(d, ghost, self.workload.itemsize)
                for d in NEIGHBOR_DIRECTIONS
            ) * nfields * surface_factor
            return pack_time(self.machine, int(nbytes))
        # the active subdomain is f^(1/3) larger per dimension: each of
        # the 26 messages grows by the surface factor f^(2/3)
        surface_factor = float(f) ** (2.0 / 3.0)
        sizes = sorted(
            (
                int(
                    geo.message_bytes(d, ghost, self.workload.itemsize)
                    * nfields
                    * surface_factor
                )
                for d in NEIGHBOR_DIRECTIONS
            ),
            reverse=True,
        )
        active = max(1, total_ranks // f)
        active_nodes = max(1, active // self.workload.ranks_per_node)
        # all-active-remote is the conservative barrier assumption
        return exchange_time(
            self.machine,
            sizes,
            [],
            num_nodes=active_nodes,
            ranks_per_node=min(self.workload.ranks_per_node, active),
        )

    def gather_scatter_seconds(self, lev: int) -> float:
        """Moving the retired ranks' level data in and back out."""
        return self._gather_at_factor(lev, self.agglomeration_factor(lev))

    def _gather_at_factor(self, lev: int, f: int) -> float:
        """Binomial-tree gather/scatter cost (as HPGMG's agglomeration):
        ``log2(f)`` stages, each stage combining pairs, with the payload
        at a stage equal to the data accumulated so far.  The barrier
        cost is the tree depth, not the fan-in."""
        import math

        if f == 1:
            return 0.0
        per_rank_bytes = self.levels[lev].points * self.workload.itemsize * 2
        depth = math.ceil(math.log2(f))
        t = 0.0
        for stage in range(depth):
            stage_bytes = per_rank_bytes * (1 << stage)
            t += message_time(
                self.machine,
                stage_bytes,
                num_nodes=self.topology.num_nodes,
                ranks_per_node=self.workload.ranks_per_node,
            )
        return 2.0 * t  # gather + scatter

    def vcycle_level_times(self) -> list[dict[str, float]]:
        times = super().vcycle_level_times()
        for lev in range(self.workload.num_levels):
            cost = self.gather_scatter_seconds(lev)
            if cost:
                visits = self.visits_per_vcycle(lev)
                times[lev]["agglomeration"] = visits * cost
        return times


@dataclass
class AgglomerationComparison:
    machine: str
    nodes: list[int]
    baseline_efficiency: list[float]
    agglomerated_efficiency: list[float]
    baseline_seconds: list[float]
    agglomerated_seconds: list[float]


def strong_scaling_with_agglomeration(
    machine_name: str, threshold_points: int = 32**3
) -> AgglomerationComparison:
    """Fig. 9 ladder with and without coarse-level agglomeration."""
    from repro.harness.experiments import (
        STRONG_GLOBAL_CELLS,
        WEAK_NODE_LADDER,
    )
    from repro.harness.vcycle_sim import decompose_for
    from repro.machines.specs import MACHINES

    machine = MACHINES[machine_name]
    rpn = machine.node.ranks_per_node
    global_cells = STRONG_GLOBAL_CELLS[machine_name]
    nodes_list = WEAK_NODE_LADDER[machine_name]
    base_secs, aggl_secs = [], []
    for nodes in nodes_list:
        ranks = nodes * rpn
        dims = decompose_for(global_cells, ranks)
        per_rank = tuple(c // d for c, d in zip(global_cells, dims))
        w = WorkloadConfig(per_rank_cells=per_rank, num_levels=6,
                           rank_dims=dims, ranks_per_node=rpn)
        base_secs.append(TimedSolve(machine, w).total_solve_time())
        aggl_secs.append(
            AgglomeratedTimedSolve(machine, w, threshold_points).total_solve_time()
        )

    def efficiencies(secs: list[float]) -> list[float]:
        base_rate = 1.0 / (secs[0] * nodes_list[0])
        return [
            (1.0 / (t * n)) / base_rate for t, n in zip(secs, nodes_list)
        ]

    return AgglomerationComparison(
        machine=machine_name,
        nodes=nodes_list,
        baseline_efficiency=efficiencies(base_secs),
        agglomerated_efficiency=efficiencies(aggl_secs),
        baseline_seconds=base_secs,
        agglomerated_seconds=aggl_secs,
    )


def render_agglomeration(result: AgglomerationComparison) -> str:
    lines = [
        f"coarse-level agglomeration on {result.machine} "
        f"(strong scaling, fixed global domain):",
        f"{'nodes':>6s} {'baseline':>10s} {'agglom.':>10s} "
        f"{'base eff':>9s} {'aggl eff':>9s}",
    ]
    for n, tb, ta, eb, ea in zip(
        result.nodes,
        result.baseline_seconds,
        result.agglomerated_seconds,
        result.baseline_efficiency,
        result.agglomerated_efficiency,
    ):
        lines.append(
            f"{n:>6d} {tb:>9.3f}s {ta:>9.3f}s {eb * 100:>8.1f}% "
            f"{ea * 100:>8.1f}%"
        )
    return "\n".join(lines) + "\n"
