"""Arithmetic-intensity bookkeeping (Tables IV and V inputs).

Theoretical AI comes straight out of the DSL analysis
(:mod:`repro.dsl.library`).  *Achieved* AI on a given machine is the
theoretical value scaled by that machine's per-operation AI fraction
(Table V calibration — how much extra data the real cache hierarchy
moves beyond compulsory traffic).
"""

from __future__ import annotations

from repro.dsl.library import OPERATOR_INFO, VCYCLE_OPERATIONS
from repro.machines.specs import MachineSpec


def achieved_ai(machine: MachineSpec, op: str) -> float:
    """FLOP:byte the operation actually achieves on ``machine``."""
    info = OPERATOR_INFO[op]
    frac = machine.gpu.op_ai_fraction.get(op)
    if frac is None:
        raise KeyError(f"no AI fraction for {op!r} on {machine.name}")
    return info.arithmetic_intensity * frac


def achieved_bytes_per_point(machine: MachineSpec, op: str) -> float:
    """Actual DRAM bytes moved per point (>= compulsory)."""
    info = OPERATOR_INFO[op]
    frac = machine.gpu.op_ai_fraction[op]
    return info.bytes_per_point / frac


def ai_comparison_rows() -> list[tuple[str, float, float, float]]:
    """Table IV rows: ``(op, ours, paper, abs difference)``."""
    rows = []
    for op in VCYCLE_OPERATIONS:
        info = OPERATOR_INFO[op]
        ours = info.arithmetic_intensity
        rows.append((op, ours, info.paper_ai, abs(ours - info.paper_ai)))
    return rows
