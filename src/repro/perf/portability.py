"""Performance portability metric (Pennycook, Sewall & Lee [9]).

For an application ``a`` solving problem ``p`` on a platform set ``H``::

    Phi(a, p, H) = |H| / sum_i 1/e_i(a, p)    if supported on all of H
                 = 0                           otherwise

i.e. the harmonic mean of the per-platform efficiencies ``e_i``.  The
paper computes Phi twice per operation: with ``e_i`` the fraction of
the empirical Roofline (Table III) and with ``e_i`` the fraction of
theoretical arithmetic intensity (Table V), then reports the harmonic
mean over operations as the headline 73% / 92% numbers.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean; 0 if the collection is empty or any value is 0."""
    vals = list(values)
    if not vals:
        return 0.0
    for v in vals:
        if v < 0:
            raise ValueError(f"efficiencies must be non-negative: {v}")
        if v == 0:
            return 0.0
    return len(vals) / sum(1.0 / v for v in vals)


def performance_portability(
    efficiencies: Mapping[str, float | None],
) -> float:
    """Phi over a platform->efficiency mapping.

    A ``None`` (or missing/zero) efficiency means the application is
    unsupported on that platform, making Phi zero by definition.
    """
    vals = []
    for platform, e in efficiencies.items():
        if e is None:
            return 0.0
        if not 0.0 <= e <= 1.0:
            raise ValueError(f"efficiency out of [0, 1] for {platform}: {e}")
        vals.append(e)
    return harmonic_mean(vals)


def efficiency_table_phi(
    table: Mapping[str, Mapping[str, float]],
) -> tuple[dict[str, float], float]:
    """Per-operation Phi and the overall metric for a Tables-III/V layout.

    ``table[op][platform] = e`` -> returns ``({op: Phi_op}, Phi_all)``
    where ``Phi_all`` is the harmonic mean of the per-operation values,
    matching how the paper aggregates its final 73%/92% figures.
    """
    per_op = {
        op: performance_portability(platforms) for op, platforms in table.items()
    }
    return per_op, harmonic_mean(per_op.values())
