"""Performance analysis: the paper's models and metrics.

* :mod:`~repro.perf.linear_model` — the latency/bandwidth model
  ``f(x) = x/(alpha + x/beta)`` of Section VI-A and its least-squares
  fit, used to extract empirical latency and throughput from timing
  series (Figs. 5 and 6);
* :mod:`~repro.perf.portability` — Pennycook's performance portability
  metric (harmonic mean of per-platform efficiencies, Section VII);
* :mod:`~repro.perf.ai` — theoretical vs achieved arithmetic intensity
  (Tables IV and V);
* :mod:`~repro.perf.speedup` — potential-speedup iso-curves (Fig. 7);
* :mod:`~repro.perf.timers` — the paper's cross-rank
  ``[min, avg, max] (sigma)`` timing statistics format;
* :mod:`~repro.perf.stats` — variance-aware sample statistics
  (min/median/IQR, relative dispersion, outlier flagging) for
  benchmark series and the noise-scaled regression gate;
* :mod:`~repro.perf.sweep` — the declarative config-matrix sweep
  orchestrator behind ``repro sweep``.
"""

from repro.perf.ai import achieved_ai, ai_comparison_rows
from repro.perf.linear_model import (
    LatencyBandwidthFit,
    fit_latency_bandwidth,
    fit_from_times,
    latency_bandwidth_model,
)
from repro.perf.portability import (
    efficiency_table_phi,
    harmonic_mean,
    performance_portability,
)
from repro.perf.speedup import iso_speedup_curve, potential_speedup
from repro.perf.stats import SampleStats, mad_outliers, relative_dispersion
from repro.perf.sweep import SweepConfig, SweepReport, expand, run_sweep
from repro.perf.timers import TimingStat, format_level_timing

__all__ = [
    "latency_bandwidth_model",
    "fit_latency_bandwidth",
    "fit_from_times",
    "LatencyBandwidthFit",
    "performance_portability",
    "harmonic_mean",
    "efficiency_table_phi",
    "achieved_ai",
    "ai_comparison_rows",
    "potential_speedup",
    "iso_speedup_curve",
    "TimingStat",
    "format_level_timing",
    "SampleStats",
    "mad_outliers",
    "relative_dispersion",
    "SweepConfig",
    "SweepReport",
    "expand",
    "run_sweep",
]
