"""Potential-speedup analysis (Figure 7).

The paper plots each (operation, machine) pair at coordinates
``(fraction of theoretical AI, fraction of Roofline)`` and draws
iso-curves of constant potential speedup::

    Speedup = (100% / %Roofline) * (100% / %TheoreticalAI)

— any mix of better code generation (y) and better data locality (x)
moves a point toward (1, 1).
"""

from __future__ import annotations

import numpy as np

from repro.dsl.library import VCYCLE_OPERATIONS
from repro.machines.specs import MachineSpec


def potential_speedup(roofline_fraction: float, ai_fraction: float) -> float:
    """Headroom multiplier from both efficiency axes."""
    if not 0.0 < roofline_fraction <= 1.0:
        raise ValueError(f"roofline fraction must be in (0, 1]: {roofline_fraction}")
    if not 0.0 < ai_fraction <= 1.0:
        raise ValueError(f"AI fraction must be in (0, 1]: {ai_fraction}")
    return (1.0 / roofline_fraction) * (1.0 / ai_fraction)


def iso_speedup_curve(
    speedup: float, n: int = 64, x_min: float = 0.2
) -> tuple[np.ndarray, np.ndarray]:
    """Points ``(x, y)`` with ``1/(x*y) = speedup`` for plotting.

    Only the portion with both coordinates in (0, 1] is returned.
    """
    if speedup < 1.0:
        raise ValueError(f"speedup must be >= 1: {speedup}")
    x = np.linspace(max(x_min, 1.0 / speedup), 1.0, n)
    y = 1.0 / (speedup * x)
    keep = y <= 1.0
    return x[keep], y[keep]


def machine_speedup_points(
    machine: MachineSpec,
) -> dict[str, tuple[float, float, float]]:
    """Figure 7's scatter for one machine.

    Returns ``{op: (ai_fraction, roofline_fraction, speedup)}``.
    """
    out = {}
    for op in VCYCLE_OPERATIONS:
        fr = machine.gpu.op_roofline_fraction[op]
        fa = machine.gpu.op_ai_fraction[op]
        out[op] = (fa, fr, potential_speedup(fr, fa))
    return out
