"""The paper's linear latency/bandwidth model and its fit.

Section VI-A: ``f(x) = x / (alpha + x/beta)`` where ``x`` is problem
size (points, or bytes for communication), ``f`` is throughput
(GStencil/s or GB/s), ``alpha`` is latency and ``beta`` the attainable
asymptotic rate.  Equivalently, *time* per invocation is affine in
size: ``t(x) = alpha + x/beta`` — so the fit is ordinary least squares
of ``t`` against ``x``, which is numerically far better behaved than
fitting the saturating form directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def latency_bandwidth_model(
    x: np.ndarray | float, alpha: float, beta: float
) -> np.ndarray | float:
    """Throughput ``f(x) = x / (alpha + x/beta)``.

    ``alpha`` in seconds, ``beta`` in the same units as the returned
    throughput (items/s), ``x`` in items.
    """
    if alpha < 0 or beta <= 0:
        raise ValueError(f"need alpha >= 0 and beta > 0: alpha={alpha}, beta={beta}")
    x = np.asarray(x, dtype=np.float64)
    return x / (alpha + x / beta)


@dataclass(frozen=True)
class LatencyBandwidthFit:
    """Result of fitting the linear model to a timing series."""

    alpha: float  # latency (seconds)
    beta: float  # asymptotic rate (items/s)
    r_squared: float  # goodness of the t-vs-x linear fit

    def time(self, x: np.ndarray | float) -> np.ndarray | float:
        """Predicted time per invocation."""
        return self.alpha + np.asarray(x, dtype=np.float64) / self.beta

    def throughput(self, x: np.ndarray | float) -> np.ndarray | float:
        """Predicted throughput ``f(x)``."""
        return latency_bandwidth_model(x, self.alpha, self.beta)

    def half_rate_size(self) -> float:
        """Size at which throughput reaches half of ``beta`` (n_1/2)."""
        return self.alpha * self.beta


def fit_from_times(x: np.ndarray, t: np.ndarray) -> LatencyBandwidthFit:
    """Least-squares fit of ``t = alpha + x/beta``.

    Requires at least two distinct sizes.  ``alpha`` is clamped at zero
    (a negative intercept would be unphysical measurement noise).
    """
    x = np.asarray(x, dtype=np.float64)
    t = np.asarray(t, dtype=np.float64)
    if x.shape != t.shape or x.ndim != 1:
        raise ValueError("x and t must be 1-D arrays of equal length")
    if len(np.unique(x)) < 2:
        raise ValueError("need at least two distinct sizes to fit")
    if np.any(t <= 0) or np.any(x <= 0):
        raise ValueError("sizes and times must be positive")
    A = np.stack([np.ones_like(x), x], axis=1)
    (alpha, slope), *_ = np.linalg.lstsq(A, t, rcond=None)
    if slope <= 0:
        # Degenerate (latency-dominated) series: fall back to a pure
        # latency model with beta at the observed maximum rate.
        alpha = float(np.mean(t))
        beta = float(np.max(x / t))
    else:
        alpha = float(max(alpha, 0.0))
        beta = float(1.0 / slope)
    pred = alpha + x / beta
    ss_res = float(np.sum((t - pred) ** 2))
    ss_tot = float(np.sum((t - np.mean(t)) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LatencyBandwidthFit(alpha=alpha, beta=beta, r_squared=r2)


def fit_latency_bandwidth(x: np.ndarray, f: np.ndarray) -> LatencyBandwidthFit:
    """Fit from a throughput series ``f(x)`` (Figs. 5/6 form)."""
    x = np.asarray(x, dtype=np.float64)
    f = np.asarray(f, dtype=np.float64)
    if np.any(f <= 0):
        raise ValueError("throughputs must be positive")
    return fit_from_times(x, x / f)
