"""Variance-aware sample statistics for benchmark timing series.

The repo's first-generation benches reported bare min-of-k: the fastest
observed wallclock is the least noisy estimate of what the machine can
do, but it says nothing about *how* noisy the series was, so a reader
cannot tell a solid 2% win from jitter.  This module computes the
robust summary every sweep cell and ledger series carries instead:

* **quartile statistics** — min / median / IQR, so the central tendency
  and the spread are both on the table;
* **relative dispersion** — IQR over median, the scale-free noise
  figure the noise-scaled regression gate consumes (a regression must
  clear the *measured* noise floor, not a fixed percentage);
* **outlier flagging** — Tukey fences for in-run samples, and a
  MAD-based test (:func:`mad_outliers`) for the short cross-run windows
  the ledger baseline uses, where a single GC pause or cold cache must
  not poison the min-of-k baseline.

Everything here is pure ``statistics``-module arithmetic on small
lists — no numpy dependency, so the ledger tooling stays importable in
a stripped environment.
"""

from __future__ import annotations

import statistics
from collections.abc import Sequence
from dataclasses import dataclass

#: Tukey fence multiplier: samples outside ``[q1 - k*IQR, q3 + k*IQR]``
#: are flagged as outliers.
TUKEY_FENCE = 1.5

#: MAD z-score cutoff for the cross-run outlier test (3.5 is the
#: standard Iglewicz–Hoaglin recommendation for small samples).
MAD_CUTOFF = 3.5

#: scale factor turning a MAD into a consistent stdev estimate for
#: normal data.
_MAD_SCALE = 1.4826


@dataclass(frozen=True)
class SampleStats:
    """Robust summary of one timing series (lower-is-better seconds/ms).

    ``outliers`` holds the flagged sample values themselves (Tukey
    fence) so reports can show *what* was discarded, not just a count;
    the flagged samples still contribute to ``minimum`` — discarding is
    the ledger baseline's job (:func:`mad_outliers`), not the in-run
    summary's.
    """

    count: int
    minimum: float
    maximum: float
    mean: float
    median: float
    q1: float
    q3: float
    stdev: float
    outliers: tuple[float, ...] = ()

    @property
    def iqr(self) -> float:
        """Interquartile range — the robust spread measure."""
        return self.q3 - self.q1

    @property
    def rel_iqr(self) -> float:
        """IQR / median: the scale-free dispersion the gate consumes."""
        return self.iqr / self.median if self.median > 0 else 0.0

    @classmethod
    def from_samples(
        cls, samples: Sequence[float], fence: float = TUKEY_FENCE
    ) -> "SampleStats":
        """Summarise ``samples`` (at least one required)."""
        values = [float(v) for v in samples]
        if not values:
            raise ValueError("need at least one sample")
        if len(values) == 1:
            v = values[0]
            return cls(1, v, v, v, v, v, v, 0.0)
        ordered = sorted(values)
        q1, _, q3 = statistics.quantiles(ordered, n=4, method="inclusive")
        iqr = q3 - q1
        lo, hi = q1 - fence * iqr, q3 + fence * iqr
        return cls(
            count=len(values),
            minimum=ordered[0],
            maximum=ordered[-1],
            mean=statistics.fmean(values),
            median=statistics.median(ordered),
            q1=q1,
            q3=q3,
            stdev=statistics.stdev(values),
            outliers=tuple(v for v in ordered if v < lo or v > hi),
        )

    def to_json(self) -> dict:
        return {
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "median": self.median,
            "q1": self.q1,
            "q3": self.q3,
            "iqr": self.iqr,
            "rel_iqr": self.rel_iqr,
            "stdev": self.stdev,
            "outliers": list(self.outliers),
        }


def mad_outliers(
    values: Sequence[float], cutoff: float = MAD_CUTOFF
) -> list[bool]:
    """Per-value outlier mask via the modified z-score (median/MAD).

    Robust down to the ledger's 3-entry baseline windows where
    quartile fences are meaningless: with values ``[100, 101, 5]`` the
    median is 100, the MAD is 1, and the 5 is flagged at |z| ≈ 142.
    A zero MAD (all-but-one identical values) falls back to flagging
    nothing — there is no scale to judge against.  Fewer than three
    values never flag: a pair offers no evidence of which one is wrong.
    """
    vals = [float(v) for v in values]
    if len(vals) < 3:
        return [False] * len(vals)
    med = statistics.median(vals)
    mad = statistics.median(abs(v - med) for v in vals)
    if mad <= 0.0:
        return [False] * len(vals)
    return [abs(v - med) / (_MAD_SCALE * mad) > cutoff for v in vals]


def relative_dispersion(values: Sequence[float]) -> float:
    """IQR / median of ``values`` (0 for degenerate series)."""
    if len(values) < 2:
        return 0.0
    return SampleStats.from_samples(values).rel_iqr
