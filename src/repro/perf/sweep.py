"""Declarative benchmark sweep orchestration: ``repro sweep``.

The measurement layer above a single solve used to be ~20 ad-hoc
``benchmarks/bench_*.py`` scripts, each hand-rolling timing loops,
JSON writing and quick-mode flags.  This module replaces that with one
declarative shape, in the spirit of the paper's own evaluation matrix
(brick size × kernel × scale):

* a :class:`SweepConfig` declares **axes** (brick size, engine flags,
  overlap, agglomeration threshold, machine model, scenario) whose
  cartesian product :func:`expand` turns into :class:`SweepCell`\\ s;
* :func:`run_sweep` executes every cell through the existing
  :class:`~repro.gmg.solver.GMGSolver` path with **warmup discard**
  and **interleaved repetition rounds** (cell A, B, C, … then again —
  shared-machine drift cancels instead of accruing to whichever cell
  runs last), collecting a full wallclock sample series per cell;
* every cell gets variance-aware statistics
  (:class:`~repro.perf.stats.SampleStats`: min/median/IQR, relative
  dispersion, Tukey-flagged outliers) **and its numerics** (V-cycle
  count, convergence factor, solve status) — a perf win that degrades
  convergence is visible in the same table;
* the result is a :class:`SweepReport` that renders as an ascii table,
  raw JSON (schema-versioned), and a self-contained HTML artifact,
  attributes deltas **per axis** against a declared baseline cell
  (which axis moved, by how much, and whether the move clears the two
  cells' measured noise floor), and lands every cell as a
  schema-versioned :class:`~repro.obs.ledger.LedgerEntry` under its own
  series (``sweep_<name>.<cell>``) so ``repro perfgate --series
  'sweep_<name>.*'`` gates the whole matrix with noise-scaled
  thresholds.

Configs are JSON files (see ``benchmarks/sweeps/``); YAML is accepted
when PyYAML happens to be installed, but nothing requires it.
"""

from __future__ import annotations

import itertools
import json
import math
import re
import time
from dataclasses import dataclass, field, fields as dataclass_fields
from pathlib import Path

from repro.obs.ledger import LedgerEntry
from repro.perf.stats import SampleStats

#: bump when the sweep-report JSON layout changes
SWEEP_SCHEMA_VERSION = 1

#: named problem presets an axis or the base config can reference;
#: a config's ``scenarios`` section can add to or override these
SCENARIOS: dict[str, dict] = {
    # the ROADMAP tier-1 model problem
    "tier1": dict(global_cells=32, num_levels=3, brick_dim=4),
    # the 8-rank tier-1 problem the overlap/commviz benches use
    "tier1-distributed": dict(
        global_cells=32, num_levels=3, brick_dim=4, rank_dims=(2, 2, 2),
        batch_ranks=True, max_vcycles=4,
    ),
    # small problems for CI smoke matrices
    "smoke": dict(
        global_cells=16, num_levels=2, brick_dim=4, max_smooths=6,
        bottom_smooths=20, max_vcycles=4,
    ),
    "smoke-distributed": dict(
        global_cells=16, num_levels=2, brick_dim=4, rank_dims=(2, 1, 1),
        max_smooths=6, bottom_smooths=20, max_vcycles=4,
    ),
    # non-periodic boundary variant (no machine model available)
    "dirichlet": dict(
        global_cells=16, num_levels=2, brick_dim=4, boundary="dirichlet",
        max_smooths=6, bottom_smooths=20,
    ),
}

#: the CLI's ``--engine`` shorthand, reused as a sweep axis
ENGINE_FLAGS: dict[str, dict] = {
    "off": {},
    "halo": dict(halo_resident=True),
    "fuse": dict(fuse_kernels=True),
    "batch": dict(batch_ranks=True),
    "full": dict(halo_resident=True, fuse_kernels=True, batch_ranks=True),
}

#: axis keys with special resolution rules (everything else must name a
#: SolverConfig field)
_SPECIAL_AXES = ("engine", "scenario", "machine")


def _solver_field_names() -> set[str]:
    from repro.gmg import SolverConfig

    return {f.name for f in dataclass_fields(SolverConfig)}


def _validate_key(key: str) -> None:
    if key in _SPECIAL_AXES:
        return
    known = _solver_field_names()
    if key not in known:
        raise ValueError(
            f"unknown sweep axis {key!r}: must be one of "
            f"{sorted(_SPECIAL_AXES)} or a SolverConfig field "
            f"({sorted(known)})"
        )


@dataclass
class SweepConfig:
    """One declared sweep: a name, axes, and run parameters."""

    name: str
    axes: dict[str, list] = field(default_factory=dict)
    #: settings shared by every cell (same key space as the axes)
    base: dict = field(default_factory=dict)
    #: extra scenario presets, merged over the built-in :data:`SCENARIOS`
    scenarios: dict[str, dict] = field(default_factory=dict)
    #: the baseline cell's axis values (default: first value per axis)
    baseline: dict = field(default_factory=dict)
    #: discarded runs per cell before sampling starts
    warmup: int = 1
    #: interleaved repetition rounds (samples per cell)
    rounds: int = 5
    #: rounds under ``REPRO_BENCH_QUICK`` / ``--quick``
    quick_rounds: int = 2
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not re.fullmatch(r"[A-Za-z0-9._-]+", self.name):
            raise ValueError(
                f"sweep name must be a filesystem-safe token: {self.name!r}"
            )
        if not self.axes:
            raise ValueError("a sweep needs at least one axis")
        for key, values in self.axes.items():
            _validate_key(key)
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(
                    f"axis {key!r} must list at least one value: {values!r}"
                )
        for key in self.base:
            _validate_key(key)
        for key, value in self.baseline.items():
            if key not in self.axes:
                raise ValueError(
                    f"baseline key {key!r} is not a declared axis"
                )
            if value not in self.axes[key]:
                raise ValueError(
                    f"baseline value {value!r} is not on axis {key!r}"
                )
        if self.warmup < 0 or self.rounds < 1 or self.quick_rounds < 1:
            raise ValueError("warmup must be >= 0 and rounds >= 1")

    def baseline_axes(self) -> dict:
        """Every axis at its baseline value (declared or first-listed)."""
        return {
            key: self.baseline.get(key, values[0])
            for key, values in self.axes.items()
        }

    @classmethod
    def from_dict(cls, obj: dict) -> "SweepConfig":
        known = {f.name for f in dataclass_fields(cls)}
        unknown = set(obj) - known
        if unknown:
            raise ValueError(f"unknown sweep config keys: {sorted(unknown)}")
        if "name" not in obj:
            raise ValueError("sweep config needs a 'name'")
        return cls(**obj)

    @classmethod
    def from_file(cls, path) -> "SweepConfig":
        path = Path(path)
        text = path.read_text()
        if path.suffix in (".yaml", ".yml"):
            try:
                import yaml
            except ImportError as exc:  # pragma: no cover - env dependent
                raise ValueError(
                    f"{path}: YAML configs need PyYAML; use JSON instead"
                ) from exc
            obj = yaml.safe_load(text)
        else:
            obj = json.loads(text)
        if not isinstance(obj, dict):
            raise ValueError(f"{path}: sweep config must be a mapping")
        return cls.from_dict(obj)


@dataclass(frozen=True)
class SweepCell:
    """One point of the expanded matrix, ready to run."""

    index: int
    label: str
    #: the declared axis values (what attribution groups by)
    axes: dict
    #: resolved SolverConfig keyword arguments
    solver_kwargs: dict
    #: machine-model name pricing this cell, or None
    machine: str | None = None


def _scenario_kwargs(name, scenarios: dict[str, dict]) -> dict:
    table = {**SCENARIOS, **scenarios}
    if name not in table:
        raise ValueError(
            f"unknown scenario {name!r}; known: {sorted(table)}"
        )
    return dict(table[name])


def _apply_setting(kwargs: dict, key: str, value, scenarios) -> str | None:
    """Fold one base/axis setting into solver kwargs.

    Returns the machine name when ``key == 'machine'`` (it is not a
    solver field), else None.
    """
    if key == "machine":
        return None if value in (None, "none") else str(value)
    if key == "engine":
        if value not in ENGINE_FLAGS:
            raise ValueError(
                f"unknown engine {value!r}; known: {sorted(ENGINE_FLAGS)}"
            )
        kwargs.update(ENGINE_FLAGS[value])
        return None
    if key == "scenario":
        # scenario fills defaults: explicit base/axis settings win, so
        # apply only keys not already pinned
        for k, v in _scenario_kwargs(value, scenarios).items():
            kwargs.setdefault(k, v)
        return None
    if key == "rank_dims" and isinstance(value, list):
        value = tuple(value)
    kwargs[key] = value
    return None


def _value_str(value) -> str:
    if isinstance(value, bool):
        return "on" if value else "off"
    if value is None:
        return "none"
    if isinstance(value, (list, tuple)):
        return "x".join(str(v) for v in value)
    return str(value)


def _cell_label(axes: dict) -> str:
    label = "_".join(f"{k}-{_value_str(v)}" for k, v in axes.items())
    return re.sub(r"[^A-Za-z0-9._-]", "", label)


def expand(config: SweepConfig) -> list[SweepCell]:
    """Cartesian-product the axes into runnable cells.

    Settings are resolved scenario < base < axis value (later wins),
    except scenarios, which only fill keys nothing else pinned.
    """
    keys = list(config.axes)
    cells = []
    for index, combo in enumerate(
        itertools.product(*(config.axes[k] for k in keys))
    ):
        axes = dict(zip(keys, combo))
        kwargs: dict = {}
        machine: str | None = None
        # axis values and base settings first (they win over scenarios);
        # scenario resolution last so it only fills the gaps
        deferred = []
        for key, value in {**config.base, **axes}.items():
            if key == "scenario":
                deferred.append(value)
                continue
            m = _apply_setting(kwargs, key, value, config.scenarios)
            if key == "machine":
                machine = m
        for scenario in deferred:
            _apply_setting(kwargs, "scenario", scenario, config.scenarios)
        cells.append(
            SweepCell(
                index=index,
                label=_cell_label(axes),
                axes=axes,
                solver_kwargs=kwargs,
                machine=machine,
            )
        )
    labels = [c.label for c in cells]
    if len(set(labels)) != len(labels):
        raise ValueError(f"expanded cell labels collide: {labels}")
    return cells


@dataclass
class CellResult:
    """One executed cell: samples, statistics, numerics, model price."""

    cell: SweepCell
    samples: list[float]
    stats: SampleStats
    status: str
    vcycles: int
    convergence_factor: float | None
    #: modelled wallclock on the cell's machine (ms), when priced
    model_ms: float | None = None

    @property
    def ok(self) -> bool:
        return self.status in ("converged", "max_vcycles")

    def to_json(self) -> dict:
        return {
            "label": self.cell.label,
            "axes": self.cell.axes,
            "machine": self.cell.machine,
            "status": self.status,
            "vcycles": self.vcycles,
            "convergence_factor": self.convergence_factor,
            "model_ms": self.model_ms,
            "wallclock_ms": self.stats.to_json(),
        }


@dataclass(frozen=True)
class AxisEffect:
    """One axis value's aggregate delta against the baseline value.

    Computed over every matched pair of cells that differ *only* on
    this axis; ``ratio`` is the geometric mean of the pairwise
    median-wallclock ratios.  ``noise_floor`` is the largest relative
    IQR among the involved cells — the effect is ``significant`` only
    when it clears that measured noise, the same philosophy the
    noise-scaled perfgate applies.
    """

    axis: str
    value: str
    baseline_value: str
    ratio: float
    pairs: int
    noise_floor: float

    @property
    def delta_pct(self) -> float:
        return (self.ratio - 1.0) * 100.0

    @property
    def significant(self) -> bool:
        return abs(self.ratio - 1.0) > self.noise_floor

    def to_json(self) -> dict:
        return {
            "axis": self.axis,
            "value": self.value,
            "baseline_value": self.baseline_value,
            "ratio": self.ratio,
            "delta_pct": self.delta_pct,
            "pairs": self.pairs,
            "noise_floor": self.noise_floor,
            "significant": self.significant,
        }


def _axis_effects(
    config: SweepConfig, results: list[CellResult]
) -> list[AxisEffect]:
    by_axes = {tuple(sorted(r.cell.axes.items())): r for r in results}
    base_axes = config.baseline_axes()
    effects = []
    for axis, values in config.axes.items():
        base_value = base_axes[axis]
        for value in values:
            if value == base_value:
                continue
            ratios, floors = [], []
            for r in results:
                if r.cell.axes[axis] != value:
                    continue
                partner_axes = {**r.cell.axes, axis: base_value}
                partner = by_axes.get(tuple(sorted(partner_axes.items())))
                if partner is None or partner.stats.median <= 0:
                    continue
                ratios.append(r.stats.median / partner.stats.median)
                floors.append(max(r.stats.rel_iqr, partner.stats.rel_iqr))
            if not ratios:
                continue
            gm = math.exp(sum(math.log(x) for x in ratios) / len(ratios))
            effects.append(
                AxisEffect(
                    axis=axis,
                    value=_value_str(value),
                    baseline_value=_value_str(base_value),
                    ratio=gm,
                    pairs=len(ratios),
                    noise_floor=max(floors),
                )
            )
    return effects


@dataclass
class SweepReport:
    """Everything one sweep run produced, in every output form."""

    config: SweepConfig
    cells: list[CellResult]
    effects: list[AxisEffect]
    rounds: int
    quick: bool

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.cells)

    @property
    def baseline_label(self) -> str:
        return _cell_label(self.config.baseline_axes())

    # ------------------------------------------------------------------
    # ledger
    # ------------------------------------------------------------------
    def ledger_entries(self) -> list[LedgerEntry]:
        """One schema-versioned entry per cell, each in its own series.

        Series names are ``sweep_<name>.<cell-label>`` so ``repro
        perfgate --series 'sweep_<name>.*'`` gates the whole matrix;
        metrics carry wallclock (min and median) *and* the numerics
        (V-cycle count, convergence factor — both lower-is-better), so
        a perf win that costs convergence trips the same gate.
        """
        entries = []
        for r in self.cells:
            metrics = {
                "wallclock_ms": round(r.stats.minimum * 1e3, 3),
                "wallclock_ms.median": round(r.stats.median * 1e3, 3),
                "vcycles": float(r.vcycles),
            }
            if r.convergence_factor is not None:
                metrics["convergence_factor"] = round(
                    r.convergence_factor, 6
                )
            entries.append(
                LedgerEntry(
                    benchmark=f"sweep_{self.config.name}.{r.cell.label}",
                    metrics=metrics,
                    source="sweep",
                    context={
                        "sweep": self.config.name,
                        "axes": r.cell.axes,
                        "status": r.status,
                        "stats": r.stats.to_json(),
                        "model_ms": r.model_ms,
                        "rounds": self.rounds,
                        "warmup": self.config.warmup,
                        "quick": self.quick,
                    },
                )
            )
        return entries

    # ------------------------------------------------------------------
    # renderers
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The ascii report: per-cell table, attribution, median plot."""
        cfg = self.config
        axes_desc = " x ".join(
            f"{k}[{len(v)}]" for k, v in cfg.axes.items()
        )
        lines = [
            f"sweep '{cfg.name}': {len(self.cells)} cells ({axes_desc}), "
            f"{self.rounds} interleaved rounds after {cfg.warmup} warmup"
            + (" [quick]" if self.quick else ""),
            f"baseline cell: {self.baseline_label}",
            "",
            f"  {'cell':<42}{'min ms':>9}{'med ms':>9}{'IQR':>8}"
            f"{'rel%':>6}{'out':>4}{'vcyc':>5}{'conv':>7}{'model':>9}"
            "  status",
        ]
        for r in self.cells:
            s = r.stats
            conv = (
                f"{r.convergence_factor:.3f}"
                if r.convergence_factor is not None else "-"
            )
            model = f"{r.model_ms:.1f}" if r.model_ms is not None else "-"
            lines.append(
                f"  {r.cell.label:<42}{s.minimum * 1e3:>9.1f}"
                f"{s.median * 1e3:>9.1f}{s.iqr * 1e3:>8.2f}"
                f"{s.rel_iqr * 100:>6.1f}{len(s.outliers):>4d}"
                f"{r.vcycles:>5d}{conv:>7}{model:>9}  {r.status}"
            )
        lines.append("")
        if self.effects:
            lines.append(
                "axis attribution (geo-mean median ratio vs baseline "
                "value, matched pairs only):"
            )
            lines.append(
                f"  {'axis':<24}{'value':<16}{'delta':>9}{'pairs':>7}"
                f"{'noise':>8}  verdict"
            )
            for e in self.effects:
                verdict = "significant" if e.significant else "within noise"
                lines.append(
                    f"  {e.axis:<24}{e.value:<16}{e.delta_pct:>+8.1f}%"
                    f"{e.pairs:>7d}{e.noise_floor * 100:>7.1f}%  {verdict}"
                )
        else:
            lines.append("axis attribution: no matched pairs (single cell?)")
        medians = [r.stats.median * 1e3 for r in self.cells]
        if len(medians) >= 2 and min(medians) > 0:
            from repro.harness.ascii_plot import ascii_plot

            lines.append("")
            lines.append("median wallclock by cell index (ms):")
            lines.append(
                ascii_plot(
                    {"median ms": (list(range(1, len(medians) + 1)), medians)},
                    logx=False,
                    logy=False,
                    x_label="cell index (table order)",
                    y_label="median ms",
                    height=10,
                )
            )
        return "\n".join(lines) + "\n"

    def to_json(self) -> dict:
        return {
            "schema": SWEEP_SCHEMA_VERSION,
            "name": self.config.name,
            "description": self.config.description,
            "axes": self.config.axes,
            "baseline": self.config.baseline_axes(),
            "baseline_label": self.baseline_label,
            "rounds": self.rounds,
            "warmup": self.config.warmup,
            "quick": self.quick,
            "ok": self.ok,
            "cells": [r.to_json() for r in self.cells],
            "attribution": [e.to_json() for e in self.effects],
        }

    def to_html(self) -> str:
        """A self-contained HTML artifact (inline CSS, no scripts)."""
        def esc(s) -> str:
            return (
                str(s)
                .replace("&", "&amp;")
                .replace("<", "&lt;")
                .replace(">", "&gt;")
            )

        max_med = max((r.stats.median for r in self.cells), default=0.0)
        cell_rows = []
        for r in self.cells:
            s = r.stats
            width = (
                int(100 * s.median / max_med) if max_med > 0 else 0
            )
            conv = (
                f"{r.convergence_factor:.3f}"
                if r.convergence_factor is not None else "–"
            )
            model = f"{r.model_ms:.1f}" if r.model_ms is not None else "–"
            bar = (
                f'<div class="bar" style="width:{width}%"></div>'
            )
            cls = "" if r.ok else ' class="bad"'
            cell_rows.append(
                f"<tr{cls}><td>{esc(r.cell.label)}</td>"
                f"<td>{s.minimum * 1e3:.1f}</td>"
                f"<td>{s.median * 1e3:.1f}{bar}</td>"
                f"<td>{s.iqr * 1e3:.2f}</td>"
                f"<td>{s.rel_iqr * 100:.1f}%</td>"
                f"<td>{len(s.outliers)}</td>"
                f"<td>{r.vcycles}</td><td>{conv}</td>"
                f"<td>{model}</td><td>{esc(r.status)}</td></tr>"
            )
        effect_rows = [
            f"<tr><td>{esc(e.axis)}</td><td>{esc(e.value)}</td>"
            f"<td>{esc(e.baseline_value)}</td>"
            f"<td>{e.delta_pct:+.1f}%</td><td>{e.pairs}</td>"
            f"<td>{e.noise_floor * 100:.1f}%</td>"
            f"<td>{'significant' if e.significant else 'within noise'}"
            "</td></tr>"
            for e in self.effects
        ]
        return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>sweep {esc(self.config.name)}</title>
<style>
body {{ font: 14px/1.4 system-ui, sans-serif; margin: 2em; color: #222; }}
h1 {{ font-size: 1.3em; }} h2 {{ font-size: 1.1em; margin-top: 1.5em; }}
table {{ border-collapse: collapse; width: 100%; }}
th, td {{ border: 1px solid #ccc; padding: 4px 8px; text-align: right;
  font-variant-numeric: tabular-nums; }}
th:first-child, td:first-child {{ text-align: left; font-family: monospace; }}
th {{ background: #f0f0f0; }}
td {{ position: relative; }}
.bar {{ position: absolute; left: 0; bottom: 0; height: 3px;
  background: #4a90d9; }}
tr.bad td {{ background: #fde8e8; }}
.meta {{ color: #666; }}
</style></head><body>
<h1>sweep '{esc(self.config.name)}' — {len(self.cells)} cells</h1>
<p class="meta">{esc(self.config.description)}</p>
<p class="meta">baseline cell <code>{esc(self.baseline_label)}</code>;
{self.rounds} interleaved rounds after {self.config.warmup} warmup
{"(quick mode)" if self.quick else ""}; schema v{SWEEP_SCHEMA_VERSION}</p>
<h2>cells</h2>
<table><tr><th>cell</th><th>min ms</th><th>median ms</th><th>IQR ms</th>
<th>rel IQR</th><th>outliers</th><th>V-cycles</th><th>conv. factor</th>
<th>model ms</th><th>status</th></tr>
{"".join(cell_rows)}
</table>
<h2>axis attribution (vs baseline)</h2>
<table><tr><th>axis</th><th>value</th><th>baseline</th><th>delta</th>
<th>pairs</th><th>noise floor</th><th>verdict</th></tr>
{"".join(effect_rows) or '<tr><td colspan="7">no matched pairs</td></tr>'}
</table>
</body></html>
"""


def run_sweep(
    config: SweepConfig,
    quick: bool = False,
    rounds: int | None = None,
    progress=None,
) -> SweepReport:
    """Expand and execute ``config``; return the full report.

    ``progress`` (e.g. ``print``) receives one line per cell as rounds
    complete.  Solves that diverge or fail record their status and a
    single sample rather than raising — a broken cell must not take
    the rest of the matrix down with it.
    """
    from repro.gmg import GMGSolver, SolverConfig
    from repro.gmg.solver import estimate_solve_time

    cells = expand(config)
    n_rounds = rounds or (config.quick_rounds if quick else config.rounds)
    samples: dict[int, list[float]] = {c.index: [] for c in cells}
    last_result: dict[int, object] = {}

    def one_run(cell: SweepCell) -> float:
        solver = GMGSolver(SolverConfig(**cell.solver_kwargs))
        t0 = time.perf_counter()
        result = solver.solve()
        dt = time.perf_counter() - t0
        last_result[cell.index] = result
        return dt

    for cell in cells:
        for _ in range(config.warmup):
            one_run(cell)
    for round_idx in range(n_rounds):
        for cell in cells:
            samples[cell.index].append(one_run(cell))
        if progress is not None:
            progress(
                f"  round {round_idx + 1}/{n_rounds} complete "
                f"({len(cells)} cells)"
            )

    results = []
    for cell in cells:
        result = last_result[cell.index]
        cf = result.convergence_factor
        model_ms = None
        if cell.machine is not None:
            from repro.machines import MACHINES

            try:
                model_ms = (
                    estimate_solve_time(
                        SolverConfig(**cell.solver_kwargs),
                        MACHINES[cell.machine],
                        max(result.num_vcycles, 1),
                    )
                    * 1e3
                )
            except (ValueError, KeyError):
                model_ms = None
        results.append(
            CellResult(
                cell=cell,
                samples=samples[cell.index],
                stats=SampleStats.from_samples(samples[cell.index]),
                status=result.status,
                vcycles=result.num_vcycles,
                convergence_factor=(
                    cf if cf is not None and math.isfinite(cf) else None
                ),
                model_ms=model_ms,
            )
        )
    return SweepReport(
        config=config,
        cells=results,
        effects=_axis_effects(config, results),
        rounds=n_rounds,
        quick=quick,
    )
