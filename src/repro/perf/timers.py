"""Cross-rank timing statistics in the paper's output format.

The artifact description shows per-operation, per-level timings as::

    level 0 applyOp [0.265012, 0.265184, 0.265346] (sigma: 9.20184e-05)

i.e. ``[min, avg, max]`` over ranks plus the standard deviation.  The
harness produces the same rows from per-rank simulated times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable


@dataclass(frozen=True)
class TimingStat:
    """``[min, avg, max]`` and sigma over per-rank samples."""

    min: float
    avg: float
    max: float
    stdev: float
    count: int

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "TimingStat":
        vals = [float(v) for v in samples]
        if not vals:
            raise ValueError("need at least one sample")
        n = len(vals)
        avg = sum(vals) / n
        var = sum((v - avg) ** 2 for v in vals) / n
        return cls(min=min(vals), avg=avg, max=max(vals), stdev=math.sqrt(var), count=n)

    def format(self) -> str:
        # the artifact spells out "sigma" (see the module docstring's
        # reproduced row), which also keeps rows ASCII-clean for
        # terminals and logs that mangle non-ASCII
        return (
            f"[{self.min:.6g}, {self.avg:.6g}, {self.max:.6g}] "
            f"(sigma: {self.stdev:.6g})"
        )


def format_level_timing(level: int, op: str, stat: TimingStat) -> str:
    """One output row in the artifact's format."""
    return f"level {level} {op} {stat.format()}"
