"""Instrumentation: operation and message accounting.

A :class:`Recorder` is threaded through the solver and the exchange
layer to count every kernel invocation (with its point count) and every
message (with its payload size and segment count).  Two consumers rely
on it:

* tests cross-check the performance harness's analytic operation/message
  counts against what the functional solver actually executed;
* the timed experiments price each recorded event with a machine model
  to produce the paper's figures.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass(frozen=True)
class KernelEvent:
    """One kernel invocation."""

    level: int
    op: str
    points: int


@dataclass(frozen=True)
class MessageEvent:
    """One point-to-point message within an exchange."""

    level: int
    nbytes: int
    direction_kind: str  # 'face' | 'edge' | 'corner'
    segments: int  # contiguous storage segments gathered to send
    self_message: bool  # single-rank periodic wrap (no NIC traversal)


#: Fault-event kinds: ``inject_*`` are produced by the fault injector,
#: ``detect_*`` by the detection layers (checksums, shape validation,
#: residual-loop health checks), and the rest by the recovery machinery.
FAULT_KINDS = (
    "inject_drop",
    "inject_corrupt",
    "inject_duplicate",
    "inject_delay",
    "inject_sdc",
    "inject_rank_crash",
    "detect_drop",
    "detect_corrupt",
    "detect_duplicate",
    "detect_delay",
    "detect_sdc",
    "detect_divergence",
    "detect_stagnation",
    "detect_rank_crash",
    "retry",
    "retransmit",
    "checkpoint",
    "buddy_checkpoint",
    "buddy_restore",
    "comm_repair",
    "global_restart",
    "rollback",
    "purge",
    "give_up",
)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, detection, or recovery action.

    ``level``/``rank``/``src``/``tag`` are ``-1`` when not applicable
    (e.g. a rollback is a solve-wide action, not a per-message one).
    ``attempt`` numbers retries within one receive (1-based) so the
    pricing layer can apply exponential backoff; ``nbytes`` sizes
    retransmissions and checkpoints for the same purpose.
    """

    kind: str
    vcycle: int = -1
    level: int = -1
    rank: int = -1
    src: int = -1
    tag: int = -1
    nbytes: int = 0
    attempt: int = 0
    detail: str = ""


@dataclass
class Recorder:
    """Accumulates kernel and message events for one solve.

    ``tracer`` is an optional :class:`repro.obs.tracer.Tracer`: every
    fault event is mirrored as a zero-duration trace instant, so
    injections, detections and recovery actions line up with the solve
    phase (exchange, smooth, rollback) that was open when they fired.
    All fault producers — the injector, the resilient exchange, the
    recovery driver — funnel through :meth:`fault`, so this one hook
    covers them all.
    """

    kernels: list[KernelEvent] = field(default_factory=list)
    messages: list[MessageEvent] = field(default_factory=list)
    exchanges: defaultdict = field(default_factory=lambda: defaultdict(int))
    reductions: int = 0
    faults: list[FaultEvent] = field(default_factory=list)
    tracer: object | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # event entry points
    # ------------------------------------------------------------------
    def kernel(self, level: int, op: str, points: int) -> None:
        self.kernels.append(KernelEvent(level, op, int(points)))

    def message(
        self,
        level: int,
        nbytes: int,
        direction_kind: str,
        segments: int = 1,
        self_message: bool = False,
    ) -> None:
        self.messages.append(
            MessageEvent(level, int(nbytes), direction_kind, segments, self_message)
        )

    def exchange(self, level: int) -> None:
        self.exchanges[level] += 1

    def reduction(self) -> None:
        self.reductions += 1

    def fault(
        self,
        kind: str,
        vcycle: int = -1,
        level: int = -1,
        rank: int = -1,
        src: int = -1,
        tag: int = -1,
        nbytes: int = 0,
        attempt: int = 0,
        detail: str = "",
    ) -> None:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}")
        self.faults.append(
            FaultEvent(kind, vcycle, level, rank, src, tag, nbytes, attempt, detail)
        )
        if self.tracer is not None:
            self.tracer.instant(
                f"fault:{kind}", vcycle=vcycle, level=level, rank=rank,
                src=src, tag=tag, nbytes=nbytes, attempt=attempt,
            )

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def kernel_counts(self) -> dict[tuple[int, str], int]:
        """``{(level, op): invocation count}``."""
        out: dict[tuple[int, str], int] = defaultdict(int)
        for ev in self.kernels:
            out[(ev.level, ev.op)] += 1
        return dict(out)

    def kernel_points(self) -> dict[tuple[int, str], int]:
        """``{(level, op): total points processed}``."""
        out: dict[tuple[int, str], int] = defaultdict(int)
        for ev in self.kernels:
            out[(ev.level, ev.op)] += ev.points
        return dict(out)

    def message_bytes_by_level(self) -> dict[int, int]:
        """Total message payload per level (self-messages included)."""
        out: dict[int, int] = defaultdict(int)
        for ev in self.messages:
            out[ev.level] += ev.nbytes
        return dict(out)

    def message_counts_by_level(self) -> dict[int, int]:
        out: dict[int, int] = defaultdict(int)
        for ev in self.messages:
            out[ev.level] += 1
        return dict(out)

    def exchange_counts(self) -> dict[int, int]:
        """``{level: number of exchange phases}``."""
        return dict(self.exchanges)

    def total_stencil_points(self, ops: tuple[str, ...] | None = None) -> int:
        """Total points across kernels (optionally restricted to ``ops``)."""
        return sum(
            ev.points for ev in self.kernels if ops is None or ev.op in ops
        )

    def fault_counts(self) -> dict[str, int]:
        """``{fault kind: event count}`` (kinds with zero events omitted)."""
        out: dict[str, int] = defaultdict(int)
        for ev in self.faults:
            out[ev.kind] += 1
        return dict(out)

    def faults_of(self, *kinds: str) -> list[FaultEvent]:
        """Fault events restricted to the given kinds."""
        return [ev for ev in self.faults if ev.kind in kinds]

    @property
    def injected_faults(self) -> int:
        return sum(1 for ev in self.faults if ev.kind.startswith("inject_"))

    @property
    def detected_faults(self) -> int:
        return sum(1 for ev in self.faults if ev.kind.startswith("detect_"))

    @property
    def retries(self) -> int:
        return sum(1 for ev in self.faults if ev.kind == "retry")

    @property
    def rollbacks(self) -> int:
        return sum(1 for ev in self.faults if ev.kind == "rollback")

    def clear(self) -> None:
        self.kernels.clear()
        self.messages.clear()
        self.exchanges.clear()
        self.reductions = 0
        self.faults.clear()
