"""Instrumentation: operation and message accounting.

A :class:`Recorder` is threaded through the solver and the exchange
layer to count every kernel invocation (with its point count) and every
message (with its payload size and segment count).  Two consumers rely
on it:

* tests cross-check the performance harness's analytic operation/message
  counts against what the functional solver actually executed;
* the timed experiments price each recorded event with a machine model
  to produce the paper's figures.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass(frozen=True)
class KernelEvent:
    """One kernel invocation."""

    level: int
    op: str
    points: int


@dataclass(frozen=True)
class MessageEvent:
    """One point-to-point message within an exchange."""

    level: int
    nbytes: int
    direction_kind: str  # 'face' | 'edge' | 'corner'
    segments: int  # contiguous storage segments gathered to send
    self_message: bool  # single-rank periodic wrap (no NIC traversal)


@dataclass
class Recorder:
    """Accumulates kernel and message events for one solve."""

    kernels: list[KernelEvent] = field(default_factory=list)
    messages: list[MessageEvent] = field(default_factory=list)
    exchanges: defaultdict = field(default_factory=lambda: defaultdict(int))
    reductions: int = 0

    # ------------------------------------------------------------------
    # event entry points
    # ------------------------------------------------------------------
    def kernel(self, level: int, op: str, points: int) -> None:
        self.kernels.append(KernelEvent(level, op, int(points)))

    def message(
        self,
        level: int,
        nbytes: int,
        direction_kind: str,
        segments: int = 1,
        self_message: bool = False,
    ) -> None:
        self.messages.append(
            MessageEvent(level, int(nbytes), direction_kind, segments, self_message)
        )

    def exchange(self, level: int) -> None:
        self.exchanges[level] += 1

    def reduction(self) -> None:
        self.reductions += 1

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def kernel_counts(self) -> dict[tuple[int, str], int]:
        """``{(level, op): invocation count}``."""
        out: dict[tuple[int, str], int] = defaultdict(int)
        for ev in self.kernels:
            out[(ev.level, ev.op)] += 1
        return dict(out)

    def kernel_points(self) -> dict[tuple[int, str], int]:
        """``{(level, op): total points processed}``."""
        out: dict[tuple[int, str], int] = defaultdict(int)
        for ev in self.kernels:
            out[(ev.level, ev.op)] += ev.points
        return dict(out)

    def message_bytes_by_level(self) -> dict[int, int]:
        """Total message payload per level (self-messages included)."""
        out: dict[int, int] = defaultdict(int)
        for ev in self.messages:
            out[ev.level] += ev.nbytes
        return dict(out)

    def message_counts_by_level(self) -> dict[int, int]:
        out: dict[int, int] = defaultdict(int)
        for ev in self.messages:
            out[ev.level] += 1
        return dict(out)

    def exchange_counts(self) -> dict[int, int]:
        """``{level: number of exchange phases}``."""
        return dict(self.exchanges)

    def total_stencil_points(self, ops: tuple[str, ...] | None = None) -> int:
        """Total points across kernels (optionally restricted to ``ops``)."""
        return sum(
            ev.points for ev in self.kernels if ops is None or ev.op in ops
        )

    def clear(self) -> None:
        self.kernels.clear()
        self.messages.clear()
        self.exchanges.clear()
        self.reductions = 0
