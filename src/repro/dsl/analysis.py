"""Static analysis of DSL stencils.

Extracts the quantities the code generator and the performance models
need:

* per-grid read offset sets and the overall stencil radius (drives the
  halo gather width);
* FLOPs per output point (every ``+ - * /`` on non-constant operands
  counts as one flop — constant folding such as ``Const*Const`` is
  excluded);
* compulsory memory traffic per point: 8 bytes for each distinct grid
  read plus 8 for each grid written, the same streaming/compulsory-miss
  convention behind the paper's Table IV;
* repeated subexpressions (the *array common subexpressions* the vector
  code generator buffers instead of recomputing).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.dsl.ast import BinOp, Const, ConstRef, Expr, GridRef, Stencil

ITEMSIZE = 8  # double precision throughout, as in the paper


def _walk(expr: Expr):
    """Yield every node of an expression tree (pre-order)."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, BinOp):
            stack.append(node.lhs)
            stack.append(node.rhs)


def offsets_by_grid(stencil: Stencil) -> dict[str, set[tuple[int, int, int]]]:
    """Read offsets used per input grid, over all assignments."""
    out: dict[str, set[tuple[int, int, int]]] = {}
    for a in stencil.assignments:
        for node in _walk(a.expr):
            if isinstance(node, GridRef):
                out.setdefault(node.grid, set()).add(node.offsets)
    return out


def stencil_radius(stencil: Stencil) -> int:
    """Maximum absolute read offset over all grids and dimensions."""
    radius = 0
    for offsets in offsets_by_grid(stencil).values():
        for o in offsets:
            radius = max(radius, max(abs(c) for c in o))
    return radius


def _is_const(expr: Expr) -> bool:
    return isinstance(expr, (Const, ConstRef))


def flops_per_point(stencil: Stencil) -> int:
    """Floating-point operations per output point.

    Operations between two compile-time/runtime constants are folded
    (not counted); everything else counts one flop per ``BinOp``.
    """
    flops = 0
    for a in stencil.assignments:
        for node in _walk(a.expr):
            if isinstance(node, BinOp) and not (
                _is_const(node.lhs) and _is_const(node.rhs)
            ):
                flops += 1
    return flops


def effective_flops_per_point(stencil: Stencil) -> int:
    """FLOPs per output point after array-CSE hoisting.

    The vector code generator computes each distinct subexpression once
    and reuses its buffer, so repeated subtrees — in particular a
    producer expression substituted at several consumer sites by kernel
    fusion (:mod:`repro.dsl.fusion`) — cost their flops once, not once
    per occurrence.  For a stencil with no repeated subexpressions this
    equals :func:`flops_per_point`.
    """
    seen: set[tuple] = set()
    flops = 0
    for a in stencil.assignments:
        for node in _walk(a.expr):
            if isinstance(node, BinOp) and not (
                _is_const(node.lhs) and _is_const(node.rhs)
            ):
                k = node.key()
                if k not in seen:
                    seen.add(k)
                    flops += 1
    return flops


def bytes_per_point(stencil: Stencil) -> int:
    """Compulsory DRAM traffic per output point, in bytes.

    Each distinct grid read streams in once (halo rereads amortise to
    zero for large grids) and each grid written streams out once.  A
    grid that is both read and written (e.g. ``x`` in ``smooth``)
    contributes to both.  This is the infinite-cache bound the paper's
    theoretical arithmetic intensities assume.
    """
    reads = set(offsets_by_grid(stencil))
    writes = set(stencil.output_grids)
    return ITEMSIZE * (len(reads) + len(writes))


def arithmetic_intensity(stencil: Stencil) -> float:
    """Theoretical FLOP:byte ratio (Table IV's quantity)."""
    return flops_per_point(stencil) / bytes_per_point(stencil)


def effective_arithmetic_intensity(stencil: Stencil) -> float:
    """FLOP:byte ratio as generated: CSE-deduplicated flops over the
    compulsory traffic.  For fused pipelines this is the figure the
    engine actually achieves — the intermediate grid never round-trips
    through DRAM as an input stream and shared subtrees compute once."""
    return effective_flops_per_point(stencil) / bytes_per_point(stencil)


def common_subexpressions(stencil: Stencil) -> list[tuple]:
    """Structural keys of non-trivial subexpressions used more than once.

    Grid references repeated across statements (``Ax`` and ``b`` in
    ``smooth+residual``) and repeated compound terms are returned in
    deterministic first-appearance order; the code generator hoists
    each into a buffer, mirroring BrickLib's array-common-subexpression
    reuse.
    """
    counts: Counter[tuple] = Counter()
    order: dict[tuple, int] = {}
    for a in stencil.assignments:
        for node in _walk(a.expr):
            if isinstance(node, (Const, ConstRef)):
                continue  # scalars are free; no buffer needed
            k = node.key()
            counts[k] += 1
            order.setdefault(k, len(order))
    repeated = [k for k, c in counts.items() if c > 1]
    repeated.sort(key=order.__getitem__)
    return repeated


@dataclass(frozen=True)
class StencilAnalysis:
    """All static properties of a stencil in one record."""

    name: str
    radius: int
    flops_per_point: int
    bytes_per_point: int
    arithmetic_intensity: float
    effective_flops_per_point: int
    effective_arithmetic_intensity: float
    input_grids: tuple[str, ...]
    output_grids: tuple[str, ...]
    halo_grids: tuple[str, ...]
    const_names: tuple[str, ...]
    offsets: dict[str, frozenset[tuple[int, int, int]]] = field(repr=False)

    @property
    def points_per_flop_denominator(self) -> int:  # pragma: no cover - alias
        return self.flops_per_point


def analyze(stencil: Stencil) -> StencilAnalysis:
    """Run all analyses over a stencil."""
    offsets = offsets_by_grid(stencil)
    halo = tuple(
        sorted(g for g, offs in offsets.items() if any(o != (0, 0, 0) for o in offs))
    )
    const_names = []
    for a in stencil.assignments:
        for node in _walk(a.expr):
            if isinstance(node, ConstRef) and node.name not in const_names:
                const_names.append(node.name)
    return StencilAnalysis(
        name=stencil.name,
        radius=stencil_radius(stencil),
        flops_per_point=flops_per_point(stencil),
        bytes_per_point=bytes_per_point(stencil),
        arithmetic_intensity=arithmetic_intensity(stencil),
        effective_flops_per_point=effective_flops_per_point(stencil),
        effective_arithmetic_intensity=effective_arithmetic_intensity(stencil),
        input_grids=tuple(sorted(offsets)),
        output_grids=stencil.output_grids,
        halo_grids=halo,
        const_names=tuple(const_names),
        offsets={g: frozenset(o) for g, o in offsets.items()},
    )
