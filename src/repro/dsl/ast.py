"""Expression AST for the stencil DSL.

The node types mirror the BrickLib DSL of the paper's Figure 1:
:class:`Index` (symbolic loop indices ``i, j, k``), :class:`Grid`
(named fields, referenced at shifted indices), :class:`ConstRef`
(runtime scalar parameters such as ``alpha``/``beta``/``gamma``) and
arithmetic combinations of these.  Every node exposes a structural
``key()`` used for common-subexpression detection and compile caching.
"""

from __future__ import annotations

from typing import Iterable, Union

Number = Union[int, float]


class Expr:
    """Base class for DSL expressions; provides operator overloading."""

    def key(self) -> tuple:
        """Structural identity used for CSE and compile caching."""
        raise NotImplementedError

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("+", self, _wrap(other))

    def __radd__(self, other: Number) -> "BinOp":
        return BinOp("+", _wrap(other), self)

    def __sub__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("-", self, _wrap(other))

    def __rsub__(self, other: Number) -> "BinOp":
        return BinOp("-", _wrap(other), self)

    def __mul__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("*", self, _wrap(other))

    def __rmul__(self, other: Number) -> "BinOp":
        return BinOp("*", _wrap(other), self)

    def __truediv__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("/", self, _wrap(other))

    def __rtruediv__(self, other: Number) -> "BinOp":
        return BinOp("/", _wrap(other), self)

    def __neg__(self) -> "BinOp":
        return BinOp("*", Const(-1.0), self)


def _wrap(value: "Expr | Number") -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(float(value))
    raise TypeError(f"cannot use {type(value).__name__} in a stencil expression")


class Const(Expr):
    """A literal numeric constant baked into the generated kernel."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def key(self) -> tuple:
        return ("const", self.value)

    def __repr__(self) -> str:
        return f"Const({self.value})"


class ConstRef(Expr):
    """A named runtime scalar parameter (e.g. ``alpha = -6/h**2``).

    The value is supplied when the compiled kernel is invoked, so one
    compiled kernel serves every multigrid level.
    """

    def __init__(self, name: str) -> None:
        if not name.isidentifier():
            raise ValueError(f"ConstRef name must be an identifier: {name!r}")
        self.name = name

    def key(self) -> tuple:
        return ("constref", self.name)

    def __repr__(self) -> str:
        return f"ConstRef({self.name!r})"


class BinOp(Expr):
    """A binary arithmetic operation."""

    OPS = ("+", "-", "*", "/")

    def __init__(self, op: str, lhs: Expr, rhs: Expr) -> None:
        if op not in self.OPS:
            raise ValueError(f"unsupported operator {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def key(self) -> tuple:
        return ("binop", self.op, self.lhs.key(), self.rhs.key())

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


class Index:
    """A symbolic loop index over one grid dimension (0, 1 or 2)."""

    def __init__(self, dim: int) -> None:
        if dim not in (0, 1, 2):
            raise ValueError(f"Index dimension must be 0, 1 or 2: {dim}")
        self.dim = dim
        self.offset = 0

    def shifted(self, delta: int) -> "Index":
        out = Index(self.dim)
        out.offset = self.offset + int(delta)
        return out

    def __add__(self, delta: int) -> "Index":
        return self.shifted(delta)

    def __sub__(self, delta: int) -> "Index":
        return self.shifted(-delta)

    def __repr__(self) -> str:
        base = "ijk"[self.dim]
        return base if self.offset == 0 else f"{base}{self.offset:+d}"


def indices() -> tuple[Index, Index, Index]:
    """Convenience: the three canonical indices ``i, j, k``."""
    return Index(0), Index(1), Index(2)


class Grid:
    """A named field; calling it at (shifted) indices yields a reference.

    ``rank`` is the number of dimensions (always 3 here, matching the
    paper's ``Grid("x", 3)`` declarations).
    """

    def __init__(self, name: str, rank: int = 3) -> None:
        if not name.isidentifier():
            raise ValueError(f"Grid name must be an identifier: {name!r}")
        if rank != 3:
            raise ValueError("only 3-D grids are supported")
        self.name = name
        self.rank = rank

    def __call__(self, i: Index, j: Index, k: Index) -> "GridRef":
        for want, got in zip((0, 1, 2), (i, j, k)):
            if not isinstance(got, Index) or got.dim != want:
                raise ValueError(
                    f"grid {self.name!r} must be indexed as (i, j, k) with "
                    "optional integer shifts"
                )
        return GridRef(self.name, (i.offset, j.offset, k.offset))

    def __repr__(self) -> str:
        return f"Grid({self.name!r})"


class GridRef(Expr):
    """A read of ``grid`` at a constant offset from the output point."""

    def __init__(self, grid: str, offsets: tuple[int, int, int]) -> None:
        self.grid = grid
        self.offsets = tuple(int(o) for o in offsets)

    def key(self) -> tuple:
        return ("grid", self.grid, self.offsets)

    def assign(self, expr: "Expr | Number") -> "Assignment":
        """Create an assignment statement targeting this reference.

        Only unshifted targets are supported, as in the paper's DSL
        (``output(i, j, k).assign(calc)``).
        """
        if self.offsets != (0, 0, 0):
            raise ValueError("assignment targets must be unshifted (i, j, k)")
        return Assignment(self, _wrap(expr))

    def __repr__(self) -> str:
        return f"{self.grid}{list(self.offsets)}"


class Assignment:
    """One statement: ``target(i, j, k) = expr``."""

    def __init__(self, target: GridRef, expr: Expr) -> None:
        self.target = target
        self.expr = expr

    def key(self) -> tuple:
        return ("assign", self.target.key(), self.expr.key())

    def __repr__(self) -> str:
        return f"{self.target!r} <- {self.expr!r}"


class Stencil:
    """A named group of assignments executed as one fused kernel.

    Multiple assignments model fused operations such as the V-cycle's
    ``smooth+residual``, which updates the solution and produces the
    residual in one pass.  Statement semantics are *simultaneous*: all
    right-hand sides are evaluated against pre-statement values before
    any target is written (the generated code enforces this).
    """

    def __init__(self, name: str, assignments: Iterable[Assignment]) -> None:
        self.name = name
        self.assignments = tuple(assignments)
        if not self.assignments:
            raise ValueError("a stencil needs at least one assignment")
        targets = [a.target.grid for a in self.assignments]
        if len(set(targets)) != len(targets):
            raise ValueError("each output grid may be assigned only once")
        # memoised: the structural key is immutable and recomputing it
        # walks the whole tree, which sits on the kernel-cache hot path
        self._key = ("stencil", tuple(a.key() for a in self.assignments))

    def key(self) -> tuple:
        return self._key

    @property
    def output_grids(self) -> tuple[str, ...]:
        return tuple(a.target.grid for a in self.assignments)

    def __repr__(self) -> str:
        return f"Stencil({self.name!r}, {len(self.assignments)} stmts)"
