"""Stencil DSL, analysis, and NumPy vector code generation.

This package is the Python analogue of BrickLib's domain-specific
stencil language and vector code generator (Fig. 1 of the paper).  A
stencil is written against symbolic indices and grids::

    i, j, k = indices()
    x, Ax = Grid("x"), Grid("Ax")
    alpha, beta = ConstRef("alpha"), ConstRef("beta")
    calc = alpha * x(i, j, k) + beta * (
        x(i + 1, j, k) + x(i - 1, j, k)
        + x(i, j + 1, k) + x(i, j - 1, k)
        + x(i, j, k + 1) + x(i, j, k - 1)
    )
    stencil = Stencil("applyOp", [Ax(i, j, k).assign(calc)])

and compiled to a vectorised NumPy kernel that operates on bricked
storage (:func:`repro.dsl.codegen.compile_stencil`).  The analysis
module extracts offsets, radius, FLOP counts and compulsory memory
traffic — the same quantities the paper's Table IV derives — and the
code generator performs common-subexpression elimination over the
expression DAG (the vector analogue of the *array common
subexpression* reuse described in Section III).
"""

from repro.dsl.ast import (
    Assignment,
    BinOp,
    Const,
    ConstRef,
    Expr,
    Grid,
    GridRef,
    Index,
    Stencil,
    indices,
)
from repro.dsl.analysis import (
    StencilAnalysis,
    analyze,
    arithmetic_intensity,
    bytes_per_point,
    flops_per_point,
    offsets_by_grid,
    stencil_radius,
)
from repro.dsl.codegen import CompiledKernel, compile_stencil, generate_source
from repro.dsl.library import (
    APPLY_OP,
    OPERATOR_INFO,
    RESIDUAL,
    SMOOTH,
    SMOOTH_RESIDUAL,
    OperatorInfo,
    theoretical_ai_table,
)

__all__ = [
    "Index",
    "indices",
    "Grid",
    "GridRef",
    "Const",
    "ConstRef",
    "BinOp",
    "Expr",
    "Assignment",
    "Stencil",
    "analyze",
    "StencilAnalysis",
    "offsets_by_grid",
    "stencil_radius",
    "flops_per_point",
    "bytes_per_point",
    "arithmetic_intensity",
    "generate_source",
    "compile_stencil",
    "CompiledKernel",
    "APPLY_OP",
    "SMOOTH",
    "SMOOTH_RESIDUAL",
    "RESIDUAL",
    "OperatorInfo",
    "OPERATOR_INFO",
    "theoretical_ai_table",
]
