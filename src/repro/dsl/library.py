"""The V-cycle's kernels expressed in the DSL, plus operator metadata.

The pointwise/stencil kernels (``applyOp``, ``smooth``,
``smooth+residual``, ``residual``) are full DSL stencils and are what
the solver executes (via :func:`repro.dsl.codegen.compile_stencil`).
The inter-grid operators (``restriction``,
``interpolation+increment``) couple two resolutions and are implemented
as dedicated operators in :mod:`repro.gmg.operators`; their
FLOP/traffic characteristics are recorded here as
:class:`OperatorInfo` so the performance models and the Table IV
reproduction treat all five V-cycle operations uniformly.

Model problem constants (Section IV-C): the 7-point constant-coefficient
Poisson operator has centre coefficient ``alpha = -6/h**2`` and
neighbour coefficient ``beta = 1/h**2``; the point-Jacobi smoother is
``x := x + gamma*(Ax - b)`` with ``gamma = h**2/12`` (damped Jacobi,
omega = 1/2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsl.analysis import analyze
from repro.dsl.ast import ConstRef, Grid, Stencil, indices
from repro.dsl.fusion import compose_stencils


def _build_apply_op() -> Stencil:
    i, j, k = indices()
    x, Ax = Grid("x"), Grid("Ax")
    alpha, beta = ConstRef("alpha"), ConstRef("beta")
    calc = alpha * x(i, j, k) + beta * (
        x(i + 1, j, k)
        + x(i - 1, j, k)
        + x(i, j + 1, k)
        + x(i, j - 1, k)
        + x(i, j, k + 1)
        + x(i, j, k - 1)
    )
    return Stencil("applyOp", [Ax(i, j, k).assign(calc)])


def _build_smooth() -> Stencil:
    i, j, k = indices()
    x, Ax, b = Grid("x"), Grid("Ax"), Grid("b")
    gamma = ConstRef("gamma")
    update = x(i, j, k) + gamma * Ax(i, j, k) - gamma * b(i, j, k)
    return Stencil("smooth", [x(i, j, k).assign(update)])


def _build_smooth_residual() -> Stencil:
    i, j, k = indices()
    x, Ax, b, r = Grid("x"), Grid("Ax"), Grid("b"), Grid("r")
    gamma = ConstRef("gamma")
    update = x(i, j, k) + gamma * Ax(i, j, k) - gamma * b(i, j, k)
    residual = b(i, j, k) - Ax(i, j, k)
    return Stencil(
        "smooth+residual",
        [x(i, j, k).assign(update), r(i, j, k).assign(residual)],
    )


def _build_residual() -> Stencil:
    i, j, k = indices()
    Ax, b, r = Grid("Ax"), Grid("b"), Grid("r")
    return Stencil("residual", [r(i, j, k).assign(b(i, j, k) - Ax(i, j, k))])


#: The 7-point constant-coefficient operator application (Fig. 1).
APPLY_OP = _build_apply_op()
#: Point-Jacobi update (bottom solver uses this without the residual).
SMOOTH = _build_smooth()
#: Fused Jacobi update + residual, the V-cycle's workhorse.
SMOOTH_RESIDUAL = _build_smooth_residual()
#: Residual only (used for the convergence check).
RESIDUAL = _build_residual()

#: Fused pipelines: one kernel, one halo gather/refresh per invocation.
#: All producer outputs are still stored, so each fused kernel is
#: bit-identical (in every field it touches) to running its stages
#: back to back — see :mod:`repro.dsl.fusion`.
FUSED_SMOOTH = compose_stencils("applyOp>smooth", (APPLY_OP, SMOOTH))
FUSED_SMOOTH_RESIDUAL = compose_stencils(
    "applyOp>smooth+residual", (APPLY_OP, SMOOTH_RESIDUAL)
)
FUSED_APPLY_RESIDUAL = compose_stencils("applyOp>residual", (APPLY_OP, RESIDUAL))

#: Fused stencil registry keyed by the unfused pipeline tail it replaces.
FUSED_STENCILS: dict[str, Stencil] = {
    "smooth": FUSED_SMOOTH,
    "smooth+residual": FUSED_SMOOTH_RESIDUAL,
    "residual": FUSED_APPLY_RESIDUAL,
}


@dataclass(frozen=True)
class OperatorInfo:
    """Per-point cost characteristics of one V-cycle operation.

    ``flops_per_point`` / ``bytes_per_point`` are normalised per output
    point of the operation's own index space (fine points for stencil
    ops, coarse points for the inter-grid ops, matching how the paper
    derives Table IV).  ``paper_ai`` is the value printed in Table IV
    for cross-checking; small differences come down to flop-counting
    conventions and are reported, not hidden, by the bench.
    """

    name: str
    flops_per_point: int
    bytes_per_point: int
    paper_ai: float
    reads_per_point: int
    writes_per_point: int
    has_halo: bool

    @property
    def arithmetic_intensity(self) -> float:
        return self.flops_per_point / self.bytes_per_point


def _info_from_stencil(stencil: Stencil, paper_ai: float) -> OperatorInfo:
    an = analyze(stencil)
    return OperatorInfo(
        name=an.name,
        flops_per_point=an.flops_per_point,
        bytes_per_point=an.bytes_per_point,
        paper_ai=paper_ai,
        reads_per_point=len(an.input_grids),
        writes_per_point=len(an.output_grids),
        has_halo=bool(an.halo_grids),
    )


#: Metadata for every V-cycle operation keyed by paper name.
#:
#: restriction: one coarse point averages 8 fine points — 7 adds and one
#: multiply per coarse point; traffic is 8 fine reads + 1 coarse write.
#: interpolation+increment: one coarse point increments 8 fine points —
#: 8 adds; traffic is 1 coarse read + 8 fine reads + 8 fine writes.
OPERATOR_INFO: dict[str, OperatorInfo] = {
    "applyOp": _info_from_stencil(APPLY_OP, paper_ai=0.50),
    "smooth": _info_from_stencil(SMOOTH, paper_ai=0.125),
    "smooth+residual": _info_from_stencil(SMOOTH_RESIDUAL, paper_ai=0.15),
    "restriction": OperatorInfo(
        name="restriction",
        flops_per_point=8,
        bytes_per_point=(8 + 1) * 8,
        paper_ai=0.11,
        reads_per_point=8,
        writes_per_point=1,
        has_halo=False,
    ),
    "interpolation+increment": OperatorInfo(
        name="interpolation+increment",
        flops_per_point=8,
        bytes_per_point=(1 + 8 + 8) * 8,
        paper_ai=0.06,
        reads_per_point=9,
        writes_per_point=8,
        has_halo=False,
    ),
}

#: Operation order used in the paper's tables.
VCYCLE_OPERATIONS = (
    "applyOp",
    "smooth",
    "smooth+residual",
    "restriction",
    "interpolation+increment",
)


def build_variable_coefficient_apply_op() -> Stencil:
    """A 7-point operator with spatially varying coefficients.

    The paper notes the DSL handles "larger stencils, non-constant
    coefficients, conditionals" (Section III); this builder exercises
    the non-constant-coefficient path: the centre coefficient ``c0``
    and the per-axis neighbour coefficients ``cx``/``cy``/``cz`` are
    grids read alongside ``x``.  Compulsory traffic is therefore
    5 reads + 1 write = 48 B/point — the extra streams that make
    HPGMG-FV's variable-coefficient kernels slower than the paper's
    constant-coefficient proxy.
    """
    i, j, k = indices()
    x, Ax = Grid("x"), Grid("Ax")
    c0, cx, cy, cz = Grid("c0"), Grid("cx"), Grid("cy"), Grid("cz")
    calc = (
        c0(i, j, k) * x(i, j, k)
        + cx(i, j, k) * (x(i + 1, j, k) + x(i - 1, j, k))
        + cy(i, j, k) * (x(i, j + 1, k) + x(i, j - 1, k))
        + cz(i, j, k) * (x(i, j, k + 1) + x(i, j, k - 1))
    )
    return Stencil("applyOpVariable", [Ax(i, j, k).assign(calc)])


def theoretical_ai_table() -> dict[str, tuple[float, float]]:
    """``{operation: (our theoretical AI, paper's Table IV value)}``."""
    return {
        name: (info.arithmetic_intensity, info.paper_ai)
        for name, info in OPERATOR_INFO.items()
    }


def fused_ai_table() -> dict[str, tuple[int, int, float]]:
    """Per fused pipeline: ``(effective flops/pt, bytes/pt, effective AI)``.

    The *effective* figures are CSE-deduplicated — the substituted
    ``applyOp`` subtree computes once however many consumer sites read
    it — and the byte count drops the intermediate's input stream, so
    the table quantifies exactly what fusion buys over the unfused
    pipeline (:func:`theoretical_ai_table` rows summed stage by stage).
    """
    out: dict[str, tuple[int, int, float]] = {}
    for stencil in FUSED_STENCILS.values():
        an = analyze(stencil)
        out[an.name] = (
            an.effective_flops_per_point,
            an.bytes_per_point,
            an.effective_arithmetic_intensity,
        )
    return out
