"""NumPy vector code generation for DSL stencils.

``generate_source`` turns a :class:`~repro.dsl.ast.Stencil` into the
source of a Python function that evaluates the stencil over *all*
bricks of a field in one batch of vectorised NumPy operations.  This
mirrors BrickLib's vector code generator:

* the brick dimensions are collapsed into NumPy's contiguous inner axes
  (the *vector folding* of Yount [31] — one logical vector spans the
  whole brick);
* repeated subexpressions are hoisted into buffers once and reused
  (*array common subexpression* elimination, Deitz et al. [33]);
* halo reads go through the extended per-brick blocks produced by
  :func:`repro.bricks.halo.gather_extended`, i.e. through the brick
  adjacency indirection rather than a padded array.

Statements are compute-then-store: every right-hand side is fully
evaluated before any output grid is written, so fused kernels such as
``smooth+residual`` see consistent pre-update values.
"""

from __future__ import annotations

import io

import numpy as np

from repro.bricks.bricked_array import BrickedArray
from repro.bricks.halo import gather_extended
from repro.dsl.analysis import StencilAnalysis, analyze, common_subexpressions
from repro.dsl.ast import BinOp, Const, ConstRef, Expr, GridRef, Stencil

_KERNEL_CACHE: dict[tuple, "CompiledKernel"] = {}


class _Emitter:
    """Expression-tree to NumPy-source translator with CSE hoisting."""

    def __init__(
        self,
        halo_grids: frozenset[str],
        radius: int,
        brick_dim: int,
        hoisted: set[tuple],
        lines: list[str],
    ) -> None:
        self.halo_grids = halo_grids
        self.radius = radius
        self.brick_dim = brick_dim
        self.hoisted = hoisted
        self.lines = lines
        self.defined: dict[tuple, str] = {}
        self._counter = 0

    def _temp(self) -> str:
        name = f"_t{self._counter}"
        self._counter += 1
        return name

    def _grid_slice(self, ref: GridRef) -> str:
        if ref.grid in self.halo_grids:
            r, B = self.radius, self.brick_dim
            parts = ", ".join(
                f"{r + o}:{r + o + B}" for o in ref.offsets
            )
            return f"bufs[{ref.grid!r}][:, {parts}]"
        if ref.offsets != (0, 0, 0):
            raise AssertionError(
                f"grid {ref.grid} read at {ref.offsets} but not marked as a halo grid"
            )
        return f"bufs[{ref.grid!r}]"

    def emit(self, node: Expr) -> str:
        """Return a source fragment for ``node``, hoisting CSE temps."""
        key = node.key()
        if key in self.defined:
            return self.defined[key]
        text = self._render(node)
        if key in self.hoisted:
            name = self._temp()
            self.lines.append(f"    {name} = {text}")
            self.defined[key] = name
            return name
        return text

    def _render(self, node: Expr) -> str:
        if isinstance(node, Const):
            return repr(node.value)
        if isinstance(node, ConstRef):
            return f"_c_{node.name}"
        if isinstance(node, GridRef):
            return self._grid_slice(node)
        if isinstance(node, BinOp):
            lhs = self.emit(node.lhs)
            rhs = self.emit(node.rhs)
            return f"({lhs} {node.op} {rhs})"
        raise TypeError(f"cannot generate code for {type(node).__name__}")


def generate_source(stencil: Stencil, brick_dim: int) -> str:
    """Generate the kernel source for ``stencil`` on ``brick_dim`` bricks.

    The generated function has signature ``kernel(bufs, consts, outs)``
    where ``bufs`` maps each input grid to its extended array (halo
    grids) or raw brick storage (pointwise grids), ``consts`` maps
    ``ConstRef`` names to scalars, and ``outs`` maps output grid names
    to raw brick storage written in place.
    """
    an = analyze(stencil)
    hoisted = set(common_subexpressions(stencil))
    lines: list[str] = []
    buf = io.StringIO()
    buf.write(f"def kernel(bufs, consts, outs):\n")
    buf.write(f'    """Generated from stencil {stencil.name!r}; do not edit."""\n')
    for cname in an.const_names:
        buf.write(f"    _c_{cname} = consts[{cname!r}]\n")

    emitter = _Emitter(
        halo_grids=frozenset(an.halo_grids),
        radius=an.radius,
        brick_dim=brick_dim,
        hoisted=hoisted,
        lines=lines,
    )
    rhs_fragments = []
    for idx, a in enumerate(stencil.assignments):
        frag = emitter.emit(a.expr)
        name = f"_rhs{idx}"
        lines.append(f"    {name} = {frag}")
        rhs_fragments.append(name)
    for line in lines:
        buf.write(line + "\n")
    for idx, a in enumerate(stencil.assignments):
        buf.write(f"    outs[{a.target.grid!r}][...] = _rhs{idx}\n")
    return buf.getvalue()


class CompiledKernel:
    """A DSL stencil compiled to a vectorised NumPy kernel.

    Instances carry the generated source (``.source``), the static
    analysis (``.analysis``), and an :meth:`apply` method that
    orchestrates the halo gather and runs the kernel over all bricks of
    the supplied fields.
    """

    def __init__(self, stencil: Stencil, brick_dim: int) -> None:
        self.stencil = stencil
        self.brick_dim = int(brick_dim)
        self.analysis: StencilAnalysis = analyze(stencil)
        if self.analysis.radius > brick_dim:
            raise ValueError(
                f"stencil radius {self.analysis.radius} exceeds brick "
                f"dimension {brick_dim}"
            )
        self.source = generate_source(stencil, brick_dim)
        namespace: dict = {"np": np}
        exec(compile(self.source, f"<stencil:{stencil.name}>", "exec"), namespace)
        self._fn = namespace["kernel"]

    def apply(
        self,
        fields: dict[str, BrickedArray],
        consts: dict[str, float] | None = None,
        workspace: dict | None = None,
    ) -> None:
        """Evaluate the stencil over every brick (interior and ghost).

        Parameters
        ----------
        fields:
            Maps every input and output grid name to its field.  All
            fields must share a grid with the kernel's brick dimension.
        consts:
            Values for the stencil's ``ConstRef`` parameters.
        workspace:
            Optional dict (owned by the caller) reused across calls to
            avoid reallocating extended halo buffers.
        """
        consts = consts or {}
        missing = [c for c in self.analysis.const_names if c not in consts]
        if missing:
            raise KeyError(f"missing constants for {self.stencil.name}: {missing}")
        needed = set(self.analysis.input_grids) | set(self.analysis.output_grids)
        absent = sorted(needed - set(fields))
        if absent:
            raise KeyError(f"missing fields for {self.stencil.name}: {absent}")

        grids = {f.grid for f in fields.values()}
        if len(grids) != 1:
            raise ValueError("all fields must share one BrickGrid")
        (grid,) = grids
        if grid.brick_dim != self.brick_dim:
            raise ValueError(
                f"kernel compiled for brick_dim={self.brick_dim}, fields have "
                f"{grid.brick_dim}"
            )

        r = self.analysis.radius
        bufs: dict[str, np.ndarray] = {}
        for g in self.analysis.input_grids:
            if g in self.analysis.halo_grids:
                ext = grid.brick_dim + 2 * r
                shape = (grid.num_slots, ext, ext, ext)
                dtype = fields[g].data.dtype
                buf = None
                if workspace is not None:
                    key = (g, shape, dtype)
                    buf = workspace.get(key)
                    if buf is None:
                        buf = np.empty(shape, dtype=dtype)
                        workspace[key] = buf
                bufs[g] = gather_extended(fields[g], r, out=buf)
            else:
                bufs[g] = fields[g].data
        outs = {g: fields[g].data for g in self.analysis.output_grids}
        self._fn(bufs, consts, outs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompiledKernel({self.stencil.name!r}, brick_dim={self.brick_dim})"


def compile_stencil(stencil: Stencil, brick_dim: int) -> CompiledKernel:
    """Compile (with caching) a stencil for a given brick dimension."""
    key = (stencil.key(), int(brick_dim))
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        kernel = CompiledKernel(stencil, brick_dim)
        _KERNEL_CACHE[key] = kernel
    return kernel
