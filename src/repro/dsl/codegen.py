"""NumPy vector code generation for DSL stencils.

``generate_source`` turns a :class:`~repro.dsl.ast.Stencil` into the
source of a Python function that evaluates the stencil over *all*
bricks of a field in one batch of vectorised NumPy operations.  This
mirrors BrickLib's vector code generator:

* the brick dimensions are collapsed into NumPy's contiguous inner axes
  (the *vector folding* of Yount [31] — one logical vector spans the
  whole brick);
* repeated subexpressions are hoisted into buffers once and reused
  (*array common subexpression* elimination, Deitz et al. [33]);
* halo reads go through the extended per-brick blocks produced by
  :func:`repro.bricks.halo.gather_extended`, i.e. through the brick
  adjacency indirection rather than a padded array.

Statements are compute-then-store: every right-hand side is fully
evaluated before any output grid is written, so fused kernels such as
``smooth+residual`` see consistent pre-update values.
"""

from __future__ import annotations

import contextlib
import io

import numpy as np

from repro.bricks.bricked_array import BrickedArray
from repro.bricks.halo import gather_extended
from repro.bricks.halo_plan import (
    gather_planned,
    offset_plan_for,
    plan_for,
    refresh_shell,
)
from repro.dsl.analysis import StencilAnalysis, analyze, common_subexpressions
from repro.dsl.ast import BinOp, Const, ConstRef, Expr, GridRef, Stencil

_KERNEL_CACHE: dict[tuple, "CompiledKernel"] = {}

#: reusable no-op context for untraced split applies
_NULL_CTX = contextlib.nullcontext()


class _Emitter:
    """Expression-tree to NumPy-source translator with CSE hoisting."""

    def __init__(
        self,
        halo_grids: frozenset[str],
        radius: int,
        brick_dim: int,
        hoisted: set[tuple],
        lines: list[str],
        offset_reads: bool = False,
    ) -> None:
        self.halo_grids = halo_grids
        self.radius = radius
        self.brick_dim = brick_dim
        self.hoisted = hoisted
        self.lines = lines
        self.offset_reads = offset_reads
        self.defined: dict[tuple, str] = {}
        self._counter = 0

    def _temp(self) -> str:
        name = f"_t{self._counter}"
        self._counter += 1
        return name

    def _grid_slice(self, ref: GridRef) -> str:
        if ref.grid in self.halo_grids:
            if self.offset_reads:
                return f"bufs[{offset_buf_name(ref.grid, ref.offsets)!r}]"
            r, B = self.radius, self.brick_dim
            parts = ", ".join(
                f"{r + o}:{r + o + B}" for o in ref.offsets
            )
            return f"bufs[{ref.grid!r}][:, {parts}]"
        if ref.offsets != (0, 0, 0):
            raise AssertionError(
                f"grid {ref.grid} read at {ref.offsets} but not marked as a halo grid"
            )
        return f"bufs[{ref.grid!r}]"

    def emit(self, node: Expr) -> str:
        """Return a source fragment for ``node``, hoisting CSE temps."""
        key = node.key()
        if key in self.defined:
            return self.defined[key]
        text = self._render(node)
        if key in self.hoisted:
            name = self._temp()
            self.lines.append(f"    {name} = {text}")
            self.defined[key] = name
            return name
        return text

    def _render(self, node: Expr) -> str:
        if isinstance(node, Const):
            return repr(node.value)
        if isinstance(node, ConstRef):
            return f"_c_{node.name}"
        if isinstance(node, GridRef):
            return self._grid_slice(node)
        if isinstance(node, BinOp):
            lhs = self.emit(node.lhs)
            rhs = self.emit(node.rhs)
            return f"({lhs} {node.op} {rhs})"
        raise TypeError(f"cannot generate code for {type(node).__name__}")


def offset_buf_name(grid: str, offsets: tuple[int, int, int]) -> str:
    """``bufs`` key of one grid's contiguous per-offset block."""
    return f"{grid}@{offsets[0]},{offsets[1]},{offsets[2]}"


def generate_source(
    stencil: Stencil, brick_dim: int, offset_reads: bool = False
) -> str:
    """Generate the kernel source for ``stencil`` on ``brick_dim`` bricks.

    The generated function has signature ``kernel(bufs, consts, outs)``
    where ``bufs`` maps each input grid to its extended array (halo
    grids) or raw brick storage (pointwise grids), ``consts`` maps
    ``ConstRef`` names to scalars, and ``outs`` maps output grid names
    to raw brick storage written in place.

    With ``offset_reads`` each halo-grid read instead targets a
    contiguous per-offset block (key :func:`offset_buf_name`) supplied
    by an :class:`~repro.bricks.halo_plan.OffsetGatherPlan` — same
    values, same operation order, contiguous operands.
    """
    an = analyze(stencil)
    hoisted = set(common_subexpressions(stencil))
    lines: list[str] = []
    buf = io.StringIO()
    buf.write("def kernel(bufs, consts, outs):\n")
    buf.write(f'    """Generated from stencil {stencil.name!r}; do not edit."""\n')
    for cname in an.const_names:
        buf.write(f"    _c_{cname} = consts[{cname!r}]\n")

    emitter = _Emitter(
        halo_grids=frozenset(an.halo_grids),
        radius=an.radius,
        brick_dim=brick_dim,
        hoisted=hoisted,
        lines=lines,
        offset_reads=offset_reads,
    )
    rhs_fragments = []
    for idx, a in enumerate(stencil.assignments):
        frag = emitter.emit(a.expr)
        name = f"_rhs{idx}"
        lines.append(f"    {name} = {frag}")
        rhs_fragments.append(name)
    for line in lines:
        buf.write(line + "\n")
    for idx, a in enumerate(stencil.assignments):
        buf.write(f"    outs[{a.target.grid!r}][...] = _rhs{idx}\n")
    return buf.getvalue()


class CompiledKernel:
    """A DSL stencil compiled to a vectorised NumPy kernel.

    Instances carry the generated source (``.source``), the static
    analysis (``.analysis``), and an :meth:`apply` method that
    orchestrates the halo gather and runs the kernel over all bricks of
    the supplied fields.
    """

    def __init__(self, stencil: Stencil, brick_dim: int) -> None:
        self.stencil = stencil
        self.brick_dim = int(brick_dim)
        self.analysis: StencilAnalysis = analyze(stencil)
        if self.analysis.radius > brick_dim:
            raise ValueError(
                f"stencil radius {self.analysis.radius} exceeds brick "
                f"dimension {brick_dim}"
            )
        self.source = generate_source(stencil, brick_dim)
        self._fn = self._compile(self.source)
        #: offset-read variant for planned fields: every halo operand is
        #: a contiguous per-offset block instead of an extended slice
        self.offset_source = generate_source(stencil, brick_dim, offset_reads=True)
        self._offset_fn = self._compile(self.offset_source)
        #: deterministic per-grid read offsets driving the gather plans,
        #: with their bufs keys precomputed ((offset, key) rows; the
        #: centre read, if any, is split out — it may alias storage)
        self._offset_rows = {}
        for g in self.analysis.halo_grids:
            offs = tuple(sorted(self.analysis.offsets[g]))
            planned = tuple(o for o in offs if o != (0, 0, 0))
            self._offset_rows[g] = (
                (0, 0, 0) in offs,
                offset_buf_name(g, (0, 0, 0)),
                planned,
                tuple(offset_buf_name(g, o) for o in planned),
            )
        #: every grid apply() must be handed (hot-path validation list)
        self._needed_grids = tuple(
            dict.fromkeys(self.analysis.input_grids + self.analysis.output_grids)
        )

    def _compile(self, source: str):
        namespace: dict = {"np": np}
        exec(compile(source, f"<stencil:{self.stencil.name}>", "exec"), namespace)
        return namespace["kernel"]

    def apply(
        self,
        fields: dict[str, BrickedArray],
        consts: dict[str, float] | None = None,
        workspace: dict | None = None,
    ) -> None:
        """Evaluate the stencil over every brick (interior and ghost).

        Parameters
        ----------
        fields:
            Maps every input and output grid name to its field.  All
            fields must share a grid with the kernel's brick dimension.
        consts:
            Values for the stencil's ``ConstRef`` parameters.
        workspace:
            Optional dict (owned by the caller) reused across calls to
            avoid reallocating extended halo buffers.
        """
        consts = consts or {}
        grid = self._validate(fields, consts)

        r = self.analysis.radius
        halo = self.analysis.halo_grids
        use_offsets = bool(halo) and all(
            fields[g].planned_gather and self._offset_ready(fields[g])
            for g in halo
        )
        bufs: dict[str, np.ndarray] = {}
        for g in self.analysis.input_grids:
            f = fields[g]
            if g in halo:
                if use_offsets:
                    self._offset_bufs(g, f, grid, workspace, bufs)
                    continue
                if f.has_resident_halo and f.halo_radius == r:
                    # halo-resident layout: the extended storage IS the
                    # kernel buffer — copy only the 26 shell regions
                    refresh_shell(f)
                    bufs[g] = f.ext_data
                    continue
                ext = grid.brick_dim + 2 * r
                shape = (grid.num_slots, ext, ext, ext)
                dtype = f.data.dtype
                buf = None
                if workspace is not None:
                    key = (g, shape, dtype)
                    buf = workspace.get(key)
                    if buf is None:
                        buf = np.empty(shape, dtype=dtype)
                        workspace[key] = buf
                if f.planned_gather:
                    bufs[g] = gather_planned(f, r, out=buf)
                else:
                    bufs[g] = gather_extended(f, r, out=buf)
            else:
                bufs[g] = f.data
        outs = {g: fields[g].data for g in self.analysis.output_grids}
        if use_offsets:
            self._offset_fn(bufs, consts, outs)
        else:
            self._fn(bufs, consts, outs)

    def apply_split(
        self,
        fields: dict[str, BrickedArray],
        consts: dict[str, float] | None = None,
        workspace: dict | None = None,
        *,
        partition,
        barrier,
        tracer=None,
        level: int | None = None,
    ) -> None:
        """Evaluate the stencil in two passes around a halo barrier.

        The *interior* pass (``partition.interior`` — bricks whose
        stencil footprint reads only owned bricks) is computed into
        scratch buffers while the halo exchange is still in flight;
        ``barrier()`` (typically ``HaloExchange.finish``) then completes
        the exchange, and the *shell* pass evaluates the remaining
        bricks against the fresh ghost values.  Both passes' results are
        stored only after the shell compute, so read-write grids (e.g.
        ``x`` in fused smoothers) are never observed half-updated —
        exactly the compute-then-store discipline of :meth:`apply`,
        stretched across the barrier.

        Each pass evaluates the same expression tree per element as the
        full-grid kernel, so the result is bit-identical to
        ``exchange(); apply()``.
        """
        consts = consts or {}
        grid = self._validate(fields, consts)
        if partition.num_slots != grid.num_slots:
            raise ValueError(
                f"partition covers {partition.num_slots} slots, grid has "
                f"{grid.num_slots}"
            )

        def span(name: str, n: int):
            if tracer is None:
                return _NULL_CTX
            attrs = {"slots": n}
            if level is not None:
                attrs["l"] = level
            return tracer.span(name, **attrs)

        interior, shell = partition.interior, partition.shell
        with span("interior", int(interior.size)):
            pre = self._compute_subset(fields, consts, workspace, partition, "interior")
        barrier()
        with span("shell", int(shell.size)):
            post = self._compute_subset(fields, consts, workspace, partition, "shell")
            for g in self.analysis.output_grids:
                out = fields[g].data
                if shell.size:
                    out[shell] = post[g]
                if interior.size:
                    out[interior] = pre[g]

    def _compute_subset(
        self,
        fields: dict[str, BrickedArray],
        consts: dict[str, float],
        workspace: dict | None,
        partition,
        which: str,
    ) -> dict[str, np.ndarray]:
        """Run the kernel over one pass's slots into scratch outputs.

        Operand gathers are restricted to the subset through the
        partition's cached index tables; values per slot are identical
        to the full-grid gathers, so the pass computes exactly the
        full kernel's results for its slots.
        """
        sel = partition.select(which)
        n = int(sel.size)
        r = self.analysis.radius
        halo = self.analysis.halo_grids
        use_offsets = bool(halo) and all(
            fields[g].planned_gather and self._offset_ready(fields[g])
            for g in halo
        )
        bufs: dict[str, np.ndarray] = {}
        for g in self.analysis.input_grids:
            f = fields[g]
            if g in halo:
                if use_offsets:
                    self._offset_bufs_subset(g, f, workspace, bufs, partition, which)
                else:
                    bufs[g] = self._gather_subset(g, f, r, workspace, partition, which)
            else:
                bufs[g] = f.data[sel]
        B = self.brick_dim
        outs: dict[str, np.ndarray] = {}
        for g in self.analysis.output_grids:
            dtype = fields[g].data.dtype
            buf = None
            if workspace is not None:
                key = (g, "split-out", which, n, dtype)
                buf = workspace.get(key)
            if buf is None:
                buf = np.empty((n, B, B, B), dtype=dtype)
                if workspace is not None:
                    workspace[key] = buf
            outs[g] = buf
        if n:
            if use_offsets:
                self._offset_fn(bufs, consts, outs)
            else:
                self._fn(bufs, consts, outs)
        return outs

    def _offset_bufs_subset(
        self,
        g: str,
        f: BrickedArray,
        workspace: dict | None,
        bufs: dict[str, np.ndarray],
        partition,
        which: str,
    ) -> None:
        """Subset variant of :meth:`_offset_bufs`: per-offset blocks
        restricted to one pass's slots, one ``np.take`` per grid."""
        has_center, center_key, planned, planned_keys = self._offset_rows[g]
        sel = partition.select(which)
        source = self._packed_source(g, f, workspace)
        if has_center:
            bufs[center_key] = source[sel]
        if not planned:
            return
        plan = offset_plan_for(f.grid, planned, 0)
        table = partition.offset_subset(plan, which)
        n = int(sel.size)
        block = None
        if workspace is not None:
            bkey = (g, "split-offsets", which, len(planned), n, f.dtype)
            block = workspace.get(bkey)
        if block is None:
            block = np.empty(
                (len(planned), n) + (self.brick_dim,) * 3, dtype=f.dtype
            )
            if workspace is not None:
                workspace[bkey] = block
        if n:
            np.take(
                source.reshape(-1),
                table,
                out=block.reshape(len(planned), n, -1),
                mode="clip",
            )
        for k, key in enumerate(planned_keys):
            bufs[key] = block[k]

    def _gather_subset(
        self,
        g: str,
        f: BrickedArray,
        r: int,
        workspace: dict | None,
        partition,
        which: str,
    ) -> np.ndarray:
        """Extended-block gather restricted to one pass's slots.

        Sources the packed interior view (never the resident shell), so
        the values match a full :class:`HaloPlan` gather row-for-row —
        which is itself bit-identical to ``gather_extended``.
        """
        plan = plan_for(f.grid, r)
        sel = partition.select(which)
        n = int(sel.size)
        E = plan.ext
        data = f.data
        buf = None
        if workspace is not None:
            key = (g, "split-ext", which, n, E, data.dtype)
            buf = workspace.get(key)
        if buf is None:
            buf = np.empty((n, E, E, E), dtype=data.dtype)
            if workspace is not None:
                workspace[key] = buf
        if n == 0:
            return buf
        flat, nbr = partition.halo_subset(plan, which)
        if data.flags.c_contiguous:
            np.take(data.reshape(-1), flat, out=buf.reshape(n, -1))
        else:
            buf.reshape(n, -1)[...] = data.reshape(data.shape[0], -1)[
                nbr, plan.cell_all
            ]
        return buf

    def _validate(self, fields: dict[str, BrickedArray], consts: dict):
        """Shared apply/apply_split argument checks; returns the grid."""
        missing = [c for c in self.analysis.const_names if c not in consts]
        if missing:
            raise KeyError(f"missing constants for {self.stencil.name}: {missing}")
        absent = sorted(g for g in self._needed_grids if g not in fields)
        if absent:
            raise KeyError(f"missing fields for {self.stencil.name}: {absent}")
        grid = None
        for f in fields.values():
            if grid is None:
                grid = f.grid
            elif f.grid is not grid:
                raise ValueError("all fields must share one BrickGrid")
        if grid.brick_dim != self.brick_dim:
            raise ValueError(
                f"kernel compiled for brick_dim={self.brick_dim}, fields have "
                f"{grid.brick_dim}"
            )
        return grid

    @staticmethod
    def _offset_ready(f: BrickedArray) -> bool:
        """Planned per-offset gathers need a flat (contiguous) source."""
        if f.has_resident_halo:
            return f.ext_data.flags.c_contiguous
        return f.data.flags.c_contiguous

    def _offset_bufs(
        self,
        g: str,
        f: BrickedArray,
        grid,
        workspace: dict | None,
        bufs: dict[str, np.ndarray],
    ) -> None:
        """Materialise contiguous per-offset blocks for one halo grid.

        One ``np.take`` per grid; for halo-resident fields the take
        sources neighbour *interiors* of the extended storage directly,
        so the shell never needs refreshing on this path.  For packed
        fields the centre block is the field's own storage — no copy.
        """
        has_center, center_key, planned, planned_keys = self._offset_rows[g]
        source = self._packed_source(g, f, workspace)
        if has_center:
            bufs[center_key] = source
        if not planned:
            return
        plan = offset_plan_for(f.grid, planned, 0)
        block = None
        if workspace is not None:
            bkey = (g, "offsets", len(planned), f.data.shape, f.dtype)
            block = workspace.get(bkey)
            if block is None:
                block = np.empty((len(planned),) + f.data.shape, dtype=f.dtype)
                workspace[bkey] = block
        block = plan.gather(source, out=block)
        for k, key in enumerate(planned_keys):
            bufs[key] = block[k]

    @staticmethod
    def _packed_source(g: str, f: BrickedArray, workspace: dict | None):
        """Contiguous packed source for per-offset gathers.

        Halo-resident fields re-pack the (strided) interior once: the
        per-offset take then streams from a compact contiguous source,
        which beats both extended-slice operands and an ext-sourced
        take.  Packed fields are their own source — no copy.
        """
        if not f.has_resident_halo:
            return f.data
        source = None
        if workspace is not None:
            key = (g, "packed", f.data.shape, f.dtype)
            source = workspace.get(key)
            if source is None:
                source = np.empty(f.data.shape, dtype=f.dtype)
                workspace[key] = source
        else:
            source = np.empty(f.data.shape, dtype=f.dtype)
        np.copyto(source, f.data)
        return source

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompiledKernel({self.stencil.name!r}, brick_dim={self.brick_dim})"


def compile_stencil(stencil: Stencil, brick_dim: int) -> CompiledKernel:
    """Compile (with caching) a stencil for a given brick dimension.

    Two cache layers: a per-object dict on the stencil (hot path — no
    hashing of the structural key, which for fused pipelines is large)
    and the global structural-key cache, so congruent stencil objects
    still share one compiled kernel.
    """
    cache = stencil.__dict__.get("_kernels")
    if cache is None:
        cache = stencil._kernels = {}
    kernel = cache.get(brick_dim)
    if kernel is None:
        key = (stencil.key(), int(brick_dim))
        kernel = _KERNEL_CACHE.get(key)
        if kernel is None:
            kernel = CompiledKernel(stencil, brick_dim)
            _KERNEL_CACHE[key] = kernel
        cache[brick_dim] = kernel
    return kernel
