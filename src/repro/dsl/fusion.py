"""Codegen-level stencil fusion: compose a pipeline into one kernel.

The V-cycle's smoothing step is a two-kernel pipeline — ``applyOp``
produces ``Ax``, then ``smooth``/``smooth+residual`` consumes it — and
each kernel invocation pays its own halo gather of ``x``.
:func:`compose_stencils` fuses such a pipeline at the expression level:
every pointwise read of a producer's output grid is replaced by the
producer's right-hand-side expression, yielding a single
:class:`~repro.dsl.ast.Stencil` that the existing vector code generator
compiles into *one* kernel with *one* gather (or shell refresh) per
invocation.

Two properties make the fusion bit-identical to the unfused pipeline:

* the substituted subtree is structurally identical at every site, so
  the generator's array-CSE hoisting computes it exactly once, with the
  same sequence of NumPy binary operations the standalone producer
  kernel performs — identical floating-point results;
* the producer's own assignments are *kept* (its outputs are still
  stored), so the observable field state (``Ax`` included) matches the
  unfused execution byte for byte.

Reads of a produced grid at a non-zero offset are rejected: they would
require the halo of an intermediate that exists only as an expression.
That is precisely the fusion boundary of the paper's pipeline — the
smoothers read ``Ax``/``b`` pointwise, so the whole
``applyOp -> smooth -> residual`` chain fuses.
"""

from __future__ import annotations

from typing import Iterable

from repro.dsl.ast import Assignment, BinOp, Expr, GridRef, Stencil


def _substitute(expr: Expr, produced: dict[str, Expr]) -> Expr:
    """Replace pointwise reads of produced grids with their expressions.

    Returns ``expr`` itself when nothing changes, so shared subtrees
    stay shared (keeping structural keys — and therefore CSE — stable).
    """
    if isinstance(expr, GridRef):
        replacement = produced.get(expr.grid)
        if replacement is None:
            return expr
        if expr.offsets != (0, 0, 0):
            raise ValueError(
                f"cannot fuse: grid {expr.grid!r} is produced upstream but "
                f"read at offset {expr.offsets} — the intermediate's halo "
                "does not exist inside a fused kernel"
            )
        return replacement
    if isinstance(expr, BinOp):
        lhs = _substitute(expr.lhs, produced)
        rhs = _substitute(expr.rhs, produced)
        if lhs is expr.lhs and rhs is expr.rhs:
            return expr
        return BinOp(expr.op, lhs, rhs)
    return expr  # Const / ConstRef


def compose_stencils(name: str, stencils: Iterable[Stencil]) -> Stencil:
    """Fuse an ordered pipeline of stencils into a single stencil.

    Each stencil's pointwise reads of grids assigned by *earlier*
    stencils in the pipeline are replaced by the (already-substituted)
    defining expressions, so dataflow through intermediates becomes
    expression nesting.  All assignments are retained, in pipeline
    order — every output of every stage is still stored, which keeps
    the fused kernel's observable effect identical to running the
    stages back to back.
    """
    pipeline = tuple(stencils)
    if len(pipeline) < 2:
        raise ValueError("fusion needs at least two stencils")
    produced: dict[str, Expr] = {}
    assignments: list[Assignment] = []
    for stencil in pipeline:
        for a in stencil.assignments:
            target = a.target.grid
            if target in produced:
                raise ValueError(
                    f"cannot fuse: grid {target!r} is assigned by more than "
                    "one pipeline stage"
                )
            rhs = _substitute(a.expr, produced)
            assignments.append(a.target.assign(rhs))
            produced[target] = rhs
    return Stencil(name, assignments)
