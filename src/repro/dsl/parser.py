"""Parse the paper's textual DSL format (Figure 1) into a Stencil.

The paper specifies stencils in a Python-syntax DSL::

    # Declare indices
    i = Index(0)
    j = Index(1)
    k = Index(2)
    # Declare grid
    input = Grid("x", 3)
    output = Grid("Ax", 3)
    alpha = ConstRef("MPI_ALPHA")
    beta = ConstRef("MPI_BETA")

    # Express computation
    calc = alpha * input(i, j, k) + \\
        beta * input(i + 1, j, k) + \\
        beta * input(i - 1, j, k) + \\
        beta * input(i, j + 1, k) + \\
        beta * input(i, j - 1, k) + \\
        beta * input(i, j, k + 1) + \\
        beta * input(i, j, k - 1)
    output(i, j, k).assign(calc)

``parse_dsl`` executes such a program in a *sandboxed* namespace
containing only the DSL vocabulary (``Index``, ``Grid``, ``ConstRef``
and arithmetic) and collects every ``assign`` into a
:class:`~repro.dsl.ast.Stencil`.  Python's own parser does the syntax
work; a whitelist walk over the syntax tree rejects anything outside
the DSL subset (imports, calls to unknown names, attribute access other
than ``.assign``, statements with side effects), so pasting the paper's
figure verbatim works and nothing else does.
"""

from __future__ import annotations

import ast as python_ast

from repro.dsl.ast import Assignment, ConstRef, Grid, GridRef, Index, Stencil

_ALLOWED_CALLS = {"Index", "Grid", "ConstRef"}
_ALLOWED_BINOPS = (
    python_ast.Add,
    python_ast.Sub,
    python_ast.Mult,
    python_ast.Div,
)


class DslSyntaxError(ValueError):
    """The source uses constructs outside the Figure 1 DSL subset."""


def _check_node(node: python_ast.AST) -> None:
    """Whitelist validation of one statement's syntax tree."""
    for sub in python_ast.walk(node):
        if isinstance(
            sub,
            (
                python_ast.Import,
                python_ast.ImportFrom,
                python_ast.FunctionDef,
                python_ast.AsyncFunctionDef,
                python_ast.ClassDef,
                python_ast.While,
                python_ast.For,
                python_ast.If,
                python_ast.With,
                python_ast.Lambda,
                python_ast.Starred,
                python_ast.Subscript,
                python_ast.Dict,
                python_ast.ListComp,
                python_ast.GeneratorExp,
            ),
        ):
            raise DslSyntaxError(
                f"construct not allowed in the stencil DSL: "
                f"{type(sub).__name__}"
            )
        if isinstance(sub, python_ast.Attribute) and sub.attr != "assign":
            raise DslSyntaxError(
                f"only the .assign(...) method exists in the DSL, "
                f"not .{sub.attr}"
            )
        if isinstance(sub, python_ast.BinOp) and not isinstance(
            sub.op, _ALLOWED_BINOPS
        ):
            raise DslSyntaxError(
                f"operator not allowed: {type(sub.op).__name__}"
            )
        if isinstance(sub, python_ast.Call):
            fn = sub.func
            # calls are either declarations/grid reads by plain name
            # (Index/Grid/ConstRef/<grid>) or the .assign method; the
            # sandboxed namespace rejects unknown names at evaluation
            ok = isinstance(fn, python_ast.Name) or (
                isinstance(fn, python_ast.Attribute) and fn.attr == "assign"
            )
            if not ok:
                raise DslSyntaxError(
                    "only DSL declarations and grid reads may be called"
                )


class _Collector:
    """Captures the ``assign`` calls a DSL program makes."""

    def __init__(self) -> None:
        self.assignments: list[Assignment] = []


def parse_dsl(source: str, name: str = "stencil") -> Stencil:
    """Parse Figure 1-style DSL source into a :class:`Stencil`.

    Every top-level ``<grid>(i, j, k).assign(expr)`` expression becomes
    one statement of the stencil, in program order.
    """
    try:
        tree = python_ast.parse(source)
    except SyntaxError as exc:
        raise DslSyntaxError(f"not valid DSL syntax: {exc}") from exc

    for node in tree.body:
        if not isinstance(node, (python_ast.Assign, python_ast.Expr)):
            raise DslSyntaxError(
                f"only assignments and expressions are allowed at the top "
                f"level, got {type(node).__name__}"
            )
        _check_node(node)

    collector = _Collector()
    original_assign = GridRef.assign

    def capturing_assign(self: GridRef, expr) -> Assignment:
        assignment = original_assign(self, expr)
        collector.assignments.append(assignment)
        return assignment

    namespace = {
        "__builtins__": {},
        "Index": Index,
        "Grid": Grid,
        "ConstRef": ConstRef,
    }
    GridRef.assign = capturing_assign  # type: ignore[method-assign]
    try:
        exec(compile(tree, "<dsl>", "exec"), namespace)
    except DslSyntaxError:
        raise
    except Exception as exc:
        raise DslSyntaxError(f"DSL program failed to evaluate: {exc}") from exc
    finally:
        GridRef.assign = original_assign  # type: ignore[method-assign]

    if not collector.assignments:
        raise DslSyntaxError("the DSL program never called .assign(...)")
    return Stencil(name, collector.assignments)


#: The paper's Figure 1 program, verbatim modulo the ``MPI_`` constant
#: prefixes (kept as plain names here).
PAPER_FIGURE_1 = """\
# Declare indices
i = Index(0)
j = Index(1)
k = Index(2)
# Declare grid
input = Grid("x", 3)
output = Grid("Ax", 3)
alpha = ConstRef("alpha")
beta = ConstRef("beta")

# Express computation
# output[i, j, k] is assumed
calc = alpha * input(i, j, k) + \\
    beta * input(i + 1, j, k) + \\
    beta * input(i - 1, j, k) + \\
    beta * input(i, j + 1, k) + \\
    beta * input(i, j - 1, k) + \\
    beta * input(i, j, k + 1) + \\
    beta * input(i, j, k - 1)
output(i, j, k).assign(calc)
"""
