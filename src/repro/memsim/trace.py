"""Access traces for a 7-point stencil sweep.

One sweep visits every output cell once, in an iteration order tiled by
cubic blocks (bricks for the brick layout, loop tiles for the
conventional layout — the "tiled implementations" the paper compares
bricks against).  Per output cell the kernel reads the centre and six
face neighbours of the input field and writes the output field.

The trace is a sequence of ``(addresses, is_write)`` batches.  Input
and output fields occupy disjoint address ranges (output offset by the
field size), as two separate allocations would.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.memsim.layouts import Layout

#: Read offsets of the 7-point star.
STAR_OFFSETS = (
    (0, 0, 0),
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
)


def _tile_cells(n: int, tile: int) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Yield the cell coordinates of each tile, tile-by-tile in
    lexicographic tile order, cells in C order within a tile."""
    if n % tile:
        raise ValueError(f"tile {tile} must divide domain size {n}")
    base = np.arange(tile)
    ci, cj, ck = np.meshgrid(base, base, base, indexing="ij")
    ci, cj, ck = ci.ravel(), cj.ravel(), ck.ravel()
    for ti in range(0, n, tile):
        for tj in range(0, n, tile):
            for tk in range(0, n, tile):
                yield ci + ti, cj + tj, ck + tk


def stencil_sweep_trace(
    layout: Layout, tile: int
) -> Iterator[tuple[np.ndarray, bool]]:
    """The access batches of one 7-point sweep with ``tile``-blocked order.

    For each tile: seven read batches (one per stencil offset, periodic
    wrap at domain edges) against the input field, then one write batch
    against the output field.  Batch granularity does not change the
    cache result (the simulator processes addresses one at a time) —
    it only keeps the Python driver fast.
    """
    out_base = layout.total_bytes
    for i, j, k in _tile_cells(layout.n, tile):
        for di, dj, dk in STAR_OFFSETS:
            yield layout.address_wrapped(i + di, j + dj, k + dk), False
        yield layout.address(i, j, k) + out_base, True
