"""Cell-to-address maps for the layouts under comparison.

A layout maps integer cell coordinates ``(i, j, k)`` of an ``N^3``
domain (periodic) to a byte address.  Two layouts matter:

* :class:`RowMajorLayout` — the conventional ``ijk`` array: address =
  ``((i*N + j)*N + k) * 8``.  A small 3-D tile of cells touches one
  short run of bytes per ``(i, j)`` pencil — many separate address
  streams;
* :class:`BrickLayout` — fine-grain blocking: the domain is tiled by
  ``B^3`` bricks, each stored contiguously; a brick is exactly
  ``B**3 * 8`` consecutive bytes.

Both maps are bijections onto ``[0, N^3 * 8)``; tests verify this.
"""

from __future__ import annotations

import numpy as np

ITEMSIZE = 8


class Layout:
    """Base: vectorised (i, j, k) -> byte address over an N^3 domain."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"domain size must be positive: {n}")
        self.n = int(n)

    @property
    def total_bytes(self) -> int:
        return self.n**3 * ITEMSIZE

    def address(self, i: np.ndarray, j: np.ndarray, k: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def address_wrapped(
        self, i: np.ndarray, j: np.ndarray, k: np.ndarray
    ) -> np.ndarray:
        """Addresses with periodic wrapping of the coordinates."""
        n = self.n
        return self.address(
            np.mod(np.asarray(i), n), np.mod(np.asarray(j), n), np.mod(np.asarray(k), n)
        )


class RowMajorLayout(Layout):
    """Conventional C-order ``ijk`` array."""

    def address(self, i: np.ndarray, j: np.ndarray, k: np.ndarray) -> np.ndarray:
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        k = np.asarray(k, dtype=np.int64)
        return ((i * self.n + j) * self.n + k) * ITEMSIZE


class BrickLayout(Layout):
    """Fine-grain blocked layout: contiguous ``B^3`` bricks."""

    def __init__(self, n: int, brick_dim: int) -> None:
        super().__init__(n)
        if brick_dim < 1 or n % brick_dim:
            raise ValueError(
                f"brick_dim {brick_dim} must divide domain size {n}"
            )
        self.brick_dim = int(brick_dim)
        self.bricks_per_dim = n // brick_dim

    def address(self, i: np.ndarray, j: np.ndarray, k: np.ndarray) -> np.ndarray:
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        k = np.asarray(k, dtype=np.int64)
        B, nb = self.brick_dim, self.bricks_per_dim
        brick = (((i // B) * nb) + (j // B)) * nb + (k // B)
        cell = (((i % B) * B) + (j % B)) * B + (k % B)
        return (brick * B**3 + cell) * ITEMSIZE
