"""Set-associative write-back LRU cache simulator.

Counts the DRAM traffic of an address trace: every miss streams one
line in, every dirty eviction streams one line out (write-allocate,
write-back — the policy of the GPU L2s the paper's profilers observe).
The simulator is deliberately simple; it exists to *rank* layouts and
to bound traffic, not to model any one cache exactly.

Implementation note: accesses are processed line-at-a-time in Python,
so traces should be kept to a few hundred thousand accesses (a 32^3
domain sweep is ~1 M accesses and runs in seconds).  An LRU stack per
set is a short list whose order encodes recency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of the simulated cache."""

    capacity_bytes: int = 8 * 1024
    line_bytes: int = 64
    ways: int = 8

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ValueError("cache geometry values must be positive")
        if self.capacity_bytes % (self.line_bytes * self.ways):
            raise ValueError(
                "capacity must be a multiple of line_bytes * ways: "
                f"{self.capacity_bytes} % {self.line_bytes * self.ways}"
            )
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError(f"line size must be a power of two: {self.line_bytes}")

    @property
    def num_sets(self) -> int:
        return self.capacity_bytes // (self.line_bytes * self.ways)


@dataclass
class CacheStats:
    """Traffic accounting for one simulated trace."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    line_bytes: int = 64

    @property
    def dram_bytes(self) -> int:
        """Total DRAM traffic: fills plus write-backs."""
        return (self.misses + self.writebacks) * self.line_bytes

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class CacheSim:
    """One cache instance; feed it addresses, read off the stats."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._line_shift = config.line_bytes.bit_length() - 1
        self._num_sets = config.num_sets
        # Per set: list of line numbers, most-recently-used last, and a
        # parallel dirty flag per resident line.
        self._sets: list[list[int]] = [[] for _ in range(self._num_sets)]
        self._dirty: list[set[int]] = [set() for _ in range(self._num_sets)]
        self.stats = CacheStats(line_bytes=config.line_bytes)

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Touch one byte address; returns True on hit."""
        line = addr >> self._line_shift
        s = line % self._num_sets
        lru = self._sets[s]
        self.stats.accesses += 1
        if line in lru:
            lru.remove(line)
            lru.append(line)
            self.stats.hits += 1
            if is_write:
                self._dirty[s].add(line)
            return True
        self.stats.misses += 1
        if len(lru) >= self.config.ways:
            victim = lru.pop(0)
            if victim in self._dirty[s]:
                self._dirty[s].discard(victim)
                self.stats.writebacks += 1
        lru.append(line)
        if is_write:
            self._dirty[s].add(line)
        return False

    def access_block(self, addrs: np.ndarray, is_write: bool = False) -> None:
        """Feed a batch of addresses (a convenience over :meth:`access`)."""
        for a in addrs:
            self.access(int(a), is_write)

    def flush(self) -> None:
        """Write back all dirty lines (end-of-kernel drain)."""
        for s in range(self._num_sets):
            self.stats.writebacks += len(self._dirty[s])
            self._dirty[s].clear()
            self._sets[s].clear()
