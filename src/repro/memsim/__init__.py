"""Memory-hierarchy simulator: first-principles data-movement evidence.

The paper's central claim for fine-grain data blocking is that brick
storage keeps stencil data movement near the compulsory-miss bound
while conventional ``ijk`` layouts touch many separate address streams
and move more data (Section III; Table V shows achieved AI within ~92%
of the infinite-cache bound).  We cannot run hardware profilers, so
this package *computes* the effect instead of transcribing it:

* :mod:`~repro.memsim.cache` — a set-associative write-back LRU cache
  simulator counting DRAM traffic (misses + write-backs);
* :mod:`~repro.memsim.layouts` — cell-to-byte-address maps for brick
  and conventional row-major layouts;
* :mod:`~repro.memsim.trace` — the memory access sequence of a 7-point
  stencil sweep under brick-ordered or tile-ordered iteration;
* :mod:`~repro.memsim.measure` — end-to-end: sweep -> trace -> cache ->
  DRAM bytes and achieved arithmetic intensity, plus the compulsory
  lower bound.
"""

from repro.memsim.cache import CacheConfig, CacheSim, CacheStats
from repro.memsim.layouts import BrickLayout, Layout, RowMajorLayout
from repro.memsim.measure import SweepMeasurement, compulsory_traffic, measure_sweep
from repro.memsim.tlb import (
    TLBConfig,
    TLBMeasurement,
    measure_sweep_tlb,
    pages_per_tile,
)
from repro.memsim.trace import stencil_sweep_trace

__all__ = [
    "CacheConfig",
    "CacheSim",
    "CacheStats",
    "Layout",
    "BrickLayout",
    "RowMajorLayout",
    "stencil_sweep_trace",
    "measure_sweep",
    "compulsory_traffic",
    "SweepMeasurement",
    "TLBConfig",
    "TLBMeasurement",
    "measure_sweep_tlb",
    "pages_per_tile",
]
