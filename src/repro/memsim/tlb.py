"""TLB-reach simulation.

Section III credits fine-grain blocking with exploiting "multi-word
cache lines, prefetch engines, and TLBs": a conventional ``ijk`` tile
touches one short pencil per ``(i, j)`` pair — many distinct pages —
while a brick is one contiguous run that lives on a handful of pages.
This module measures that effect: a fully-associative LRU TLB replays
the same sweep traces as the cache simulator and counts page walks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsim.cache import CacheConfig, CacheSim
from repro.memsim.layouts import Layout
from repro.memsim.trace import stencil_sweep_trace


@dataclass(frozen=True)
class TLBConfig:
    """A fully-associative LRU translation cache."""

    entries: int = 32
    page_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.entries < 1:
            raise ValueError(f"entries must be positive: {self.entries}")
        if self.page_bytes & (self.page_bytes - 1) or self.page_bytes <= 0:
            raise ValueError(f"page size must be a power of two: {self.page_bytes}")

    def as_cache(self) -> CacheConfig:
        """A TLB is a cache of translations: one 'line' per page,
        fully associative (ways = entries, one set)."""
        return CacheConfig(
            capacity_bytes=self.entries * self.page_bytes,
            line_bytes=self.page_bytes,
            ways=self.entries,
        )


@dataclass(frozen=True)
class TLBMeasurement:
    """Page-walk statistics of one stencil sweep."""

    layout_name: str
    tile: int
    n: int
    accesses: int
    page_walks: int
    distinct_pages: int

    @property
    def walk_rate(self) -> float:
        """Page walks per access (lower = better TLB behaviour)."""
        return self.page_walks / self.accesses if self.accesses else 0.0


def measure_sweep_tlb(
    layout: Layout, tile: int, tlb: TLBConfig | None = None
) -> TLBMeasurement:
    """Replay one 7-point sweep through the TLB and count walks."""
    tlb = tlb or TLBConfig()
    sim = CacheSim(tlb.as_cache())
    pages: set[int] = set()
    shift = tlb.page_bytes.bit_length() - 1
    for addrs, is_write in stencil_sweep_trace(layout, tile):
        for a in addrs:
            sim.access(int(a), is_write)
            pages.add(int(a) >> shift)
    return TLBMeasurement(
        layout_name=type(layout).__name__,
        tile=tile,
        n=layout.n,
        accesses=sim.stats.accesses,
        page_walks=sim.stats.misses,
        distinct_pages=len(pages),
    )


def pages_per_tile(layout: Layout, tile: int, page_bytes: int = 4096) -> float:
    """Average number of distinct pages one tile's input reads touch.

    The footprint metric behind the paper's TLB argument: a brick's
    reads stay on ``~tile^3*8/page`` pages, a conventional tile touches
    up to ``tile^2`` separate pencils' pages.
    """
    import numpy as np

    from repro.memsim.trace import _tile_cells

    counts = []
    for i, j, k in _tile_cells(layout.n, tile):
        addrs = layout.address(i, j, k)
        counts.append(len(np.unique(addrs >> (page_bytes.bit_length() - 1))))
    return float(sum(counts)) / len(counts)
