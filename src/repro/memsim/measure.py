"""End-to-end layout traffic measurement.

``measure_sweep`` runs one 7-point stencil sweep through the cache
simulator under a given layout and iteration tiling and reports DRAM
traffic, the compulsory lower bound, and the achieved arithmetic
intensity — the quantities behind the paper's Table V reasoning: a
layout is good when its sweep traffic sits close to compulsory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsl.library import OPERATOR_INFO
from repro.memsim.cache import CacheConfig, CacheSim
from repro.memsim.layouts import ITEMSIZE, Layout
from repro.memsim.trace import stencil_sweep_trace


def compulsory_traffic(n: int, write_allocate: bool = True) -> int:
    """Infinite-cache traffic of one sweep.

    With ``write_allocate=True`` (matching the cache simulator, which
    fills a line on a write miss) the bound is three streams: input
    fill + output fill + output write-back.  ``write_allocate=False``
    gives the paper's streaming-store convention (one read + one
    write), the one behind Table IV's arithmetic intensities.
    """
    streams = 3 if write_allocate else 2
    return streams * n**3 * ITEMSIZE


@dataclass(frozen=True)
class SweepMeasurement:
    """Result of one simulated stencil sweep."""

    layout_name: str
    tile: int
    n: int
    dram_bytes: int
    compulsory_bytes: int
    hit_rate: float

    @property
    def traffic_ratio(self) -> float:
        """DRAM traffic relative to the compulsory bound (>= ~1)."""
        return self.dram_bytes / self.compulsory_bytes

    @property
    def achieved_ai(self) -> float:
        """FLOP:byte of the sweep given actual traffic (applyOp flops)."""
        flops = OPERATOR_INFO["applyOp"].flops_per_point * self.n**3
        return flops / self.dram_bytes

    @property
    def ai_fraction(self) -> float:
        """Achieved AI over theoretical AI — Table V's quantity."""
        return self.achieved_ai / OPERATOR_INFO["applyOp"].arithmetic_intensity


def measure_sweep(
    layout: Layout, tile: int, cache: CacheConfig | None = None
) -> SweepMeasurement:
    """Simulate one 7-point sweep and report its DRAM traffic."""
    cache = cache or CacheConfig()
    sim = CacheSim(cache)
    for addrs, is_write in stencil_sweep_trace(layout, tile):
        sim.access_block(addrs, is_write)
    sim.flush()
    return SweepMeasurement(
        layout_name=type(layout).__name__,
        tile=tile,
        n=layout.n,
        dram_bytes=sim.stats.dram_bytes,
        compulsory_bytes=compulsory_traffic(layout.n),
        hit_rate=sim.stats.hit_rate,
    )
