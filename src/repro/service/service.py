"""The multi-tenant solve front-end: geometry-keyed cohort cache.

:class:`SolveService` accepts independent :class:`SolveRequest`\\ s,
groups them by :func:`~repro.service.request.geometry_key`, and runs
each group through a cached :class:`~repro.service.cohort.CohortSolver`
— the expensive part (hierarchies, exchangers, engine adoption, and
the geometry-keyed plan caches underneath) is built once per geometry
class and reused across submissions, which is the whole point of a
long-lived service process.

Long-lived-process hygiene, exercised here and fixed alongside:

* plan/partition caches key by geometry (bounded LRU), so cohort
  members share index tables instead of rebuilding per grid object;
* the service's :class:`~repro.obs.metrics.MetricsRegistry` lives for
  the process, with owner-scoped registration so per-cohort observers
  re-register idempotently;
* each cohort traces into its own :meth:`~repro.obs.tracer.Tracer.fork`
  timeline, so interleaved solves export cleanly to Chrome traces.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.service.cohort import CohortSolver
from repro.service.request import RequestResult, SolveRequest


class SolveService:
    """Accepts solve requests; batches same-geometry requests together.

    Parameters
    ----------
    capacity:
        Slots per cohort — the maximum number of requests advanced by
        one batched V-cycle.
    tracer:
        Optional tracer; each cohort records into its own fork
        timeline (``cohort-<n>``).
    registry:
        Optional long-lived :class:`MetricsRegistry`; created if
        omitted.  Per-cohort gauges register under the ``service``
        owner so repeated submissions stay idempotent.
    """

    def __init__(self, capacity: int = 8, tracer=None, registry=None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = int(capacity)
        self.tracer = tracer or NULL_TRACER
        self.registry = registry if registry is not None else MetricsRegistry()
        #: geometry_key -> (cohort, fork label); the plan/workspace cache
        self._cohorts: dict[tuple, CohortSolver] = {}
        self._cohort_seq = 0
        self.requests_served = 0

    # ------------------------------------------------------------------
    def cohort_for(self, request: SolveRequest) -> CohortSolver:
        """The (cached) cohort serving ``request``'s geometry class."""
        key = request.geometry_key
        cohort = self._cohorts.get(key)
        if cohort is None:
            label = f"cohort-{self._cohort_seq}"
            self._cohort_seq += 1
            cohort = CohortSolver(
                request.config,
                capacity=self.capacity,
                tracer=self.tracer.fork(label),
            )
            self._cohorts[key] = cohort
            self.registry.counter("service.cohorts_built", owner="service")
        else:
            self.registry.counter("service.cohort_cache_hits", owner="service")
        return cohort

    @property
    def num_cohorts(self) -> int:
        return len(self._cohorts)

    # ------------------------------------------------------------------
    def submit(
        self, requests, arrivals=None, clock=None
    ) -> list[RequestResult]:
        """Solve a batch/stream of requests; returns results in
        retirement order (grouped by geometry class).

        ``arrivals`` (optional, parallel to ``requests``) makes the
        stream open-loop: request ``i`` joins its cohort no earlier
        than ``arrivals[i]`` seconds after its group starts.
        """
        requests = list(requests)
        arrivals = list(arrivals) if arrivals is not None else [0.0] * len(requests)
        if len(arrivals) != len(requests):
            raise ValueError("need one arrival offset per request")
        groups: dict[tuple, list[int]] = {}
        for k, request in enumerate(requests):
            groups.setdefault(request.geometry_key, []).append(k)
        results: list[RequestResult] = []
        for key, indices in groups.items():
            cohort = self.cohort_for(requests[indices[0]])
            results.extend(
                cohort.solve_stream(
                    [requests[k] for k in indices],
                    arrivals=[arrivals[k] for k in indices],
                    clock=clock,
                )
            )
            self._observe_cohort(cohort)
        self.requests_served += len(requests)
        self.registry.counter(
            "service.requests", len(requests), owner="service"
        )
        return results

    def _observe_cohort(self, cohort: CohortSolver) -> None:
        """Fold one cohort's shape into the service registry (gauges,
        owner-scoped: last submission wins, as a point-in-time view)."""
        reg = self.registry
        reg.gauge("service.cohort.capacity", cohort.capacity, owner="service")
        reg.gauge(
            "service.cohort.cycles_run", cohort.cycles_run, owner="service"
        )
        reg.gauge(
            "service.cohort.requests_retired",
            cohort.requests_retired,
            owner="service",
        )
        reg.gauge(
            "service.cohort.occupancy", cohort.occupancy(), owner="service"
        )
        reg.observe_plan_caches()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolveService(capacity={self.capacity}, "
            f"cohorts={self.num_cohorts}, served={self.requests_served})"
        )
