"""Solve requests, results, and the standalone reference path.

A :class:`SolveRequest` is one tenant's problem: a full
:class:`~repro.gmg.solver.SolverConfig` plus a right-hand-side
amplitude.  Scaling the model problem's analytic RHS keeps it zero-mean
(solvable under periodic/Neumann boundaries) while changing the
residual magnitudes — so different amplitudes converge in different
cycle counts, which is what exercises the cohort's staggered
retirement.

Two requests can share a cohort iff they share a :func:`geometry_key`:
every config field that shapes the level hierarchies, exchange
schedule and kernels — everything except the per-request convergence
controls ``tol`` and ``max_vcycles``.

:func:`standalone_solve` is the reference the bit-identity suite (and
the load generator's sequential baseline) compares the cohort against:
one ordinary :class:`~repro.gmg.solver.GMGSolver` per request.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields

import numpy as np

from repro.gmg.solver import GMGSolver, SolveResult, SolverConfig

#: config fields excluded from the cohort grouping key: per-request
#: convergence controls that do not change the geometry or schedule
_NON_GEOMETRY_FIELDS = ("tol", "max_vcycles")

_request_counter = itertools.count()


def geometry_key(config: SolverConfig) -> tuple:
    """The cohort grouping key of ``config``.

    Two configs with equal keys build congruent hierarchies, exchange
    schedules and kernels, so their requests can stack onto one batched
    index space; ``tol``/``max_vcycles`` stay per-request.
    """
    return tuple(
        (f.name, getattr(config, f.name))
        for f in fields(config)
        if f.name not in _NON_GEOMETRY_FIELDS
    )


@dataclass(frozen=True)
class SolveRequest:
    """One tenant's solve: a config plus an RHS amplitude.

    ``amplitude`` scales the model problem's analytic right-hand side
    (``amplitude * rhs_field``); ``request_id`` defaults to a unique
    ``req-N`` label.  ``tol``/``max_vcycles`` come from ``config`` and
    are honoured per request inside a cohort.
    """

    config: SolverConfig
    amplitude: float = 1.0
    request_id: str = ""

    def __post_init__(self) -> None:
        if not np.isfinite(self.amplitude):
            raise ValueError(f"amplitude must be finite: {self.amplitude}")
        if not self.request_id:
            object.__setattr__(
                self, "request_id", f"req-{next(_request_counter)}"
            )

    @property
    def geometry_key(self) -> tuple:
        return geometry_key(self.config)


@dataclass
class RequestResult:
    """Outcome of one request, standalone or cohort-solved.

    ``residual_history``/``num_vcycles``/``converged`` follow the
    :class:`~repro.gmg.solver.SolveResult` conventions exactly (the
    identity suite compares them element-wise).  ``solution`` is the
    assembled global finest-level iterate.  The latency fields are
    filled by the service/load-generator layers (seconds on their
    clock; zero when untimed).
    """

    request: SolveRequest
    converged: bool
    num_vcycles: int
    residual_history: list[float]
    solution: np.ndarray = field(repr=False, default=None)
    #: slot the request occupied in its cohort (-1 standalone)
    slot: int = -1
    #: cohort cycle index at which the request joined (-1 standalone)
    joined_at_cycle: int = -1
    arrival_s: float = 0.0
    completed_s: float = 0.0

    @property
    def latency_s(self) -> float:
        return self.completed_s - self.arrival_s

    @property
    def final_residual(self) -> float:
        if not self.residual_history:
            return float("nan")
        return self.residual_history[-1]


def apply_rhs(solver: GMGSolver, amplitude: float) -> None:
    """Set the solver's finest-level RHS to ``amplitude * rhs``.

    Evaluates the exact same expression for the standalone and cohort
    paths, so both write byte-equal ``b`` fields; ``set_interior``
    touches interior slots only (ghost slots stay zero, as after
    construction).
    """
    from repro.gmg.problem import rhs_field, rhs_field_dirichlet

    config = solver.config
    h = config.level_spacing(0)
    per_rank = config.cells_per_rank
    rhs = rhs_field if config.boundary == "periodic" else rhs_field_dirichlet
    for rank, levels in enumerate(solver.rank_levels):
        origin = solver.topology.subdomain_origin(rank, per_rank)
        levels[0].b.set_interior(amplitude * rhs(per_rank, h, origin))


def standalone_solve(request: SolveRequest, tracer=None) -> RequestResult:
    """Solve ``request`` alone with an ordinary :class:`GMGSolver`.

    The bit-identity reference: a request solved inside any cohort must
    reproduce this result's residual history and solution exactly.
    """
    solver = GMGSolver(request.config, tracer=tracer)
    if request.amplitude != 1.0:
        # construction already wrote the amplitude-1 RHS; rewrite the
        # interior through the (possibly engine-adopted) views
        apply_rhs(solver, request.amplitude)
    result: SolveResult = solver.solve()
    return RequestResult(
        request=request,
        converged=result.converged,
        num_vcycles=result.num_vcycles,
        residual_history=list(result.residual_history),
        solution=solver.solution(),
    )
