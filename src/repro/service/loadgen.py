"""Synthetic open-loop load generator for the solve service.

Generates a deterministic request stream (seeded amplitudes, optional
Poisson arrivals), runs it through a :class:`~repro.service.service
.SolveService`, and measures what a service operator gates on:
solves/sec, p50/p95 latency, batch occupancy — against the sequential
per-request baseline that the batched cohort must beat.

The report's ``metrics`` dict is lower-is-better throughout
(``ms_per_solve`` rather than solves/sec) so it records directly as a
``service.*`` :class:`~repro.obs.ledger.PerfLedger` series and gates
with ``repro perfgate --series 'service.*'``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.gmg.solver import SolverConfig
from repro.service.request import SolveRequest, standalone_solve
from repro.service.service import SolveService

#: amplitude spread of generated requests: wide enough that cycle
#: counts differ across the cohort (staggered retirement), narrow
#: enough that no request dominates the stream
_AMPLITUDE_RANGE = (0.5, 2.0)


def generate_requests(
    base: SolverConfig,
    num_requests: int,
    seed: int = 0,
    rate_hz: float | None = None,
) -> tuple[list[SolveRequest], list[float]]:
    """A deterministic request stream over one geometry class.

    Amplitudes are drawn uniformly from :data:`_AMPLITUDE_RANGE`;
    arrivals are 0 (closed batch) or cumulative exponential
    inter-arrival gaps at ``rate_hz`` (open loop — arrivals do not wait
    for completions).
    """
    if num_requests < 1:
        raise ValueError(f"need at least one request: {num_requests}")
    rng = np.random.default_rng(seed)
    lo, hi = _AMPLITUDE_RANGE
    amplitudes = rng.uniform(lo, hi, size=num_requests)
    requests = [
        SolveRequest(
            config=base,
            amplitude=float(amplitudes[k]),
            request_id=f"load-{seed}-{k}",
        )
        for k in range(num_requests)
    ]
    if rate_hz is None:
        arrivals = [0.0] * num_requests
    else:
        if rate_hz <= 0:
            raise ValueError(f"rate_hz must be positive: {rate_hz}")
        gaps = rng.exponential(1.0 / rate_hz, size=num_requests)
        arrivals = [float(t) for t in np.cumsum(gaps)]
    return requests, arrivals


@dataclass
class LoadgenReport:
    """One load-generator run's measurements.

    ``metrics`` is the flat lower-is-better dict recorded to the perf
    ledger; ``context`` carries the run description; the remaining
    fields support the CLI's human-readable table.
    """

    num_requests: int
    capacity: int
    solves_per_sec: float
    sequential_solves_per_sec: float
    speedup: float
    occupancy: float
    cycles_run: int
    metrics: dict = field(default_factory=dict)
    context: dict = field(default_factory=dict)
    latencies_ms: list[float] = field(default_factory=list, repr=False)

    def to_json(self) -> dict:
        return {
            "num_requests": self.num_requests,
            "capacity": self.capacity,
            "solves_per_sec": self.solves_per_sec,
            "sequential_solves_per_sec": self.sequential_solves_per_sec,
            "speedup": self.speedup,
            "occupancy": self.occupancy,
            "cycles_run": self.cycles_run,
            "metrics": self.metrics,
            "context": self.context,
            "latencies_ms": self.latencies_ms,
        }


def run_loadgen(
    base: SolverConfig,
    num_requests: int = 8,
    capacity: int = 8,
    seed: int = 0,
    rate_hz: float | None = None,
    baseline: bool = True,
    warmup: bool = True,
    repeats: int = 1,
    tracer=None,
    registry=None,
    service: SolveService | None = None,
) -> LoadgenReport:
    """Run one synthetic load against a (possibly shared) service.

    Measures the batched service pass with real wall-clock latencies,
    then (``baseline=True``) the same requests solved sequentially one
    standalone solver at a time — the ≥2x throughput claim the
    ``service.*`` ledger series tracks is ``speedup`` here.

    ``warmup`` first runs one request through each path untimed, so
    both measurements see warm compile/plan caches and a built cohort —
    the steady state a long-lived service actually operates in.
    ``repeats`` runs each timed pass that many times and keeps the
    fastest (symmetric best-of-N, the usual noise shield on shared
    machines); the reported latencies come from the fastest service
    pass.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be positive: {repeats}")
    requests, arrivals = generate_requests(
        base, num_requests, seed=seed, rate_hz=rate_hz
    )
    service = service or SolveService(
        capacity=capacity, tracer=tracer, registry=registry
    )
    if warmup:
        warm = SolveRequest(config=base, amplitude=1.0)
        service.submit([warm])
        standalone_solve(warm)
    cohort = service.cohort_for(requests[0])
    occ_start = len(cohort.occupancy_samples)
    cycles_start = cohort.cycles_run
    service_wall = float("inf")
    results: list = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        rep_results = service.submit(requests, arrivals=arrivals)
        wall = time.perf_counter() - t0
        if len(rep_results) != num_requests:
            raise RuntimeError(
                f"service returned {len(rep_results)} results for "
                f"{num_requests} requests"
            )
        if wall < service_wall:
            service_wall = wall
            results = rep_results
    latencies_ms = sorted(1e3 * r.latency_s for r in results)
    occ_samples = cohort.occupancy_samples[occ_start:]
    occupancy = (
        float(np.mean([n for _, n in occ_samples])) / cohort.capacity
        if occ_samples
        else 0.0
    )

    seq_wall = float("nan")
    if baseline:
        seq_wall = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for request in requests:
                standalone_solve(request)
            seq_wall = min(seq_wall, time.perf_counter() - t0)

    solves_per_sec = num_requests / service_wall if service_wall > 0 else 0.0
    seq_sps = num_requests / seq_wall if baseline and seq_wall > 0 else 0.0
    speedup = seq_wall / service_wall if baseline and service_wall > 0 else 0.0
    metrics = {
        "ms_per_solve": 1e3 * service_wall / num_requests,
        "p50_ms": float(np.percentile(latencies_ms, 50)),
        "p95_ms": float(np.percentile(latencies_ms, 95)),
    }
    if baseline:
        metrics["sequential_ms_per_solve"] = 1e3 * seq_wall / num_requests
    report = LoadgenReport(
        num_requests=num_requests,
        capacity=capacity,
        solves_per_sec=solves_per_sec,
        sequential_solves_per_sec=seq_sps,
        speedup=speedup,
        occupancy=occupancy,
        cycles_run=(cohort.cycles_run - cycles_start) // repeats,
        metrics=metrics,
        context={
            "global_cells": base.global_cells,
            "num_levels": base.num_levels,
            "brick_dim": base.brick_dim,
            "engine": f"hr={base.halo_resident},fk={base.fuse_kernels},"
            f"br={base.batch_ranks}",
            "num_requests": num_requests,
            "capacity": capacity,
            "seed": seed,
            "rate_hz": rate_hz if rate_hz is not None else 0.0,
            "repeats": repeats,
        },
        latencies_ms=latencies_ms,
    )
    reg = service.registry
    reg.gauge("service.loadgen.solves_per_sec", solves_per_sec, owner="loadgen")
    reg.gauge("service.loadgen.p50_ms", metrics["p50_ms"], owner="loadgen")
    reg.gauge("service.loadgen.p95_ms", metrics["p95_ms"], owner="loadgen")
    reg.gauge("service.loadgen.speedup", speedup, owner="loadgen")
    reg.gauge("service.loadgen.occupancy", report.occupancy, owner="loadgen")
    return report


def smoke_config(**overrides) -> SolverConfig:
    """The small geometry the service smoke jobs and docs examples use.

    Deliberately tiny (8³ cells, 2³ bricks): per-level work is launch-
    overhead-bound, which is exactly the regime where batching N
    requests onto one stacked index space pays — the simulated analogue
    of the paper's small-kernel GPU levels.  At throughput-bound sizes
    the cohort matches (never beats) sequential array bandwidth.
    """
    base = SolverConfig(
        global_cells=8,
        num_levels=3,
        brick_dim=2,
        max_smooths=4,
        bottom_smooths=16,
        max_vcycles=100,
        batch_ranks=True,
        fuse_kernels=True,
    )
    return replace(base, **overrides) if overrides else base
