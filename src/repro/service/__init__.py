"""Multi-tenant batched solve service.

Generalises the engine's cross-rank batching axis (PR 2) to N
concurrent solve *requests*: independent right-hand sides over one
geometry class stack block-diagonally onto the batched index space and
advance through fused V-cycles together, each retiring on its own
convergence test — the direct path from "one solver" to a service
(see DESIGN.md "Solve service").

Layers:

* :mod:`repro.service.request` — :class:`SolveRequest` /
  :class:`RequestResult`, the cohort grouping key, and the standalone
  reference solve the identity suite compares against;
* :mod:`repro.service.cohort` — :class:`CohortSolver`: N member
  hierarchies batched under one V-cycle driver with per-request
  convergence, retirement and cycle-boundary admission;
* :mod:`repro.service.service` — :class:`SolveService`: the
  geometry-keyed cohort cache and request front-end;
* :mod:`repro.service.loadgen` — the synthetic open-loop load
  generator behind ``repro loadgen``.
"""

from repro.service.cohort import CohortSolver
from repro.service.loadgen import LoadgenReport, run_loadgen
from repro.service.request import (
    RequestResult,
    SolveRequest,
    geometry_key,
    standalone_solve,
)
from repro.service.service import SolveService

__all__ = [
    "CohortSolver",
    "LoadgenReport",
    "RequestResult",
    "SolveRequest",
    "SolveService",
    "geometry_key",
    "run_loadgen",
    "standalone_solve",
]
