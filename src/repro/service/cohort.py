"""Batched multi-request execution: N solves under one V-cycle driver.

A :class:`CohortSolver` owns ``capacity`` *member* solver hierarchies
of one geometry class and drives them with a single unmodified
:class:`~repro.gmg.vcycle.VCycle` over the concatenated per-rank level
lists — the request axis rides alongside the rank axis, exactly as
block-diagonal rank batching (PR 2) rides the engine's stacked index
space:

* **compute** batches across requests: with ``batch_ranks`` the cohort
  :class:`~repro.gmg.engine.ExecutionEngine` stacks all members' level
  groups onto one :class:`~repro.bricks.batch.BatchedGrid` of
  ``capacity * num_ranks`` blocks, so a smoothing iteration is one
  vectorised call over the whole cohort;
* **communication** stays per member: a :class:`FanoutExchanger`
  splits the driver's ``fields_by_rank`` back into per-member chunks
  and delegates to each member's own exchangers/communicator, so the
  bytes on every (simulated) wire are identical to a standalone solve;
* **convergence** is per request: :class:`CohortCycle` mirrors
  ``max_norm_residual`` but reduces per member slot, reproducing each
  member's allreduce semantics bit-exactly.

Identity argument: every kernel is elementwise (or adjacency-gathered)
per brick slot and the batched adjacency is block-diagonal, so no
operation mixes slots of different members; idle slots hold exact
zeros, which smoothing, restriction and bottom relaxation all map to
zero.  A request therefore sees the same floats whether it shares the
cohort with 0 or N-1 neighbours — asserted by the bit-identity suite.

Requests retire individually when their residual test passes (or their
cycle budget is exhausted) and new requests join at cycle boundaries:
the freed slot's fields are zeroed through the adopted views and the
joiner's RHS is written exactly as a fresh solver's constructor would.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.gmg import operators as ops
from repro.gmg.engine import EngineConfig, ExecutionEngine
from repro.gmg.solver import GMGSolver, SolverConfig
from repro.gmg.vcycle import VCycle
from repro.obs.tracer import NULL_TRACER
from repro.service.request import RequestResult, SolveRequest, apply_rhs
from repro.service.request import geometry_key as _geometry_key


class FanoutExchanger:
    """One logical exchanger over N members' per-level exchangers.

    The V-cycle driver hands ghost exchanges a ``fields_by_rank`` list
    covering the whole cohort; this splits it into per-member chunks
    (``counts[m]`` compute levels each) and delegates, so each member's
    exchange runs on its own communicator with standalone-identical
    traffic.  The split-phase pair ``begin``/``finish`` is exposed only
    when every delegate offers it (the driver falls back to synchronous
    exchanges otherwise, mirroring the standalone overlap fallback).
    """

    def __init__(self, delegates, counts) -> None:
        if len(delegates) != len(counts):
            raise ValueError("need one field count per delegate")
        self.delegates = list(delegates)
        self.counts = [int(n) for n in counts]
        if all(
            getattr(d, "begin", None) is not None
            and getattr(d, "finish", None) is not None
            for d in self.delegates
        ):
            self.begin = self._begin
            self.finish = self._finish

    def _chunks(self, fields_by_rank):
        if len(fields_by_rank) != sum(self.counts):
            raise ValueError(
                f"got {len(fields_by_rank)} rank field lists, expected "
                f"{sum(self.counts)}"
            )
        i = 0
        for delegate, n in zip(self.delegates, self.counts):
            yield delegate, fields_by_rank[i : i + n]
            i += n

    def exchange(self, level: int, fields_by_rank) -> None:
        for delegate, chunk in self._chunks(fields_by_rank):
            delegate.exchange(level, chunk)

    def _begin(self, level: int, fields_by_rank):
        return [
            (delegate, delegate.begin(level, chunk))
            for delegate, chunk in self._chunks(fields_by_rank)
        ]

    def _finish(self, pending) -> None:
        for delegate, member_pending in pending:
            delegate.finish(member_pending)


class StackedLocalExchanger:
    """All-single-rank cohort exchange fused over the stacked storage.

    When every member owns the whole periodic domain, a member exchange
    is a local wrap — ``data[ghost] = data[source]`` inside that
    member's slot block of the engine's stacked storage (member fields
    are views of it).  The :class:`~repro.bricks.batch.BatchedGrid` wrap
    pairs are exactly the member pairs offset per block, so one
    vectorised copy writes byte-identical ghosts for the whole cohort —
    the throughput lever at small geometries, where N per-member
    Python exchanges would cost as much as the N sequential solves the
    cohort must beat.

    Per-member message recording is delegated to the members' own
    exchangers unchanged, so operation-count accounting matches the
    fanout path exactly; fields the engine did not stack fall back to
    the per-member delegates.  Like the local exchange it fuses, the
    split-phase ``begin`` runs eagerly (no wire traffic to hide).
    """

    def __init__(self, delegates, stacked_by_id, tracer=None) -> None:
        self.delegates = list(delegates)
        #: id(member view field) -> stacked field sharing its storage
        self._stacked_by_id = stacked_by_id
        self.tracer = tracer or NULL_TRACER

    def exchange(self, level: int, fields_by_rank) -> None:
        self._fill(level, fields_by_rank)

    def begin(self, level: int, fields_by_rank) -> int:
        self._fill(level, fields_by_rank)
        return level

    def finish(self, pending: int) -> None:
        pass

    def _fill(self, level: int, fields_by_rank) -> None:
        if len(fields_by_rank) != len(self.delegates):
            raise ValueError(
                f"got {len(fields_by_rank)} rank field lists, expected "
                f"{len(self.delegates)}"
            )
        targets = [
            self._stacked_by_id.get(id(f)) for f in fields_by_rank[0]
        ]
        fused = all(t is not None for t in targets) and all(
            len(fields) == len(targets)
            and all(
                self._stacked_by_id.get(id(f)) is targets[k]
                for k, f in enumerate(fields)
            )
            for fields in fields_by_rank[1:]
        )
        if not fused:
            for delegate, fields in zip(self.delegates, fields_by_rank):
                delegate.exchange(level, [fields])
            return
        with self.tracer.span(
            "exchange", l=level, nfields=len(targets), stacked=True
        ):
            for stacked_field in targets:
                stacked_field.fill_ghost_periodic()
        for delegate, fields in zip(self.delegates, fields_by_rank):
            delegate._record(level, fields)


class _FanoutTransfer:
    """Agglomeration gather/scatter fanned out across members."""

    def __init__(self, delegates) -> None:
        self.delegates = list(delegates)

    def gather(self) -> None:
        for delegate in self.delegates:
            delegate.gather()

    def scatter(self) -> None:
        for delegate in self.delegates:
            delegate.scatter()


class CohortAgglomerator:
    """N members' agglomerators presented as one, to the unmodified
    V-cycle driver.

    Implements exactly the surface :class:`~repro.gmg.vcycle.VCycle`
    consumes — ``plan``, ``levels_at``, ``ranks_at``, ``exchanger_at``,
    ``transfer_at``, ``staging_levels``, ``canonical_restriction``,
    ``channels`` — by concatenating (levels, staging) or fanning out
    (exchanges, transfers) across the members.  All members share one
    config, hence one agglomeration plan.
    """

    def __init__(self, member_aggs, ranks_per_member: int) -> None:
        self.members = list(member_aggs)
        self.plan = self.members[0].plan
        self.ranks_per_member = int(ranks_per_member)
        num_levels = self.plan.num_levels
        self._exchangers = []
        self._transfers = []
        #: staging levels per depth, concatenated across members
        self.staging_levels: list[list | None] = []
        for lev in range(num_levels):
            exs = [a.exchanger_at(lev) for a in self.members]
            if exs[0] is None:
                self._exchangers.append(None)
            else:
                counts = [len(a.levels_at(lev)) for a in self.members]
                self._exchangers.append(FanoutExchanger(exs, counts))
            trs = [a.transfer_at(lev) for a in self.members]
            self._transfers.append(
                None if trs[0] is None else _FanoutTransfer(trs)
            )
            per = [a.staging_levels[lev] for a in self.members]
            self.staging_levels.append(
                None
                if per[0] is None
                else [stage for member in per for stage in member]
            )

    @property
    def active(self) -> bool:
        return True

    def levels_at(self, lev: int):
        merged = [a.levels_at(lev) for a in self.members]
        if merged[0] is None:
            return None
        return [lv for member in merged for lv in member]

    def ranks_at(self, lev: int):
        """Global cohort slot ids: member ``m``'s rank ``r`` is slot
        ``m * ranks_per_member + r``."""
        active = [a.ranks_at(lev) for a in self.members]
        if active[0] is None:
            return None
        return [
            m * self.ranks_per_member + r
            for m, member in enumerate(active)
            for r in member
        ]

    def exchanger_at(self, lev: int):
        return self._exchangers[lev]

    def transfer_at(self, lev: int):
        return self._transfers[lev]

    def canonical_restriction(
        self, lev: int, fine_levels, coarse_levels, recorder
    ) -> None:
        """Split the concatenated level lists per member and delegate
        (the canonical per-rank association is a member-local fact)."""
        n = len(self.members)
        fine_n = len(fine_levels) // n
        coarse_n = len(coarse_levels) // n
        for m, agg in enumerate(self.members):
            agg.canonical_restriction(
                lev,
                fine_levels[m * fine_n : (m + 1) * fine_n],
                coarse_levels[m * coarse_n : (m + 1) * coarse_n],
                recorder,
            )

    def channels(self):
        return [ch for a in self.members for ch in a.channels()]


class CohortCycle(VCycle):
    """A V-cycle over a cohort, with per-member residual reductions."""

    def __init__(self, num_members: int, *args, **kwargs) -> None:
        self.num_members = int(num_members)
        super().__init__(*args, **kwargs)

    def member_residuals(self) -> list[float]:
        """Finest-level residual max-norm of every member slot.

        Mirrors :meth:`VCycle.max_norm_residual` — same exchange, same
        (batched) applyOp + residual kernels, same per-level local
        maxima — but reduces each member's locals separately with
        ``float(np.max(...))``, which is bit-identical to both the
        single-rank default reduction and ``SimComm.allreduce_max``.
        """
        with self.tracer.span("residual-check", v=self.cycles_run):
            levels = self.levels_at(0)
            stacked = (
                self.engine.stacked_level(0) if self.engine is not None else None
            )
            split_ok = self.apply_op_fn is ops.apply_op
            ctx = self._exchange_levels(
                0, [[lv.x] for lv in levels], levels, stacked, split_ok
            )
            try:
                if stacked is not None and self.apply_op_fn is ops.apply_op:
                    with self.tracer.span("applyOp", l=0):
                        ops.apply_op(stacked, self.recorder, tracer=self.tracer)
                    with self.tracer.span("residual", l=0):
                        ops.residual(stacked, self.recorder)
                else:
                    for lv in levels:
                        with self.tracer.span("applyOp", l=0):
                            if self.apply_op_fn is ops.apply_op:
                                ops.apply_op(
                                    lv, self.recorder, tracer=self.tracer
                                )
                            else:
                                self.apply_op_fn(lv, self.recorder)
                        with self.tracer.span("residual", l=0):
                            ops.residual(lv, self.recorder)
            finally:
                self._end_overlap(ctx, levels, stacked)
            if stacked is not None and self.apply_op_fn is ops.apply_op:
                # one vectorised reduction over the stacked residual:
                # each block row is exactly one level's interior element
                # set, and max is order-independent, so the per-block
                # maxima match the per-level ``max_abs_interior`` calls
                # bit-for-bit
                vals = np.abs(stacked.r.data[stacked.grid.interior_slots])
                local = vals.reshape(len(levels), -1).max(axis=1)
            else:
                local = [lv.r.max_abs_interior() for lv in levels]
            if self.recorder is not None:
                self.recorder.reduction()
            per = len(local) // self.num_members
            return [
                float(np.max(local[m * per : (m + 1) * per]))
                for m in range(self.num_members)
            ]


@dataclass
class _ActiveRequest:
    """Book-keeping for one request occupying a cohort slot."""

    request: SolveRequest
    slot: int
    history: list[float] = field(default_factory=list)
    joined_at_cycle: int = 0
    arrival_s: float = 0.0


class CohortSolver:
    """``capacity`` member solver hierarchies under one batched driver.

    Construction is the expensive, reusable part (the service caches
    cohorts by geometry key): member hierarchies, exchangers, the
    cohort engine adoption and the V-cycle driver are all built once;
    requests then stream through slots with per-slot state resets only.

    Restrictions: the ``cg``/``fft`` bottom solvers reduce over the
    driver's whole index space and would mix requests — cohorts require
    the paper-default ``relaxation`` bottom (no cross-slot reductions).
    Fault injection/resilience are standalone-solver features.
    """

    def __init__(
        self,
        config: SolverConfig,
        capacity: int,
        tracer=None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        if config.bottom_solver != "relaxation":
            raise ValueError(
                f"cohorts require the 'relaxation' bottom solver; "
                f"{config.bottom_solver!r} reduces across the batched index "
                "space and would couple independent requests"
            )
        self.config = config
        self.capacity = int(capacity)
        self.tracer = tracer or NULL_TRACER
        self.geometry_key = _geometry_key(config)
        #: members run the seed per-rank layout; the cohort engine owns
        #: batching/residency/fusion across the whole request axis
        member_config = replace(
            config, halo_resident=False, fuse_kernels=False, batch_ranks=False
        )
        with self.tracer.span("cohort-build", capacity=self.capacity):
            self.members = [
                GMGSolver(member_config, tracer=self.tracer)
                for _ in range(self.capacity)
            ]
        first = self.members[0]
        self.num_ranks = first.topology.size
        num_levels = config.num_levels

        # --- request-axis level groups: concat of member compute groups
        member_groups: list[list[list]] = []  # [member][lev] -> levels
        for member in self.members:
            if member.agglomerator is not None:
                member_groups.append(
                    member.agglomerator.level_groups(member.rank_levels)
                )
            else:
                member_groups.append(
                    [
                        [levels[lev] for levels in member.rank_levels]
                        for lev in range(num_levels)
                    ]
                )
        #: compute levels per member at each depth (1 group member per
        #: active rank; shrinks on agglomerated levels)
        self._group_sizes = [len(member_groups[0][lev]) for lev in range(num_levels)]
        level_groups = [
            [lv for groups in member_groups for lv in groups[lev]]
            for lev in range(num_levels)
        ]
        group_ranks = [
            [
                m * self.num_ranks + r
                for m, member in enumerate(self.members)
                for r in (
                    (member.agglomerator.ranks_at(lev) if member.agglomerator else None)
                    or range(self.num_ranks)
                )
            ]
            for lev in range(num_levels)
        ]

        self.agglomerator = None
        if first.agglomerator is not None:
            self.agglomerator = CohortAgglomerator(
                [m.agglomerator for m in self.members], self.num_ranks
            )

        self.engine = None
        engine_config = EngineConfig(
            halo_resident=config.halo_resident,
            fuse_kernels=config.fuse_kernels,
            batch_ranks=config.batch_ranks,
        )
        rank_levels = [
            levels for member in self.members for levels in member.rank_levels
        ]
        if engine_config.enabled:
            self.engine = ExecutionEngine(
                rank_levels,
                engine_config,
                tracer=self.tracer,
                level_groups=level_groups,
                group_ranks=group_ranks,
            )

        from repro.gmg.bottom import make_bottom_solver
        from repro.gmg.smoothers import make_smoother

        bottom_kwargs = dict(config.bottom_options)
        if "iterations" not in bottom_kwargs:
            bottom_kwargs["iterations"] = config.bottom_smooths
        exchangers = []
        for lev in range(num_levels):
            ex = self._stacked_exchanger(lev)
            if ex is None:
                ex = FanoutExchanger(
                    [m.exchangers[lev] for m in self.members],
                    [self.num_ranks] * self.capacity,
                )
            exchangers.append(ex)
        self.vcycle = CohortCycle(
            self.capacity,
            rank_levels,
            exchangers,
            max_smooths=config.max_smooths,
            bottom_smooths=config.bottom_smooths,
            communication_avoiding=config.communication_avoiding,
            recorder=first.recorder,
            smoother=make_smoother(
                config.smoother, **dict(config.smoother_options)
            ),
            bottom_solver=make_bottom_solver("relaxation", **bottom_kwargs),
            cycle=config.cycle,
            topology=first.topology,
            engine=self.engine,
            tracer=self.tracer,
            agglomerator=self.agglomerator,
            overlap=config.overlap,
        )
        #: slot -> _ActiveRequest
        self._active: dict[int, _ActiveRequest] = {}
        self._free: list[int] = list(range(self.capacity))
        #: (cycle, active_count) samples for batch-occupancy reporting
        self.occupancy_samples: list[tuple[int, int]] = []
        self.requests_retired = 0
        # construction initialised every member's RHS (amplitude 1);
        # slots must start empty — idle slots hold exact zeros
        for slot in range(self.capacity):
            self._reset_slot(slot)

    # ------------------------------------------------------------------
    def _stacked_exchanger(self, lev: int) -> StackedLocalExchanger | None:
        """The fused single-rank exchanger for depth ``lev``, when the
        engine stacked it and every member's exchange is a pure periodic
        wrap (single rank, periodic boundary) — None otherwise."""
        from repro.comm.exchange import LocalPeriodicExchange

        if self.num_ranks != 1 or self.engine is None:
            return None
        st = self.engine.stacked_level(lev)
        if st is None:
            return None
        delegates = [m.exchangers[lev] for m in self.members]
        if not all(
            isinstance(d, LocalPeriodicExchange) and d._fill is None
            for d in delegates
        ):
            return None
        stacked_fields = st.fields()
        stacked_by_id: dict[int, object] = {}
        for member in self.members:
            lv = member.rank_levels[0][lev]
            for name, f in lv.fields().items():
                if name in stacked_fields:
                    stacked_by_id[id(f)] = stacked_fields[name]
        return StackedLocalExchanger(
            delegates, stacked_by_id, tracer=self.tracer
        )

    @property
    def free_slots(self) -> int:
        return len(self._free)

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def cycles_run(self) -> int:
        return self.vcycle.cycles_run

    def _reset_slot(self, slot: int) -> None:
        """Zero every field of the member's hierarchy, through the
        adopted views — after this the slot is numerically identical to
        a freshly constructed (pre-RHS) member."""
        member = self.members[slot]
        seen: set[int] = set()

        def _zero(lv) -> None:
            if id(lv) in seen:
                return
            seen.add(id(lv))
            for f in lv.fields().values():
                f.data[...] = 0.0
                if f.has_resident_halo:
                    f.ext_data[...] = 0.0

        for levels in member.rank_levels:
            for lv in levels:
                _zero(lv)
        agg = member.agglomerator
        if agg is not None:
            for lev in range(self.config.num_levels):
                merged = agg.levels_at(lev)
                for lv in merged or ():
                    _zero(lv)
                for lv in agg.staging_levels[lev] or ():
                    _zero(lv)
        if self.engine is not None:
            # halo-resident stacked x: the member views cover the
            # interiors, but the shell rows live only in ext storage
            for lev, st in enumerate(self.engine.stacked):
                if st is None or not st.x.has_resident_halo:
                    continue
                per_member = self._group_sizes[lev] * st.grid.slots_per_rank
                st.x.ext_data[slot * per_member : (slot + 1) * per_member] = 0.0

    # ------------------------------------------------------------------
    def admit(self, request: SolveRequest, arrival_s: float = 0.0) -> int:
        """Place ``request`` into a free slot (RHS written in place).

        Call :meth:`seed` with the returned slots before cycling so the
        joiners record their initial residuals.
        """
        if request.geometry_key != self.geometry_key:
            raise ValueError(
                f"request {request.request_id} has a different geometry key "
                "than this cohort"
            )
        if not self._free:
            raise RuntimeError("cohort is full")
        slot = self._free.pop(0)
        apply_rhs(self.members[slot], request.amplitude)
        self._active[slot] = _ActiveRequest(
            request=request,
            slot=slot,
            joined_at_cycle=self.vcycle.cycles_run,
            arrival_s=arrival_s,
        )
        self.tracer.instant(
            "service:admit", slot=slot, request=request.request_id
        )
        return slot

    def seed(self, slots) -> list[RequestResult]:
        """Record joiners' initial residuals (``history[0]``).

        One cohort-wide residual pass; only the named slots harvest an
        entry.  For members mid-solve the pass is numerically idempotent
        — it re-exchanges unchanged interiors and recomputes ``Ax``/``r``
        from unchanged ``x``/``b`` — so their trajectories are
        unperturbed and their histories untouched.  Requests whose
        initial residual already passes their test retire immediately
        (mirroring a standalone solve that runs zero cycles).
        """
        residuals = self.vcycle.member_residuals()
        retired = []
        for slot in slots:
            active = self._active[slot]
            active.history.append(residuals[slot])
            if self._done(active):
                retired.append(self._retire(slot))
        return retired

    def _done(self, active: _ActiveRequest) -> bool:
        """The standalone solve-loop termination test, per request."""
        config = active.request.config
        return (
            active.history[-1] <= config.tol
            or len(active.history) > config.max_vcycles
        )

    def cycle(self) -> list[RequestResult]:
        """One cohort-wide V-cycle + residual pass; returns retirees."""
        if not self._active:
            return []
        self.occupancy_samples.append(
            (self.vcycle.cycles_run, len(self._active))
        )
        self.vcycle.run()
        residuals = self.vcycle.member_residuals()
        retired = []
        for slot in sorted(self._active):
            active = self._active[slot]
            active.history.append(residuals[slot])
            if self._done(active):
                retired.append(self._retire(slot))
        return retired

    def _retire(self, slot: int) -> RequestResult:
        """Snapshot the slot's solution, zero it, and free it."""
        active = self._active.pop(slot)
        config = active.request.config
        result = RequestResult(
            request=active.request,
            converged=active.history[-1] <= config.tol,
            num_vcycles=len(active.history) - 1,
            residual_history=list(active.history),
            solution=self._solution(slot),
            slot=slot,
            joined_at_cycle=active.joined_at_cycle,
            arrival_s=active.arrival_s,
        )
        self._reset_slot(slot)
        self._free.append(slot)
        self._free.sort()
        self.requests_retired += 1
        self.tracer.instant(
            "service:retire",
            slot=slot,
            request=active.request.request_id,
            vcycles=result.num_vcycles,
        )
        return result

    def _solution(self, slot: int) -> np.ndarray:
        """Assemble the member's global finest-level solution (mirrors
        :meth:`GMGSolver.solution`, reading through the adopted views)."""
        member = self.members[slot]
        N = self.config.global_cells
        out = np.empty((N, N, N), dtype=np.float64)
        per_rank = self.config.cells_per_rank
        for rank, levels in enumerate(member.rank_levels):
            o = member.topology.subdomain_origin(rank, per_rank)
            out[
                o[0] : o[0] + per_rank[0],
                o[1] : o[1] + per_rank[1],
                o[2] : o[2] + per_rank[2],
            ] = levels[0].x.to_ijk()
        return out

    # ------------------------------------------------------------------
    def solve_stream(
        self, requests, arrivals=None, clock=None
    ) -> list[RequestResult]:
        """Run an (optionally open-loop) request stream to completion.

        ``arrivals[i]`` is the offset (seconds on ``clock``) at which
        ``requests[i]`` becomes eligible; omitted arrivals are 0 (a
        closed batch).  Requests join at cycle boundaries as slots free
        up; the returned results carry arrival/completion stamps on
        ``clock`` for latency accounting.  Results are in retirement
        order.
        """
        import time as _time

        clock = clock or _time.perf_counter
        pending = list(zip(requests, arrivals or [0.0] * len(requests)))
        for request, _ in pending:
            if request.geometry_key != self.geometry_key:
                raise ValueError(
                    f"request {request.request_id} does not match this "
                    "cohort's geometry key"
                )
        t0 = clock()
        results: list[RequestResult] = []

        def _finalize(retirees) -> None:
            now = clock() - t0
            for result in retirees:
                result.completed_s = now
                results.append(result)

        with self.tracer.span(
            "cohort-stream", requests=len(pending), capacity=self.capacity
        ):
            while pending or self._active:
                now = clock() - t0
                joined = []
                while pending and self._free and pending[0][1] <= now:
                    request, arrival = pending.pop(0)
                    joined.append(self.admit(request, arrival_s=arrival))
                if joined:
                    _finalize(self.seed(joined))
                if self._active:
                    _finalize(self.cycle())
                # else: open-loop idle gap — spin until the next arrival
        for member in self.members:
            if member.comm is not None:
                member.comm.assert_drained()
        return results

    def occupancy(self) -> float:
        """Mean active-slot fraction over the cycles run so far."""
        if not self.occupancy_samples:
            return 0.0
        return float(
            np.mean([n for _, n in self.occupancy_samples])
        ) / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CohortSolver(capacity={self.capacity}, "
            f"active={self.active_count}, cycles={self.cycles_run})"
        )
