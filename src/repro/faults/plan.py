"""Deterministic fault plans.

A :class:`FaultPlan` is an ordered list of :class:`FaultSpec` entries.
Each spec is a predicate over the injection site — V-cycle index,
multigrid level, sending/receiving rank, neighbour direction — plus a
fault kind and a hit budget.  Matching is deterministic: the first spec
that matches a site and still has hits remaining fires, so a plan plus
a solver configuration fully determines every injected fault, which is
what lets tests assert recovery counts *exactly*.

``FaultPlan.random`` draws a plan from a seeded generator for sweep--
style stress tests; the draw is part of the plan's identity (same seed,
same plan), never runtime randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

import numpy as np

#: Message-path fault kinds (applied at the comm layer).
MESSAGE_FAULT_KINDS = ("drop", "corrupt", "duplicate", "delay")
#: Kernel-output fault kinds (applied to the smoother's result field).
KERNEL_FAULT_KINDS = ("sdc",)
#: Process-level fault kinds (kill a rank's SimComm endpoint outright).
RANK_FAULT_KINDS = ("rank_crash",)
ALL_FAULT_KINDS = MESSAGE_FAULT_KINDS + KERNEL_FAULT_KINDS + RANK_FAULT_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One fault predicate.

    Parameters
    ----------
    kind:
        ``drop`` / ``corrupt`` / ``duplicate`` / ``delay`` for message
        faults, ``sdc`` for NaN/Inf corruption of a kernel output,
        ``rank_crash`` to kill a rank's communicator endpoint.
    vcycle, level, rank, src, direction:
        Site predicates; ``None`` matches anything.  ``rank`` is the
        receiving rank for message faults, the owning rank for ``sdc``,
        and the crashing rank for ``rank_crash`` (required there);
        ``src`` is the sending rank; ``direction`` is the sender's
        neighbour direction (a 3-tuple of -1/0/1).  A ``rank_crash``
        with ``level=None`` fires at the start of the matching V-cycle;
        with a level pinned it fires at the first *communicating* touch
        of that level (halo exchange or agglomeration transfer).
    max_hits:
        How many times this spec fires before it is exhausted.
        ``None`` means unlimited — a *persistent* fault that defeats
        retransmission and exercises the recovery budget.
    sdc_value:
        The poison written by an ``sdc`` fault (NaN by default; use
        ``float('inf')`` for overflow-style corruption).
    """

    kind: str
    vcycle: int | None = None
    level: int | None = None
    rank: int | None = None
    src: int | None = None
    direction: tuple[int, int, int] | None = None
    max_hits: int | None = 1
    sdc_value: float = float("nan")
    #: match any vcycle >= this (for persistent faults that must keep
    #: striking across checkpoint rollbacks, whose re-executed cycles
    #: advance the solve clock past any single ``vcycle`` pin)
    vcycle_from: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {ALL_FAULT_KINDS}"
            )
        if self.max_hits is not None and self.max_hits < 1:
            raise ValueError(f"max_hits must be positive or None: {self.max_hits}")
        for name in ("vcycle", "vcycle_from", "level", "rank", "src"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(
                    f"{name} must be non-negative (the spec could never "
                    f"fire): {name}={value}"
                )
        if self.kind in RANK_FAULT_KINDS:
            if self.rank is None:
                raise ValueError(
                    "rank_crash specs must name the crashing rank"
                )
            if self.src is not None or self.direction is not None:
                raise ValueError(
                    "rank_crash kills a whole endpoint; src/direction "
                    "predicates do not apply"
                )
        if self.direction is not None:
            d = tuple(int(c) for c in self.direction)
            if len(d) != 3 or any(c not in (-1, 0, 1) for c in d) or d == (0, 0, 0):
                raise ValueError(f"direction must be a nonzero -1/0/1 triple: {d}")
            object.__setattr__(self, "direction", d)

    @property
    def is_message_fault(self) -> bool:
        return self.kind in MESSAGE_FAULT_KINDS

    @property
    def persistent(self) -> bool:
        return self.max_hits is None

    def matches_message(
        self,
        vcycle: int,
        level: int,
        src: int,
        dst: int,
        direction: tuple[int, int, int] | None,
    ) -> bool:
        # direction is None for messages with no halo geometry (the
        # agglomeration gather/scatter): a direction-pinned spec never
        # matches those, a direction-free spec matches them normally.
        return (
            self.is_message_fault
            and (self.vcycle is None or self.vcycle == vcycle)
            and (self.vcycle_from is None or vcycle >= self.vcycle_from)
            and (self.level is None or self.level == level)
            and (self.src is None or self.src == src)
            and (self.rank is None or self.rank == dst)
            and (
                self.direction is None
                or (direction is not None
                    and self.direction == tuple(direction))
            )
        )

    def matches_kernel(self, vcycle: int, level: int, rank: int) -> bool:
        return (
            self.kind == "sdc"
            and (self.vcycle is None or self.vcycle == vcycle)
            and (self.vcycle_from is None or vcycle >= self.vcycle_from)
            and (self.level is None or self.level == level)
            and (self.rank is None or self.rank == rank)
        )

    def matches_crash(self, vcycle: int, level: int | None) -> bool:
        """Does this crash spec fire at the given poll site?

        The driver polls with ``level=None`` at V-cycle start (matching
        level-free specs only); the exchange/transfer channels poll with
        their level (matching only specs pinned to it), so each spec
        fires at exactly one kind of site.
        """
        return (
            self.kind in RANK_FAULT_KINDS
            and (self.vcycle is None or self.vcycle == vcycle)
            and (self.vcycle_from is None or vcycle >= self.vcycle_from)
            and self.level == level
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable collection of fault specs."""

    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    @property
    def empty(self) -> bool:
        return not self.specs

    @property
    def total_planned_hits(self) -> int | None:
        """Sum of hit budgets, or ``None`` if any spec is persistent."""
        total = 0
        for spec in self.specs:
            if spec.max_hits is None:
                return None
            total += spec.max_hits
        return total

    def with_specs(self, extra: Iterable[FaultSpec]) -> "FaultPlan":
        return replace(self, specs=self.specs + tuple(extra))

    def validate_for(
        self, num_ranks: int, num_levels: int | None = None
    ) -> "FaultPlan":
        """Reject specs that could never fire on the given solver shape.

        A spec naming a rank or level outside the communicator/hierarchy
        would silently sit in the plan forever; failing loudly at
        construction time is the only way a typo in a chaos matrix gets
        noticed.  Returns ``self`` so callers can chain.
        """
        for i, spec in enumerate(self.specs):
            for attr in ("rank", "src"):
                value = getattr(spec, attr)
                if value is not None and value >= num_ranks:
                    raise ValueError(
                        f"spec {i} ({spec.kind}): {attr}={value} out of "
                        f"range for a {num_ranks}-rank communicator — "
                        "the spec could never fire"
                    )
            if (
                num_levels is not None
                and spec.level is not None
                and spec.level >= num_levels
            ):
                raise ValueError(
                    f"spec {i} ({spec.kind}): level={spec.level} out of "
                    f"range for a {num_levels}-level hierarchy — the "
                    "spec could never fire"
                )
            if spec.kind in RANK_FAULT_KINDS and num_ranks < 2:
                raise ValueError(
                    f"spec {i}: rank_crash needs a distributed solve "
                    "(>= 2 ranks) — a single-rank crash leaves no "
                    "survivors to run the recovery"
                )
        return self

    @classmethod
    def single(cls, kind: str, **kwargs) -> "FaultPlan":
        """A plan with one spec (convenience for tests and sweeps)."""
        return cls(specs=(FaultSpec(kind, **kwargs),))

    @classmethod
    def random(
        cls,
        seed: int,
        num_faults: int,
        kinds: tuple[str, ...] = MESSAGE_FAULT_KINDS,
        vcycles: tuple[int, int] = (1, 4),
        levels: tuple[int, ...] = (0,),
        num_ranks: int = 1,
    ) -> "FaultPlan":
        """A seeded burst of one-shot faults.

        Every draw comes from ``np.random.default_rng(seed)``, so the
        plan — and therefore the whole injected-fault schedule — is a
        pure function of its arguments.
        """
        if num_faults < 0:
            raise ValueError(f"num_faults must be non-negative: {num_faults}")
        for k in kinds:
            if k not in ALL_FAULT_KINDS:
                raise ValueError(f"unknown fault kind {k!r}")
        rng = np.random.default_rng(seed)
        specs = []
        for _ in range(num_faults):
            kind = kinds[int(rng.integers(len(kinds)))]
            spec = FaultSpec(
                kind=kind,
                vcycle=int(rng.integers(vcycles[0], vcycles[1] + 1)),
                level=int(levels[int(rng.integers(len(levels)))]),
                rank=int(rng.integers(num_ranks)) if kind == "sdc" else None,
                max_hits=1,
            )
            specs.append(spec)
        return cls(specs=tuple(specs))
