"""The ``python -m repro chaossweep`` rank-crash matrix.

Where :mod:`repro.faults.sweep` exercises message-level faults, the
chaos harness exercises the rank-failure pipeline end to end: a seeded
matrix of **crash time × crash count × checkpoint interval**, each cell
a small distributed solve with that many ranks killed at that cycle,
recovered through the buddy-restore / global-restart ladder.  Every
cell asserts the recovery SLO the ISSUE demands: the repaired solve
must reach the *same* residual tolerance as the fault-free reference
(and, because recovery replays deterministically from a coordinated
checkpoint or a deterministic restart, the solution is bit-identical).

Results land in the same schema-versioned JSONL ledger as perf runs
(:class:`~repro.obs.ledger.PerfLedger`), so resilience regressions —
MTTR growing, recoveries burning more cycles — gate exactly like perf
regressions.

Everything is seeded: the crash victims are drawn from
``np.random.default_rng(seed)``, so a (seed, matrix) pair fully
determines every injected crash and the sweep is reproducible
byte-for-byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.recovery import ResilienceConfig
from repro.gmg.solver import GMGSolver, SolverConfig
from repro.obs.ledger import LedgerEntry

#: ledger benchmark name for chaos runs (``<root>/chaos_sweep.jsonl``)
CHAOS_BENCHMARK = "chaos_sweep"


@dataclass(frozen=True)
class ChaosScenario:
    """One cell of the crash matrix."""

    name: str
    plan: FaultPlan
    checkpoint_interval: int
    expect_status: str = "converged"


@dataclass(frozen=True)
class ChaosRow:
    """One scenario's recovery outcome and SLO numbers."""

    scenario: str
    status: str
    crashes: int
    recovered_ranks: tuple[int, ...]
    rollbacks: int
    clean_vcycles: int
    executed_vcycles: int
    final_residual: float
    tolerance_met: bool
    bit_identical: bool
    mttr_ms: float
    bytes_restored: int
    cycles_lost: int


def default_chaos_config(
    rank_dims: tuple[int, int, int] = (2, 2, 2),
) -> SolverConfig:
    """The chaos workload: the sweep problem on an 8-rank grid."""
    return SolverConfig(
        global_cells=16,
        num_levels=2,
        brick_dim=4,
        max_smooths=6,
        bottom_smooths=20,
        rank_dims=rank_dims,
    )


def chaos_scenarios(
    seed: int,
    num_ranks: int,
    crash_cycles: tuple[int, ...] = (1, 3),
    crash_counts: tuple[int, ...] = (1, 2),
    checkpoint_intervals: tuple[int, ...] = (1, 2),
) -> list[ChaosScenario]:
    """The seeded crash matrix.

    One scenario per (cycle, count, interval) cell; the victims are
    drawn without replacement from the seeded generator, so a given
    seed names the same ranks on every run.
    """
    if num_ranks < 2:
        raise ValueError(
            f"the chaos matrix needs a distributed solve: {num_ranks} rank(s)"
        )
    rng = np.random.default_rng(seed)
    scenarios = []
    for cycle in crash_cycles:
        for count in crash_counts:
            count = min(count, num_ranks - 1)  # leave at least one survivor
            victims = sorted(
                int(r) for r in rng.choice(num_ranks, size=count, replace=False)
            )
            plan = FaultPlan(
                specs=tuple(
                    FaultSpec("rank_crash", rank=r, vcycle=cycle)
                    for r in victims
                )
            )
            for interval in checkpoint_intervals:
                scenarios.append(
                    ChaosScenario(
                        name=f"c{cycle}x{count}-k{interval}",
                        plan=plan,
                        checkpoint_interval=interval,
                    )
                )
    return scenarios


def storm_scenario(rank: int = 1) -> ChaosScenario:
    """An unrecoverable crash: the victim dies again after every repair.

    The persistent spec re-kills the rank on each post-repair cycle
    until the recovery budget is spent, so the solve must degrade to
    ``failed_faults`` — the chaos gate's inverted self-test uses this
    to prove an unrecoverable crash actually fails the job.
    """
    return ChaosScenario(
        name="crash-storm",
        plan=FaultPlan(
            specs=(
                FaultSpec("rank_crash", rank=rank, vcycle_from=1, max_hits=None),
            )
        ),
        checkpoint_interval=2,
        expect_status="failed_faults",
    )


def run_chaos_scenario(
    config: SolverConfig,
    scenario: ChaosScenario,
    reference_history: list[float],
    reference_solution: np.ndarray,
) -> ChaosRow:
    """Execute one cell and summarise the recovery."""
    resilience = ResilienceConfig(
        checkpoint_interval=scenario.checkpoint_interval
    )
    solver = GMGSolver(config, resilience=resilience, fault_plan=scenario.plan)
    result = solver.solve()
    reference_final = (
        reference_history[-1] if reference_history else float("nan")
    )
    tolerance_met = (
        math.isfinite(result.final_residual)
        and math.isfinite(reference_final)
        and result.final_residual <= max(config.tol, reference_final)
    )
    identical = result.status == "converged" and np.array_equal(
        solver.solution(), reference_solution
    )
    counts = result.fault_counts
    return ChaosRow(
        scenario=scenario.name,
        status=result.status,
        crashes=counts.get("inject_rank_crash", 0),
        recovered_ranks=tuple(result.recovered_ranks),
        rollbacks=result.rollbacks,
        clean_vcycles=result.num_vcycles,
        executed_vcycles=result.executed_vcycles,
        final_residual=result.final_residual,
        tolerance_met=tolerance_met,
        bit_identical=identical,
        mttr_ms=result.mttr_s * 1e3,
        bytes_restored=result.bytes_restored,
        cycles_lost=result.cycles_lost,
    )


def chaos_sweep(
    seed: int = 2024,
    rank_dims: tuple[int, int, int] = (2, 2, 2),
    crash_cycles: tuple[int, ...] = (1, 3),
    crash_counts: tuple[int, ...] = (1, 2),
    checkpoint_intervals: tuple[int, ...] = (1, 2),
    storm: bool = False,
) -> list[ChaosRow]:
    """Run the matrix (plus the storm cell when asked); one row per cell."""
    config = default_chaos_config(rank_dims)
    reference_solver = GMGSolver(config)
    reference = reference_solver.solve()
    reference_solution = reference_solver.solution()
    scenarios = chaos_scenarios(
        seed, config.num_ranks, crash_cycles, crash_counts,
        checkpoint_intervals,
    )
    if storm:
        scenarios.append(storm_scenario(rank=config.num_ranks - 1))
    return [
        run_chaos_scenario(
            config, sc, reference.residual_history, reference_solution
        )
        for sc in scenarios
    ]


def chaos_passed(rows: list[ChaosRow], storm: bool = False) -> bool:
    """The chaos gate: every cell recovered to the reference tolerance.

    With ``storm``, additionally require the storm cell to have
    degraded to ``failed_faults`` — and since an unrecoverable crash is
    present, the gate as a whole reports failure (the inverted
    self-test's contract: unrecoverable crashes fail the job).
    """
    matrix_ok = all(
        r.status == "converged" and r.tolerance_met and r.bit_identical
        for r in rows
        if r.scenario != "crash-storm"
    )
    if not storm:
        return matrix_ok
    return False  # a storm run always fails the gate, by design


def chaos_ledger_entry(
    rows: list[ChaosRow],
    seed: int,
    rank_dims: tuple[int, int, int],
) -> LedgerEntry:
    """One schema-versioned ledger entry for a chaos run.

    Metrics are lower-is-better recovery SLOs — per-cell MTTR and
    cycles lost, plus the count of cells that failed to recover — so
    the perf-gate machinery can flag resilience regressions unchanged.
    """
    metrics: dict[str, float] = {}
    unrecovered = 0
    for r in rows:
        if r.scenario == "crash-storm":
            continue  # the self-test cell is not an SLO sample
        metrics[f"{r.scenario}.mttr_ms"] = r.mttr_ms
        metrics[f"{r.scenario}.cycles_lost"] = float(r.cycles_lost)
        if not (r.status == "converged" and r.tolerance_met):
            unrecovered += 1
    metrics["unrecovered_cells"] = float(unrecovered)
    context = {
        "seed": seed,
        "rank_dims": list(rank_dims),
        "cells": [
            {
                "scenario": r.scenario,
                "status": r.status,
                "recovered_ranks": list(r.recovered_ranks),
                "bytes_restored": r.bytes_restored,
                "bit_identical": r.bit_identical,
            }
            for r in rows
        ],
    }
    return LedgerEntry(
        benchmark=CHAOS_BENCHMARK,
        metrics=metrics,
        source="chaossweep",
        context=context,
    )


def render_chaos_sweep(rows: list[ChaosRow]) -> str:
    """The chaossweep report table."""
    header = (
        f"{'scenario':<14} {'status':<13} {'crash':>5} {'recovered':>12} "
        f"{'rbk':>4} {'cycles':>6} {'lost':>4} {'residual':>10} "
        f"{'tol':>5} {'ident':>5} {'mttr(ms)':>8} {'restored':>9}"
    )
    lines = ["Chaos sweep — crash / repair / restore / converge"]
    lines += [header, "-" * len(header)]
    for r in rows:
        res = "nan" if math.isnan(r.final_residual) else f"{r.final_residual:.2e}"
        recovered = ",".join(str(x) for x in r.recovered_ranks) or "-"
        lines.append(
            f"{r.scenario:<14} {r.status:<13} {r.crashes:>5} {recovered:>12} "
            f"{r.rollbacks:>4} {r.clean_vcycles:>6} {r.cycles_lost:>4} "
            f"{res:>10} {str(r.tolerance_met):>5} {str(r.bit_identical):>5} "
            f"{r.mttr_ms:>8.2f} {r.bytes_restored:>9}"
        )
    ok = sum(
        1
        for r in rows
        if r.scenario != "crash-storm" and r.status == "converged"
    )
    cells = sum(1 for r in rows if r.scenario != "crash-storm")
    lines.append(f"recovered {ok}/{cells} matrix cells to reference tolerance")
    return "\n".join(lines)
