"""Fault injection, detection, and recovery for the distributed solver.

The paper scales the brick-based V-cycle to 512 GPUs, a regime where
dropped or corrupted ghost-exchange messages and silent data corruption
in kernel outputs are operational realities.  This package makes every
resilience claim testable:

* :mod:`~repro.faults.plan` — :class:`FaultSpec`/:class:`FaultPlan`:
  seeded, deterministic descriptions of *which* faults strike *where*
  (by V-cycle, level, rank, and neighbour direction);
* :mod:`~repro.faults.injector` — :class:`FaultInjector`: applies a
  plan at the comm layer (drop / bit-flip / duplicate / delay), at
  kernel outputs (NaN/Inf silent data corruption), and at the process
  level (``rank_crash`` killing a communicator endpoint);
* :mod:`~repro.faults.recovery` — :class:`ResilienceConfig` and
  :class:`ResilientDriver`: checksummed receives with bounded retry,
  residual-loop health checks, checkpoint/rollback of the finest-level
  solution, ULFM-style communicator repair with buddy restore for rank
  crashes, and graceful degradation to a ``failed_faults`` status;
* :mod:`~repro.faults.buddy` — :class:`BuddyCheckpointer`: replicates
  each rank's checkpoints onto an off-node partner so a crashed rank's
  state survives it;
* :mod:`~repro.faults.pricing` — prices retries, checkpoints, and
  rollbacks through the machine/network models so resilience overhead
  appears in the same units as the paper's figures;
* :mod:`~repro.faults.sweep` — the ``python -m repro faultsweep``
  scenario table demonstrating detection and recovery end to end;
* :mod:`~repro.faults.chaos` — the ``python -m repro chaossweep``
  rank-crash matrix with recovery-SLO ledger output.
"""

from repro.faults.buddy import BuddyCheckpointer
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    FaultSpec,
    MESSAGE_FAULT_KINDS,
    RANK_FAULT_KINDS,
)
from repro.faults.recovery import (
    STATUS_CONVERGED,
    STATUS_DIVERGED,
    STATUS_FAILED_FAULTS,
    STATUS_MAX_VCYCLES,
    ResilienceConfig,
    ResilientDriver,
)

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "BuddyCheckpointer",
    "MESSAGE_FAULT_KINDS",
    "RANK_FAULT_KINDS",
    "ResilienceConfig",
    "ResilientDriver",
    "STATUS_CONVERGED",
    "STATUS_MAX_VCYCLES",
    "STATUS_DIVERGED",
    "STATUS_FAILED_FAULTS",
]
