"""Prices resilience overhead with the machine and network models.

The recovery machinery records *what happened* (retries, checkpoints,
rollbacks) in the :class:`~repro.instrument.Recorder`; this module
converts those events into seconds on a concrete machine so fault
tolerance can be reported in the same units as the paper's figures:

* a retry costs a detection timeout (exponential backoff) plus the
  retransmitted message, via
  :func:`repro.machines.network.retransmit_time`;
* a checkpoint streams the finest-level solution through HBM twice
  (read + write of the device-resident snapshot);
* a rollback costs the restore copy plus the re-executed V-cycles,
  priced by :class:`~repro.harness.vcycle_sim.TimedSolve`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.instrument import Recorder
from repro.machines import network
from repro.machines.specs import MachineSpec

#: HBM passes per checkpoint/restore of the snapshot (read + write).
CHECKPOINT_RW_PASSES = 2


def checkpoint_seconds(machine: MachineSpec, nbytes: int) -> float:
    """One device-side snapshot (or restore) of ``nbytes`` of state."""
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative: {nbytes}")
    return CHECKPOINT_RW_PASSES * nbytes / (machine.gpu.hbm_measured_gbs * 1e9)


@dataclass(frozen=True)
class OverheadBreakdown:
    """Resilience overhead of one solve, in seconds by mechanism."""

    retries_s: float
    checkpoints_s: float
    rollbacks_s: float
    recompute_s: float

    @property
    def total_s(self) -> float:
        return self.retries_s + self.checkpoints_s + self.rollbacks_s + self.recompute_s


def resilience_overhead(
    machine: MachineSpec,
    recorder: Recorder,
    num_nodes: int = 1,
    ranks_per_node: int | None = None,
    recomputed_vcycles: int = 0,
    vcycle_seconds: float = 0.0,
) -> OverheadBreakdown:
    """Price one solve's recorded fault events on ``machine``.

    ``recomputed_vcycles`` is ``executed_vcycles - num_vcycles`` of the
    :class:`~repro.gmg.solver.SolveResult`; ``vcycle_seconds`` is the
    modelled time of one V-cycle (e.g. ``TimedSolve.time_per_vcycle``)
    used to price that re-executed work.
    """
    retries_s = sum(
        network.retransmit_time(
            machine, ev.nbytes, max(ev.attempt, 1), num_nodes, ranks_per_node
        )
        for ev in recorder.faults_of("retry")
    )
    checkpoints_s = sum(
        checkpoint_seconds(machine, ev.nbytes)
        for ev in recorder.faults_of("checkpoint")
    )
    rollbacks_s = sum(
        checkpoint_seconds(machine, ev.nbytes)
        for ev in recorder.faults_of("rollback")
    )
    return OverheadBreakdown(
        retries_s=retries_s,
        checkpoints_s=checkpoints_s,
        rollbacks_s=rollbacks_s,
        recompute_s=max(recomputed_vcycles, 0) * vcycle_seconds,
    )
