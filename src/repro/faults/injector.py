"""Applies a :class:`~repro.faults.plan.FaultPlan` during a solve.

The injector is consulted at two hook points:

* :meth:`FaultInjector.message_action` — by
  :class:`~repro.comm.exchange.HaloExchange` before every posted send
  (including retransmissions, so persistent specs can defeat retries);
* :meth:`FaultInjector.kernel_sdc` — by
  :class:`~repro.gmg.vcycle.VCycle` after every smoothing visit, to
  poison one interior cell of the just-written solution field;
* :meth:`FaultInjector.crashes_due` — by the resilient driver at
  V-cycle start and by the exchange/transfer channels on entry, to
  fire ``rank_crash`` specs (killing the victim's ``SimComm``
  endpoint).

The injector owns the *when are we* context (the current V-cycle index,
advanced by the resilient driver) and a hit counter per spec; all
randomness (the corrupted byte position, the poisoned cell) comes from
one generator seeded at construction, so a given plan injects an
identical fault sequence on every run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.plan import FaultPlan, FaultSpec
from repro.instrument import Recorder


@dataclass(frozen=True)
class FaultAction:
    """The comm layer's marching orders for one message.

    ``corrupt_byte``/``corrupt_bit`` locate the bit flip for
    ``kind == 'corrupt'`` (chosen by the injector so the transport stays
    mechanism-only).
    """

    kind: str  # 'drop' | 'corrupt' | 'duplicate' | 'delay'
    corrupt_byte: int = 0
    corrupt_bit: int = 0


class FaultInjector:
    """Stateful executor of a fault plan for one solve."""

    def __init__(
        self, plan: FaultPlan, recorder: Recorder | None = None, seed: int = 0
    ) -> None:
        self.plan = plan
        self.recorder = recorder
        self.vcycle = 0
        self._rng = np.random.default_rng(seed)
        self._hits_left = [spec.max_hits for spec in plan]
        self.injected = 0

    # ------------------------------------------------------------------
    def begin_vcycle(self, index: int) -> None:
        """Advance the solve clock (cycle 0 is the initial residual)."""
        self.vcycle = int(index)

    def _consume(self, idx: int) -> None:
        if self._hits_left[idx] is not None:
            self._hits_left[idx] -= 1
        self.injected += 1

    def _armed(self, idx: int) -> bool:
        left = self._hits_left[idx]
        return left is None or left > 0

    @property
    def exhausted(self) -> bool:
        """True once every bounded spec has fired its full budget."""
        return all(left is not None and left == 0 for left in self._hits_left)

    # ------------------------------------------------------------------
    # hook points
    # ------------------------------------------------------------------
    def message_action(
        self,
        level: int,
        src: int,
        dst: int,
        tag: int,
        direction: tuple[int, int, int],
        nbytes: int,
    ) -> FaultAction | None:
        """Fault to apply to the message being posted, if any."""
        for idx, spec in enumerate(self.plan):
            if not self._armed(idx):
                continue
            if not spec.matches_message(self.vcycle, level, src, dst, direction):
                continue
            self._consume(idx)
            action = FaultAction(spec.kind)
            if spec.kind == "corrupt":
                action = FaultAction(
                    "corrupt",
                    corrupt_byte=int(self._rng.integers(max(nbytes, 1))),
                    corrupt_bit=int(self._rng.integers(8)),
                )
            if self.recorder is not None:
                self.recorder.fault(
                    f"inject_{spec.kind}",
                    vcycle=self.vcycle,
                    level=level,
                    rank=dst,
                    src=src,
                    tag=tag,
                    nbytes=nbytes,
                )
            return action
        return None

    def crashes_due(self, level: int | None = None) -> list[int]:
        """Ranks whose ``rank_crash`` specs fire at this poll site.

        Called with ``level=None`` by the resilient driver at V-cycle
        start and with a concrete level by the exchange/transfer
        channels on entry to their collective; each spec matches exactly
        one kind of site (see :meth:`FaultSpec.matches_crash`).
        Consumes the matching specs' hit budgets and records one
        ``inject_rank_crash`` event per victim.
        """
        victims: list[int] = []
        for idx, spec in enumerate(self.plan):
            if not self._armed(idx):
                continue
            if not spec.matches_crash(self.vcycle, level):
                continue
            self._consume(idx)
            victims.append(spec.rank)
            if self.recorder is not None:
                self.recorder.fault(
                    "inject_rank_crash",
                    vcycle=self.vcycle,
                    level=-1 if level is None else level,
                    rank=spec.rank,
                )
        return victims

    def kernel_sdc(self, level: int, rank: int, field) -> bool:
        """Poison one interior cell of ``field`` if an sdc spec matches.

        ``field`` is a :class:`~repro.bricks.bricked_array.BrickedArray`
        (the smoother's output ``x``); the poisoned cell is drawn from
        the injector's seeded generator.
        """
        for idx, spec in enumerate(self.plan):
            if not self._armed(idx):
                continue
            if not spec.matches_kernel(self.vcycle, level, rank):
                continue
            self._consume(idx)
            self._poison(field, spec)
            if self.recorder is not None:
                self.recorder.fault(
                    "inject_sdc",
                    vcycle=self.vcycle,
                    level=level,
                    rank=rank,
                    detail=f"value={spec.sdc_value!r}",
                )
            return True
        return False

    def _poison(self, field, spec: FaultSpec) -> None:
        dense = field.to_ijk()
        flat_index = int(self._rng.integers(dense.size))
        dense.flat[flat_index] = spec.sdc_value
        field.set_interior(dense)
