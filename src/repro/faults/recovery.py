"""Detection, checkpoint/rollback, rank repair, and graceful degradation.

:class:`ResilientDriver` wraps the V-cycle residual loop (Algorithm 1)
with a fault-management state machine:

* **detect** — comm-layer anomalies surface as
  :class:`~repro.comm.exchange.ExchangeFaultError` once the exchange's
  retry budget is spent; numeric anomalies surface in the residual loop
  as NaN/Inf (silent data corruption reaching the convergence check),
  divergence (residual blowing past its best value), or stagnation;
  rank crashes surface as :class:`~repro.comm.simmpi.RankDeadError`
  from the first collective that touches the dead endpoint — the
  per-cycle residual reduction guarantees detection within one cycle;
* **retry** — handled inside :class:`~repro.comm.exchange.HaloExchange`
  (checksum validation plus bounded retransmission), invisible here
  except through the recorder;
* **rollback** — the finest-level solution is checkpointed every
  ``checkpoint_interval`` clean V-cycles; on an unrecoverable anomaly
  the solve restores the checkpoint, discards in-flight messages, and
  re-runs the lost cycles (deterministically, since the injector's
  one-shot specs have already fired);
* **repair** — for rank crashes: survivors agree on the dead set
  (ULFM ``MPIX_Comm_agree``), the communicator is repaired in place
  (revoke + shrink + respawn collapsed into one lockstep step), the
  exchange machinery is rebuilt, and the dead rank's finest-level
  bricks are adopted from its buddy replica
  (:class:`~repro.faults.buddy.BuddyCheckpointer`) while survivors
  roll back to the same coordinated checkpoint — so the replay is
  bit-identical to a crash-free solve from that checkpoint.  When no
  usable replica exists (the buddy died too, or the crash predates the
  first checkpoint) the ladder escalates to a **global restart**:
  deterministic state re-initialisation and a fresh solve from cycle
  zero;
* **degrade** — a bounded ``recovery_budget`` of recoveries; once
  spent, the solve stops with ``status='failed_faults'`` instead of
  raising.

The driver performs exactly the same numeric operations per cycle as
:meth:`repro.gmg.vcycle.VCycle.solve`, so with no faults injected its
results are bit-identical to the plain path (buddy shipping copies
state but never touches it).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.comm.exchange import ExchangeFaultError
from repro.comm.simmpi import RankDeadError
from repro.faults.injector import FaultInjector
from repro.instrument import Recorder
from repro.obs.tracer import NULL_TRACER

STATUS_CONVERGED = "converged"
STATUS_MAX_VCYCLES = "max_vcycles"
STATUS_DIVERGED = "diverged"
STATUS_FAILED_FAULTS = "failed_faults"

SOLVE_STATUSES = (
    STATUS_CONVERGED,
    STATUS_MAX_VCYCLES,
    STATUS_DIVERGED,
    STATUS_FAILED_FAULTS,
)


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the detect → retry → rollback/repair → degrade pipeline."""

    #: retransmission attempts per receive before the exchange gives up
    max_retries: int = 3
    #: clean V-cycles between finest-level solution checkpoints
    checkpoint_interval: int = 2
    #: recoveries (rollbacks, rank repairs, restarts) allowed before
    #: degrading to ``failed_faults``
    recovery_budget: int = 3
    #: residual exceeding ``divergence_factor × best-so-far`` is an anomaly
    divergence_factor: float = 1e3
    #: cycles with < ``stagnation_tol`` relative improvement → stagnation
    stagnation_window: int = 8
    stagnation_tol: float = 1e-3
    #: replicate each checkpoint onto a buddy rank so a rank crash can
    #: be repaired in place instead of forcing a global restart
    buddy_checkpoints: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ValueError(f"max_retries must be positive: {self.max_retries}")
        if self.checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be positive: {self.checkpoint_interval}"
            )
        if self.recovery_budget < 0:
            raise ValueError(
                f"recovery_budget must be non-negative: {self.recovery_budget}"
            )
        if self.divergence_factor <= 1.0:
            raise ValueError(
                f"divergence_factor must exceed 1: {self.divergence_factor}"
            )
        if self.stagnation_window < 2:
            raise ValueError(
                f"stagnation_window must be at least 2: {self.stagnation_window}"
            )


@dataclass
class _Checkpoint:
    """Finest-level solution snapshot plus the history that led to it."""

    cycle: int
    x_by_rank: list[np.ndarray]
    history: list[float]

    @property
    def nbytes(self) -> int:
        return sum(x.nbytes for x in self.x_by_rank)


@dataclass
class ResilientOutcome:
    """What the driver hands back to :class:`~repro.gmg.solver.GMGSolver`."""

    status: str
    residual_history: list[float]
    executed_vcycles: int
    rollbacks: int = 0
    #: ranks that crashed and were brought back (deduplicated, sorted)
    recovered_ranks: list[int] = field(default_factory=list)
    #: wall time spent inside rank repair (mean-time-to-repair total)
    mttr_s: float = 0.0
    #: bytes of dead-rank state adopted from buddy replicas
    bytes_restored: int = 0
    #: committed V-cycles discarded by crash recoveries
    cycles_lost: int = 0

    @property
    def converged(self) -> bool:
        return self.status == STATUS_CONVERGED

    @property
    def clean_vcycles(self) -> int:
        """Cycles surviving in the committed history (rolled-back work
        excluded)."""
        return max(len(self.residual_history) - 1, 0)


class ResilientDriver:
    """Runs Algorithm 1 under the fault model.

    Parameters
    ----------
    vcycle:
        The :class:`~repro.gmg.vcycle.VCycle` to drive.
    config:
        A :class:`ResilienceConfig`.
    injector:
        The active :class:`~repro.faults.injector.FaultInjector`, or
        ``None`` when only hardening (no injection) is wanted.
    recorder:
        Shared :class:`~repro.instrument.Recorder` for fault events.
    comm:
        The :class:`~repro.comm.simmpi.SimComm`, or ``None`` for
        single-rank runs (needed to purge in-flight messages on
        rollback and to repair after a rank crash).
    buddy:
        A :class:`~repro.faults.buddy.BuddyCheckpointer`, or ``None``
        to disable the buddy rung (crashes then escalate straight to a
        global restart).
    rebuild_channels:
        Zero-argument callable that rebuilds every exchange channel
        after a communicator repair (fresh exchangers, cleared
        envelope state); supplied by the solver.
    restart_state:
        Zero-argument callable that deterministically re-initialises
        the solve state (zero guess, analytic right-hand side) for the
        global-restart rung; supplied by the solver.
    tracer:
        Optional tracer; repairs run inside a ``rank-repair`` span.
    """

    def __init__(
        self,
        vcycle,
        config: ResilienceConfig,
        injector: FaultInjector | None = None,
        recorder: Recorder | None = None,
        comm=None,
        buddy=None,
        rebuild_channels=None,
        restart_state=None,
        tracer=None,
    ) -> None:
        self.vcycle = vcycle
        self.config = config
        self.injector = injector
        self.recorder = recorder
        self.comm = comm
        self.buddy = buddy
        self.rebuild_channels = rebuild_channels
        self.restart_state = restart_state
        self.tracer = tracer or NULL_TRACER
        self.recovered_ranks: list[int] = []
        self.mttr_s = 0.0
        self.bytes_restored = 0
        self.cycles_lost = 0

    # ------------------------------------------------------------------
    def _fault(self, kind: str, vcycle: int, **kw) -> None:
        if self.recorder is not None:
            self.recorder.fault(kind, vcycle=vcycle, **kw)

    def _snapshot(self, cycle: int, history: list[float]) -> _Checkpoint:
        ckpt = _Checkpoint(
            cycle=cycle,
            x_by_rank=[
                levels[0].x.data.copy() for levels in self.vcycle.rank_levels
            ],
            history=list(history),
        )
        self._fault("checkpoint", cycle, nbytes=ckpt.nbytes)
        if self.buddy is not None:
            # Ship inside the snapshot so the replica cycle always
            # matches the local checkpoint cycle (coordinated pair).
            self.buddy.ship(cycle, ckpt.x_by_rank)
        return ckpt

    def _restore(self, ckpt: _Checkpoint, at_cycle: int, reason: str) -> list[float]:
        for levels, saved in zip(self.vcycle.rank_levels, ckpt.x_by_rank):
            levels[0].x.data[...] = saved
        purged = 0
        if self.comm is not None:
            purged = self.comm.reset_in_flight()
            if purged:
                self._fault("purge", at_cycle, detail=f"{purged} messages")
        self._fault(
            "rollback",
            at_cycle,
            nbytes=ckpt.nbytes,
            detail=f"{reason}; restored checkpoint of cycle {ckpt.cycle}",
        )
        return list(ckpt.history)

    def _begin_vcycle(self, index: int) -> None:
        if self.injector is not None:
            self.injector.begin_vcycle(index)

    def _poll_crashes(self) -> None:
        """Fire level-free ``rank_crash`` specs at V-cycle start."""
        if self.injector is None or self.comm is None:
            return
        for rank in self.injector.crashes_due(None):
            self.comm.kill(rank)

    def _stagnated(self, history: list[float]) -> bool:
        w = self.config.stagnation_window
        if len(history) <= w:
            return False
        old, new = history[-1 - w], history[-1]
        if old <= 0:
            return False
        return (old - new) / old < self.config.stagnation_tol

    # ------------------------------------------------------------------
    def _recover_ranks(
        self,
        at_cycle: int,
        ckpt: _Checkpoint | None,
        history: list[float],
    ) -> list[float] | None:
        """Rungs two and three of the ladder: buddy restore, then
        global restart.

        Returns the restored residual history for the buddy rung, an
        empty list when the state was globally restarted (the caller
        re-derives the initial residual), or ``None`` when neither rung
        is available (no communicator, or no restart hook) — the caller
        then degrades to ``failed_faults``.
        """
        if self.comm is None:
            return None
        t0 = time.perf_counter()
        dead = list(self.comm.agree_dead())
        replicas: dict[int, np.ndarray] = {}
        if self.buddy is not None:
            self.buddy.invalidate(dead)
            for r in dead:
                snap = self.buddy.snapshot_for(r)
                if snap is not None and ckpt is not None and snap[0] == ckpt.cycle:
                    replicas[r] = snap[1]
        with self.tracer.span("rank-repair", cycle=at_cycle, dead=len(dead)):
            purged = self.comm.repair(revive=dead)
            if purged:
                self._fault("purge", at_cycle, detail=f"{purged} messages")
            if self.rebuild_channels is not None:
                self.rebuild_channels()
            self._fault(
                "comm_repair",
                at_cycle,
                detail=(
                    f"revived ranks {dead}; {purged} in-flight messages "
                    "discarded"
                ),
            )
            for r in dead:
                if r not in self.recovered_ranks:
                    self.recovered_ranks.append(r)
            self.recovered_ranks.sort()
            if ckpt is not None and len(replicas) == len(dead):
                # Buddy rung: adopt the dead ranks' replicas, roll the
                # survivors back to the same coordinated checkpoint.
                for rank, levels in enumerate(self.vcycle.rank_levels):
                    saved = replicas.get(rank)
                    if saved is None:
                        saved = ckpt.x_by_rank[rank]
                    levels[0].x.data[...] = saved
                restored = 0
                for r in dead:
                    nbytes = int(replicas[r].nbytes)
                    restored += nbytes
                    self._fault(
                        "buddy_restore", at_cycle, rank=r, nbytes=nbytes,
                        detail=f"replica of cycle {ckpt.cycle}",
                    )
                self.bytes_restored += restored
                self.cycles_lost += (len(history) - 1 - ckpt.cycle) + 1
                self._fault(
                    "rollback", at_cycle, nbytes=ckpt.nbytes,
                    detail=(
                        "rank crash; restored checkpoint of cycle "
                        f"{ckpt.cycle}"
                    ),
                )
                out: list[float] | None = list(ckpt.history)
            elif self.restart_state is not None:
                # Global-restart rung: deterministic re-initialisation.
                missing = sorted(set(dead) - set(replicas))
                self.restart_state()
                self._fault(
                    "global_restart", at_cycle,
                    detail=(
                        f"no usable replica for ranks {missing}"
                        if missing
                        else "crash before the first checkpoint"
                    ),
                )
                self.cycles_lost += len(history) or 1
                out = []
            else:
                out = None
        self.mttr_s += time.perf_counter() - t0
        return out

    def _outcome(
        self, status: str, history: list[float], executed: int, rollbacks: int
    ) -> ResilientOutcome:
        return ResilientOutcome(
            status, history, executed, rollbacks,
            recovered_ranks=list(self.recovered_ranks),
            mttr_s=self.mttr_s,
            bytes_restored=self.bytes_restored,
            cycles_lost=self.cycles_lost,
        )

    # ------------------------------------------------------------------
    def solve(self, tol: float, max_vcycles: int) -> ResilientOutcome:
        """Run to convergence, ``max_vcycles``, or fault exhaustion.

        Never raises on injected faults: every anomaly is detected,
        retried/rolled back/repaired while budget remains, and
        converted into a structured status otherwise.  ``history is
        None`` marks "solve state needs (re)establishing" — entered at
        solve start and re-entered after a global restart.
        """
        cfg = self.config
        executed = 0
        rollbacks = 0
        budget = cfg.recovery_budget
        history: list[float] | None = None
        ckpt: _Checkpoint | None = None
        while True:
            if history is None:
                self._begin_vcycle(0)
                self._poll_crashes()
                try:
                    history = [self.vcycle.max_norm_residual()]
                except ExchangeFaultError as exc:
                    self._fault("give_up", 0, level=exc.level, rank=exc.rank,
                                src=exc.src, detail="initial residual unavailable")
                    return self._outcome(STATUS_FAILED_FAULTS, [], executed, rollbacks)
                except RankDeadError as exc:
                    self._fault("detect_rank_crash", 0, rank=exc.rank)
                    if budget <= 0:
                        self._fault("give_up", 0, rank=exc.rank,
                                    detail="rank crash with no recovery budget")
                        return self._outcome(
                            STATUS_FAILED_FAULTS, [], executed, rollbacks
                        )
                    budget -= 1
                    rollbacks += 1
                    if self._recover_ranks(0, None, []) is None:
                        self._fault("give_up", 0, rank=exc.rank,
                                    detail="unrecoverable rank crash")
                        return self._outcome(
                            STATUS_FAILED_FAULTS, [], executed, rollbacks
                        )
                    history = None  # re-derive from the restarted state
                    continue
                ckpt = self._snapshot(0, history)
            if history[-1] <= tol:
                return self._outcome(STATUS_CONVERGED, history, executed, rollbacks)
            if len(history) - 1 >= max_vcycles:
                return self._outcome(
                    STATUS_MAX_VCYCLES, history, executed, rollbacks
                )
            executed += 1
            self._begin_vcycle(executed)
            self._poll_crashes()
            anomaly = None
            crash: RankDeadError | None = None
            try:
                if self.injector is not None:
                    # Injected NaN/Inf propagating through the stencil
                    # kernels is the *point* of the SDC model, not a
                    # numpy warning condition.
                    with np.errstate(invalid="ignore", over="ignore"):
                        self.vcycle.run()
                        res = self.vcycle.max_norm_residual()
                else:
                    self.vcycle.run()
                    res = self.vcycle.max_norm_residual()
            except ExchangeFaultError as exc:
                anomaly = (
                    f"exchange fault at level {exc.level} "
                    f"(rank {exc.rank} ← rank {exc.src})"
                )
                res = math.nan
            except RankDeadError as exc:
                crash = exc
                anomaly = f"rank {exc.rank} crashed"
                self._fault("detect_rank_crash", executed, rank=exc.rank)
                res = math.nan
            if anomaly is None and not math.isfinite(res):
                anomaly = f"non-finite residual {res!r}"
                self._fault("detect_sdc", executed, detail=anomaly)
            best = min(history)
            if anomaly is None and best > 0 and res > cfg.divergence_factor * best:
                anomaly = (
                    f"residual {res:.3e} exceeds {cfg.divergence_factor:g}x "
                    f"best {best:.3e}"
                )
                self._fault("detect_divergence", executed, detail=anomaly)
                if self.injector is None:
                    # Plain divergence with no faults in play is a
                    # numerics problem; rolling back cannot fix it.
                    return self._outcome(
                        STATUS_DIVERGED, history, executed, rollbacks
                    )
            if anomaly is not None:
                if budget <= 0:
                    self._fault("give_up", executed, detail=anomaly)
                    return self._outcome(
                        STATUS_FAILED_FAULTS, history, executed, rollbacks
                    )
                budget -= 1
                rollbacks += 1
                if crash is not None:
                    restored = self._recover_ranks(executed, ckpt, history)
                    if restored is None:
                        self._fault("give_up", executed, rank=crash.rank,
                                    detail="unrecoverable rank crash")
                        return self._outcome(
                            STATUS_FAILED_FAULTS, history, executed, rollbacks
                        )
                    if restored:
                        history = restored
                    else:
                        history = None  # global restart: re-derive state
                        ckpt = None
                    continue
                history = self._restore(ckpt, executed, anomaly)
                continue
            history.append(res)
            if self._stagnated(history):
                self._fault(
                    "detect_stagnation",
                    executed,
                    detail=(
                        f"<{cfg.stagnation_tol:g} relative progress over "
                        f"{cfg.stagnation_window} cycles"
                    ),
                )
                return self._outcome(STATUS_DIVERGED, history, executed, rollbacks)
            clean = len(history) - 1
            if clean - ckpt.cycle >= cfg.checkpoint_interval:
                ckpt = self._snapshot(clean, history)
