"""Detection, checkpoint/rollback, and graceful degradation.

:class:`ResilientDriver` wraps the V-cycle residual loop (Algorithm 1)
with a fault-management state machine:

* **detect** — comm-layer anomalies surface as
  :class:`~repro.comm.exchange.ExchangeFaultError` once the exchange's
  retry budget is spent; numeric anomalies surface in the residual loop
  as NaN/Inf (silent data corruption reaching the convergence check),
  divergence (residual blowing past its best value), or stagnation;
* **retry** — handled inside :class:`~repro.comm.exchange.HaloExchange`
  (checksum validation plus bounded retransmission), invisible here
  except through the recorder;
* **rollback** — the finest-level solution is checkpointed every
  ``checkpoint_interval`` clean V-cycles; on an unrecoverable anomaly
  the solve restores the checkpoint, discards in-flight messages, and
  re-runs the lost cycles (deterministically, since the injector's
  one-shot specs have already fired);
* **degrade** — a bounded ``recovery_budget`` of rollbacks; once spent,
  the solve stops with ``status='failed_faults'`` instead of raising.

The driver performs exactly the same numeric operations per cycle as
:meth:`repro.gmg.vcycle.VCycle.solve`, so with no faults injected its
results are bit-identical to the plain path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.comm.exchange import ExchangeFaultError
from repro.faults.injector import FaultInjector
from repro.instrument import Recorder

STATUS_CONVERGED = "converged"
STATUS_MAX_VCYCLES = "max_vcycles"
STATUS_DIVERGED = "diverged"
STATUS_FAILED_FAULTS = "failed_faults"

SOLVE_STATUSES = (
    STATUS_CONVERGED,
    STATUS_MAX_VCYCLES,
    STATUS_DIVERGED,
    STATUS_FAILED_FAULTS,
)


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the detect → retry → rollback → degrade pipeline."""

    #: retransmission attempts per receive before the exchange gives up
    max_retries: int = 3
    #: clean V-cycles between finest-level solution checkpoints
    checkpoint_interval: int = 2
    #: rollbacks allowed before degrading to ``failed_faults``
    recovery_budget: int = 3
    #: residual exceeding ``divergence_factor × best-so-far`` is an anomaly
    divergence_factor: float = 1e3
    #: cycles with < ``stagnation_tol`` relative improvement → stagnation
    stagnation_window: int = 8
    stagnation_tol: float = 1e-3

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ValueError(f"max_retries must be positive: {self.max_retries}")
        if self.checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be positive: {self.checkpoint_interval}"
            )
        if self.recovery_budget < 0:
            raise ValueError(
                f"recovery_budget must be non-negative: {self.recovery_budget}"
            )
        if self.divergence_factor <= 1.0:
            raise ValueError(
                f"divergence_factor must exceed 1: {self.divergence_factor}"
            )
        if self.stagnation_window < 2:
            raise ValueError(
                f"stagnation_window must be at least 2: {self.stagnation_window}"
            )


@dataclass
class _Checkpoint:
    """Finest-level solution snapshot plus the history that led to it."""

    cycle: int
    x_by_rank: list[np.ndarray]
    history: list[float]

    @property
    def nbytes(self) -> int:
        return sum(x.nbytes for x in self.x_by_rank)


@dataclass
class ResilientOutcome:
    """What the driver hands back to :class:`~repro.gmg.solver.GMGSolver`."""

    status: str
    residual_history: list[float]
    executed_vcycles: int
    rollbacks: int = 0

    @property
    def converged(self) -> bool:
        return self.status == STATUS_CONVERGED

    @property
    def clean_vcycles(self) -> int:
        """Cycles surviving in the committed history (rolled-back work
        excluded)."""
        return max(len(self.residual_history) - 1, 0)


class ResilientDriver:
    """Runs Algorithm 1 under the fault model.

    Parameters
    ----------
    vcycle:
        The :class:`~repro.gmg.vcycle.VCycle` to drive.
    config:
        A :class:`ResilienceConfig`.
    injector:
        The active :class:`~repro.faults.injector.FaultInjector`, or
        ``None`` when only hardening (no injection) is wanted.
    recorder:
        Shared :class:`~repro.instrument.Recorder` for fault events.
    comm:
        The :class:`~repro.comm.simmpi.SimComm`, or ``None`` for
        single-rank runs (needed to purge in-flight messages on
        rollback).
    """

    def __init__(
        self,
        vcycle,
        config: ResilienceConfig,
        injector: FaultInjector | None = None,
        recorder: Recorder | None = None,
        comm=None,
    ) -> None:
        self.vcycle = vcycle
        self.config = config
        self.injector = injector
        self.recorder = recorder
        self.comm = comm

    # ------------------------------------------------------------------
    def _fault(self, kind: str, vcycle: int, **kw) -> None:
        if self.recorder is not None:
            self.recorder.fault(kind, vcycle=vcycle, **kw)

    def _snapshot(self, cycle: int, history: list[float]) -> _Checkpoint:
        ckpt = _Checkpoint(
            cycle=cycle,
            x_by_rank=[
                levels[0].x.data.copy() for levels in self.vcycle.rank_levels
            ],
            history=list(history),
        )
        self._fault("checkpoint", cycle, nbytes=ckpt.nbytes)
        return ckpt

    def _restore(self, ckpt: _Checkpoint, at_cycle: int, reason: str) -> list[float]:
        for levels, saved in zip(self.vcycle.rank_levels, ckpt.x_by_rank):
            levels[0].x.data[...] = saved
        purged = 0
        if self.comm is not None:
            purged = self.comm.reset_in_flight()
            if purged:
                self._fault("purge", at_cycle, detail=f"{purged} messages")
        self._fault(
            "rollback",
            at_cycle,
            nbytes=ckpt.nbytes,
            detail=f"{reason}; restored checkpoint of cycle {ckpt.cycle}",
        )
        return list(ckpt.history)

    def _begin_vcycle(self, index: int) -> None:
        if self.injector is not None:
            self.injector.begin_vcycle(index)

    def _stagnated(self, history: list[float]) -> bool:
        w = self.config.stagnation_window
        if len(history) <= w:
            return False
        old, new = history[-1 - w], history[-1]
        if old <= 0:
            return False
        return (old - new) / old < self.config.stagnation_tol

    # ------------------------------------------------------------------
    def solve(self, tol: float, max_vcycles: int) -> ResilientOutcome:
        """Run to convergence, ``max_vcycles``, or fault exhaustion.

        Never raises on injected faults: every anomaly is detected,
        retried/rolled back while budget remains, and converted into a
        structured status otherwise.
        """
        cfg = self.config
        self._begin_vcycle(0)
        try:
            history = [self.vcycle.max_norm_residual()]
        except ExchangeFaultError as exc:
            self._fault("give_up", 0, level=exc.level, rank=exc.rank,
                        src=exc.src, detail="initial residual unavailable")
            return ResilientOutcome(STATUS_FAILED_FAULTS, [], 0)
        executed = 0
        rollbacks = 0
        budget = cfg.recovery_budget
        ckpt = self._snapshot(0, history)
        while True:
            if history[-1] <= tol:
                return ResilientOutcome(STATUS_CONVERGED, history, executed, rollbacks)
            if len(history) - 1 >= max_vcycles:
                return ResilientOutcome(
                    STATUS_MAX_VCYCLES, history, executed, rollbacks
                )
            executed += 1
            self._begin_vcycle(executed)
            anomaly = None
            try:
                if self.injector is not None:
                    # Injected NaN/Inf propagating through the stencil
                    # kernels is the *point* of the SDC model, not a
                    # numpy warning condition.
                    with np.errstate(invalid="ignore", over="ignore"):
                        self.vcycle.run()
                        res = self.vcycle.max_norm_residual()
                else:
                    self.vcycle.run()
                    res = self.vcycle.max_norm_residual()
            except ExchangeFaultError as exc:
                anomaly = (
                    f"exchange fault at level {exc.level} "
                    f"(rank {exc.rank} ← rank {exc.src})"
                )
                res = math.nan
            if anomaly is None and not math.isfinite(res):
                anomaly = f"non-finite residual {res!r}"
                self._fault("detect_sdc", executed, detail=anomaly)
            best = min(history)
            if anomaly is None and best > 0 and res > cfg.divergence_factor * best:
                anomaly = (
                    f"residual {res:.3e} exceeds {cfg.divergence_factor:g}x "
                    f"best {best:.3e}"
                )
                self._fault("detect_divergence", executed, detail=anomaly)
                if self.injector is None:
                    # Plain divergence with no faults in play is a
                    # numerics problem; rolling back cannot fix it.
                    return ResilientOutcome(
                        STATUS_DIVERGED, history, executed, rollbacks
                    )
            if anomaly is not None:
                if budget <= 0:
                    self._fault("give_up", executed, detail=anomaly)
                    return ResilientOutcome(
                        STATUS_FAILED_FAULTS, history, executed, rollbacks
                    )
                budget -= 1
                rollbacks += 1
                history = self._restore(ckpt, executed, anomaly)
                continue
            history.append(res)
            if self._stagnated(history):
                self._fault(
                    "detect_stagnation",
                    executed,
                    detail=(
                        f"<{cfg.stagnation_tol:g} relative progress over "
                        f"{cfg.stagnation_window} cycles"
                    ),
                )
                return ResilientOutcome(STATUS_DIVERGED, history, executed, rollbacks)
            clean = len(history) - 1
            if clean - ckpt.cycle >= cfg.checkpoint_interval:
                ckpt = self._snapshot(clean, history)
