"""The ``python -m repro faultsweep`` scenario table.

Runs one small distributed solve per fault scenario — message drop,
bit-flip corruption, duplication, delay, kernel SDC (NaN and Inf), a
seeded random burst, and a persistent drop storm — against a fault-free
reference, and reports for each: what was injected, what was detected,
how the solver recovered (retries / rollbacks / extra V-cycles), the
terminal status, whether the final solution is bit-identical to the
reference, and the modelled resilience overhead on a paper machine.

Everything is seeded and lockstep-deterministic: running the sweep
twice produces byte-identical tables, which is what makes the
acceptance claims testable (``tests/test_faults.py`` asserts the event
counts scenario by scenario).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.pricing import resilience_overhead
from repro.faults.recovery import ResilienceConfig
from repro.gmg.solver import GMGSolver, SolveResult, SolverConfig


@dataclass(frozen=True)
class SweepScenario:
    """One named fault plan to push through the solver."""

    name: str
    plan: FaultPlan
    expect_status: str = "converged"


@dataclass(frozen=True)
class SweepRow:
    """One scenario's outcome."""

    scenario: str
    status: str
    injected: int
    detected: int
    retries: int
    rollbacks: int
    clean_vcycles: int
    executed_vcycles: int
    final_residual: float
    bit_identical: bool
    overhead_ms: float

    @property
    def extra_vcycles(self) -> int:
        return self.executed_vcycles - self.clean_vcycles


def default_config(rank_dims: tuple[int, int, int] = (2, 1, 1)) -> SolverConfig:
    """The sweep's workload: a small distributed solve (fast, multi-rank)."""
    return SolverConfig(
        global_cells=16,
        num_levels=2,
        brick_dim=4,
        max_smooths=6,
        bottom_smooths=20,
        rank_dims=rank_dims,
    )


def default_scenarios(seed: int, num_ranks: int) -> list[SweepScenario]:
    """The standard battery, seeded for the random burst."""
    return [
        SweepScenario("no-faults", FaultPlan()),
        SweepScenario("drop-message", FaultPlan.single("drop", vcycle=1, level=0)),
        SweepScenario(
            "corrupt-message", FaultPlan.single("corrupt", vcycle=1, level=0)
        ),
        SweepScenario(
            "duplicate-message", FaultPlan.single("duplicate", vcycle=2, level=0)
        ),
        SweepScenario("delay-message", FaultPlan.single("delay", vcycle=1, level=0)),
        SweepScenario(
            "sdc-nan-finest", FaultPlan.single("sdc", vcycle=2, level=0, rank=0)
        ),
        SweepScenario(
            "sdc-inf-coarse",
            FaultPlan.single(
                "sdc", vcycle=3, level=1, rank=num_ranks - 1,
                sdc_value=float("inf"),
            ),
        ),
        SweepScenario(
            "random-burst",
            FaultPlan.random(
                seed, num_faults=4, vcycles=(1, 4), levels=(0, 1),
                num_ranks=num_ranks,
            ),
        ),
        SweepScenario(
            "drop-storm",
            FaultPlan(
                specs=(FaultSpec("drop", vcycle_from=1, level=0, max_hits=None),)
            ),
            expect_status="failed_faults",
        ),
    ]


def _run_reference(config: SolverConfig) -> tuple[SolveResult, np.ndarray]:
    solver = GMGSolver(config)
    return solver.solve(), solver.solution()


def run_scenario(
    config: SolverConfig,
    scenario: SweepScenario,
    reference_solution: np.ndarray,
    machine=None,
    resilience: ResilienceConfig | None = None,
) -> SweepRow:
    """Execute one scenario and summarise its recorder."""
    resilience = resilience or ResilienceConfig()
    solver = GMGSolver(config, resilience=resilience, fault_plan=scenario.plan)
    result = solver.solve()
    identical = result.status == "converged" and np.array_equal(
        solver.solution(), reference_solution
    )
    overhead_ms = 0.0
    if machine is not None:
        from repro.gmg.solver import estimate_solve_time

        per_vcycle = (
            estimate_solve_time(config, machine, num_vcycles=1)
            if result.executed_vcycles
            else 0.0
        )
        breakdown = resilience_overhead(
            machine,
            result.recorder,
            num_nodes=solver.topology.num_nodes,
            ranks_per_node=config.ranks_per_node,
            recomputed_vcycles=result.executed_vcycles - result.num_vcycles,
            vcycle_seconds=per_vcycle,
        )
        overhead_ms = breakdown.total_s * 1e3
    rec = result.recorder
    return SweepRow(
        scenario=scenario.name,
        status=result.status,
        injected=rec.injected_faults,
        detected=rec.detected_faults,
        retries=rec.retries,
        rollbacks=rec.rollbacks,
        clean_vcycles=result.num_vcycles,
        executed_vcycles=result.executed_vcycles,
        final_residual=result.final_residual,
        bit_identical=identical,
        overhead_ms=overhead_ms,
    )


def fault_sweep(
    seed: int = 2024,
    machine_name: str | None = "Perlmutter",
    rank_dims: tuple[int, int, int] = (2, 1, 1),
) -> list[SweepRow]:
    """Run the full battery; returns one row per scenario."""
    machine = None
    if machine_name is not None:
        from repro.machines import MACHINES

        machine = MACHINES[machine_name]
    config = default_config(rank_dims)
    _, reference = _run_reference(config)
    rows = []
    for scenario in default_scenarios(seed, config.num_ranks):
        rows.append(run_scenario(config, scenario, reference, machine))
    return rows


def sweep_ledger_entry(
    rows: list[SweepRow],
    seed: int,
    rank_dims: tuple[int, int, int],
    machine_name: str | None = None,
) -> "LedgerEntry":
    """One schema-versioned ledger entry for a faultsweep run.

    The same shape as perf-ledger records (flat lower-is-better
    metrics), so resilience sweeps are tracked — and gated — alongside
    perf runs in ``benchmarks/results/ledger/``.  Per scenario: the
    modelled recovery overhead and the V-cycles re-executed after
    rollbacks; plus the count of scenarios that failed to land on
    their expected status.
    """
    from repro.obs.ledger import LedgerEntry

    metrics: dict[str, float] = {}
    unexpected = 0
    for r in rows:
        metrics[f"{r.scenario}.overhead_ms"] = r.overhead_ms
        metrics[f"{r.scenario}.extra_vcycles"] = float(r.extra_vcycles)
        recovered = r.status == "converged" and r.bit_identical
        if not recovered and r.status != "failed_faults":
            unexpected += 1
    metrics["unexpected_outcomes"] = float(unexpected)
    return LedgerEntry(
        benchmark="fault_sweep",
        metrics=metrics,
        source="faultsweep",
        context={
            "seed": seed,
            "rank_dims": list(rank_dims),
            "machine": machine_name or "",
            "statuses": {r.scenario: r.status for r in rows},
        },
    )


def render_fault_sweep(rows: list[SweepRow], machine_name: str | None = None) -> str:
    """The faultsweep report table."""
    header = (
        f"{'scenario':<18} {'status':<13} {'inj':>4} {'det':>4} {'rty':>4} "
        f"{'rbk':>4} {'cycles':>6} {'extra':>5} {'residual':>10} "
        f"{'identical':>9} {'ovh(ms)':>8}"
    )
    lines = ["Fault sweep — detect / retry / rollback / degrade"]
    if machine_name:
        lines[0] += f" (overhead modelled on {machine_name})"
    lines += [header, "-" * len(header)]
    for r in rows:
        res = "nan" if math.isnan(r.final_residual) else f"{r.final_residual:.2e}"
        lines.append(
            f"{r.scenario:<18} {r.status:<13} {r.injected:>4} {r.detected:>4} "
            f"{r.retries:>4} {r.rollbacks:>4} {r.clean_vcycles:>6} "
            f"{r.extra_vcycles:>5} {res:>10} "
            f"{str(r.bit_identical):>9} {r.overhead_ms:>8.3f}"
        )
    recovered = sum(1 for r in rows if r.status == "converged")
    lines.append(
        f"recovered {recovered}/{len(rows)} scenarios; "
        f"degraded gracefully in {sum(1 for r in rows if r.status == 'failed_faults')}"
    )
    return "\n".join(lines)
