"""Buddy (neighbor-replicated) in-memory checkpointing.

Local checkpoints (:class:`~repro.faults.recovery._Checkpoint`) die
with the rank that took them, so a rank crash would otherwise always
escalate to a global restart.  The buddy scheme gives every rank an
off-node partner (:meth:`~repro.comm.topology.CartTopology.buddy_rank`)
that holds a replica of its finest-level solution bricks: at every
checkpoint the coordinated snapshot is *shipped* over the same priced,
checksummed, retransmission-protected envelope protocol halo traffic
uses, so replication cost is visible in the message accounting and a
message fault striking a snapshot in flight is healed by the normal
retry machinery.

Replica traffic travels with ``level=-1`` and ``direction=None``, so
level- or direction-pinned fault specs never strike it by accident —
only a spec written against the buddy band can.  Replica payloads are
kept exactly as received (no copy-on-store is needed because the
sender snapshots at ship time), keyed by the *protected* rank, and a
replica hosted on a rank that later dies is invalidated: blank respawn
memory holds no state, exactly like a real ULFM respawn.
"""

from __future__ import annotations

import numpy as np

from repro.comm.exchange import ResilientChannel, payload_checksum
from repro.instrument import Recorder

#: tag for buddy snapshot shipments — its own band, above the halo
#: direction tags (0..26), the SubComm bands (100+), and the
#: agglomeration transfer band (10_000+)
BUDDY_TAG = 20_000


class BuddyCheckpointer(ResilientChannel):
    """Ships per-rank snapshot replicas to buddy ranks and serves them
    back during recovery.

    One instance covers the whole (lockstep-simulated) communicator:
    :meth:`ship` moves every rank's snapshot to its partner in a single
    collective-style phase (all sends posted, then all receives), and
    :meth:`snapshot_for` hands a dead rank's replica to the repair
    path.  The store maps *protected* rank to ``(cycle, payload)`` so
    recovery can check the replica is from the same coordinated
    checkpoint the survivors are rolling back to.
    """

    def __init__(
        self,
        comm,
        topology,
        recorder: Recorder | None = None,
        injector=None,
        max_retries: int = 3,
        tracer=None,
    ) -> None:
        super().__init__(
            comm, recorder=recorder, injector=injector,
            max_retries=max_retries, tracer=tracer,
        )
        self.buddy_of = [topology.buddy_rank(r) for r in range(comm.size)]
        #: replica store on each buddy: protected rank -> (cycle, payload)
        self._store: dict[int, tuple[int, np.ndarray]] = {}
        self.shipped_bytes = 0

    # ------------------------------------------------------------------
    def ship(self, cycle: int, x_by_rank: list[np.ndarray]) -> int:
        """Replicate every rank's snapshot onto its buddy.

        ``x_by_rank`` is the coordinated checkpoint the driver just
        took (one finest-level solution array per rank); each rank's
        copy travels to ``buddy_of[rank]`` tagged :data:`BUDDY_TAG` at
        ``level=-1``.  Returns the bytes shipped this round.
        """
        size = self.comm.size
        total = 0
        with self.tracer.span("buddy-checkpoint", cycle=int(cycle), ranks=size):
            for rank in range(size):
                payload = x_by_rank[rank]
                checksum = action = None
                if self.injector is not None:
                    checksum = payload_checksum(payload)
                    action = self.injector.message_action(
                        -1, rank, self.buddy_of[rank], BUDDY_TAG, None,
                        payload.nbytes,
                    )
                self.comm.isend(
                    rank, self.buddy_of[rank], BUDDY_TAG, payload,
                    checksum=checksum, fault=action, level=-1,
                )
            for rank in range(size):
                buddy = self.buddy_of[rank]
                expected = tuple(x_by_rank[rank].shape)
                payload = self._receive_payload(
                    -1, buddy, rank, BUDDY_TAG, expected, direction=None,
                    context=(
                        f"rank {buddy}'s replica of rank {rank}'s "
                        f"cycle-{cycle} snapshot"
                    ),
                    what="buddy snapshot",
                )
                self._store[rank] = (int(cycle), payload)
                total += int(payload.nbytes)
                if self.recorder is not None:
                    self.recorder.fault(
                        "buddy_checkpoint", vcycle=int(cycle), level=-1,
                        rank=buddy, src=rank, tag=BUDDY_TAG,
                        nbytes=int(payload.nbytes),
                    )
        self.shipped_bytes += total
        return total

    # ------------------------------------------------------------------
    def invalidate(self, dead) -> list[int]:
        """Drop replicas hosted on dead ranks; return who lost coverage.

        A replica lives in its host buddy's memory, so it dies with the
        host: after ``invalidate``, :meth:`snapshot_for` for the listed
        ranks returns ``None`` and recovery must escalate past the
        buddy rung for them.
        """
        dead = set(int(r) for r in dead)
        lost = sorted(
            r for r in list(self._store) if self.buddy_of[r] in dead
        )
        for r in lost:
            del self._store[r]
        return lost

    def snapshot_for(self, rank: int) -> tuple[int, np.ndarray] | None:
        """The ``(cycle, payload)`` replica protecting ``rank``, if alive."""
        return self._store.get(int(rank))
