"""Command-line interface: ``python -m repro <command>``.

Mirrors the paper artifact's runner (``<exe> -s 512,512,512 -I 10 -l 6
-n 20``): a ``solve`` command for the functional solver plus one
command per paper experiment, printing the same rows the paper
reports.  ``all`` regenerates everything.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _solver_config(args: argparse.Namespace):
    from repro.gmg import SolverConfig

    dims = tuple(int(v) for v in args.ranks.split(","))
    return SolverConfig(
        global_cells=args.size,
        num_levels=args.levels,
        brick_dim=args.brick,
        max_smooths=args.smooths,
        bottom_smooths=args.bottom,
        max_vcycles=args.max_cycles,
        rank_dims=dims,
        smoother=args.smoother,
        bottom_solver=args.bottom_solver,
        cycle=args.cycle,
        boundary=args.boundary,
        communication_avoiding=not args.no_ca,
        halo_resident=args.engine in ("halo", "full"),
        fuse_kernels=args.engine in ("fuse", "full"),
        batch_ranks=args.engine in ("batch", "full"),
        agglomerate_threshold=getattr(args, "agglomerate_threshold", None),
        overlap=getattr(args, "overlap", False),
    )


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.gmg import GMGSolver

    config = _solver_config(args)
    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer()
    solver = GMGSolver(config, tracer=tracer)
    print(
        f"solving {args.size}^3 over {config.num_ranks} rank(s), "
        f"{args.levels} levels, {args.brick}^3 bricks, "
        f"smoother={args.smoother}, bottom={args.bottom_solver}, "
        f"cycle={args.cycle}, boundary={args.boundary}, "
        f"engine={args.engine}"
    )
    if solver.agglomerator is not None:
        print("agglomeration plan:")
        for line in solver.agglomerator.plan.describe().splitlines():
            print(f"  {line}")
    result = solver.solve()
    for cycle, res in enumerate(result.residual_history):
        print(f"  cycle {cycle:2d}: maxNormRes = {res:.6e}")
    print(
        f"converged={result.converged} in {result.num_vcycles} cycles "
        f"(convergence factor {result.convergence_factor:.3f})"
    )
    if tracer is not None:
        from repro.obs import span_coverage, write_chrome_trace

        write_chrome_trace(
            tracer,
            args.trace,
            metadata={
                "tool": "repro solve",
                "global_cells": config.global_cells,
                "num_levels": config.num_levels,
                "status": result.status,
            },
        )
        print(
            f"wrote trace to {args.trace} ({len(tracer.spans)} spans, "
            f"{len(tracer.instants)} instants, span coverage "
            f"{span_coverage(tracer):.1%}; open in chrome://tracing or "
            f"https://ui.perfetto.dev)"
        )
    if args.verify:
        from repro.gmg import discrete_solution
        from repro.gmg.problem import discrete_solution_dirichlet

        if args.boundary == "dirichlet":
            exact = discrete_solution_dirichlet((args.size,) * 3, 1.0 / args.size)
        elif args.boundary == "neumann":
            print("(no closed-form reference for the Neumann variant)")
            return 0 if result.converged else 1
        else:
            exact = discrete_solution((args.size,) * 3, 1.0 / args.size)
        err = float(np.abs(solver.solution() - exact).max())
        print(f"max error vs closed-form discrete solution: {err:.3e}")
    return 0 if result.converged else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.obs import profile_solve, validate_chrome_trace_file

    config = _solver_config(args)
    machine = None if args.machine == "none" else args.machine
    report = profile_solve(config, machine_name=machine, trace_path=args.trace)
    print(report.render())
    if args.trace:
        counts = validate_chrome_trace_file(args.trace)
        print(
            f"wrote trace to {args.trace} ({counts['spans']} spans, "
            f"{counts['instants']} instants; open in chrome://tracing or "
            f"https://ui.perfetto.dev)"
        )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_json(), fh, indent=1)
        print(f"wrote profile JSON to {args.json}")
    ok = report.result.status in ("converged", "max_vcycles")
    if not ok:
        print(f"profile FAILED: solve ended with status {report.result.status}")
        return 1
    min_coverage = args.min_coverage / 100.0
    if report.coverage < min_coverage:
        print(
            f"profile FAILED: span coverage {report.coverage:.1%} is below "
            f"the --min-coverage floor of {min_coverage:.1%} (instrumented "
            f"spans account for too little of the solve span)"
        )
        return 1
    return 0


def _cmd_commviz(args: argparse.Namespace) -> int:
    from repro.gmg import GMGSolver
    from repro.harness.ascii_plot import ascii_matrix, ascii_plot
    from repro.obs import Tracer, write_chrome_trace
    from repro.obs.rank import (
        critical_paths,
        fit_message_model,
        message_time_samples,
        overlap_report,
        rank_time_breakdown,
        render_overlap_report,
        traffic_matrix,
    )

    config = _solver_config(args)
    if config.num_ranks < 2:
        print("commviz needs a distributed solve; pass e.g. --ranks 2,2,2")
        return 2
    machine = None
    if args.machine != "none":
        from repro.machines import MACHINES

        machine = MACHINES[args.machine]
    tracer = Tracer()
    solver = GMGSolver(config, tracer=tracer)
    result = solver.solve()
    print(
        f"communication view: {args.size}^3 over {config.num_ranks} ranks "
        f"({args.ranks}), {args.levels} levels, status={result.status}"
    )
    traffic = traffic_matrix(tracer, size=config.num_ranks)
    print()
    print(ascii_matrix(traffic.messages, title="messages (src -> dst)"))
    print(ascii_matrix(traffic.nbytes, title="bytes (src -> dst)"))
    if traffic.total_retransmissions:
        print(
            ascii_matrix(
                traffic.retransmissions, title="retransmissions (src -> dst)"
            )
        )
    by_level = ", ".join(
        f"l{lev}: {int(traffic.level_nbytes[lev].sum())} B "
        f"/ {int(traffic.level_messages[lev].sum())} msg"
        for lev in traffic.levels()
    )
    print(f"per-level traffic: {by_level}")

    print()
    print("per-rank time breakdown (ms):")
    breakdown = rank_time_breakdown(tracer)
    names = sorted({n for b in breakdown.values() for n in b})
    header = "  rank" + "".join(f"  {n:>11}" for n in names) + f"  {'total':>11}"
    print(header)
    for rank, by_name in breakdown.items():
        cells = "".join(f"  {by_name.get(n, 0.0) * 1e3:11.3f}" for n in names)
        print(f"  {rank:4d}{cells}  {sum(by_name.values()) * 1e3:11.3f}")

    print()
    print(render_overlap_report(overlap_report(tracer)))

    print()
    print("per-V-cycle critical path (longest send->recv dependency chain):")
    paths = critical_paths(tracer, machine=machine)
    for p in paths:
        model = f"  model {p.model_s * 1e3:8.3f} ms" if p.model_s is not None else ""
        print(
            f"  vcycle {p.vcycle:2d}: {len(p.steps):3d} spans, "
            f"{p.comm_bytes:9d} B on path, measured {p.duration_s * 1e3:8.3f} ms "
            f"(window {p.window_s * 1e3:8.3f} ms){model}"
        )
    if paths:
        longest = max(paths, key=lambda p: p.duration_s)
        hops = " -> ".join(
            f"r{s.rank}:{s.name}[l{s.level}]" for s in longest.steps[:8]
        )
        more = "" if len(longest.steps) <= 8 else f" -> ... ({len(longest.steps)} total)"
        print(f"  longest (vcycle {longest.vcycle}): {hops}{more}")

    fit = fit_message_model(tracer)
    if fit is not None:
        xs, ts = message_time_samples(tracer)
        print()
        print(
            f"measured send-time fit t = alpha + n/beta: "
            f"alpha={fit.alpha * 1e6:.3g} us, "
            f"beta={fit.beta / 1e9:.3g} GB/s, R^2={fit.r_squared:.3f}"
        )
        resid = ts - np.asarray(fit.time(xs))
        print(
            f"fit residuals: max |r| = {np.abs(resid).max() * 1e6:.3g} us "
            f"over {len(ts)} sends"
        )
        print(
            ascii_plot(
                {"measured": (xs, ts), "fit": (xs, np.asarray(fit.time(xs)))},
                x_label="message bytes",
                y_label="send seconds",
            )
        )
    if args.trace:
        write_chrome_trace(
            tracer,
            args.trace,
            metadata={
                "tool": "repro commviz",
                "global_cells": config.global_cells,
                "num_ranks": config.num_ranks,
                "status": result.status,
            },
        )
        print(
            f"wrote rank-resolved trace to {args.trace} "
            f"(one pid per rank; open in https://ui.perfetto.dev)"
        )
    ok = result.status in ("converged", "max_vcycles")
    ok = ok and all(p.duration_s <= p.window_s for p in paths)
    return 0 if ok else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json
    import os
    import pathlib

    from repro.perf.sweep import SweepConfig, run_sweep

    config = SweepConfig.from_file(args.config)
    quick = args.quick or bool(os.environ.get("REPRO_BENCH_QUICK"))
    n_cells = 1
    for values in config.axes.values():
        n_cells *= len(values)
    print(
        f"sweep '{config.name}': expanding "
        + " x ".join(f"{k}[{len(v)}]" for k, v in config.axes.items())
        + f" -> {n_cells} cells"
        + (" (quick)" if quick else "")
    )
    report = run_sweep(
        config, quick=quick, rounds=args.rounds, progress=print
    )
    print()
    print(report.render())

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    stem = f"sweep_{config.name}"
    txt_path = out / f"{stem}.txt"
    txt_path.write_text(report.render())
    json_path = pathlib.Path(args.json) if args.json else out / f"{stem}.json"
    with open(json_path, "w") as fh:
        json.dump(report.to_json(), fh, indent=1, sort_keys=True)
    html_path = pathlib.Path(args.html) if args.html else out / f"{stem}.html"
    html_path.write_text(report.to_html())
    print(f"wrote {txt_path}, {json_path}, {html_path}")

    entries = report.ledger_entries()
    if args.update:
        for entry in entries:
            _record_sweep_entry(entry, args.ledger)
        print(
            f"gate the matrix with: repro perfgate --ledger {args.ledger} "
            f"--series 'sweep_{config.name}.*' --noise-scaled"
        )
    if not report.ok:
        bad = [r.cell.label for r in report.cells if not r.ok]
        print(f"sweep FAILED: cells ended badly: {bad}")
        return 1
    return 0


def _series_gate(args, ledger) -> int:
    """Gate the newest entry of every matching series (perfgate --series)."""
    import fnmatch

    from repro.obs.ledger import (
        baseline_from_entries,
        compare_metrics,
        metric_dispersions,
        noise_thresholds,
    )

    patterns = [p.strip() for p in args.series.split(",") if p.strip()]
    names = sorted(
        name
        for name in ledger.benchmarks()
        if any(fnmatch.fnmatch(name, p) for p in patterns)
    )
    if not names:
        print(f"no ledger series match {patterns}")
        return 1
    exit_code = 0
    for name in names:
        entries = ledger.entries(name)
        if len(entries) < args.window + 1:
            print(
                f"{name}: {len(entries)} entries < window+1 "
                f"({args.window + 1}) — not gating"
            )
            continue
        candidate = entries[-1]
        history = entries[:-1][-args.window:]
        metrics = dict(candidate.metrics)
        if args.inject_slowdown:
            factor = 1.0 + args.inject_slowdown / 100.0
            metrics = {k: v * factor for k, v in metrics.items()}
        thresholds = None
        if args.noise_scaled:
            thresholds = noise_thresholds(
                metric_dispersions(history, window=args.window),
                floor=args.threshold,
            )
        result = compare_metrics(
            baseline_from_entries(history),
            metrics,
            name,
            threshold=args.threshold,
            thresholds=thresholds,
        )
        print(result.render())
        if not result.ok and not args.warn_only:
            exit_code = 1
    if args.inject_slowdown:
        print(f"(candidates carried a synthetic "
              f"{args.inject_slowdown:g}% slowdown)")
    if exit_code == 0 and args.warn_only:
        print("(warn-only: regressions reported but not gating)")
    return exit_code


def _list_ledger(args, ledger) -> int:
    """Inventory the ledger for CI logs (perfgate --list)."""
    from repro.obs.ledger import metric_dispersions

    names = ledger.benchmarks()
    if not names:
        print(f"no ledger series under {ledger.root}")
        return 0
    print(
        f"performance ledger at {ledger.root} "
        f"(min-of-{args.window} baselines):"
    )
    print(
        f"  {'series':<44}{'entries':>8}{'metrics':>8}{'noise':>7}"
        f"  baseline   last recorded"
    )
    for name in names:
        entries = ledger.entries(name)
        disp = metric_dispersions(entries, window=args.window)
        rels = sorted(d.rel_iqr for d in disp.values())
        median_rel = rels[len(rels) // 2] if rels else 0.0
        armed = len(entries) >= args.window
        status = "armed" if armed else f"n<{args.window}"
        last = entries[-1].recorded_at or "-" if entries else "-"
        print(
            f"  {name:<44}{len(entries):>8}{len(disp):>8}"
            f"{median_rel * 100:>6.1f}%  {status:<9}  {last}"
        )
    return 0


def _cmd_perfgate(args: argparse.Namespace) -> int:
    from datetime import datetime, timezone

    from repro.obs.ledger import (
        LedgerEntry,
        PerfLedger,
        compare_metrics,
        load_candidate,
        measure_hotpath,
        metric_dispersions,
        noise_thresholds,
    )

    ledger = PerfLedger(args.ledger)
    if args.list:
        return _list_ledger(args, ledger)
    if args.series:
        return _series_gate(args, ledger)
    if args.candidate:
        candidate = load_candidate(args.candidate)
        print(f"candidate: {args.candidate} ({len(candidate.metrics)} metrics)")
    else:
        schedule = "overlap" if args.overlap else "sync"
        print(
            f"measuring hot-path candidate (best of {args.rounds} rounds, "
            f"{schedule} schedule)..."
        )
        candidate = measure_hotpath(rounds=args.rounds, overlap=args.overlap)
    if args.inject_slowdown:
        factor = 1.0 + args.inject_slowdown / 100.0
        candidate = LedgerEntry(
            benchmark=candidate.benchmark,
            metrics={k: v * factor for k, v in candidate.metrics.items()},
            source=candidate.source,
            context={**candidate.context,
                     "injected_slowdown_pct": args.inject_slowdown},
            recorded_at=candidate.recorded_at,
        )
        print(f"injected a synthetic {args.inject_slowdown:g}% slowdown")

    benchmark = candidate.benchmark
    # Gate only against a full min-of-k window: an empty or
    # shorter-than-k history (fresh checkout, truncated file, first
    # runs after a ledger reset) has not absorbed run-to-run noise yet,
    # so it takes the no-baseline path — record-and-exit-0, never an
    # error or a gate against a single noisy sample.
    history = ledger.entries(benchmark)
    exit_code = 0
    if len(history) < args.window:
        print(
            f"no baseline for {benchmark!r} in {ledger.path(benchmark)} — "
            f"{len(history)} recorded entries < min-of-{args.window} window, "
            f"nothing to gate against"
        )
    else:
        baseline = ledger.baseline_metrics(benchmark, window=args.window)
        thresholds = None
        if args.noise_scaled:
            thresholds = noise_thresholds(
                metric_dispersions(history, window=args.window),
                floor=args.threshold,
            )
        result = compare_metrics(
            baseline, candidate.metrics, benchmark,
            threshold=args.threshold, thresholds=thresholds,
        )
        print(result.render())
        if not result.ok:
            exit_code = 0 if args.warn_only else 1
            if args.warn_only:
                print("(warn-only: regressions reported but not gating)")
    if args.update:
        if args.inject_slowdown:
            print("refusing to record a synthetically slowed candidate")
        else:
            candidate.recorded_at = datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            )
            path = ledger.record(candidate)
            print(f"recorded candidate in {path}")
    return exit_code


def _experiment_commands() -> dict:
    from repro.harness import experiments as E
    from repro.harness import reporting as R
    from repro.perf import ai_comparison_rows

    def scaling(fn):
        def run() -> str:
            return "\n".join(
                R.render_scaling(fn(m))
                for m in ("Perlmutter", "Frontier", "Sunspot")
            )

        return run

    return {
        "fig3": lambda: R.render_fig3(E.fig3_time_per_level()),
        "fig4": lambda: R.render_fig4(E.fig4_vs_hpgmg()),
        "table2": lambda: R.render_table2(E.table2_op_breakdown()),
        "fig5": lambda: (
            R.render_fig5(E.fig5_kernel_throughput("applyOp"))
            + R.render_fig5(E.fig5_kernel_throughput("smooth+residual"))
        ),
        "fig6": lambda: R.render_fig6(E.fig6_exchange_bandwidth()),
        "table3": lambda: R.render_portability(
            E.table3_portability_roofline(), "Table III — Phi (Roofline fraction)"
        ),
        "table4": lambda: R.render_table4(ai_comparison_rows()),
        "table5": lambda: R.render_portability(
            E.table5_portability_ai(), "Table V — Phi (theoretical AI fraction)"
        ),
        "fig7": lambda: R.render_fig7(E.fig7_potential_speedup()),
        "fig8": scaling(E.fig8_weak_scaling),
        "fig9": scaling(E.fig9_strong_scaling),
        "ablations": lambda: "\n".join(
            R.render_ablation(E.ablation_optimizations(m))
            for m in ("Perlmutter", "Frontier", "Sunspot")
        ),
    }


def _cmd_experiment(args: argparse.Namespace) -> int:
    commands = _experiment_commands()
    names = list(commands) if args.which == "all" else [args.which]
    for name in names:
        print(commands[name]())
    if args.json:
        from repro.harness.export import export_all

        written = export_all(args.json)
        print(f"wrote {len(written)} JSON series to {args.json}")
    return 0


def _record_sweep_entry(entry, ledger_dir: str) -> None:
    """Stamp and append a sweep's ledger entry (shared by both sweeps)."""
    from datetime import datetime, timezone

    from repro.obs.ledger import PerfLedger

    entry.recorded_at = datetime.now(timezone.utc).isoformat(
        timespec="seconds"
    )
    path = PerfLedger(ledger_dir).record(entry)
    print(f"recorded sweep in {path}")


def _cmd_faultsweep(args: argparse.Namespace) -> int:
    from repro.faults.sweep import (
        fault_sweep,
        render_fault_sweep,
        sweep_ledger_entry,
    )

    machine = None if args.machine == "none" else args.machine
    dims = tuple(int(v) for v in args.ranks.split(","))
    rows = fault_sweep(seed=args.seed, machine_name=machine, rank_dims=dims)
    print(render_fault_sweep(rows, machine))
    if args.update:
        _record_sweep_entry(
            sweep_ledger_entry(rows, args.seed, dims, machine), args.ledger
        )
    # Success = every scenario ended in a structured status and the
    # recoverable ones converged back to the reference solution.
    recoverable = [r for r in rows if r.scenario != "drop-storm"]
    ok = all(r.status == "converged" for r in recoverable) and all(
        r.bit_identical for r in recoverable
    )
    return 0 if ok else 1


def _cmd_chaossweep(args: argparse.Namespace) -> int:
    from repro.faults.chaos import (
        chaos_ledger_entry,
        chaos_passed,
        chaos_sweep,
        render_chaos_sweep,
    )

    dims = tuple(int(v) for v in args.ranks.split(","))
    cycles = tuple(int(v) for v in args.crash_cycles.split(","))
    counts = tuple(int(v) for v in args.crash_counts.split(","))
    intervals = tuple(int(v) for v in args.checkpoint_intervals.split(","))
    rows = chaos_sweep(
        seed=args.seed,
        rank_dims=dims,
        crash_cycles=cycles,
        crash_counts=counts,
        checkpoint_intervals=intervals,
        storm=args.storm,
    )
    print(render_chaos_sweep(rows))
    if args.update:
        _record_sweep_entry(chaos_ledger_entry(rows, args.seed, dims), args.ledger)
    ok = chaos_passed(rows, storm=args.storm)
    if args.storm:
        storm_rows = [r for r in rows if r.scenario == "crash-storm"]
        degraded = all(r.status == "failed_faults" for r in storm_rows)
        print(
            "crash-storm cell "
            + ("degraded to failed_faults as designed" if degraded
               else f"ended {[r.status for r in storm_rows]} — NOT degrading")
        )
        print("storm run: unrecoverable crash present, gate fails by design")
    return 0 if ok else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.harness.validation import render_validation, run_validation

    results = run_validation()
    print(render_validation(results))
    return 0 if all(r.passed for r in results) else 1


def _cmd_autotune(args: argparse.Namespace) -> int:
    from repro.harness.autotune import autotune, render_tuning, sweep_prior
    from repro.machines import MACHINES

    prior = None
    if args.from_ledger:
        prior = sweep_prior(args.from_ledger, prefix=args.prior_prefix)
        if prior:
            measured = ", ".join(
                f"B{b}={ms:.1f}ms" for b, ms in sorted(prior.items())
            )
            print(f"sweep-ledger prior: {measured}")
        else:
            print(
                f"no {args.prior_prefix}* series under {args.from_ledger} "
                "pin a brick_dim; running pure-model"
            )
    machines = list(MACHINES) if args.machine == "all" else [args.machine]
    for name in machines:
        print(render_tuning(autotune(MACHINES[name], prior=prior)))
    return 0


def _loadgen_config(args: argparse.Namespace):
    from repro.service.loadgen import smoke_config

    overrides = {}
    if args.size is not None:
        overrides["global_cells"] = args.size
    if args.levels is not None:
        overrides["num_levels"] = args.levels
    if args.brick is not None:
        overrides["brick_dim"] = args.brick
    return smoke_config(**overrides)


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from repro.obs.ledger import LedgerEntry
    from repro.service.loadgen import run_loadgen

    base = _loadgen_config(args)
    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer()
    rate = args.rate if args.rate and args.rate > 0 else None
    print(
        f"loadgen: {args.requests} request(s) over {base.global_cells}^3 "
        f"cells, {base.num_levels} levels, {base.brick_dim}^3 bricks, "
        f"capacity {args.capacity}, seed {args.seed}, "
        + (f"open-loop {rate:g}/s" if rate else "closed batch")
        + (f", best of {args.repeats}" if args.repeats > 1 else "")
    )
    report = run_loadgen(
        base,
        num_requests=args.requests,
        capacity=args.capacity,
        seed=args.seed,
        rate_hz=rate,
        baseline=not args.no_baseline,
        repeats=args.repeats,
        tracer=tracer,
    )
    print(f"  solves/sec         {report.solves_per_sec:10.1f}")
    if not args.no_baseline:
        print(f"  sequential/sec     {report.sequential_solves_per_sec:10.1f}")
        print(f"  speedup            {report.speedup:10.2f}x")
    print(f"  p50 latency        {report.metrics['p50_ms']:10.1f} ms")
    print(f"  p95 latency        {report.metrics['p95_ms']:10.1f} ms")
    print(f"  occupancy          {report.occupancy:10.1%}")
    print(f"  cycles run         {report.cycles_run:10d}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_json(), fh, indent=1, sort_keys=True)
        print(f"wrote report to {args.json}")
    if tracer is not None:
        from repro.obs import write_chrome_trace

        write_chrome_trace(
            tracer, args.trace, metadata={"tool": "repro loadgen"}
        )
        print(f"wrote trace to {args.trace}")
    if args.update:
        entry = LedgerEntry(
            benchmark="service.loadgen",
            metrics=dict(report.metrics),
            source="loadgen",
            context=dict(report.context),
        )
        _record_sweep_entry(entry, args.ledger)
        print(
            f"gate the series with: repro perfgate --ledger {args.ledger} "
            f"--series 'service.*' --noise-scaled --warn-only"
        )
    if args.min_speedup is not None and not args.no_baseline:
        if report.speedup < args.min_speedup:
            print(
                f"loadgen FAILED: speedup {report.speedup:.2f}x < "
                f"required {args.min_speedup:g}x"
            )
            return 1
        print(f"speedup {report.speedup:.2f}x >= {args.min_speedup:g}x")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    import sys as _sys

    from repro.service import SolveRequest, SolveService
    from repro.service.loadgen import smoke_config

    if args.requests_file == "-":
        payload = json.load(_sys.stdin)
    else:
        with open(args.requests_file) as fh:
            payload = json.load(fh)
    if isinstance(payload, list):
        payload = {"requests": payload}
    base = smoke_config(**payload.get("config", {}))
    requests = [
        SolveRequest(
            config=base,
            amplitude=float(spec.get("amplitude", 1.0)),
            request_id=str(spec.get("request_id", f"req-{k}")),
        )
        for k, spec in enumerate(payload["requests"])
    ]
    if not requests:
        print("no requests in batch", file=_sys.stderr)
        return 1
    service = SolveService(capacity=args.capacity)
    results = service.submit(requests)
    out = {
        "results": [
            {
                "request_id": r.request.request_id,
                "converged": r.converged,
                "num_vcycles": r.num_vcycles,
                "final_residual": r.final_residual,
                "latency_ms": 1e3 * r.latency_s,
                "slot": r.slot,
                "joined_at_cycle": r.joined_at_cycle,
            }
            for r in results
        ],
        "num_cohorts": service.num_cohorts,
    }
    text = json.dumps(out, indent=1, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(
            f"served {len(results)} request(s) "
            f"({sum(r.converged for r in results)} converged); "
            f"wrote {args.out}"
        )
    else:
        print(text)
    return 0 if all(r.converged for r in results) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Brick-based geometric multigrid (SC 2024 reproduction): "
            "functional solves and paper-experiment regeneration."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_solver_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("-s", "--size", type=int, default=32,
                       help="global cells per dimension (default 32)")
        p.add_argument("-l", "--levels", type=int, default=3,
                       help="multigrid levels (default 3)")
        p.add_argument("-b", "--brick", type=int, default=4,
                       help="brick dimension (default 4)")
        p.add_argument("--smooths", type=int, default=12,
                       help="smooths per level visit (default 12)")
        p.add_argument("--bottom", type=int, default=100,
                       help="bottom-solver iterations (default 100)")
        p.add_argument("-n", "--max-cycles", type=int, default=100,
                       help="maximum cycles (default 100)")
        p.add_argument("--ranks", default="1,1,1",
                       help="rank grid, e.g. 2,2,2 (default 1,1,1)")
        p.add_argument("--smoother", default="jacobi",
                       choices=["jacobi", "gsrb", "sor", "chebyshev"])
        p.add_argument("--bottom-solver", default="relaxation",
                       choices=["relaxation", "cg", "fft"])
        p.add_argument("--cycle", default="V", choices=["V", "W", "F"])
        p.add_argument("--boundary", default="periodic",
                       choices=["periodic", "dirichlet", "neumann"])
        p.add_argument("--engine", default="off",
                       choices=["off", "halo", "fuse", "batch", "full"],
                       help="execution engine: halo-resident storage, "
                            "fused kernels, cross-rank batching, or all "
                            "three (bit-identical to 'off', faster)")
        p.add_argument("--no-ca", action="store_true",
                       help="disable communication-avoiding smoothing")
        p.add_argument("--overlap", action="store_true",
                       help="split-phase halo exchange: post sends, "
                            "compute interior bricks while envelopes are "
                            "in flight, wait only before the shell pass "
                            "(bit-identical to the synchronous schedule)")
        p.add_argument("--agglomerate-threshold", type=int, default=None,
                       metavar="POINTS",
                       help="merge coarse-level subdomains onto fewer "
                            "ranks once a level drops below POINTS cells "
                            "per rank (bit-identical history, fewer "
                            "messages; default: off)")
        p.add_argument("--trace", metavar="FILE",
                       help="write a Chrome trace-event JSON of the solve "
                            "(open in chrome://tracing or Perfetto)")

    solve = sub.add_parser("solve", help="run the functional GMG solver")
    add_solver_args(solve)
    solve.add_argument("--verify", action="store_true",
                       help="check against the closed-form solution")
    solve.set_defaults(func=_cmd_solve)

    profile = sub.add_parser(
        "profile",
        help="run a traced solve and print the measured per-level "
             "breakdown next to the machine model's predictions",
    )
    add_solver_args(profile)
    profile.add_argument(
        "--machine",
        default="Perlmutter",
        choices=["Perlmutter", "Frontier", "Sunspot", "none"],
        help="machine model for the predicted column ('none' to skip)",
    )
    profile.add_argument("--json", metavar="FILE",
                         help="also write the profile report as JSON")
    profile.add_argument(
        "--min-coverage", type=float, default=95.0, metavar="PCT",
        help="minimum span coverage (percent of the solve span that "
             "instrumented spans must account for) before the command "
             "fails (default 95)",
    )
    profile.set_defaults(func=_cmd_profile)

    commviz = sub.add_parser(
        "commviz",
        help="run a distributed solve and render the rank x rank traffic "
             "matrix, per-rank time breakdown, and per-V-cycle critical "
             "path next to the network model",
    )
    add_solver_args(commviz)
    commviz.set_defaults(ranks="2,2,2")
    commviz.add_argument(
        "--machine",
        default="Perlmutter",
        choices=["Perlmutter", "Frontier", "Sunspot", "none"],
        help="network model pricing the critical path ('none' to skip)",
    )
    commviz.set_defaults(func=_cmd_commviz)

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument(
        "which",
        choices=sorted(_choices()) + ["all"],
        help="which paper element to regenerate",
    )
    experiment.add_argument(
        "--json",
        metavar="DIR",
        help="also export every experiment's data series as JSON into DIR",
    )
    experiment.set_defaults(func=_cmd_experiment)

    tune = sub.add_parser(
        "autotune", help="rank brick/ordering/CA/MPI configurations"
    )
    tune.add_argument(
        "machine",
        nargs="?",
        default="all",
        choices=["Perlmutter", "Frontier", "Sunspot", "all"],
    )
    tune.add_argument(
        "--from-ledger", metavar="DIR",
        help="bias the model ranking with measured sweep history from "
             "this ledger directory (e.g. benchmarks/results/ledger)",
    )
    tune.add_argument(
        "--prior-prefix", default="sweep_", metavar="PREFIX",
        help="ledger series prefix harvested for the prior (default sweep_)",
    )
    tune.set_defaults(func=_cmd_autotune)

    perfgate = sub.add_parser(
        "perfgate",
        help="compare a benchmark candidate against the committed "
             "performance ledger; non-zero exit on regression",
    )
    perfgate.add_argument(
        "--ledger", default="benchmarks/results/ledger", metavar="DIR",
        help="ledger directory (default benchmarks/results/ledger)",
    )
    perfgate.add_argument(
        "--candidate", metavar="FILE",
        help="gate this JSON file (ledger entry or bench payload) "
             "instead of measuring the hot path",
    )
    perfgate.add_argument(
        "--rounds", type=int, default=3,
        help="measurement rounds when no --candidate is given (default 3)",
    )
    perfgate.add_argument(
        "--threshold", type=float, default=0.15,
        help="relative slowdown tolerated before a metric counts as "
             "regressed (default 0.15)",
    )
    perfgate.add_argument(
        "--window", type=int, default=3,
        help="min-of-k baseline window over the last k entries (default 3)",
    )
    perfgate.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but always exit 0 (CI advisory mode)",
    )
    perfgate.add_argument(
        "--update", action="store_true",
        help="append the candidate to the ledger after comparing",
    )
    perfgate.add_argument(
        "--inject-slowdown", type=float, default=0.0, metavar="PCT",
        help="scale the candidate's metrics by 1+PCT/100 (gate self-test)",
    )
    perfgate.add_argument(
        "--overlap", action="store_true",
        help="measure the hot path under the split-phase overlap "
             "schedule (gated against the same baseline series)",
    )
    perfgate.add_argument(
        "--list", action="store_true",
        help="print every ledger series with entry counts, baseline "
             "status, and measured dispersion, then exit (CI inventory)",
    )
    perfgate.add_argument(
        "--series", metavar="PATTERNS",
        help="gate the newest entry of every series matching the comma-"
             "separated glob patterns (e.g. 'sweep_smoke.*') against "
             "the window of entries before it, instead of measuring "
             "the hot path",
    )
    perfgate.add_argument(
        "--noise-scaled", action="store_true",
        help="scale each metric's threshold by its measured historical "
             "dispersion: a regression must clear "
             "max(threshold, 2 x rel-IQR), not a fixed percentage",
    )
    perfgate.set_defaults(func=_cmd_perfgate)

    sweep = sub.add_parser(
        "sweep",
        help="expand a declarative config matrix (brick x engine x "
             "overlap x agglomeration x machine x scenario), run every "
             "cell with warmup + interleaved rounds, and report "
             "variance-aware statistics with per-axis delta attribution",
    )
    sweep.add_argument(
        "--config", required=True, metavar="FILE",
        help="sweep config (JSON; see benchmarks/sweeps/)",
    )
    sweep.add_argument(
        "--quick", action="store_true",
        help="use the config's quick_rounds (also via REPRO_BENCH_QUICK=1)",
    )
    sweep.add_argument(
        "--rounds", type=int, default=None,
        help="override the config's repetition rounds",
    )
    sweep.add_argument(
        "--out", default="benchmarks/results", metavar="DIR",
        help="directory for the txt/json/html report "
             "(default benchmarks/results)",
    )
    sweep.add_argument(
        "--json", metavar="FILE",
        help="write the JSON report here instead of <out>/sweep_<name>.json",
    )
    sweep.add_argument(
        "--html", metavar="FILE",
        help="write the HTML report here instead of <out>/sweep_<name>.html",
    )
    sweep.add_argument(
        "--ledger", default="benchmarks/results/ledger", metavar="DIR",
        help="ledger directory for --update (default benchmarks/results/ledger)",
    )
    sweep.add_argument(
        "--update", action="store_true",
        help="append every cell's entry to its sweep_<name>.<cell> "
             "ledger series",
    )
    sweep.set_defaults(func=_cmd_sweep)

    faultsweep = sub.add_parser(
        "faultsweep",
        help="inject message/kernel faults and report recovery + overhead",
    )
    faultsweep.add_argument("--seed", type=int, default=2024,
                            help="seed for the random-burst scenario")
    faultsweep.add_argument("--ranks", default="2,1,1",
                            help="rank grid, e.g. 2,2,1 (default 2,1,1)")
    faultsweep.add_argument(
        "--machine",
        default="Perlmutter",
        choices=["Perlmutter", "Frontier", "Sunspot", "none"],
        help="machine pricing the resilience overhead ('none' to skip)",
    )
    faultsweep.add_argument(
        "--ledger", default="benchmarks/results/ledger", metavar="DIR",
        help="ledger directory for --update (default benchmarks/results/ledger)",
    )
    faultsweep.add_argument(
        "--update", action="store_true",
        help="append the sweep's metrics to the resilience ledger",
    )
    faultsweep.set_defaults(func=_cmd_faultsweep)

    chaossweep = sub.add_parser(
        "chaossweep",
        help="seeded rank-crash matrix: buddy restore / communicator "
             "repair, with recovery-SLO ledger output",
    )
    chaossweep.add_argument("--seed", type=int, default=2024,
                            help="seed choosing the crash victims")
    chaossweep.add_argument("--ranks", default="2,2,2",
                            help="rank grid, e.g. 2,2,2 (default 2,2,2)")
    chaossweep.add_argument(
        "--crash-cycles", default="1,3", metavar="LIST",
        help="comma list of V-cycle indices to crash at (default 1,3)",
    )
    chaossweep.add_argument(
        "--crash-counts", default="1,2", metavar="LIST",
        help="comma list of simultaneous crash counts (default 1,2)",
    )
    chaossweep.add_argument(
        "--checkpoint-intervals", default="1,2", metavar="LIST",
        help="comma list of checkpoint intervals to try (default 1,2)",
    )
    chaossweep.add_argument(
        "--ledger", default="benchmarks/results/ledger", metavar="DIR",
        help="ledger directory for --update (default benchmarks/results/ledger)",
    )
    chaossweep.add_argument(
        "--update", action="store_true",
        help="append the run's recovery SLOs to the chaos ledger",
    )
    chaossweep.add_argument(
        "--storm", action="store_true",
        help="add an unrecoverable persistent-crash cell; the gate then "
             "fails by design (inverted self-test)",
    )
    chaossweep.set_defaults(func=_cmd_chaossweep)

    loadgen = sub.add_parser(
        "loadgen",
        help="synthetic open-loop load against the batched solve "
             "service: solves/sec, p50/p95 latency, occupancy, and the "
             "speedup over sequential per-request solves",
    )
    loadgen.add_argument("--requests", type=int, default=8,
                         help="requests in the stream (default 8)")
    loadgen.add_argument("--capacity", type=int, default=8,
                         help="cohort slots per geometry (default 8)")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="stream seed: amplitudes + arrivals (default 0)")
    loadgen.add_argument("--rate", type=float, default=None, metavar="HZ",
                         help="open-loop Poisson arrival rate; omit for a "
                              "closed batch")
    loadgen.add_argument("--repeats", type=int, default=3,
                         help="best-of-N timed passes, both paths "
                              "(default 3)")
    loadgen.add_argument("--size", type=int, default=None,
                         help="global cells per dim (default: smoke "
                              "geometry, 8)")
    loadgen.add_argument("--levels", type=int, default=None,
                         help="multigrid levels (default: smoke geometry, 3)")
    loadgen.add_argument("--brick", type=int, default=None,
                         help="brick dimension (default: smoke geometry, 2)")
    loadgen.add_argument("--no-baseline", action="store_true",
                         help="skip the sequential baseline pass")
    loadgen.add_argument("--min-speedup", type=float, default=None,
                         metavar="X",
                         help="fail unless batched speedup >= X (smoke "
                              "acceptance: 2.0)")
    loadgen.add_argument("--json", metavar="FILE",
                         help="write the full report as JSON")
    loadgen.add_argument("--trace", metavar="FILE",
                         help="write a Chrome trace of the service pass")
    loadgen.add_argument(
        "--ledger", default="benchmarks/results/ledger", metavar="DIR",
        help="ledger directory for --update (default "
             "benchmarks/results/ledger)",
    )
    loadgen.add_argument(
        "--update", action="store_true",
        help="append the run's metrics to the service.loadgen ledger "
             "series (gate with: repro perfgate --series 'service.*')",
    )
    loadgen.set_defaults(func=_cmd_loadgen)

    serve = sub.add_parser(
        "serve",
        help="solve a JSON batch of requests through the multi-tenant "
             "service (file or stdin in, JSON results out)",
    )
    serve.add_argument(
        "requests_file", metavar="FILE",
        help="JSON request batch: a list of {amplitude, request_id} "
             "objects, or {config: {...overrides}, requests: [...]}; "
             "'-' reads stdin",
    )
    serve.add_argument("--capacity", type=int, default=8,
                       help="cohort slots per geometry (default 8)")
    serve.add_argument("--out", metavar="FILE",
                       help="write results JSON here instead of stdout")
    serve.set_defaults(func=_cmd_serve)

    validate = sub.add_parser(
        "validate", help="run the artifact-style self-checks"
    )
    validate.set_defaults(func=_cmd_validate)
    return parser


def _choices() -> list[str]:
    return [
        "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        "table2", "table3", "table4", "table5", "ablations",
    ]


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
