"""One multigrid level of one rank: brick grid + the four fields.

Each level holds the solution ``x``, right-hand side ``b``, operator
application ``Ax`` and residual ``r`` as bricked fields sharing one
:class:`~repro.bricks.brick_grid.BrickGrid`, plus the level's stencil
constants.  The brick dimension shrinks with the level when a level's
subdomain becomes smaller than the configured brick (the paper never
descends that far — its coarsest 16^3 level still fits 8^3 bricks —
but small test problems do).
"""

from __future__ import annotations

import numpy as np

from repro.bricks.brick_grid import BrickGrid
from repro.bricks.bricked_array import BrickedArray
from repro.gmg.problem import LevelConstants


def level_brick_dim(cells_per_dim: int, requested: int) -> int:
    """Brick dimension actually used for a level.

    Uses the requested brick size when it divides the level's cells,
    otherwise the largest divisor of ``cells_per_dim`` not exceeding
    the request (power-of-two sizes always divide cleanly).
    """
    if cells_per_dim < 1 or requested < 1:
        raise ValueError("cells_per_dim and requested must be positive")
    b = min(requested, cells_per_dim)
    while cells_per_dim % b != 0:
        b -= 1
    return b


def make_level(
    index: int,
    shape_cells: tuple[int, int, int],
    requested_brick_dim: int,
    h: float,
    ordering: str = "surface-major",
    dtype: np.dtype | type = np.float64,
) -> "Level":
    """A :class:`Level` using the largest brick the subdomain supports.

    The solver's per-rank hierarchy and the agglomerator's merged
    levels both size bricks the same way: the configured brick
    dimension, shrunk via :func:`level_brick_dim` when the (possibly
    merged) subdomain is smaller than the request.  A merged level is
    8x larger per agglomeration step, so it typically supports a
    *larger* brick than the tiny per-rank level it replaces — which is
    exactly where the latency win comes from (bigger halo budget,
    fewer exchanges per visit).
    """
    bdim = level_brick_dim(min(shape_cells), requested_brick_dim)
    return Level(index, shape_cells, bdim, h, ordering, dtype=dtype)


class Level:
    """State of one multigrid level on one rank."""

    #: set by the execution engine: smoothers compile the fused pipeline
    #: stencils (one kernel, one halo gather) instead of staged kernels
    fused_kernels = False

    #: armed by the V-cycle driver in overlap mode: the in-flight
    #: split-phase exchange context that the level's *first*
    #: halo-reading kernel consumes (interior pass, then finish(), then
    #: shell pass); ``None`` whenever no exchange is in flight
    overlap_ctx = None

    def __init__(
        self,
        index: int,
        shape_cells: tuple[int, int, int],
        brick_dim: int,
        h: float,
        ordering: str = "surface-major",
        dtype: np.dtype | type = np.float64,
    ) -> None:
        shape_cells = tuple(int(c) for c in shape_cells)
        if any(c % brick_dim for c in shape_cells):
            raise ValueError(
                f"level {index}: cells {shape_cells} not divisible by "
                f"brick_dim {brick_dim}"
            )
        self.index = int(index)
        self.shape_cells = shape_cells
        self.constants = LevelConstants.for_spacing(h)
        self.dtype = np.dtype(dtype)
        shape_bricks = tuple(c // brick_dim for c in shape_cells)
        self.grid = BrickGrid(shape_bricks, brick_dim, ghost_bricks=1, ordering=ordering)
        self.x = BrickedArray.zeros(self.grid, dtype=self.dtype)
        self.b = BrickedArray.zeros(self.grid, dtype=self.dtype)
        self.Ax = BrickedArray.zeros(self.grid, dtype=self.dtype)
        self.r = BrickedArray.zeros(self.grid, dtype=self.dtype)
        #: reusable halo buffers, keyed by (grid name, shape)
        self.workspace: dict = {}
        # cached: read once per kernel invocation on the hot path
        s0, s1, s2 = shape_cells
        self._num_points = s0 * s1 * s2

    @property
    def num_points(self) -> int:
        """Interior cells on this rank at this level."""
        return self._num_points

    @property
    def ghost_depth_cells(self) -> int:
        """Halo validity (cells) granted by one exchange."""
        return self.grid.ghost_cells

    def fields(self) -> dict[str, BrickedArray]:
        """All fields keyed by their DSL grid names."""
        return {"x": self.x, "b": self.b, "Ax": self.Ax, "r": self.r}

    def init_zero(self) -> None:
        """The V-cycle's ``initZero``: reset the level's correction."""
        self.x.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Level(index={self.index}, cells={self.shape_cells}, "
            f"brick_dim={self.grid.brick_dim}, h={self.constants.h:g})"
        )
