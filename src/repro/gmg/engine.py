"""Batched brick-parallel execution engine.

The seed execution path is faithful to the paper's algorithms but pays
three overheads the paper's GPU implementation does not: every kernel
invocation re-gathers the full extended halo buffer, every pipeline
stage is a separate kernel launch, and every per-rank compute phase is
a Python loop.  The engine removes all three — *without changing a
single floating-point operation*:

* **halo-resident storage** (``EngineConfig.halo_resident``): the
  halo-read field ``x`` is allocated in the extended layout
  (:class:`~repro.bricks.bricked_array.BrickedArray` with
  ``halo_radius=1``); kernels read the extended storage in place and a
  refresh copies only the 26 shell regions through the adjacency
  (:mod:`repro.bricks.halo_plan`) instead of re-copying the entire
  field;
* **kernel fusion** (``EngineConfig.fuse_kernels``): smoothers execute
  the fused pipeline stencils of :mod:`repro.dsl.fusion` — one
  generated kernel, one gather/refresh per smoothing iteration;
* **cross-rank batching** (``EngineConfig.batch_ranks``): congruent
  per-rank fields are stacked on a
  :class:`~repro.bricks.batch.BatchedGrid` so smoothing, operator and
  inter-grid phases issue one vectorised NumPy call over
  ``num_ranks * num_slots`` bricks instead of a Python rank loop.

Adoption rebinds each per-rank field's ``data`` to a view of the
stacked storage, so ghost exchanges, checkpoints, fault injection and
solution assembly — all of which address per-rank fields — alias the
stacked arrays automatically and need no changes.  Every configuration
is bit-identical to the seed path (asserted by the identity suite):
identical expression trees and identical NumPy evaluation order
produce byte-equal floats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bricks.batch import BatchedGrid
from repro.bricks.bricked_array import BrickedArray
from repro.gmg import operators as ops
from repro.gmg.level import Level
from repro.obs.tracer import NULL_TRACER

#: halo width of every stencil in the library (7-point operator)
STENCIL_RADIUS = 1


@dataclass(frozen=True)
class EngineConfig:
    """Which engine optimisations are active.

    All three default to off; the seed path runs when none is set.
    Any combination is valid and bit-identical to the seed.
    """

    halo_resident: bool = False
    fuse_kernels: bool = False
    batch_ranks: bool = False

    @property
    def enabled(self) -> bool:
        return self.halo_resident or self.fuse_kernels or self.batch_ranks

    def describe(self) -> str:
        parts = [
            name
            for name, on in (
                ("halo-resident", self.halo_resident),
                ("fused", self.fuse_kernels),
                ("batched", self.batch_ranks),
            )
            if on
        ]
        return "+".join(parts) if parts else "seed"


class _StackedLevel:
    """All ranks' state at one depth, fused into one level-shaped object.

    Duck-types the :class:`~repro.gmg.level.Level` surface the smoothers
    and operators consume (``grid``, ``constants``, ``fields()``,
    ``workspace``, ``num_points``, ``index``), so every existing kernel
    caller runs unchanged over the stacked storage.  ``num_points`` is
    the interior-cell total across ranks, keeping recorded work sums
    equal to the per-rank path's.
    """

    fused_kernels = False
    #: armed by the V-cycle driver in overlap mode (see Level.overlap_ctx)
    overlap_ctx = None

    def __init__(self, base_levels: Sequence[Level], ext_storage: bool) -> None:
        first = base_levels[0]
        self.index = first.index
        self.constants = first.constants
        self.dtype = first.dtype
        self.shape_cells = first.shape_cells
        self.grid = BatchedGrid(first.grid, len(base_levels))
        x_radius = STENCIL_RADIUS if ext_storage else 0
        self.x = BrickedArray.zeros(self.grid, dtype=self.dtype, halo_radius=x_radius)
        self.b = BrickedArray.zeros(self.grid, dtype=self.dtype)
        self.Ax = BrickedArray.zeros(self.grid, dtype=self.dtype)
        self.r = BrickedArray.zeros(self.grid, dtype=self.dtype)
        self.workspace: dict = {}
        self._num_points = len(base_levels) * first.num_points

    @property
    def num_points(self) -> int:
        return self._num_points

    @property
    def ghost_depth_cells(self) -> int:
        return self.grid.ghost_cells

    def fields(self) -> dict[str, BrickedArray]:
        return {"x": self.x, "b": self.b, "Ax": self.Ax, "r": self.r}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"_StackedLevel(index={self.index}, ranks={self.grid.num_ranks}, "
            f"cells={self.shape_cells})"
        )


class ExecutionEngine:
    """Adopts per-rank level hierarchies into the configured layout.

    Construct *after* problem setup (``b`` initialised): adoption copies
    the current field contents into the new storage and rebinds the
    per-rank ``data`` attributes, so any state present at adoption time
    is preserved.
    """

    def __init__(
        self,
        rank_levels: Sequence[Sequence[Level]],
        config: EngineConfig,
        tracer=None,
        level_groups: Sequence[Sequence[Level]] | None = None,
        group_ranks: Sequence[Sequence[int]] | None = None,
    ) -> None:
        self.config = config
        self.rank_levels = rank_levels
        self.num_ranks = len(rank_levels)
        self.num_levels = len(rank_levels[0])
        self.tracer = tracer or NULL_TRACER
        #: per depth: the levels that actually compute.  The default is
        #: the rectangular one-per-rank grid; with agglomeration the
        #: coarse groups shrink to the merged levels of the active
        #: ranks, and the stacked storage batches exactly those.
        self.level_groups: list[list[Level]] = (
            [list(g) for g in level_groups]
            if level_groups is not None
            else [
                [levels[lev] for levels in rank_levels]
                for lev in range(self.num_levels)
            ]
        )
        if len(self.level_groups) != self.num_levels:
            raise ValueError(
                f"need one level group per depth: {len(self.level_groups)} "
                f"!= {self.num_levels}"
            )
        #: per depth: the global rank id owning each group member
        #: (labels adoption trace spans truthfully on merged levels)
        self.group_ranks: list[list[int]] = (
            [list(g) for g in group_ranks]
            if group_ranks is not None
            else [list(range(len(g))) for g in self.level_groups]
        )
        #: per depth: the stacked level, or None when batching is off
        self.stacked: list[_StackedLevel | None] = [None] * self.num_levels
        #: physical extended storage pays off only without fusion: the
        #: fused kernels gather through per-offset plans that read
        #: neighbour *interiors* in place, so the halo never
        #: materialises anywhere — residency's goal — while operands
        #: stay packed (contiguous), which profiles decisively faster
        #: than strided extended views in NumPy
        self.ext_storage = config.halo_resident and not config.fuse_kernels
        with self.tracer.span("engine-adopt", mode=config.describe()):
            if config.batch_ranks:
                self._adopt_batched()
            elif self.ext_storage:
                self._adopt_resident()
            if config.fuse_kernels:
                for group in self.level_groups:
                    for lv in group:
                        lv.fused_kernels = True
                for st in self.stacked:
                    if st is not None:
                        st.fused_kernels = True
            for group in self.level_groups:
                for lv in group:
                    for f in lv.fields().values():
                        f.planned_gather = True
            for st in self.stacked:
                if st is not None:
                    for f in st.fields().values():
                        f.planned_gather = True

    # ------------------------------------------------------------------
    def _adopt_resident(self) -> None:
        """Single-layout mode: give every compute level's ``x`` the
        extended storage in place (only ``x`` is ever halo-read by the
        library's stencils; ``Ax``/``b``/``r`` are pointwise)."""
        for group in self.level_groups:
            for lv in group:
                resident = BrickedArray(
                    lv.grid, dtype=lv.dtype, halo_radius=STENCIL_RADIUS
                )
                resident.data[...] = lv.x.data
                lv.x = resident

    def _adopt_batched(self) -> None:
        """Stack every depth's compute group and rebind member views.

        Each member's copy-in is traced on its owning rank's child
        timeline, so the adoption cost shows up in the per-rank
        breakdown next to the rank's communication spans.
        """
        for lev in range(self.num_levels):
            base = self.level_groups[lev]
            st = _StackedLevel(base, self.ext_storage)
            self.stacked[lev] = st
            for k, lv in enumerate(base):
                rank = self.group_ranks[lev][k]
                with self.tracer.child(rank).span(
                    "adopt-rank", l=lev, rank=rank
                ):
                    sl = st.grid.rank_slice(k)
                    for name, stacked_field in st.fields().items():
                        per_rank = getattr(lv, name)
                        stacked_field.data[sl] = per_rank.data
                        per_rank.data = stacked_field.data[sl]
        self._seed_child_maps()

    def _seed_child_maps(self) -> None:
        """Precompute stacked restriction child maps so the unmodified
        inter-grid operators run directly on stacked levels."""
        for lev in range(self.num_levels - 1):
            fine_group = self.level_groups[lev]
            coarse_group = self.level_groups[lev + 1]
            if len(fine_group) != len(coarse_group):
                continue  # agglomeration transition: staged per-source
            fine_st, coarse_st = self.stacked[lev], self.stacked[lev + 1]
            fine_b, coarse_b = fine_group[0], coarse_group[0]
            if fine_b.grid.brick_dim != coarse_b.grid.brick_dim:
                continue  # those pairs use the per-rank dense fallback
            base_child = ops._child_slot_map(coarse_b, fine_b)
            S_fine = fine_b.grid.num_slots
            stacked_child = np.concatenate(
                [base_child + k * S_fine for k in range(len(fine_group))]
            )
            key = (
                "child_map",
                fine_st.grid.shape_bricks,
                coarse_st.grid.shape_bricks,
            )
            coarse_st.workspace[key] = stacked_child

    # ------------------------------------------------------------------
    def stacked_level(self, lev: int) -> _StackedLevel | None:
        """The stacked level at depth ``lev`` (None unless batching)."""
        return self.stacked[lev]

    def stacked_intergrid_pair(
        self, lev: int
    ) -> tuple[_StackedLevel, _StackedLevel] | None:
        """The (fine, coarse) stacked pair for the brick-native
        inter-grid path, or None when it does not apply."""
        if not self.config.batch_ranks:
            return None
        if len(self.level_groups[lev]) != len(self.level_groups[lev + 1]):
            return None  # agglomeration transition: gather/scatter path
        fine, coarse = self.stacked[lev], self.stacked[lev + 1]
        if fine is None or coarse is None:
            return None
        if fine.grid.brick_dim != coarse.grid.brick_dim:
            return None
        return fine, coarse

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExecutionEngine({self.config.describe()}, ranks={self.num_ranks})"
