"""Mixed-precision GMG via iterative refinement.

The paper's related work highlights three-precision AMG on the same
GPUs (Tsai, Beams & Anzt [28]): run the multigrid cycles in a cheap low
precision inside a high-precision defect-correction loop.  This module
implements that strategy on the brick solver:

* the *outer* loop keeps ``x`` and the residual in float64 and iterates
  ``r = b - A x``; ``x += e`` where ``e`` approximately solves
  ``A e = r``;
* the *inner* solver is a float32 brick GMG (same V-cycle, same
  communication-avoiding schedule) run for a fixed small number of
  cycles per outer iteration.

A float32-only solve stalls around the single-precision rounding floor
(residuals ~1e-4 for this problem's scaling); the refinement loop
restores the paper's 1e-10 convergence while the bandwidth-bound inner
cycles move half the bytes — the effect [28] measures on H100/MI250X/PVC.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.gmg.problem import CONVERGENCE_TOL, LevelConstants, rhs_field
from repro.gmg.solver import GMGSolver, SolverConfig
from repro.instrument import Recorder


def _dense_apply_op(x: np.ndarray, c: LevelConstants) -> np.ndarray:
    """High-precision reference operator for the outer defect loop."""
    return c.alpha * x + c.beta * (
        np.roll(x, -1, 0)
        + np.roll(x, 1, 0)
        + np.roll(x, -1, 1)
        + np.roll(x, 1, 1)
        + np.roll(x, -1, 2)
        + np.roll(x, 1, 2)
    )


@dataclass
class MixedSolveResult:
    """Outcome of a mixed-precision solve."""

    converged: bool
    outer_iterations: int
    residual_history: list[float]
    inner_vcycles_total: int
    recorder: Recorder = field(repr=False)

    @property
    def final_residual(self) -> float:
        return self.residual_history[-1]


class MixedPrecisionSolver:
    """FP64 iterative refinement around an FP32 brick-GMG inner solver.

    Parameters
    ----------
    config:
        Solver configuration; its ``precision`` is overridden to fp32
        for the inner solver.  (The outer loop is serial and dense;
        distributed inner solves are supported.)
    inner_vcycles:
        Multigrid cycles per refinement step (1-2 is typical).
    """

    def __init__(self, config: SolverConfig, inner_vcycles: int = 2) -> None:
        if inner_vcycles < 1:
            raise ValueError(f"inner_vcycles must be positive: {inner_vcycles}")
        self.config = config
        self.inner_vcycles = inner_vcycles
        self.inner = GMGSolver(replace(config, precision="fp32"))
        self.constants = LevelConstants.for_spacing(config.level_spacing(0))
        n = config.global_cells
        self.b = rhs_field((n, n, n), self.constants.h)
        self.x = np.zeros_like(self.b)

    def _set_inner_rhs(self, residual: np.ndarray) -> None:
        per_rank = self.config.cells_per_rank
        for rank, levels in enumerate(self.inner.rank_levels):
            o = self.inner.topology.subdomain_origin(rank, per_rank)
            sub = residual[
                o[0] : o[0] + per_rank[0],
                o[1] : o[1] + per_rank[1],
                o[2] : o[2] + per_rank[2],
            ]
            levels[0].b.set_interior(sub)
            levels[0].x.fill(0.0)

    def solve(
        self, tol: float = CONVERGENCE_TOL, max_outer: int = 60
    ) -> MixedSolveResult:
        """Refine until the fp64 residual max-norm drops below ``tol``."""
        history = []
        inner_cycles = 0
        for _ in range(max_outer):
            r = self.b - _dense_apply_op(self.x, self.constants)
            history.append(float(np.abs(r).max()))
            if history[-1] <= tol:
                return MixedSolveResult(
                    converged=True,
                    outer_iterations=len(history) - 1,
                    residual_history=history,
                    inner_vcycles_total=inner_cycles,
                    recorder=self.inner.recorder,
                )
            # fp32 inner correction solve: A e = r
            scale = history[-1]  # keep the fp32 solve well-scaled
            self._set_inner_rhs(r / scale)
            for _ in range(self.inner_vcycles):
                self.inner.vcycle.run()
                inner_cycles += 1
            e = self.inner.solution().astype(np.float64) * scale
            self.x += e
        r = self.b - _dense_apply_op(self.x, self.constants)
        history.append(float(np.abs(r).max()))
        return MixedSolveResult(
            converged=history[-1] <= tol,
            outer_iterations=len(history) - 1,
            residual_history=history,
            inner_vcycles_total=inner_cycles,
            recorder=self.inner.recorder,
        )

    def solution(self) -> np.ndarray:
        """The fp64 solution iterate."""
        return self.x.copy()
