"""Public solver API: configure, solve, inspect.

:class:`GMGSolver` assembles the whole stack — domain decomposition,
per-rank level hierarchies, ghost exchangers, simulated MPI — from a
declarative :class:`SolverConfig`, runs Algorithm 1, and exposes the
assembled global solution plus the instrumentation record.

Example
-------
>>> from repro.gmg import GMGSolver, SolverConfig
>>> solver = GMGSolver(SolverConfig(global_cells=32, num_levels=3,
...                                 brick_dim=4))
>>> result = solver.solve()
>>> result.converged
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.comm.exchange import HaloExchange, LocalPeriodicExchange
from repro.comm.simmpi import SimComm
from repro.comm.topology import CartTopology
from repro.gmg.engine import EngineConfig, ExecutionEngine
from repro.gmg.level import Level, level_brick_dim
from repro.gmg.problem import CONVERGENCE_TOL, rhs_field
from repro.gmg.vcycle import VCycle
from repro.instrument import Recorder


@dataclass(frozen=True)
class SolverConfig:
    """Everything that defines one GMG run.

    Defaults mirror the paper's setup scaled to problem size; the paper
    itself runs ``global_cells=1024``, six levels, 12 smooths, 100
    bottom smooths, brick dimension 8 (4 on Sunspot) over 8 ranks.
    """

    global_cells: int = 32
    num_levels: int = 3
    brick_dim: int = 4
    max_smooths: int = 12
    bottom_smooths: int = 100
    tol: float = CONVERGENCE_TOL
    max_vcycles: int = 100
    ordering: str = "surface-major"
    communication_avoiding: bool = True
    rank_dims: tuple[int, int, int] = (1, 1, 1)
    ranks_per_node: int = 1
    #: smoother registry name: jacobi (paper) / gsrb / sor / chebyshev
    smoother: str = "jacobi"
    #: keyword arguments for the smoother constructor (e.g. omega)
    smoother_options: tuple = ()
    #: bottom solver registry name: relaxation (paper) / cg / fft
    bottom_solver: str = "relaxation"
    #: keyword arguments for the bottom solver constructor
    bottom_options: tuple = ()
    #: multigrid cycle type: V (paper) / W / F
    cycle: str = "V"
    #: field precision: "fp64" (paper) or "fp32" (mixed-precision inner
    #: solves; see repro.gmg.mixed for the iterative-refinement driver)
    precision: str = "fp64"
    #: domain boundary condition: "periodic" (paper) / "dirichlet" /
    #: "neumann" (homogeneous, cell-centred mirror ghosts)
    boundary: str = "periodic"
    #: execution-engine toggles (repro.gmg.engine); every combination
    #: is bit-identical to the seed path, only wallclock changes
    halo_resident: bool = False
    fuse_kernels: bool = False
    batch_ranks: bool = False
    #: communication–computation overlap (repro.bricks.partition +
    #: split-phase exchange): halo sends post first, interior bricks
    #: compute while envelopes are in flight, and only the shell pass
    #: waits on completion.  Bit-identical to the synchronous schedule.
    overlap: bool = False
    #: coarse-level agglomeration (repro.gmg.agglomerate): when a
    #: level's per-rank subdomain falls below this many points, merge
    #: subdomains onto a factor-of-8-smaller active rank grid.  None
    #: (default) disables agglomeration — the bit-identical seed
    #: schedule.  The paper-scale sweet spot is a few thousand points
    #: (the surface-to-volume knee); tiny thresholds never trigger.
    agglomerate_threshold: int | None = None

    def __post_init__(self) -> None:
        from repro.gmg.bottom import BOTTOM_SOLVERS
        from repro.gmg.smoothers import SMOOTHERS
        from repro.gmg.vcycle import CYCLE_TYPES

        if self.smoother not in SMOOTHERS:
            raise ValueError(
                f"unknown smoother {self.smoother!r}; choose from "
                f"{sorted(SMOOTHERS)}"
            )
        if self.bottom_solver not in BOTTOM_SOLVERS:
            raise ValueError(
                f"unknown bottom solver {self.bottom_solver!r}; choose from "
                f"{sorted(BOTTOM_SOLVERS)}"
            )
        if self.cycle not in CYCLE_TYPES:
            raise ValueError(f"cycle must be one of {CYCLE_TYPES}: {self.cycle!r}")
        if self.precision not in ("fp64", "fp32"):
            raise ValueError(
                f"precision must be 'fp64' or 'fp32': {self.precision!r}"
            )
        if self.boundary not in ("periodic", "dirichlet", "neumann"):
            raise ValueError(
                "boundary must be 'periodic', 'dirichlet' or 'neumann': "
                f"{self.boundary!r}"
            )
        if self.boundary != "periodic" and self.bottom_solver == "fft":
            raise ValueError(
                "the FFT bottom solver diagonalises the periodic operator "
                "only; use 'relaxation' or 'cg' with Dirichlet/Neumann"
            )
        if self.agglomerate_threshold is not None:
            if self.agglomerate_threshold < 1:
                raise ValueError(
                    "agglomerate_threshold must be positive (or None to "
                    f"disable): {self.agglomerate_threshold}"
                )
            if self.bottom_solver in ("cg", "fft"):
                raise ValueError(
                    f"the {self.bottom_solver!r} bottom solver reduces over "
                    "the full communicator and cannot run on an "
                    "agglomerated coarsest level; use 'relaxation' with "
                    "agglomerate_threshold"
                )
        if self.global_cells < 2:
            raise ValueError("global_cells must be at least 2")
        if self.num_levels < 1:
            raise ValueError("num_levels must be at least 1")
        for d, p in enumerate(self.rank_dims):
            if self.global_cells % p:
                raise ValueError(
                    f"rank_dims[{d}]={p} does not divide global_cells="
                    f"{self.global_cells}"
                )
        per_rank = tuple(self.global_cells // p for p in self.rank_dims)
        for lev in range(self.num_levels):
            cells = tuple(c >> lev for c in per_rank)
            if any(c % (1 << lev) for c in per_rank):
                raise ValueError(
                    f"per-rank size {per_rank} not divisible by 2^{lev} "
                    f"for level {lev}"
                )
            if any(s < 1 for s in cells):
                raise ValueError(
                    f"level {lev} would have an empty subdomain: {cells}"
                )

    @property
    def num_ranks(self) -> int:
        p0, p1, p2 = self.rank_dims
        return p0 * p1 * p2

    @property
    def cells_per_rank(self) -> tuple[int, int, int]:
        return tuple(self.global_cells // p for p in self.rank_dims)

    def level_spacing(self, lev: int) -> float:
        """Grid spacing ``h`` at level ``lev``."""
        return (1 << lev) / self.global_cells


@dataclass
class SolveResult:
    """Outcome of :meth:`GMGSolver.solve`.

    ``status`` is one of ``converged`` / ``max_vcycles`` / ``diverged``
    / ``failed_faults`` (see :mod:`repro.faults.recovery`); anomalies
    under fault injection become statuses, never unhandled exceptions.
    ``num_vcycles`` counts the cycles in the committed residual history;
    ``executed_vcycles`` additionally counts work discarded by
    checkpoint rollbacks (equal unless the solve recovered from faults).
    """

    converged: bool
    num_vcycles: int
    residual_history: list[float]
    recorder: Recorder = field(repr=False)
    status: str = ""
    executed_vcycles: int = -1
    rollbacks: int = 0
    #: ranks that crashed and were repaired back into the solve
    recovered_ranks: list[int] = field(default_factory=list)
    #: total wall time spent in rank repair (seconds)
    mttr_s: float = 0.0
    #: bytes of crashed-rank state adopted from buddy replicas
    bytes_restored: int = 0
    #: committed V-cycles discarded by crash recoveries
    cycles_lost: int = 0

    def __post_init__(self) -> None:
        if not self.status:
            self.status = "converged" if self.converged else "max_vcycles"
        if self.executed_vcycles < 0:
            self.executed_vcycles = self.num_vcycles

    @property
    def final_residual(self) -> float:
        """Last committed residual (NaN when the history is empty)."""
        if not self.residual_history:
            return float("nan")
        return self.residual_history[-1]

    @property
    def convergence_factor(self) -> float:
        """Geometric-mean residual reduction per V-cycle.

        1.0 when no cycles ran — including a solve that stopped on the
        initial residual (already below tolerance) — since no reduction
        was performed.  A history whose endpoints are not finite (a
        diverged solve that overflowed to ``inf``/``nan``) has no
        meaningful geometric mean: it reports ``nan`` instead of
        propagating ``(inf / first) ** (1/n)``.
        """
        if self.num_vcycles <= 0 or len(self.residual_history) < 2:
            return 1.0
        first, last = self.residual_history[0], self.residual_history[-1]
        if not (math.isfinite(first) and math.isfinite(last)):
            return float("nan")
        if first <= 0:
            return 0.0
        return (last / first) ** (1.0 / self.num_vcycles)

    @property
    def fault_counts(self) -> dict[str, int]:
        """Injected/detected/recovery fault events by kind (see Recorder)."""
        return self.recorder.fault_counts()


class GMGSolver:
    """Brick-based geometric multigrid on the paper's model problem.

    Parameters
    ----------
    config:
        The :class:`SolverConfig`.
    resilience:
        Optional :class:`~repro.faults.recovery.ResilienceConfig`
        activating the hardened solve path (checksummed exchanges,
        health checks, checkpoint/rollback).  Implied by ``fault_plan``.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan` of faults to
        inject; anomalies are detected and recovered (or degrade to a
        ``failed_faults`` status) rather than raising.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer` recording
        wall-clock spans for every solve phase (and fault instants).
        Defaults to the shared null tracer — the untraced path is the
        production fast path (<2% overhead budget, measured by
        ``benchmarks/bench_trace_overhead.py``).
    """

    def __init__(
        self,
        config: SolverConfig,
        resilience=None,
        fault_plan=None,
        tracer=None,
    ) -> None:
        from repro.gmg.boundary import BoundaryCondition
        from repro.obs.tracer import NULL_TRACER

        if fault_plan is not None and resilience is None:
            from repro.faults.recovery import ResilienceConfig

            resilience = ResilienceConfig()
        self.config = config
        self.resilience = resilience
        self.tracer = tracer or NULL_TRACER
        self.recorder = Recorder()
        if self.tracer.enabled:
            # fault events mirror into the trace as zero-duration
            # instants inside whatever span was open when they fired
            self.recorder.tracer = self.tracer
        self.injector = None
        if fault_plan is not None and not fault_plan.empty:
            from repro.faults.injector import FaultInjector

            # A spec naming a rank/level outside this solve would sit in
            # the plan silently forever — fail at construction instead.
            fault_plan.validate_for(config.num_ranks, config.num_levels)
            self.injector = FaultInjector(fault_plan, self.recorder)
        self._max_retries = (
            resilience.max_retries if resilience is not None else 3
        )
        self.boundary = BoundaryCondition(config.boundary)
        self.topology = CartTopology(
            config.rank_dims,
            config.ranks_per_node,
            periodic=self.boundary is BoundaryCondition.PERIODIC,
        )
        self.comm = (
            SimComm(self.topology.size, tracer=self.tracer)
            if self.topology.size > 1
            else None
        )

        per_rank = config.cells_per_rank
        self.rank_levels: list[list[Level]] = []
        for rank in range(self.topology.size):
            levels = []
            for lev in range(config.num_levels):
                cells = tuple(c >> lev for c in per_rank)
                bdim = level_brick_dim(min(cells), config.brick_dim)
                levels.append(
                    Level(
                        lev,
                        cells,
                        bdim,
                        config.level_spacing(lev),
                        config.ordering,
                        dtype=np.float32 if config.precision == "fp32" else np.float64,
                    )
                )
            self.rank_levels.append(levels)

        self.exchangers = [
            self._build_exchanger(lev) for lev in range(config.num_levels)
        ]

        self.buddy = None
        if (
            self.comm is not None
            and self.resilience is not None
            and self.resilience.buddy_checkpoints
        ):
            from repro.faults.buddy import BuddyCheckpointer

            self.buddy = BuddyCheckpointer(
                self.comm,
                self.topology,
                recorder=self.recorder,
                injector=self.injector,
                max_retries=self._max_retries,
                tracer=self.tracer,
            )

        self._init_rhs()
        from repro.gmg.bottom import make_bottom_solver
        from repro.gmg.smoothers import make_smoother

        self.agglomerator = None
        if (
            config.agglomerate_threshold is not None
            and self.comm is not None
        ):
            from repro.gmg.agglomerate import Agglomerator

            agglomerator = Agglomerator(
                config,
                self.topology,
                self.comm,
                recorder=self.recorder,
                boundary=self.boundary,
                injector=self.injector,
                max_retries=self._max_retries,
                tracer=self.tracer,
            )
            # a threshold too small to merge anything leaves the seed
            # schedule untouched (and unpoliced levels un-built)
            if agglomerator.active:
                self.agglomerator = agglomerator

        self.engine = None
        engine_config = EngineConfig(
            halo_resident=config.halo_resident,
            fuse_kernels=config.fuse_kernels,
            batch_ranks=config.batch_ranks,
        )
        if engine_config.enabled:
            # adopt after _init_rhs so the stacked/extended storage
            # inherits the initialised right-hand side
            self.engine = ExecutionEngine(
                self.rank_levels,
                engine_config,
                tracer=self.tracer,
                level_groups=(
                    self.agglomerator.level_groups(self.rank_levels)
                    if self.agglomerator is not None
                    else None
                ),
                group_ranks=(
                    [
                        self.agglomerator.ranks_at(lev)
                        or list(range(self.topology.size))
                        for lev in range(config.num_levels)
                    ]
                    if self.agglomerator is not None
                    else None
                ),
            )

        bottom_kwargs = dict(config.bottom_options)
        if config.bottom_solver == "relaxation" and "iterations" not in bottom_kwargs:
            bottom_kwargs["iterations"] = config.bottom_smooths
        if config.bottom_solver == "cg" and "project_nullspace" not in bottom_kwargs:
            # the Dirichlet operator is non-singular; periodic/Neumann
            # have the constant nullspace
            bottom_kwargs["project_nullspace"] = config.boundary != "dirichlet"
        self.vcycle = VCycle(
            self.rank_levels,
            self.exchangers,
            max_smooths=config.max_smooths,
            bottom_smooths=config.bottom_smooths,
            communication_avoiding=config.communication_avoiding,
            recorder=self.recorder,
            smoother=make_smoother(config.smoother, **dict(config.smoother_options)),
            bottom_solver=make_bottom_solver(config.bottom_solver, **bottom_kwargs),
            cycle=config.cycle,
            allreduce_max=self.comm.allreduce_max if self.comm is not None else None,
            allreduce_sum=self.comm.allreduce_sum if self.comm is not None else None,
            topology=self.topology,
            fault_injector=self.injector,
            engine=self.engine,
            tracer=self.tracer,
            agglomerator=self.agglomerator,
            overlap=config.overlap,
        )

    def _build_exchanger(self, lev: int):
        """A fresh full-grid exchanger for level ``lev``."""
        grid = self.rank_levels[0][lev].grid
        if self.comm is None:
            return LocalPeriodicExchange(
                grid, self.recorder, self.boundary, tracer=self.tracer
            )
        return HaloExchange(
            grid,
            self.topology,
            self.comm,
            self.recorder,
            self.boundary,
            injector=self.injector,
            max_retries=self._max_retries,
            tracer=self.tracer,
        )

    def _init_rhs(self) -> None:
        from repro.gmg.problem import rhs_field_dirichlet

        h = self.config.level_spacing(0)
        per_rank = self.config.cells_per_rank
        rhs = rhs_field if self.config.boundary == "periodic" else rhs_field_dirichlet
        for rank, levels in enumerate(self.rank_levels):
            origin = self.topology.subdomain_origin(rank, per_rank)
            levels[0].b.set_interior(rhs(per_rank, h, origin))

    # ------------------------------------------------------------------
    # rank-crash recovery hooks (called by the ResilientDriver)
    # ------------------------------------------------------------------
    def rebuild_channels(self) -> None:
        """Rebuild the exchange machinery after a communicator repair.

        Repair clears the communicator's send logs and sequence
        counters; the full-grid exchangers are rebuilt from scratch
        (the distributed analogue of re-deriving every ``MPI_Datatype``
        on the repaired communicator), agglomerated channels and the
        buddy checkpointer forget their envelope state in place, and
        the shared :class:`~repro.bricks.halo_plan.OffsetGatherPlan`
        cache is dropped so gather plans re-derive from geometry.
        Every rebuilt piece is a pure function of the unchanged
        decomposition, so the replayed schedule stays bit-identical.
        """
        from repro.bricks.halo_plan import clear_offset_plan_cache
        from repro.bricks.partition import clear_partition_cache

        self.exchangers = [
            self._build_exchanger(lev)
            for lev in range(self.config.num_levels)
        ]
        self.vcycle.exchangers = self.exchangers
        if self.agglomerator is not None:
            for channel in self.agglomerator.channels():
                channel.reset_envelopes()
        if self.buddy is not None:
            self.buddy.reset_envelopes()
        clear_offset_plan_cache()
        clear_partition_cache()

    def _restart_state(self) -> None:
        """Deterministically re-initialise the solve for a global restart.

        The model problem's right-hand side is analytic, so a restart
        needs no checkpoint: zero every finest-level field and rebuild
        ``b`` exactly as the constructor did.  Coarse levels are
        scratch re-derived every cycle and need no reset.
        """
        for levels in self.rank_levels:
            level = levels[0]
            level.x.data[...] = 0.0
            level.b.data[...] = 0.0
            level.r.data[...] = 0.0
            level.Ax.data[...] = 0.0
        self._init_rhs()

    # ------------------------------------------------------------------
    def solve(self) -> SolveResult:
        """Run Algorithm 1 to convergence (or ``max_vcycles``).

        With ``resilience``/``fault_plan`` configured, runs the hardened
        detect → retry → rollback → degrade loop instead; the two paths
        perform identical numeric operations when no fault fires, so
        results are bit-identical in the fault-free case.

        The whole call runs inside a root ``solve`` span when a tracer
        is attached (the span tree underneath covers the V-cycles,
        residual checks and every phase inside them).
        """
        with self.tracer.span(
            "solve",
            cells=self.config.global_cells,
            levels=self.config.num_levels,
            ranks=self.config.num_ranks,
        ):
            if self.resilience is None and self.injector is None:
                history = self.vcycle.solve(
                    self.config.tol, self.config.max_vcycles
                )
                if self.comm is not None:
                    self.comm.assert_drained()
                return SolveResult(
                    converged=history[-1] <= self.config.tol,
                    num_vcycles=len(history) - 1,
                    residual_history=history,
                    recorder=self.recorder,
                )
            return self._solve_resilient()

    def _solve_resilient(self) -> SolveResult:
        from repro.faults.recovery import STATUS_FAILED_FAULTS, ResilientDriver

        driver = ResilientDriver(
            self.vcycle,
            self.resilience,
            injector=self.injector,
            recorder=self.recorder,
            comm=self.comm,
            buddy=self.buddy,
            rebuild_channels=self.rebuild_channels,
            restart_state=self._restart_state,
            tracer=self.tracer,
        )
        outcome = driver.solve(self.config.tol, self.config.max_vcycles)
        if self.comm is not None:
            if outcome.status == STATUS_FAILED_FAULTS:
                # A failed solve may abort mid-exchange; discard the
                # in-flight traffic instead of asserting a clean drain.
                self.comm.reset_in_flight()
            else:
                for ex in self.exchangers:
                    if isinstance(ex, HaloExchange):
                        ex.drain_stale()
                if self.agglomerator is not None:
                    for channel in self.agglomerator.channels():
                        channel.drain_stale()
                if self.buddy is not None:
                    self.buddy.drain_stale()
                self.comm.assert_drained()
        return SolveResult(
            converged=outcome.converged,
            num_vcycles=outcome.clean_vcycles,
            residual_history=outcome.residual_history,
            recorder=self.recorder,
            status=outcome.status,
            executed_vcycles=outcome.executed_vcycles,
            rollbacks=outcome.rollbacks,
            recovered_ranks=list(outcome.recovered_ranks),
            mttr_s=outcome.mttr_s,
            bytes_restored=outcome.bytes_restored,
            cycles_lost=outcome.cycles_lost,
        )

    def solution(self) -> np.ndarray:
        """Assemble the global finest-level solution as a dense array."""
        N = self.config.global_cells
        out = np.empty((N, N, N), dtype=np.float64)
        per_rank = self.config.cells_per_rank
        for rank, levels in enumerate(self.rank_levels):
            o = self.topology.subdomain_origin(rank, per_rank)
            out[
                o[0] : o[0] + per_rank[0],
                o[1] : o[1] + per_rank[1],
                o[2] : o[2] + per_rank[2],
            ] = levels[0].x.to_ijk()
        return out

    def residual_dense(self) -> np.ndarray:
        """Assemble the global finest-level residual."""
        N = self.config.global_cells
        out = np.empty((N, N, N), dtype=np.float64)
        per_rank = self.config.cells_per_rank
        for rank, levels in enumerate(self.rank_levels):
            o = self.topology.subdomain_origin(rank, per_rank)
            out[
                o[0] : o[0] + per_rank[0],
                o[1] : o[1] + per_rank[1],
                o[2] : o[2] + per_rank[2],
            ] = levels[0].r.to_ijk()
        return out


def estimate_solve_time(config: SolverConfig, machine, num_vcycles: int) -> float:
    """Model the wall-clock of ``config`` on a machine (seconds).

    Bridges the functional and performance layers: the same
    configuration a :class:`GMGSolver` executes numerically is priced by
    :class:`repro.harness.vcycle_sim.TimedSolve` for any of the paper's
    machines — e.g. "this 1024^3 solve would take ~2.8 s on Perlmutter".
    Requires a periodic configuration (the harness models the paper's
    experiments).
    """
    from repro.harness.vcycle_sim import TimedSolve, WorkloadConfig

    if config.boundary != "periodic":
        raise ValueError("the performance harness models periodic runs only")
    per_rank = config.cells_per_rank
    workload = WorkloadConfig(
        per_rank_cells=per_rank,
        num_levels=config.num_levels,
        max_smooths=config.max_smooths,
        bottom_smooths=config.bottom_smooths,
        num_vcycles=num_vcycles,
        rank_dims=config.rank_dims,
        ranks_per_node=config.ranks_per_node,
        communication_avoiding=config.communication_avoiding,
        ordering=config.ordering,
        brick_dim=config.brick_dim,
        precision=config.precision,
    )
    return TimedSolve(machine, workload).total_solve_time()
