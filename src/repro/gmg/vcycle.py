"""The multigrid cycle driver (Algorithms 1 and 2 of the paper).

Runs any number of simulated ranks in lockstep: compute phases loop
over ranks, communication phases go through the level's exchanger
(:class:`~repro.comm.exchange.HaloExchange` for multi-rank runs,
:class:`~repro.comm.exchange.LocalPeriodicExchange` for single-rank
runs — the numerics are identical).

Communication-avoiding smoothing (Section V): the ghost shell is one
brick deep, so one exchange validates ``brick_dim`` halo cells; each
smoothing iteration consumes the smoother's declared number of cells
(one for Jacobi; two for coloured sweeps; ``degree`` for Chebyshev).
With CA enabled, a level performs ``ceil(smooths / (depth // cells
per iteration))`` exchanges per visit instead of one per smooth; ghost
bricks are updated redundantly and the corruption that creeps inward
from the shell's outer boundary never reaches interior cells within the
allowed iteration count.  The first exchange of each level visit
aggregates ``b`` with ``x`` into one message per neighbour (``b``'s
ghost stays valid for the rest of the visit).

Cycle types: the paper evaluates V-cycles; W-cycles (two recursive
coarse visits) and F-cycles (one F visit followed by a V visit) are
provided as the standard extensions.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence

import numpy as np

from repro.bricks.bricked_array import BrickedArray
from repro.bricks.partition import partition_for
from repro.gmg import operators as ops
from repro.gmg.bottom import BottomSolver, RelaxationBottomSolver
from repro.gmg.level import Level
from repro.gmg.problem import CONVERGENCE_TOL
from repro.gmg.smoothers import JacobiSmoother, Smoother
from repro.instrument import Recorder
from repro.obs.tracer import NULL_TRACER

CYCLE_TYPES = ("V", "W", "F")


class Exchanger(Protocol):
    """Anything that can fill ghost shells for all ranks of one level.

    Exchangers may additionally offer the split-phase pair
    ``begin(level, fields_by_rank) -> pending`` / ``finish(pending)``;
    the driver uses it (when ``overlap`` is on) to run interior compute
    while halo envelopes are in flight, and falls back to the
    synchronous ``exchange`` otherwise.
    """

    def exchange(
        self, level: int, fields_by_rank: Sequence[Sequence[BrickedArray]]
    ) -> None: ...


class _OverlapContext:
    """One in-flight split-phase exchange, armed on the compute levels.

    The first halo-reading kernel after ``begin()`` consumes the
    context (interior pass → :meth:`finish` → shell pass);
    :meth:`finish` is idempotent so the driver's defensive completion
    after the iterate — and cleanup after an exchange fault — never
    double-finishes.
    """

    __slots__ = ("exchanger", "pending", "partition", "_done")

    def __init__(self, exchanger, pending, partition) -> None:
        self.exchanger = exchanger
        self.pending = pending
        self.partition = partition
        self._done = False

    def finish(self) -> None:
        if self._done:
            return
        self._done = True
        self.exchanger.finish(self.pending)


class VCycle:
    """Executes multigrid cycles over per-rank level hierarchies.

    Parameters
    ----------
    rank_levels:
        ``rank_levels[rank][lev]`` is rank ``rank``'s :class:`Level` at
        depth ``lev`` (0 = finest).  All ranks must have congruent
        hierarchies.
    exchangers:
        One exchanger per level.
    max_smooths:
        Smoothing iterations per level visit (the paper uses 12).
    bottom_smooths:
        Iterations of the default point-relaxation bottom solver
        (paper: 100); ignored when ``bottom_solver`` is supplied.
    communication_avoiding:
        When False, exchange before every smoothing iteration (the
        conventional schedule the paper's baseline follows).
    smoother:
        A :class:`~repro.gmg.smoothers.Smoother`; defaults to the
        paper's damped Jacobi.
    bottom_solver:
        A :class:`~repro.gmg.bottom.BottomSolver`; defaults to
        relaxation with ``bottom_smooths`` iterations.
    cycle:
        ``"V"`` (paper), ``"W"`` or ``"F"``.
    apply_op_fn:
        Operator application used by the convergence check (and by
        bottom solvers that need ``A``); defaults to the
        constant-coefficient 7-point kernel.  Variable-coefficient
        solvers supply their own.
    allreduce_max / allreduce_sum:
        Cross-rank reductions; the defaults serve single-rank runs.
    topology:
        Optional :class:`~repro.comm.topology.CartTopology` (needed by
        the FFT bottom solver to assemble the global coarse grid).
    """

    def __init__(
        self,
        rank_levels: Sequence[Sequence[Level]],
        exchangers: Sequence[Exchanger],
        max_smooths: int = 12,
        bottom_smooths: int = 100,
        communication_avoiding: bool = True,
        recorder: Recorder | None = None,
        smoother: Smoother | None = None,
        bottom_solver: BottomSolver | None = None,
        cycle: str = "V",
        allreduce_max=None,
        allreduce_sum=None,
        topology=None,
        apply_op_fn=None,
        fault_injector=None,
        engine=None,
        tracer=None,
        agglomerator=None,
        overlap: bool = False,
    ) -> None:
        if not rank_levels or not rank_levels[0]:
            raise ValueError("need at least one rank with at least one level")
        depths = {len(levels) for levels in rank_levels}
        if len(depths) != 1:
            raise ValueError("all ranks must have the same number of levels")
        self.rank_levels = [list(levels) for levels in rank_levels]
        self.num_levels = depths.pop()
        if len(exchangers) != self.num_levels:
            raise ValueError(
                f"need one exchanger per level: {len(exchangers)} != {self.num_levels}"
            )
        if max_smooths < 1 or bottom_smooths < 1:
            raise ValueError("smooth counts must be positive")
        if cycle not in CYCLE_TYPES:
            raise ValueError(f"cycle must be one of {CYCLE_TYPES}: {cycle!r}")
        self.exchangers = list(exchangers)
        self.max_smooths = int(max_smooths)
        self.bottom_smooths = int(bottom_smooths)
        self.communication_avoiding = bool(communication_avoiding)
        self.recorder = recorder
        self.smoother = smoother or JacobiSmoother()
        self.bottom_solver = bottom_solver or RelaxationBottomSolver(bottom_smooths)
        self.cycle = cycle
        self.topology = topology
        #: optional FaultInjector poisoning kernel outputs (SDC model)
        self.fault_injector = fault_injector
        #: optional ExecutionEngine (repro.gmg.engine): batched/fused/
        #: halo-resident execution, bit-identical to the per-rank path
        self.engine = engine
        #: optional Agglomerator (repro.gmg.agglomerate): below its
        #: threshold, coarse levels compute on merged subdomains owned
        #: by a shrinking active rank grid — bit-identical numerics,
        #: structurally fewer and larger messages
        self.agglomerator = agglomerator
        #: communication–computation overlap: split-phase exchanges with
        #: interior/shell kernel passes, bit-identical to the
        #: synchronous schedule (see DESIGN.md "Overlap execution")
        self.overlap = bool(overlap)
        #: span tracer (repro.obs); the shared null tracer when tracing
        #: is off, so the hot path never branches on "is tracing on?"
        self.tracer = tracer or NULL_TRACER
        self.smoother.tracer = self.tracer
        self.bottom_solver.tracer = self.tracer
        #: cycles executed so far — the ``v`` attribute of vcycle spans
        self.cycles_run = 0
        # NaN-propagating default (np.max) so a poisoned local residual
        # surfaces in the health checks of single-rank runs too.
        self._allreduce_max = allreduce_max or (lambda values: float(np.max(values)))
        self.allreduce_sum = allreduce_sum or (lambda values: sum(values))
        self.apply_op_fn = apply_op_fn or ops.apply_op
        self._validate_ca_budget()

    def _validate_ca_budget(self) -> None:
        """Every level must grant at least one smoothing iteration of
        halo per exchange."""
        per_iter = self.smoother.ghost_cells_per_iteration
        for lev in range(self.num_levels):
            depth = self.levels_at(lev)[0].ghost_depth_cells
            if per_iter > depth:
                raise ValueError(
                    f"smoother consumes {per_iter} halo cells per iteration "
                    f"but level {lev}'s ghost zone is only {depth} cells deep"
                )

    # ------------------------------------------------------------------
    def levels_at(self, lev: int) -> list[Level]:
        """The :class:`Level` objects that compute depth ``lev`` —
        one per rank normally, one per *active* rank when the
        agglomerator merged the level."""
        if self.agglomerator is not None:
            merged = self.agglomerator.levels_at(lev)
            if merged is not None:
                return merged
        return [levels[lev] for levels in self.rank_levels]

    def ranks_at(self, lev: int) -> list[int]:
        """Global rank ids owning the compute levels of ``lev``."""
        if self.agglomerator is not None:
            active = self.agglomerator.ranks_at(lev)
            if active is not None:
                return active
        return list(range(len(self.rank_levels)))

    def exchanger_at(self, lev: int):
        """The exchanger serving depth ``lev`` (active-rank scoped on
        agglomerated levels)."""
        if self.agglomerator is not None:
            ex = self.agglomerator.exchanger_at(lev)
            if ex is not None:
                return ex
        return self.exchangers[lev]

    def iterations_per_exchange(self, lev: int) -> int:
        """Smoothing iterations one exchange's halo budget supports."""
        if not self.communication_avoiding:
            return 1
        depth = self.levels_at(lev)[0].ghost_depth_cells
        return max(1, depth // self.smoother.ghost_cells_per_iteration)

    def exchanges_per_visit(self, lev: int, smooths: int | None = None) -> int:
        """Exchange phases one level visit performs (model cross-check)."""
        n = self.max_smooths if smooths is None else smooths
        return math.ceil(n / self.iterations_per_exchange(lev))

    def smooth_level(self, lev: int, iterations: int, with_residual: bool) -> None:
        """One smoothing visit: CA-scheduled exchanges + iterations.

        The exchange cadence is part of the numerics and is identical in
        every execution mode; with the engine's cross-rank batching the
        per-rank smoother loop collapses into one vectorised iterate
        over the stacked level (exchanges still address the per-rank
        fields, whose storage views the stacked arrays).

        In overlap mode an exchange iteration posts its sends via
        ``begin()`` and arms the compute levels' overlap context: the
        iterate's first halo-reading kernel runs its interior pass
        while envelopes are in flight and only its shell pass waits on
        ``finish()``.  Iterations living off banked CA halo are
        unchanged — there is nothing in flight to hide.
        """
        levels = self.levels_at(lev)
        stacked = (
            self.engine.stacked_level(lev) if self.engine is not None else None
        )
        split_ok = getattr(self.smoother, "supports_overlap", False)
        per_iter = self.smoother.ghost_cells_per_iteration
        budget = self.iterations_per_exchange(lev) * per_iter
        ghost_valid = 0
        b_exchanged = False
        with self.tracer.span("smooth-visit", l=lev, n=iterations):
            for _ in range(iterations):
                ctx = None
                if ghost_valid < per_iter:
                    if b_exchanged:
                        fields = [[lv.x] for lv in levels]
                    else:
                        fields = [[lv.x, lv.b] for lv in levels]
                        b_exchanged = True
                    ctx = self._exchange_levels(
                        lev, fields, levels, stacked, split_ok
                    )
                    ghost_valid = budget
                try:
                    if stacked is not None:
                        self.smoother.iterate(stacked, with_residual, self.recorder)
                    else:
                        for lv in levels:
                            self.smoother.iterate(lv, with_residual, self.recorder)
                finally:
                    self._end_overlap(ctx, levels, stacked)
                ghost_valid -= per_iter
            if self.fault_injector is not None:
                # Silent-data-corruption model: the smoother "wrote" a bad
                # value into its output field on whichever ranks the plan
                # targets at this (vcycle, level).  Ranks are global ids:
                # on agglomerated levels only the active ranks own state.
                for rank, lv in zip(self.ranks_at(lev), levels):
                    self.fault_injector.kernel_sdc(lev, rank, lv.x)

    # ------------------------------------------------------------------
    def _exchange_levels(
        self, lev: int, fields, levels, stacked, split_ok: bool
    ):
        """Fill ghost shells, split-phase when overlap applies.

        Returns the in-flight :class:`_OverlapContext` (armed on the
        compute targets — the stacked level under the engine, the
        per-rank levels otherwise) or ``None`` after a synchronous
        exchange.  Falls back to synchronous when overlap is off, the
        consumer does not route kernels through the overlap-aware
        helpers (``split_ok``), or the exchanger has no ``begin``.
        """
        ex = self.exchanger_at(lev)
        begin = getattr(ex, "begin", None)
        if not (self.overlap and split_ok) or begin is None:
            ex.exchange(lev, fields)
            return None
        grid = (stacked if stacked is not None else levels[0]).grid
        partition = partition_for(grid)
        pending = begin(lev, fields)
        ctx = _OverlapContext(ex, pending, partition)
        for target in ([stacked] if stacked is not None else levels):
            target.overlap_ctx = ctx
        return ctx

    def _end_overlap(self, ctx, levels, stacked) -> None:
        """Complete an in-flight exchange and disarm the levels.

        The first halo-reading kernel normally consumed the context
        already (``finish`` is then a no-op); completing here keeps the
        collective's envelope accounting correct even if an iterate
        raised mid-flight, and disarming prevents a stale context from
        leaking into later iterations or a post-rollback replay.
        """
        if ctx is None:
            return
        try:
            ctx.finish()
        finally:
            for target in ([stacked] if stacked is not None else levels):
                target.overlap_ctx = None

    def _stacked_pair(self, lev: int):
        if self.engine is None:
            return None
        return self.engine.stacked_intergrid_pair(lev)

    def _transfer_at(self, lev: int):
        if self.agglomerator is None:
            return None
        return self.agglomerator.transfer_at(lev)

    def _init_zero(self, lev: int) -> None:
        with self.tracer.span("initZero", l=lev):
            for lv in self.levels_at(lev):
                lv.init_zero()
                if self.recorder is not None:
                    self.recorder.kernel(lev, "initZero", lv.num_points)

    def _restrict(self, lev: int) -> None:
        agg = self.agglomerator
        merged_fine = agg is not None and agg.plan.is_agglomerated(lev)
        transfer = self._transfer_at(lev + 1)
        if transfer is not None:
            # Transition level: restrict per source rank into the
            # staging levels (bit-identical to the unagglomerated
            # restriction — per-rank shapes at the first transition,
            # the canonical per-rank association when the fine side is
            # itself merged), then gather the staged blocks onto the
            # shrunken active rank grid.
            staging = agg.staging_levels[lev + 1]
            with self.tracer.span("restriction", l=lev):
                if merged_fine:
                    agg.canonical_restriction(
                        lev, self.levels_at(lev), staging, self.recorder
                    )
                else:
                    for fine, stage in zip(self.levels_at(lev), staging):
                        ops.restriction(fine, stage, self.recorder)
            transfer.gather()
            self._init_zero(lev + 1)
            return
        if merged_fine:
            # Merged -> merged on the same active grid: the canonical
            # split keeps the reduction association per-rank exact.
            with self.tracer.span("restriction", l=lev):
                agg.canonical_restriction(
                    lev, self.levels_at(lev), self.levels_at(lev + 1),
                    self.recorder,
                )
            self._init_zero(lev + 1)
            return
        pair = self._stacked_pair(lev)
        if pair is not None:
            # one vectorised brick-native restriction over all ranks
            with self.tracer.span("restriction", l=lev):
                ops.restriction(pair[0], pair[1], self.recorder)
            self._init_zero(lev + 1)
            return
        with self.tracer.span("restriction", l=lev):
            for fine, coarse in zip(self.levels_at(lev), self.levels_at(lev + 1)):
                ops.restriction(fine, coarse, self.recorder)
        self._init_zero(lev + 1)

    def _interpolate(self, lev: int) -> None:
        transfer = self._transfer_at(lev + 1)
        if transfer is not None:
            # Transition level: scatter the merged correction back to
            # the staged blocks, then interpolate per source rank
            # (interpolation reads only the coarse interior, so the
            # staged blocks need no ghost exchange).
            transfer.scatter()
            staging = self.agglomerator.staging_levels[lev + 1]
            with self.tracer.span("interpolation+increment", l=lev):
                for fine, stage in zip(self.levels_at(lev), staging):
                    ops.interpolation_increment(stage, fine, self.recorder)
            return
        with self.tracer.span("interpolation+increment", l=lev):
            pair = self._stacked_pair(lev)
            if pair is not None:
                ops.interpolation_increment(pair[1], pair[0], self.recorder)
                return
            for fine, coarse in zip(self.levels_at(lev), self.levels_at(lev + 1)):
                ops.interpolation_increment(coarse, fine, self.recorder)

    def _cycle(self, lev: int, kind: str) -> None:
        """Recursive multigrid cycle of the given kind at ``lev``."""
        if lev == self.num_levels - 1:
            with self.tracer.span(
                "bottom", l=lev, solver=self.bottom_solver.name
            ):
                self.bottom_solver.solve(self, lev)
            return
        with self.tracer.span("level", l=lev):
            self.smooth_level(lev, self.max_smooths, with_residual=True)
            self._restrict(lev)
            if kind == "V":
                self._cycle(lev + 1, "V")
            elif kind == "W":
                self._cycle(lev + 1, "W")
                self._cycle(lev + 1, "W")
            else:  # F: one F visit, then a V visit
                self._cycle(lev + 1, "F")
                self._cycle(lev + 1, "V")
            self._interpolate(lev)
            self.smooth_level(lev, self.max_smooths, with_residual=True)

    def run(self) -> None:
        """One multigrid cycle (Algorithm 2 when ``cycle == 'V'``)."""
        with self.tracer.span("vcycle", v=self.cycles_run, kind=self.cycle):
            self._cycle(0, self.cycle)
        self.cycles_run += 1

    def max_norm_residual(self) -> float:
        """Global max-norm of the finest-level residual (Algorithm 1)."""
        with self.tracer.span("residual-check", v=self.cycles_run):
            levels = self.levels_at(0)
            stacked = (
                self.engine.stacked_level(0) if self.engine is not None else None
            )
            # split-phase overlap only when the default applyOp runs —
            # a custom apply_op_fn may not consume the armed context,
            # and would then read stale ghosts
            split_ok = self.apply_op_fn is ops.apply_op
            ctx = self._exchange_levels(
                0, [[lv.x] for lv in levels], levels, stacked, split_ok
            )
            try:
                if stacked is not None and self.apply_op_fn is ops.apply_op:
                    # one vectorised applyOp + residual over all rank
                    # blocks; the per-rank local maxima read through the
                    # stacked views
                    with self.tracer.span("applyOp", l=0):
                        ops.apply_op(stacked, self.recorder, tracer=self.tracer)
                    with self.tracer.span("residual", l=0):
                        ops.residual(stacked, self.recorder)
                else:
                    for lv in levels:
                        with self.tracer.span("applyOp", l=0):
                            if self.apply_op_fn is ops.apply_op:
                                ops.apply_op(lv, self.recorder, tracer=self.tracer)
                            else:
                                self.apply_op_fn(lv, self.recorder)
                        with self.tracer.span("residual", l=0):
                            ops.residual(lv, self.recorder)
            finally:
                self._end_overlap(ctx, levels, stacked)
            local = [lv.r.max_abs_interior() for lv in levels]
            if self.recorder is not None:
                self.recorder.reduction()
            return float(self._allreduce_max(local))

    def solve(
        self, tol: float = CONVERGENCE_TOL, max_vcycles: int = 100
    ) -> list[float]:
        """Algorithm 1: cycle until the residual max-norm drops below tol.

        Returns the residual history; ``history[0]`` is the initial
        residual and each later entry follows one cycle.
        """
        history = [self.max_norm_residual()]
        while history[-1] > tol and len(history) <= max_vcycles:
            self.run()
            history.append(self.max_norm_residual())
        return history
