"""In-solver coarse-level agglomeration (HPGMG-style rank merging).

Deep in the V-cycle the per-rank subdomain shrinks geometrically until
each rank holds a handful of cells and every visit is pure latency: 26
neighbour messages to smooth a 2^3 block.  Agglomeration fixes the
surface-to-volume collapse structurally: below a configurable per-rank
point threshold the solver *merges* the decomposition — every
agglomeration step halves each even rank-grid dimension, so up to 8
subdomains combine into one and only 1/8 of the ranks stay active.
Merged subdomains are 8x larger, support larger bricks (deeper halo
budget, fewer communication-avoiding exchanges per visit), and talk to
7/8 fewer peers.

The mechanism is in-solver and exact, not a performance-model stub:

* an :class:`AgglomerationPlan` derives the active rank grid per level
  (pure geometry — deterministic, validated, nested);
* at each *transition* level the per-source restriction lands in a
  *staging* level on the previous decomposition, and an
  :class:`AgglomerationTransfer` gathers the staged ``x``/``b`` blocks
  to their owner rank through the parent :class:`~repro.comm.simmpi.
  SimComm` — priced, checksummed, and fault-injectable exactly like
  halo traffic (``direction=None`` distinguishes the envelope);
* active ranks smooth the merged level through an exchanger scoped to
  the active communicator (:class:`~repro.comm.simmpi.SubComm`), or a
  :class:`~repro.comm.exchange.LocalPeriodicExchange` when a single
  rank owns the whole coarse domain (26 wire messages become 26 local
  wraps);
* on the way back up the transfer *scatters* the merged correction to
  the staged blocks, and interpolation proceeds per source rank.

Because every gather/scatter moves exact field blocks and smoothing is
pointwise over identical values, the residual history with agglomeration
on is **bit-identical** to the history with it off — only the message
schedule changes.  That identity is the acceptance test.
"""

from __future__ import annotations

import numpy as np

from repro.comm.exchange import (
    HaloExchange,
    LocalPeriodicExchange,
    ResilientChannel,
    payload_checksum,
)
from repro.comm.simmpi import SubComm
from repro.comm.topology import CartTopology
from repro.gmg import operators as ops
from repro.gmg.level import Level, make_level
from repro.obs.tracer import NULL_TRACER

#: tag band for halo exchanges on agglomerated levels: the 26 direction
#: tags (0..26) of level ``lev`` shift to ``BASE + lev * STRIDE`` so
#: sub-communicator traffic never collides with the full-grid band
SUBCOMM_TAG_BASE = 100
SUBCOMM_TAG_STRIDE = 64

#: tag band for gather/scatter transfers (on the parent communicator):
#: gather at level ``lev`` uses ``BASE + 2 lev``, scatter ``BASE + 2 lev + 1``
TRANSFER_TAG_BASE = 10_000


def _coords_of(rank: int, dims: tuple[int, int, int]) -> tuple[int, int, int]:
    """Row-major coordinates (matches :class:`CartTopology`)."""
    p0, p1, p2 = dims
    return (rank // (p1 * p2), (rank // p2) % p1, rank % p2)


def _rank_of(coords: tuple[int, int, int], dims: tuple[int, int, int]) -> int:
    return (coords[0] * dims[1] + coords[1]) * dims[2] + coords[2]


class AgglomerationPlan:
    """Which ranks are active at each level (pure geometry).

    Starting from the full ``rank_dims`` at level 0, each deeper level
    halves every even active dimension > 1 — repeatedly — while the
    per-active-rank point count stays below ``threshold_points``.  Level
    0 is never agglomerated (the finest level is where the rank count
    pays off), and the active grids are *nested*: each level's active
    ranks are a subset of the previous level's, so a merged subdomain is
    always assembled from blocks its owner's previous peers staged.
    """

    def __init__(
        self,
        rank_dims: tuple[int, int, int],
        global_cells: int,
        num_levels: int,
        threshold_points: int,
    ) -> None:
        rank_dims = tuple(int(d) for d in rank_dims)
        if len(rank_dims) != 3 or any(d < 1 for d in rank_dims):
            raise ValueError(f"rank_dims must be three positive ints: {rank_dims}")
        if threshold_points < 1:
            raise ValueError(
                f"threshold_points must be positive: {threshold_points}"
            )
        if num_levels < 1:
            raise ValueError(f"num_levels must be positive: {num_levels}")
        self.rank_dims = rank_dims
        self.global_cells = int(global_cells)
        self.num_levels = int(num_levels)
        self.threshold_points = int(threshold_points)
        #: per level: the active rank-grid dimensions
        self.active_dims: list[tuple[int, int, int]] = [rank_dims]
        for lev in range(1, num_levels):
            d = self.active_dims[-1]
            while True:
                cells = self.level_cells(lev, d)
                if cells[0] * cells[1] * cells[2] >= threshold_points:
                    break
                nd = tuple(
                    (dd // 2) if (dd % 2 == 0 and dd > 1) else dd for dd in d
                )
                if nd == d:
                    break  # nothing left to halve
                d = nd
            self.active_dims.append(d)

    def level_cells(
        self, lev: int, dims: tuple[int, int, int] | None = None
    ) -> tuple[int, int, int]:
        """Per-active-rank interior cells at ``lev`` under ``dims``."""
        d = self.active_dims[lev] if dims is None else dims
        return tuple((self.global_cells >> lev) // dd for dd in d)

    def active_count(self, lev: int) -> int:
        d = self.active_dims[lev]
        return d[0] * d[1] * d[2]

    def is_agglomerated(self, lev: int) -> bool:
        """True when fewer ranks than the full grid compute ``lev``."""
        return self.active_dims[lev] != self.rank_dims

    def transition_at(self, lev: int) -> bool:
        """True when the decomposition shrinks *entering* ``lev``."""
        return lev >= 1 and self.active_dims[lev] != self.active_dims[lev - 1]

    @property
    def any_agglomerated(self) -> bool:
        return any(self.is_agglomerated(lev) for lev in range(self.num_levels))

    def active_ranks(self, lev: int) -> list[int]:
        """Global ids of the active ranks at ``lev``, in sub-grid
        row-major order (each active rank keeps its own corner block:
        active coords ``a`` map to full-grid coords ``a * stride``)."""
        d = self.active_dims[lev]
        stride = tuple(r // dd for r, dd in zip(self.rank_dims, d))
        return [
            _rank_of(
                tuple(c * s for c, s in zip(_coords_of(a, d), stride)),
                self.rank_dims,
            )
            for a in range(d[0] * d[1] * d[2])
        ]

    def describe(self) -> str:
        rows = []
        for lev in range(self.num_levels):
            d = self.active_dims[lev]
            cells = self.level_cells(lev)
            rows.append(
                f"level {lev}: {d[0]}x{d[1]}x{d[2]} active ranks, "
                f"{cells[0]}x{cells[1]}x{cells[2]} cells each"
                + (" [agglomerated]" if self.is_agglomerated(lev) else "")
            )
        return "\n".join(rows)


class AgglomerationTransfer(ResilientChannel):
    """Gather/scatter of staged coarse blocks at one transition level.

    Messages travel on the *parent* communicator with global rank ids
    and level-unique tags, so they are priced, traced, checksummed and
    fault-injected by exactly the machinery halo traffic uses; a
    direction-pinned fault spec never matches them (``direction=None``)
    but level/src/rank predicates do.  The owner's own block is a self
    message (the active rank keeps its corner), matching how a real
    ``MPI_Gatherv`` onto a member root behaves.
    """

    def __init__(
        self,
        level_index: int,
        staging_levels: list[Level],
        merged_levels: list[Level],
        source_ranks: list[int],
        owner_ranks: list[int],
        owner_of: list[int],
        assignments: list[list[tuple[int, tuple[int, int, int]]]],
        comm,
        recorder=None,
        injector=None,
        max_retries: int = 3,
        tracer=None,
    ) -> None:
        super().__init__(
            comm, recorder=recorder, injector=injector,
            max_retries=max_retries, tracer=tracer,
        )
        self.level_index = int(level_index)
        self.staging_levels = staging_levels
        self.merged_levels = merged_levels
        self.source_ranks = source_ranks
        self.owner_ranks = owner_ranks
        #: owner (merged index) of each staging (source) index
        self.owner_of = owner_of
        #: per owner: [(source index, cell offset in the merged block)]
        self.assignments = assignments
        self.gather_tag = TRANSFER_TAG_BASE + 2 * self.level_index
        self.scatter_tag = TRANSFER_TAG_BASE + 2 * self.level_index + 1
        self._last_level = self.level_index

    # ------------------------------------------------------------------
    def _post(self, src: int, dst: int, tag: int, payload: np.ndarray,
              kind: str) -> None:
        """One priced, checksummed, injectable send on the parent comm."""
        level = self.level_index
        checksum = action = None
        if self.injector is not None:
            checksum = payload_checksum(payload)
            action = self.injector.message_action(
                level, src, dst, tag, None, payload.nbytes
            )
        self.comm.isend(
            src, dst, tag, payload, checksum=checksum, fault=action,
            level=level,
        )
        if self.recorder is not None:
            self.recorder.message(
                level, payload.nbytes, kind, segments=1,
                self_message=(src == dst),
            )

    def gather(self) -> None:
        """Assemble the merged ``x``/``b`` from the staged blocks.

        Every source rank sends one dense ``(2, *cells)`` block (the
        zero initial guess stacked with its restricted right-hand
        side); each owner places the blocks at their cell offsets.

        Level-pinned ``rank_crash`` specs fire on entry; transfers
        touching a dead rank are skipped so the collective completes
        for the survivors with no hung waitall and no partially staged
        state left in flight — the crash surfaces as
        :class:`RankDeadError` at the next residual reduction and the
        recovery ladder restores or rolls back the whole cycle.
        """
        level = self.level_index
        with self.tracer.span(
            "agglomerate-gather", l=level,
            sources=len(self.staging_levels), owners=len(self.merged_levels),
        ):
            self.poll_crashes(level)
            for s, st in enumerate(self.staging_levels):
                if self._is_dead(self.source_ranks[s]) or self._is_dead(
                    self.owner_ranks[self.owner_of[s]]
                ):
                    continue  # dead endpoint on either side: nothing moves
                st.init_zero()  # the staged x is the zero initial guess
                payload = np.stack([st.x.to_ijk(), st.b.to_ijk()])
                self._post(
                    self.source_ranks[s],
                    self.owner_ranks[self.owner_of[s]],
                    self.gather_tag, payload, "gather",
                )
            for o, merged in enumerate(self.merged_levels):
                dst = self.owner_ranks[o]
                if self._is_dead(dst):
                    continue  # a dead owner assembles nothing
                dense = np.empty(
                    (2,) + tuple(merged.shape_cells), dtype=merged.dtype
                )
                partial = False
                for s, offset in self.assignments[o]:
                    st = self.staging_levels[s]
                    src = self.source_ranks[s]
                    if self._is_dead(src):
                        partial = True
                        continue  # source died before staging its block
                    expected = (2,) + tuple(st.shape_cells)
                    payload = self._receive_payload(
                        level, dst, src, self.gather_tag, expected,
                        direction=None,
                        context=(
                            f"rank {dst}'s agglomerated block from rank "
                            f"{src} at level {level}"
                        ),
                        what="agglomeration gather",
                    )
                    with self.tracer.child(dst).span(
                        "unpack", l=level, src=src, dst=dst,
                        tag=self.gather_tag, bytes=int(payload.nbytes),
                    ):
                        block = tuple(
                            slice(off, off + c)
                            for off, c in zip(offset, st.shape_cells)
                        )
                        dense[(slice(None),) + block] = payload
                if partial:
                    continue  # never commit a partially assembled block
                merged.x.set_interior(dense[0])
                merged.b.set_interior(dense[1])

    def scatter(self) -> None:
        """Return the merged correction ``x`` to the staged blocks."""
        level = self.level_index
        with self.tracer.span(
            "agglomerate-scatter", l=level,
            sources=len(self.staging_levels), owners=len(self.merged_levels),
        ):
            self.poll_crashes(level)
            for o, merged in enumerate(self.merged_levels):
                src = self.owner_ranks[o]
                if self._is_dead(src):
                    continue  # a dead owner returns nothing
                dense_x = merged.x.to_ijk()
                for s, offset in self.assignments[o]:
                    st = self.staging_levels[s]
                    if self._is_dead(self.source_ranks[s]):
                        continue  # no endpoint to deliver to
                    block = tuple(
                        slice(off, off + c)
                        for off, c in zip(offset, st.shape_cells)
                    )
                    self._post(
                        src, self.source_ranks[s], self.scatter_tag,
                        np.ascontiguousarray(dense_x[block]), "scatter",
                    )
            for s, st in enumerate(self.staging_levels):
                dst = self.source_ranks[s]
                src = self.owner_ranks[self.owner_of[s]]
                if self._is_dead(dst) or self._is_dead(src):
                    continue  # staged block keeps its pre-crash correction
                payload = self._receive_payload(
                    level, dst, src, self.scatter_tag,
                    tuple(st.shape_cells), direction=None,
                    context=(
                        f"rank {dst}'s scattered correction from rank "
                        f"{src} at level {level}"
                    ),
                    what="agglomeration scatter",
                )
                with self.tracer.child(dst).span(
                    "unpack", l=level, src=src, dst=dst,
                    tag=self.scatter_tag, bytes=int(payload.nbytes),
                ):
                    st.x.set_interior(payload)


class Agglomerator:
    """Builds and owns everything agglomerated levels need.

    Per agglomerated level: the merged :class:`Level` per active rank
    and an exchanger scoped to the active ranks.  Per *transition*
    level additionally: the staging levels (one per previous-level
    active rank) and the :class:`AgglomerationTransfer` that moves the
    blocks.  The V-cycle consults :meth:`levels_at` / :meth:`ranks_at`
    / :meth:`exchanger_at` and stays decomposition-agnostic.
    """

    def __init__(
        self,
        config,
        topology: CartTopology,
        comm,
        recorder=None,
        boundary=None,
        injector=None,
        max_retries: int = 3,
        tracer=None,
    ) -> None:
        from repro.gmg.boundary import BoundaryCondition

        if config.agglomerate_threshold is None:
            raise ValueError("config has no agglomeration threshold set")
        self.plan = AgglomerationPlan(
            config.rank_dims,
            config.global_cells,
            config.num_levels,
            config.agglomerate_threshold,
        )
        self.config = config
        self.topology = topology
        self.comm = comm
        self.tracer = tracer or NULL_TRACER
        boundary = boundary or BoundaryCondition.PERIODIC
        periodic = boundary is BoundaryCondition.PERIODIC
        dtype = np.float32 if config.precision == "fp32" else np.float64
        self._dtype = dtype
        #: scratch per-rank-shaped level pairs for canonical restriction
        self._scratch: dict[int, tuple[Level, Level]] = {}
        n = config.num_levels
        #: per level: merged Levels (active-rank order) or None
        self.merged_levels: list[list[Level] | None] = [None] * n
        #: per level: staging Levels on the previous decomposition
        self.staging_levels: list[list[Level] | None] = [None] * n
        #: per level: exchanger over the active ranks, or None
        self.exchangers: list[object | None] = [None] * n
        #: per level: the gather/scatter transfer at a transition
        self.transfers: list[AgglomerationTransfer | None] = [None] * n

        for lev in range(1, n):
            if not self.plan.is_agglomerated(lev):
                continue
            D = self.plan.active_dims[lev]
            cells = self.plan.level_cells(lev)
            merged = [
                make_level(
                    lev, cells, config.brick_dim, config.level_spacing(lev),
                    config.ordering, dtype=dtype,
                )
                for _ in range(self.plan.active_count(lev))
            ]
            self.merged_levels[lev] = merged
            active = self.plan.active_ranks(lev)
            if len(active) == 1:
                self.exchangers[lev] = LocalPeriodicExchange(
                    merged[0].grid, recorder, boundary, tracer=tracer
                )
            else:
                sub_topology = CartTopology(
                    D,
                    min(config.ranks_per_node, len(active)),
                    periodic=periodic,
                )
                sub_comm = SubComm(
                    comm, active,
                    SUBCOMM_TAG_BASE + lev * SUBCOMM_TAG_STRIDE,
                )
                self.exchangers[lev] = HaloExchange(
                    merged[0].grid, sub_topology, sub_comm, recorder,
                    boundary, injector=injector, max_retries=max_retries,
                    tracer=tracer,
                )
            if not self.plan.transition_at(lev):
                continue
            S = self.plan.active_dims[lev - 1]
            s_cells = self.plan.level_cells(lev, S)
            staging = [
                make_level(
                    lev, s_cells, config.brick_dim, config.level_spacing(lev),
                    config.ordering, dtype=dtype,
                )
                for _ in range(S[0] * S[1] * S[2])
            ]
            self.staging_levels[lev] = staging
            owner_of, assignments = self._assign(S, D, s_cells)
            self.transfers[lev] = AgglomerationTransfer(
                lev, staging, merged,
                self.plan.active_ranks(lev - 1), active,
                owner_of, assignments, comm,
                recorder=recorder, injector=injector,
                max_retries=max_retries, tracer=tracer,
            )

    @staticmethod
    def _assign(
        S: tuple[int, int, int],
        D: tuple[int, int, int],
        s_cells: tuple[int, int, int],
    ) -> tuple[list[int], list[list[tuple[int, tuple[int, int, int]]]]]:
        """Map each source block to its owner and merged-cell offset."""
        t = tuple(si // di for si, di in zip(S, D))
        owner_of: list[int] = []
        assignments: list[list[tuple[int, tuple[int, int, int]]]] = [
            [] for _ in range(D[0] * D[1] * D[2])
        ]
        for s in range(S[0] * S[1] * S[2]):
            cs = _coords_of(s, S)
            co = tuple(c // tt for c, tt in zip(cs, t))
            o = _rank_of(co, D)
            owner_of.append(o)
            offset = tuple(
                (c - oc * tt) * sc
                for c, oc, tt, sc in zip(cs, co, t, s_cells)
            )
            assignments[o].append((s, offset))
        return owner_of, assignments

    # ------------------------------------------------------------------
    def _scratch_pair(self, lev: int) -> tuple[Level, Level]:
        """Per-rank-shaped scratch levels for restricting out of ``lev``."""
        pair = self._scratch.get(lev)
        if pair is None:
            cfg = self.config
            pair = tuple(
                make_level(
                    l,
                    self.plan.level_cells(l, self.plan.rank_dims),
                    cfg.brick_dim,
                    cfg.level_spacing(l),
                    cfg.ordering,
                    dtype=self._dtype,
                )
                for l in (lev, lev + 1)
            )
            self._scratch[lev] = pair
        return pair

    def canonical_restriction(
        self, lev: int, fine_levels, coarse_levels, recorder=None
    ) -> None:
        """Restrict merged fine levels with the per-rank association.

        ``np.mean`` over multiple axes associates its floating-point
        additions differently for different array shapes, so restricting
        a merged residual block in one call would drift from the
        unagglomerated schedule by ~1 ULP.  To keep the bit-identity
        guarantee at *any* agglomeration depth, the merged residual is
        split into original per-rank sub-blocks and each is restricted
        through scratch levels shaped exactly like the per-rank
        hierarchy — same shapes, same code path, same bits.
        """
        sf, sc = self._scratch_pair(lev)
        pf = tuple(sf.shape_cells)
        pc = tuple(sc.shape_cells)
        for fine, coarse in zip(fine_levels, coarse_levels):
            dense_r = fine.r.to_ijk()
            out = np.empty(tuple(coarse.shape_cells), dtype=coarse.dtype)
            blocks = tuple(F // f for F, f in zip(fine.shape_cells, pf))
            for i in range(blocks[0]):
                for j in range(blocks[1]):
                    for k in range(blocks[2]):
                        at = (i, j, k)
                        src = tuple(
                            slice(a * p, (a + 1) * p) for a, p in zip(at, pf)
                        )
                        sf.r.set_interior(dense_r[src])
                        ops.restriction(sf, sc)
                        dst = tuple(
                            slice(a * p, (a + 1) * p) for a, p in zip(at, pc)
                        )
                        out[dst] = sc.b.to_ijk()
            coarse.b.set_interior(out)
            if recorder is not None:
                recorder.kernel(fine.index, "restriction", coarse.num_points)

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when at least one level actually merges ranks."""
        return self.plan.any_agglomerated

    def levels_at(self, lev: int) -> list[Level] | None:
        """Merged compute levels at ``lev`` (None when not merged)."""
        return self.merged_levels[lev]

    def ranks_at(self, lev: int) -> list[int] | None:
        """Global ids of the active ranks (None when not merged)."""
        if self.merged_levels[lev] is None:
            return None
        return self.plan.active_ranks(lev)

    def exchanger_at(self, lev: int):
        """Active-rank exchanger at ``lev`` (None when not merged)."""
        return self.exchangers[lev]

    def transfer_at(self, lev: int) -> AgglomerationTransfer | None:
        """The gather/scatter transfer entering ``lev`` (transitions)."""
        return self.transfers[lev]

    def level_groups(self, rank_levels) -> list[list[Level]]:
        """Per depth: the levels that actually compute (for the engine)."""
        return [
            list(self.merged_levels[lev])
            if self.merged_levels[lev] is not None
            else [levels[lev] for levels in rank_levels]
            for lev in range(self.config.num_levels)
        ]

    def channels(self) -> list[ResilientChannel]:
        """Every resilient channel this agglomerator opened (for the
        end-of-solve stale drain)."""
        out: list[ResilientChannel] = [
            ex for ex in self.exchangers if isinstance(ex, HaloExchange)
        ]
        out.extend(t for t in self.transfers if t is not None)
        return out
