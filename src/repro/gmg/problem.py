"""The paper's model problem (Section IV-C).

3-D constant-coefficient Poisson on the unit cube with periodic
boundary conditions, discretised with the standard 7-point stencil:

* right-hand side ``b = sin(2 pi x) sin(2 pi y) sin(2 pi z)`` sampled at
  cell centres;
* operator coefficients ``alpha = -6/h**2`` (centre) and
  ``beta = 1/h**2`` (neighbours), with ``h`` the level's grid spacing;
* point-Jacobi smoother ``x := x + gamma (A x - b)`` with
  ``gamma = h**2/12`` (damped Jacobi, omega = 1/2);
* convergence when the max-norm residual drops below ``1e-10``.

Because the operator is a pure second difference and the right-hand
side is an eigenfunction of it, the *discrete* solution is known in
closed form, which the tests exploit: ``A`` acts on the product of
sines as multiplication by ``3 (2 cos(2 pi h) - 2)/h**2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Convergence threshold on the max-norm residual (Algorithm 1).
CONVERGENCE_TOL = 1e-10


@dataclass(frozen=True)
class LevelConstants:
    """Stencil constants for one multigrid level."""

    h: float
    alpha: float
    beta: float
    gamma: float

    @classmethod
    def for_spacing(cls, h: float) -> "LevelConstants":
        if h <= 0:
            raise ValueError(f"grid spacing must be positive: {h}")
        return cls(h=h, alpha=-6.0 / h**2, beta=1.0 / h**2, gamma=h**2 / 12.0)

    def as_dict(self) -> dict[str, float]:
        return {"alpha": self.alpha, "beta": self.beta, "gamma": self.gamma}


def rhs_field(
    shape: tuple[int, int, int],
    h: float,
    origin: tuple[int, int, int] = (0, 0, 0),
) -> np.ndarray:
    """Sample the right-hand side over a subdomain.

    ``shape`` is the subdomain's cells per dimension, ``origin`` its
    global cell offset (for distributed runs), ``h`` the finest-level
    spacing.  Cell centres sit at ``(index + 0.5) * h``.
    """
    coords = [
        (np.arange(origin[d], origin[d] + shape[d], dtype=np.float64) + 0.5) * h
        for d in range(3)
    ]
    sx = np.sin(2.0 * np.pi * coords[0])[:, None, None]
    sy = np.sin(2.0 * np.pi * coords[1])[None, :, None]
    sz = np.sin(2.0 * np.pi * coords[2])[None, None, :]
    return np.ascontiguousarray(sx * sy * sz)


def discrete_operator_eigenvalue(h: float) -> float:
    """Eigenvalue of the 7-point operator on the product-of-sines mode.

    Applying the discrete operator ``A`` (with the constants above) to
    ``sin(2 pi x) sin(2 pi y) sin(2 pi z)`` multiplies it by
    ``3 (2 cos(2 pi h) - 2) / h**2``.
    """
    return 3.0 * (2.0 * np.cos(2.0 * np.pi * h) - 2.0) / h**2


def discrete_solution(
    shape: tuple[int, int, int],
    h: float,
    origin: tuple[int, int, int] = (0, 0, 0),
) -> np.ndarray:
    """The exact solution of the *discrete* system ``A x = b``.

    Unique up to an additive constant (periodic operator nullspace);
    this returns the zero-mean representative, which Jacobi-based
    multigrid converges to from a zero initial guess because both the
    right-hand side and every update have zero mean.
    """
    lam = discrete_operator_eigenvalue(h)
    return rhs_field(shape, h, origin) / lam


def rhs_field_dirichlet(
    shape: tuple[int, int, int],
    h: float,
    origin: tuple[int, int, int] = (0, 0, 0),
) -> np.ndarray:
    """Right-hand side for the homogeneous-Dirichlet variant.

    ``b = sin(pi x) sin(pi y) sin(pi z)`` vanishes on the boundary and
    is a discrete eigenfunction of the 7-point operator under the
    cell-centred mirror condition (ghost = -interior), so the Dirichlet
    solve has the same closed-form verification as the periodic one.
    """
    coords = [
        (np.arange(origin[d], origin[d] + shape[d], dtype=np.float64) + 0.5) * h
        for d in range(3)
    ]
    sx = np.sin(np.pi * coords[0])[:, None, None]
    sy = np.sin(np.pi * coords[1])[None, :, None]
    sz = np.sin(np.pi * coords[2])[None, None, :]
    return np.ascontiguousarray(sx * sy * sz)


def dirichlet_operator_eigenvalue(h: float) -> float:
    """Eigenvalue of the Dirichlet operator on the product-of-sines mode.

    The mode ``sin(pi x_d)`` satisfies the antisymmetric mirror ghost
    condition exactly, so the operator acts on the product as
    multiplication by ``3 (2 cos(pi h) - 2) / h**2``.
    """
    return 3.0 * (2.0 * np.cos(np.pi * h) - 2.0) / h**2


def discrete_solution_dirichlet(
    shape: tuple[int, int, int],
    h: float,
    origin: tuple[int, int, int] = (0, 0, 0),
) -> np.ndarray:
    """Closed-form discrete solution of the Dirichlet model problem.

    Unlike the periodic operator, the Dirichlet operator is
    non-singular, so this solution is unique (no zero-mean convention).
    """
    return rhs_field_dirichlet(shape, h, origin) / dirichlet_operator_eigenvalue(h)


def continuum_solution(
    shape: tuple[int, int, int],
    h: float,
    origin: tuple[int, int, int] = (0, 0, 0),
) -> np.ndarray:
    """The PDE solution ``u = -b / (12 pi**2)`` sampled at cell centres.

    Used by convergence-order tests: the discrete solution approaches
    this at second order in ``h``.
    """
    return rhs_field(shape, h, origin) / (-12.0 * np.pi**2)
