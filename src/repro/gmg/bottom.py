"""Coarsest-level ("bottom") solvers.

The paper relaxes the coarsest level with 100 point-Jacobi iterations
and notes "other solvers might be more effective" (Section IV-C) and
"other ... bottom solvers" as future work (Section IX).  Three options:

* :class:`RelaxationBottomSolver` — the paper's default: ``iterations``
  sweeps of the configured smoother (communication-avoiding);
* :class:`ConjugateGradientBottomSolver` — distributed CG with the
  operator applied through the brick kernels and dot products reduced
  across ranks (two extra allreduces per iteration, which is exactly
  why latency-bound coarse grids often prefer relaxation);
* :class:`FFTBottomSolver` — the "direct solver" of the paper's Fig. 2:
  the periodic constant-coefficient operator diagonalises in Fourier
  space, so the coarse problem is solved exactly by one forward/inverse
  FFT pair on the gathered coarse grid.
"""

from __future__ import annotations

import numpy as np

from repro.gmg.level import Level
from repro.obs.tracer import NULL_TRACER


class BottomSolver:
    """Interface: solve ``A x = b`` on the coarsest level of all ranks."""

    name: str = "abstract"
    #: span tracer; rebound by the V-cycle driver when tracing is on
    #: (the driver also wraps the whole call in a ``bottom`` span —
    #: solver-internal spans below add the per-phase detail)
    tracer = NULL_TRACER

    def solve(self, vcycle, lev: int) -> None:
        """``vcycle`` is the running :class:`repro.gmg.vcycle.VCycle`."""
        raise NotImplementedError


class RelaxationBottomSolver(BottomSolver):
    """Point relaxation with the V-cycle's smoother (paper default)."""

    name = "relaxation"

    def __init__(self, iterations: int = 100) -> None:
        if iterations < 1:
            raise ValueError(f"iterations must be positive: {iterations}")
        self.iterations = iterations

    def solve(self, vcycle, lev: int) -> None:
        vcycle.smooth_level(lev, self.iterations, with_residual=False)


class ConjugateGradientBottomSolver(BottomSolver):
    """Distributed conjugate gradients on the coarsest level.

    The operator is SPD up to its constant nullspace; right-hand sides
    produced by restriction of residuals have (numerically) zero mean,
    so plain CG converges to the zero-mean solution.  Dot products are
    summed across ranks through the communicator's allreduce.
    """

    name = "cg"

    def __init__(
        self,
        max_iterations: int = 200,
        rtol: float = 1e-10,
        project_nullspace: bool = True,
    ) -> None:
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be positive: {max_iterations}")
        self.max_iterations = max_iterations
        self.rtol = rtol
        #: project the constant mode out of b/x — required for the
        #: singular periodic/Neumann operators, wrong for Dirichlet
        self.project_nullspace = project_nullspace

    @staticmethod
    def _project_out_nullspace(vcycle, levels: list[Level], attr: str) -> None:
        """Subtract the global mean from a field (interior cells).

        The periodic operator's nullspace is the constant vector; CG on
        the semidefinite system is stable only if iterates stay
        orthogonal to it, so the mean (which enters through rounding)
        is projected out of the residual and the solution.
        """
        sums, counts = [], 0
        for lv in levels:
            data = getattr(lv, attr).data[lv.grid.interior_slots]
            sums.append(float(np.sum(data)))
            counts += data.size
        if vcycle.recorder is not None:
            vcycle.recorder.reduction()
        mean = vcycle.allreduce_sum(sums) / counts
        for lv in levels:
            getattr(lv, attr).data[lv.grid.interior_slots] -= mean

    @staticmethod
    def _dot(vcycle, levels: list[Level], a: str, b: str) -> float:
        locals_ = []
        for lv in levels:
            x = getattr(lv, a).data[lv.grid.interior_slots]
            y = getattr(lv, b).data[lv.grid.interior_slots]
            locals_.append(float(np.sum(x * y)))
        if vcycle.recorder is not None:
            vcycle.recorder.reduction()
        return vcycle.allreduce_sum(locals_)

    def _apply_operator(self, vcycle, lev: int, levels: list[Level]) -> None:
        """Ax <- A x with a fresh ghost exchange (radius-1 stencil)."""
        vcycle.exchangers[lev].exchange(lev, [[lv.x] for lv in levels])
        for lv in levels:
            with self.tracer.span("applyOp", l=lev):
                vcycle.apply_op_fn(lv, vcycle.recorder)

    def solve(self, vcycle, lev: int) -> None:
        from repro.gmg import operators as ops

        levels = vcycle.levels_at(lev)
        interior = [lv.grid.interior_slots for lv in levels]
        if self.project_nullspace:
            # keep the problem orthogonal to the constant nullspace
            self._project_out_nullspace(vcycle, levels, "b")
        # r = b - A x ; p = r  (x starts at the initZero'd correction)
        self._apply_operator(vcycle, lev, levels)
        for lv in levels:
            ops.residual(lv, vcycle.recorder)
        p = [lv.r.data.copy() for lv in levels]
        rr = self._dot(vcycle, levels, "r", "r")
        if rr == 0.0:
            return
        rr0 = rr
        for it in range(self.max_iterations):
            with self.tracer.span("cg-iteration", l=lev, i=it):
                # Ap through the bricked operator: stage p in the x slot
                # of a scratch view by temporarily swapping buffers
                saved_x = [lv.x.data for lv in levels]
                for lv, pv in zip(levels, p):
                    lv.x.data = pv
                self._apply_operator(vcycle, lev, levels)
                Ap = [lv.Ax.data.copy() for lv in levels]
                for lv, xv in zip(levels, saved_x):
                    lv.x.data = xv

                pAp_local = [
                    float(np.sum(pv[sl] * ap[sl]))
                    for pv, ap, sl in zip(p, Ap, interior)
                ]
                if vcycle.recorder is not None:
                    vcycle.recorder.reduction()
                pAp = vcycle.allreduce_sum(pAp_local)
                if pAp == 0.0:
                    break
                alpha = rr / pAp
                for lv, pv, ap in zip(levels, p, Ap):
                    lv.x.data += alpha * pv
                    lv.r.data -= alpha * ap
                rr_new = self._dot(vcycle, levels, "r", "r")
                if rr_new <= self.rtol**2 * rr0:
                    break
                beta = rr_new / rr
                for i, (lv, pv) in enumerate(zip(levels, p)):
                    p[i] = lv.r.data + beta * pv
                rr = rr_new
        if self.project_nullspace:
            self._project_out_nullspace(vcycle, levels, "x")


class FFTBottomSolver(BottomSolver):
    """Exact direct solve via FFT diagonalisation (periodic operator).

    Gathers the coarse grid (cheap: the coarsest level is tiny),
    divides each Fourier mode by the operator's symbol, zeroes the
    nullspace mode, and scatters the zero-mean solution back.
    """

    name = "fft"

    def solve(self, vcycle, lev: int) -> None:
        with self.tracer.span("fft-bottom", l=lev):
            self._solve(vcycle, lev)

    def _solve(self, vcycle, lev: int) -> None:
        levels = vcycle.levels_at(lev)
        topo = vcycle.topology
        cells = levels[0].shape_cells
        if topo is None:
            global_shape = cells
        else:
            global_shape = tuple(
                c * d for c, d in zip(cells, topo.dims)
            )
        b = np.zeros(global_shape)
        for rank, lv in enumerate(levels):
            o = (0, 0, 0) if topo is None else topo.subdomain_origin(rank, cells)
            b[o[0]:o[0] + cells[0], o[1]:o[1] + cells[1], o[2]:o[2] + cells[2]] = (
                lv.b.to_ijk()
            )

        h = levels[0].constants.h
        k = [np.fft.fftfreq(n) * 2.0 * np.pi for n in global_shape]
        # symbol of the 7-point operator: sum_d (2 cos(k_d) - 2) / h^2
        symbol = (
            (2.0 * np.cos(k[0]) - 2.0)[:, None, None]
            + (2.0 * np.cos(k[1]) - 2.0)[None, :, None]
            + (2.0 * np.cos(k[2]) - 2.0)[None, None, :]
        ) / h**2
        bh = np.fft.fftn(b)
        with np.errstate(divide="ignore", invalid="ignore"):
            xh = np.where(symbol != 0.0, bh / symbol, 0.0)
        x = np.real(np.fft.ifftn(xh))

        for rank, lv in enumerate(levels):
            o = (0, 0, 0) if topo is None else topo.subdomain_origin(rank, cells)
            lv.x.set_interior(
                x[o[0]:o[0] + cells[0], o[1]:o[1] + cells[1], o[2]:o[2] + cells[2]]
            )
        if vcycle.recorder is not None:
            for lv in levels:
                vcycle.recorder.kernel(lev, "fft-bottom", lv.num_points)


#: Registry used by :class:`repro.gmg.solver.SolverConfig`.
BOTTOM_SOLVERS: dict[str, type] = {
    "relaxation": RelaxationBottomSolver,
    "cg": ConjugateGradientBottomSolver,
    "fft": FFTBottomSolver,
}


def make_bottom_solver(name: str, **kwargs) -> BottomSolver:
    """Instantiate a bottom solver by registry name."""
    cls = BOTTOM_SOLVERS.get(name)
    if cls is None:
        raise ValueError(
            f"unknown bottom solver {name!r}; choose from {sorted(BOTTOM_SOLVERS)}"
        )
    return cls(**kwargs)
