"""HPGMG-style baseline: conventional array layout, no CA.

The paper's Figure 4 compares the brick solver against HPGMG-CUDA, a
proxy for finite-volume GMG with a conventional ``ijk`` ghost-cell
layout.  This module provides the functional equivalent:

* fields are plain dense arrays (one address stream per ``(i, j)``
  pencil, versus the bricks' one stream per brick);
* the ghost zone is one *cell* deep, so every smoothing iteration is
  preceded by an exchange (no communication avoiding);
* each exchange requires gathering every face/edge/corner region into
  a send buffer (packing) and scattering on receive (unpacking).

The numerics are identical to the brick solver by construction —
operator expressions are evaluated in exactly the same association
order as the DSL-generated kernels — so residual histories must match
to round-off; tests enforce this.  Performance differences (layout
traffic, message counts, pack/unpack passes) are what the machine
models price for Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bricks.brick_grid import NEIGHBOR_DIRECTIONS, direction_kind
from repro.gmg.problem import CONVERGENCE_TOL, LevelConstants, rhs_field
from repro.instrument import Recorder


def _apply_op(x: np.ndarray, c: LevelConstants) -> np.ndarray:
    """7-point operator with periodic wrap, matching the DSL kernel's
    association order: ``alpha*x + beta*(((((x+e)+w)+n)+s)+u)+d)``."""
    neighbor_sum = (
        (
            (
                (
                    (np.roll(x, -1, 0) + np.roll(x, 1, 0))
                    + np.roll(x, -1, 1)
                )
                + np.roll(x, 1, 1)
            )
            + np.roll(x, -1, 2)
        )
        + np.roll(x, 1, 2)
    )
    return (c.alpha * x) + (c.beta * neighbor_sum)


@dataclass
class _ArrayLevel:
    constants: LevelConstants
    x: np.ndarray
    b: np.ndarray

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.x.shape


class ArrayGMG:
    """Conventional-layout GMG on the paper's model problem (serial).

    Parameters mirror :class:`repro.gmg.solver.SolverConfig`'s subset
    relevant to the baseline.  Instrumentation records the exchange and
    kernel schedule the conventional algorithm would issue (one
    26-neighbour, ghost-width-1 exchange per smoothing iteration, with
    packing) so the performance model can price it.
    """

    def __init__(
        self,
        global_cells: int = 32,
        num_levels: int = 3,
        max_smooths: int = 12,
        bottom_smooths: int = 100,
        tol: float = CONVERGENCE_TOL,
        max_vcycles: int = 100,
    ) -> None:
        if global_cells % (1 << (num_levels - 1)):
            raise ValueError(
                f"{global_cells} cells cannot support {num_levels} levels"
            )
        self.global_cells = int(global_cells)
        self.num_levels = int(num_levels)
        self.max_smooths = int(max_smooths)
        self.bottom_smooths = int(bottom_smooths)
        self.tol = float(tol)
        self.max_vcycles = int(max_vcycles)
        self.recorder = Recorder()

        self.levels: list[_ArrayLevel] = []
        for lev in range(num_levels):
            n = global_cells >> lev
            h = (1 << lev) / global_cells
            self.levels.append(
                _ArrayLevel(
                    constants=LevelConstants.for_spacing(h),
                    x=np.zeros((n, n, n)),
                    b=np.zeros((n, n, n)),
                )
            )
        self.levels[0].b[...] = rhs_field(
            (global_cells,) * 3, 1.0 / global_cells
        )
        self.residuals: list[np.ndarray] = [np.zeros_like(lv.x) for lv in self.levels]

    # ------------------------------------------------------------------
    def _record_exchange(self, lev: int) -> None:
        """Account one conventional ghost-width-1 exchange at ``lev``.

        Message sizes are the 26 surface regions of the dense array
        with one-cell depth; every message needs packing (the region is
        strided in ``ijk`` storage) — modelled as one segment per
        pencil touched.
        """
        n = self.levels[lev].shape[0]
        self.recorder.exchange(lev)
        for d in NEIGHBOR_DIRECTIONS:
            cells = 1
            pencils = 1
            for c in d:
                cells *= n if c == 0 else 1
            # contiguous runs: innermost dim contiguous only when d[2]==0
            if d[2] == 0:
                pencils = cells // n
            else:
                pencils = cells
            self.recorder.message(
                lev,
                cells * 8,
                direction_kind(d),
                segments=max(pencils, 1),
                self_message=True,
            )

    def _smooth_level(self, lev: int, iterations: int, with_residual: bool) -> None:
        level = self.levels[lev]
        c = level.constants
        n_points = level.x.size
        for _ in range(iterations):
            self._record_exchange(lev)
            Ax = _apply_op(level.x, c)
            self.recorder.kernel(lev, "applyOp", n_points)
            if with_residual:
                self.residuals[lev] = level.b - Ax
                self.recorder.kernel(lev, "smooth+residual", n_points)
            else:
                self.recorder.kernel(lev, "smooth", n_points)
            level.x = (level.x + (c.gamma * Ax)) - (c.gamma * level.b)

    def run_vcycle(self) -> None:
        """One V-cycle (Algorithm 2) on dense arrays."""
        L = self.num_levels
        for lev in range(L - 1):
            self._smooth_level(lev, self.max_smooths, with_residual=True)
            r = self.residuals[lev]
            n = r.shape[0] // 2
            coarse_b = r.reshape(n, 2, n, 2, n, 2).mean(axis=(1, 3, 5))
            self.levels[lev + 1].b[...] = coarse_b
            self.levels[lev + 1].x[...] = 0.0
            self.recorder.kernel(lev, "restriction", coarse_b.size)
            self.recorder.kernel(lev + 1, "initZero", coarse_b.size)
        self._smooth_level(L - 1, self.bottom_smooths, with_residual=False)
        for lev in range(L - 2, -1, -1):
            xc = self.levels[lev + 1].x
            self.levels[lev].x += np.repeat(
                np.repeat(np.repeat(xc, 2, 0), 2, 1), 2, 2
            )
            self.recorder.kernel(lev, "interpolation+increment", xc.size)
            self._smooth_level(lev, self.max_smooths, with_residual=True)

    def max_norm_residual(self) -> float:
        """Max-norm residual on the finest level."""
        level = self.levels[0]
        self._record_exchange(0)
        Ax = _apply_op(level.x, level.constants)
        self.recorder.kernel(0, "applyOp", level.x.size)
        r = level.b - Ax
        self.recorder.kernel(0, "residual", level.x.size)
        self.residuals[0] = r
        self.recorder.reduction()
        return float(np.max(np.abs(r)))

    def solve(self) -> list[float]:
        """Algorithm 1; returns the residual history."""
        history = [self.max_norm_residual()]
        while history[-1] > self.tol and len(history) <= self.max_vcycles:
            self.run_vcycle()
            history.append(self.max_norm_residual())
        return history
