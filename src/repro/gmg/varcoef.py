"""Variable-coefficient geometric multigrid.

The paper's model problem has constant coefficients "for easy
performance comparison", while noting the DSL generates code for "more
complicated stencils" (Section IV-C) — and its HPGMG baseline is a
variable-coefficient FV code.  This module provides the full solve
path for a spatially varying diffusion coefficient ``beta(x) > 0``:

* the operator is the 7-point ``A x = c0 x + cx (x_E + x_W) +
  cy (x_N + x_S) + cz (x_U + x_D)`` with ``c{x,y,z} = beta / h^2`` and
  the conservative diagonal ``c0 = -2 (cx + cy + cz)`` (constant
  ``beta = 1`` recovers the paper's operator exactly);
* smoothing is damped point Jacobi with the *local* diagonal:
  ``x := x + omega (b - A x) / c0``, with ``1/c0`` precomputed per
  level (the ``dinv`` field) as production codes do;
* coarse-level coefficients come from volume-averaging ``beta`` (the
  standard rediscretisation coarsening);
* everything else — brick layout, CA exchange, restriction,
  interpolation, bottom relaxation — is the constant-coefficient
  machinery unchanged.

Verification is by inversion: manufacture ``b = A u`` for a known
``u`` through the operator kernel itself, then check the solver
recovers ``u``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bricks.bricked_array import BrickedArray
from repro.comm.exchange import HaloExchange, LocalPeriodicExchange
from repro.comm.simmpi import SimComm
from repro.comm.topology import CartTopology
from repro.dsl.ast import ConstRef, Grid, Stencil, indices
from repro.dsl.codegen import compile_stencil
from repro.gmg.bottom import RelaxationBottomSolver
from repro.gmg.level import Level, level_brick_dim
from repro.gmg.smoothers import Smoother
from repro.gmg.vcycle import VCycle
from repro.instrument import Recorder


def _build_variable_apply_op() -> Stencil:
    i, j, k = indices()
    x, Ax = Grid("x"), Grid("Ax")
    c0, cx, cy, cz = Grid("c0"), Grid("cx"), Grid("cy"), Grid("cz")
    calc = (
        c0(i, j, k) * x(i, j, k)
        + cx(i, j, k) * (x(i + 1, j, k) + x(i - 1, j, k))
        + cy(i, j, k) * (x(i, j + 1, k) + x(i, j - 1, k))
        + cz(i, j, k) * (x(i, j, k + 1) + x(i, j, k - 1))
    )
    return Stencil("applyOpVar", [Ax(i, j, k).assign(calc)])


def _build_variable_smooth(with_residual: bool) -> Stencil:
    i, j, k = indices()
    x, Ax, b, r = Grid("x"), Grid("Ax"), Grid("b"), Grid("r")
    dinv = Grid("dinv")
    omega = ConstRef("omega")
    update = x(i, j, k) + omega * (b(i, j, k) - Ax(i, j, k)) * dinv(i, j, k)
    stmts = [x(i, j, k).assign(update)]
    if with_residual:
        stmts.append(r(i, j, k).assign(b(i, j, k) - Ax(i, j, k)))
    return Stencil("smoothVar+residual" if with_residual else "smoothVar", stmts)


VARIABLE_APPLY_OP = _build_variable_apply_op()
VARIABLE_SMOOTH = _build_variable_smooth(with_residual=False)
VARIABLE_SMOOTH_RESIDUAL = _build_variable_smooth(with_residual=True)


class VarCoefLevel(Level):
    """A level carrying the coefficient fields alongside x/b/Ax/r.

    ``beta`` is the physical coefficient; ``c0/cx/cy/cz`` its stencil
    form at this level's spacing and ``dinv = 1/c0``.  Coefficients are
    static: their ghost bricks are filled once at setup.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        for name in ("beta", "c0", "cx", "cy", "cz", "dinv"):
            setattr(self, name, BrickedArray.zeros(self.grid, dtype=self.dtype))

    def set_coefficient(self, beta_dense: np.ndarray) -> None:
        """Install ``beta`` and derive the stencil coefficients."""
        if np.any(beta_dense <= 0):
            raise ValueError("the diffusion coefficient must be positive")
        h2 = self.constants.h ** 2
        self.beta.set_interior(beta_dense)
        side = beta_dense / h2
        for name in ("cx", "cy", "cz"):
            getattr(self, name).set_interior(side)
        c0 = -6.0 * side
        self.c0.set_interior(c0)
        self.dinv.set_interior(1.0 / c0)

    def fields(self) -> dict[str, BrickedArray]:
        base = super().fields()
        base.update(
            c0=self.c0, cx=self.cx, cy=self.cy, cz=self.cz, dinv=self.dinv
        )
        return base


class VariableCoefficientJacobi(Smoother):
    """Damped Jacobi with the local diagonal (``omega/c0(x)``)."""

    name = "jacobi-variable"
    ghost_cells_per_iteration = 1

    def __init__(self, omega: float = 0.5) -> None:
        if not 0.0 < omega <= 1.0:
            raise ValueError(f"Jacobi damping must be in (0, 1]: {omega}")
        self.omega = omega

    def iterate(
        self, level: Level, with_residual: bool, recorder: Recorder | None
    ) -> None:
        kernel = compile_stencil(VARIABLE_APPLY_OP, level.grid.brick_dim)
        kernel.apply(level.fields(), {}, level.workspace)
        if recorder is not None:
            recorder.kernel(level.index, "applyOp", level.num_points)
        stencil = VARIABLE_SMOOTH_RESIDUAL if with_residual else VARIABLE_SMOOTH
        kernel = compile_stencil(stencil, level.grid.brick_dim)
        kernel.apply(level.fields(), {"omega": self.omega}, level.workspace)
        if recorder is not None:
            op = "smooth+residual" if with_residual else "smooth"
            recorder.kernel(level.index, op, level.num_points)


@dataclass
class VarCoefResult:
    """Outcome of a variable-coefficient solve."""

    converged: bool
    num_vcycles: int
    residual_history: list[float]


class VariableCoefficientSolver:
    """Brick GMG for ``-div(beta grad u) = f`` (periodic, cell-centred).

    Parameters mirror the constant-coefficient solver; ``beta_fn`` maps
    cell-centre coordinate arrays ``(x, y, z)`` (broadcastable) to the
    positive coefficient field.
    """

    def __init__(
        self,
        beta_fn,
        global_cells: int = 32,
        num_levels: int = 3,
        brick_dim: int = 4,
        max_smooths: int = 12,
        bottom_smooths: int = 100,
        omega: float = 0.5,
        rank_dims: tuple[int, int, int] = (1, 1, 1),
        ordering: str = "surface-major",
    ) -> None:
        self.global_cells = int(global_cells)
        self.recorder = Recorder()
        self.topology = CartTopology(rank_dims)
        self.comm = SimComm(self.topology.size) if self.topology.size > 1 else None
        per_rank = tuple(global_cells // p for p in rank_dims)
        if any(global_cells % p for p in rank_dims):
            raise ValueError(f"rank_dims {rank_dims} do not divide {global_cells}")

        self.rank_levels: list[list[VarCoefLevel]] = []
        for rank in range(self.topology.size):
            origin = self.topology.subdomain_origin(rank, per_rank)
            levels = []
            beta_dense = None
            for lev in range(num_levels):
                cells = tuple(c >> lev for c in per_rank)
                h = (1 << lev) / global_cells
                bdim = level_brick_dim(min(cells), brick_dim)
                level = VarCoefLevel(lev, cells, bdim, h, ordering)
                if lev == 0:
                    beta_dense = self._sample_beta(beta_fn, cells, h, origin)
                else:
                    n0, n1, n2 = levels[-1].shape_cells
                    beta_dense = beta_dense.reshape(
                        n0 // 2, 2, n1 // 2, 2, n2 // 2, 2
                    ).mean(axis=(1, 3, 5))
                level.set_coefficient(beta_dense)
                levels.append(level)
            self.rank_levels.append(levels)

        self.exchangers = []
        for lev in range(num_levels):
            grid = self.rank_levels[0][lev].grid
            if self.comm is None:
                self.exchangers.append(LocalPeriodicExchange(grid, self.recorder))
            else:
                self.exchangers.append(
                    HaloExchange(grid, self.topology, self.comm, self.recorder)
                )
        # static coefficient ghosts, filled once
        for lev in range(num_levels):
            coeff_fields = [
                [levels[lev].c0, levels[lev].cx, levels[lev].cy,
                 levels[lev].cz, levels[lev].dinv]
                for levels in self.rank_levels
            ]
            self.exchangers[lev].exchange(lev, coeff_fields)

        def _apply_variable_op(level, recorder):
            kernel = compile_stencil(VARIABLE_APPLY_OP, level.grid.brick_dim)
            kernel.apply(level.fields(), {}, level.workspace)
            if recorder is not None:
                recorder.kernel(level.index, "applyOp", level.num_points)

        self.vcycle = VCycle(
            self.rank_levels,
            self.exchangers,
            max_smooths=max_smooths,
            bottom_smooths=bottom_smooths,
            recorder=self.recorder,
            apply_op_fn=_apply_variable_op,
            smoother=VariableCoefficientJacobi(omega),
            bottom_solver=RelaxationBottomSolver(bottom_smooths),
            allreduce_max=self.comm.allreduce_max if self.comm else None,
            allreduce_sum=self.comm.allreduce_sum if self.comm else None,
            topology=self.topology,
        )

    @staticmethod
    def _sample_beta(beta_fn, cells, h, origin) -> np.ndarray:
        coords = [
            ((np.arange(origin[d], origin[d] + cells[d]) + 0.5) * h)
            for d in range(3)
        ]
        beta = beta_fn(
            coords[0][:, None, None],
            coords[1][None, :, None],
            coords[2][None, None, :],
        )
        return np.broadcast_to(beta, cells).astype(np.float64)

    # ------------------------------------------------------------------
    def apply_operator(self, u_dense: np.ndarray) -> np.ndarray:
        """``A u`` on the global grid (used to manufacture b = A u)."""
        per_rank = tuple(
            self.global_cells // p for p in self.topology.dims
        )
        out = np.empty((self.global_cells,) * 3)
        for rank, levels in enumerate(self.rank_levels):
            lv = levels[0]
            o = self.topology.subdomain_origin(rank, per_rank)
            lv.x.set_interior(
                u_dense[o[0]:o[0] + per_rank[0], o[1]:o[1] + per_rank[1],
                        o[2]:o[2] + per_rank[2]]
            )
        self.exchangers[0].exchange(
            0, [[levels[0].x] for levels in self.rank_levels]
        )
        kernel = compile_stencil(
            VARIABLE_APPLY_OP, self.rank_levels[0][0].grid.brick_dim
        )
        for rank, levels in enumerate(self.rank_levels):
            lv = levels[0]
            kernel.apply(lv.fields(), {}, lv.workspace)
            o = self.topology.subdomain_origin(rank, per_rank)
            out[o[0]:o[0] + per_rank[0], o[1]:o[1] + per_rank[1],
                o[2]:o[2] + per_rank[2]] = lv.Ax.to_ijk()
            lv.x.fill(0.0)
        return out

    def set_rhs(self, b_dense: np.ndarray) -> None:
        """Distribute a global right-hand side to the finest level."""
        per_rank = tuple(self.global_cells // p for p in self.topology.dims)
        for rank, levels in enumerate(self.rank_levels):
            o = self.topology.subdomain_origin(rank, per_rank)
            levels[0].b.set_interior(
                b_dense[o[0]:o[0] + per_rank[0], o[1]:o[1] + per_rank[1],
                        o[2]:o[2] + per_rank[2]]
            )

    def solve(self, tol: float = 1e-10, max_vcycles: int = 100) -> VarCoefResult:
        history = self.vcycle.solve(tol, max_vcycles)
        if self.comm is not None:
            self.comm.assert_drained()
        return VarCoefResult(
            converged=history[-1] <= tol,
            num_vcycles=len(history) - 1,
            residual_history=history,
        )

    def solution(self) -> np.ndarray:
        per_rank = tuple(self.global_cells // p for p in self.topology.dims)
        out = np.empty((self.global_cells,) * 3)
        for rank, levels in enumerate(self.rank_levels):
            o = self.topology.subdomain_origin(rank, per_rank)
            out[o[0]:o[0] + per_rank[0], o[1]:o[1] + per_rank[1],
                o[2]:o[2] + per_rank[2]] = levels[0].x.to_ijk()
        return out
