"""Domain boundary conditions.

The paper's experiments use a periodic cube, but notes BrickLib
"can also generate code for ... domain boundary conditions"
(Section IV-C).  This module provides the cell-centred homogeneous
conditions used by finite-volume codes:

* ``PERIODIC`` — ghost bricks filled by wrap-around (the paper setup);
* ``DIRICHLET`` — ``u = 0`` on the wall: the ghost cell at distance d
  beyond a face mirrors the interior cell at distance d with opposite
  sign (linear interpolation through zero at the face);
* ``NEUMANN`` — ``du/dn = 0``: same mirror with positive sign.

Ghost bricks outside the domain in several axes (edges/corners) compose
the per-axis mirrors; the sign is ``(-1)**(mirrored axes)`` for
Dirichlet and ``+1`` for Neumann.  :class:`BoundaryFill` precomputes,
for every ghost brick of a rank that faces the domain boundary in a
given direction set, the mirrored source brick and the axis flips, so
each exchange applies the condition with a handful of vectorised
assignments.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.bricks.brick_grid import BrickGrid
from repro.bricks.bricked_array import BrickedArray


class BoundaryCondition(enum.Enum):
    """Supported homogeneous boundary conditions."""

    PERIODIC = "periodic"
    DIRICHLET = "dirichlet"
    NEUMANN = "neumann"


class BoundaryFill:
    """Apply a mirror boundary condition to a rank's outward ghosts.

    Parameters
    ----------
    grid:
        The level's brick grid.
    outward:
        Per-axis pair of flags ``((low0, high0), (low1, high1),
        (low2, high2))``: True where this rank's subdomain touches the
        (non-periodic) domain boundary on that side.
    condition:
        DIRICHLET or NEUMANN (PERIODIC ghosts travel via exchange).
    """

    def __init__(
        self,
        grid: BrickGrid,
        outward: tuple[tuple[bool, bool], ...],
        condition: BoundaryCondition,
    ) -> None:
        if condition is BoundaryCondition.PERIODIC:
            raise ValueError("periodic ghosts are exchanged, not synthesised")
        if len(outward) != 3 or any(len(p) != 2 for p in outward):
            raise ValueError(f"outward must be three (low, high) pairs: {outward}")
        self.grid = grid
        self.outward = tuple((bool(a), bool(b)) for a, b in outward)
        self.condition = condition
        # group ghost slots by their axis-flip signature
        self._groups: list[tuple[np.ndarray, np.ndarray, tuple[bool, ...], float]] = []
        self._build()

    def _build(self) -> None:
        g = self.grid
        n = np.asarray(g.shape_bricks)
        ghost = g.ghost_slots
        logical = g.slot_to_grid[ghost] - g.ghost_bricks
        below = logical < 0
        above = logical >= n
        # an axis is *mirrored* when the ghost brick lies beyond a side
        # of this subdomain that coincides with the domain boundary;
        # lying beyond an interior side is fine — the mirror source then
        # reads the exchanged ghost data of that neighbour, so the fill
        # must run after all receives complete.
        mirrored = np.zeros((len(ghost), 3), dtype=bool)
        for d in range(3):
            lo, hi = self.outward[d]
            mirrored[:, d] = (below[:, d] & lo) | (above[:, d] & hi)
        # we own every ghost brick beyond at least one boundary side
        owned = mirrored.any(axis=1)

        # per-axis mirror: l = -1 -> 0 (below), l = n -> n - 1 (above),
        # applied only on mirrored axes
        mirror_coord = logical.copy()
        for d in range(3):
            sel = mirrored[:, d] & below[:, d]
            mirror_coord[sel, d] = -1 - logical[sel, d]
            sel = mirrored[:, d] & above[:, d]
            mirror_coord[sel, d] = 2 * n[d] - 1 - logical[sel, d]

        stored = mirror_coord + g.ghost_bricks
        flat = g.grid_to_slot.reshape(-1)
        ext = np.asarray(g.extended_shape)
        ravel = (stored[:, 0] * ext[1] + stored[:, 1]) * ext[2] + stored[:, 2]
        src = flat[ravel]

        for signature in np.ndindex(2, 2, 2):
            sig = np.asarray(signature, dtype=bool)
            sel = owned & (mirrored == sig[None, :]).all(axis=1)
            if not sel.any():
                continue
            if self.condition is BoundaryCondition.DIRICHLET:
                sign = -1.0 if sig.sum() % 2 else 1.0
            else:
                sign = 1.0
            self._groups.append(
                (ghost[sel], src[sel], tuple(bool(s) for s in sig), sign)
            )

    @property
    def num_ghost_bricks(self) -> int:
        """Ghost bricks this fill owns (boundary-facing)."""
        return sum(len(dst) for dst, *_ in self._groups)

    def apply(self, field: BrickedArray) -> None:
        """Fill the boundary-facing ghost bricks of ``field``."""
        g = field.grid
        if (
            g.shape_bricks != self.grid.shape_bricks
            or g.brick_dim != self.grid.brick_dim
            or g.ordering != self.grid.ordering
        ):
            raise ValueError("field grid incompatible with the boundary fill's grid")
        data = field.data
        for dst, src, flips, sign in self._groups:
            block = data[src]
            for axis, flip in enumerate(flips):
                if flip:
                    block = np.flip(block, axis=axis + 1)
            data[dst] = sign * block
