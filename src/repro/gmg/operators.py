"""V-cycle operators over bricked levels.

The stencil/pointwise operators (``applyOp``, ``smooth``,
``smooth+residual``, ``residual``) execute the DSL-generated kernels.
The inter-grid operators (``restriction``,
``interpolation+increment``) are the paper's "new operators in BrickLib
for multigrid" (Section III): they act brick-by-brick between levels
and need no neighbour communication, only the parent/child brick
mapping.

The brick-native inter-grid paths require both levels to share a brick
dimension (each coarse brick then covers exactly 2x2x2 fine bricks); on
very small coarse levels where the brick dimension shrinks, a dense
fallback runs instead — tests assert the two paths agree bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.dsl.codegen import compile_stencil
from repro.dsl.library import APPLY_OP, RESIDUAL, SMOOTH, SMOOTH_RESIDUAL
from repro.gmg.level import Level
from repro.instrument import Recorder


def _run(
    stencil,
    level: Level,
    recorder: Recorder | None,
    op_name: str,
    tracer=None,
) -> None:
    kernel = compile_stencil(stencil, level.grid.brick_dim)
    ctx = getattr(level, "overlap_ctx", None)
    if ctx is not None and kernel.analysis.halo_grids:
        # split-phase overlap: this is the first halo-reading kernel
        # after a begin() — interior pass, wait on finish(), shell pass
        level.overlap_ctx = None
        kernel.apply_split(
            level.fields(),
            level.constants.as_dict(),
            level.workspace,
            partition=ctx.partition,
            barrier=ctx.finish,
            tracer=tracer,
            level=level.index,
        )
    else:
        kernel.apply(level.fields(), level.constants.as_dict(), level.workspace)
    if recorder is not None:
        recorder.kernel(level.index, op_name, level.num_points)


def apply_op(
    level: Level, recorder: Recorder | None = None, tracer=None
) -> None:
    """``Ax = A x`` with the 7-point operator (requires valid halo)."""
    _run(APPLY_OP, level, recorder, "applyOp", tracer=tracer)


def smooth(level: Level, recorder: Recorder | None = None) -> None:
    """Point-Jacobi update ``x := x + gamma (A x - b)``."""
    _run(SMOOTH, level, recorder, "smooth")


def smooth_residual(level: Level, recorder: Recorder | None = None) -> None:
    """Fused Jacobi update + residual ``r = b - A x`` (pre-update x)."""
    _run(SMOOTH_RESIDUAL, level, recorder, "smooth+residual")


def residual(level: Level, recorder: Recorder | None = None) -> None:
    """``r = b - Ax`` only (convergence check)."""
    _run(RESIDUAL, level, recorder, "residual")


# ----------------------------------------------------------------------
# inter-grid operators
# ----------------------------------------------------------------------
def _child_slot_map(coarse: Level, fine: Level) -> np.ndarray:
    """``(num_coarse_interior, 2, 2, 2)`` fine slots under each coarse brick.

    Valid only when both levels share a brick dimension; coarse
    interior brick ``(cx, cy, cz)`` covers fine interior bricks
    ``(2cx + a, 2cy + b, 2cz + c)``.  Rows follow the coarse grid's
    ``interior_slots`` (lexicographic) order.
    """
    gc, gf = coarse.grid, fine.grid
    if gc.brick_dim != gf.brick_dim:
        raise ValueError("child map needs matching brick dimensions")
    if tuple(2 * n for n in gc.shape_bricks) != gf.shape_bricks:
        raise ValueError(
            f"fine grid {gf.shape_bricks} is not the 2x refinement of "
            f"coarse grid {gc.shape_bricks}"
        )
    n0, n1, n2 = gc.shape_bricks
    cx, cy, cz = np.meshgrid(
        np.arange(n0), np.arange(n1), np.arange(n2), indexing="ij"
    )
    out = np.empty((gc.num_interior, 2, 2, 2), dtype=np.int64)
    g = gf.ghost_bricks
    for a in range(2):
        for b in range(2):
            for c in range(2):
                slots = gf.grid_to_slot[
                    2 * cx + a + g, 2 * cy + b + g, 2 * cz + c + g
                ]
                out[:, a, b, c] = slots.reshape(-1)
    return out


def _assemble_fine_blocks(fine_data: np.ndarray, child: np.ndarray, B: int) -> np.ndarray:
    """Gather each coarse brick's 2Bx2Bx2B fine region as a dense block."""
    F = fine_data[child]  # (nc, 2, 2, 2, B, B, B)
    return F.transpose(0, 1, 4, 2, 5, 3, 6).reshape(len(child), 2 * B, 2 * B, 2 * B)


def restriction(
    fine: Level, coarse: Level, recorder: Recorder | None = None
) -> None:
    """FV restriction: ``b_coarse = average of 8 fine residual cells``.

    Acts brick-by-brick between levels; no neighbour communication.
    """
    B = coarse.grid.brick_dim
    if fine.grid.brick_dim == B:
        child = _restriction_child_map(fine, coarse)
        R = _assemble_fine_blocks(fine.r.data, child, B)
        averaged = R.reshape(len(child), B, 2, B, 2, B, 2).mean(axis=(2, 4, 6))
        coarse.b.data[coarse.grid.interior_slots] = averaged
    else:
        dense = fine.r.to_ijk()
        n0, n1, n2 = coarse.shape_cells
        averaged = dense.reshape(n0, 2, n1, 2, n2, 2).mean(axis=(1, 3, 5))
        coarse.b.set_interior(averaged)
    if recorder is not None:
        recorder.kernel(fine.index, "restriction", coarse.num_points)


def interpolation_increment(
    coarse: Level, fine: Level, recorder: Recorder | None = None
) -> None:
    """Piecewise-constant prolongation: ``x_fine += I(x_coarse)``.

    Each coarse cell increments its 8 fine children; brick-by-brick,
    no neighbour communication.
    """
    B = coarse.grid.brick_dim
    if fine.grid.brick_dim == B:
        child = _restriction_child_map(fine, coarse)
        C = coarse.x.data[coarse.grid.interior_slots]  # (nc, B, B, B)
        R = np.repeat(np.repeat(np.repeat(C, 2, axis=1), 2, axis=2), 2, axis=3)
        blocks = (
            R.reshape(len(child), 2, B, 2, B, 2, B)
            .transpose(0, 1, 3, 5, 2, 4, 6)
        )
        fine.x.data[child] += blocks
    else:
        C = coarse.x.to_ijk()
        dense = np.repeat(np.repeat(np.repeat(C, 2, axis=0), 2, axis=1), 2, axis=2)
        interior = fine.x.to_ijk() + dense
        fine.x.set_interior(interior)
    if recorder is not None:
        recorder.kernel(fine.index, "interpolation+increment", coarse.num_points)


def _restriction_child_map(fine: Level, coarse: Level) -> np.ndarray:
    """Cache the child map on the coarse level's workspace."""
    key = ("child_map", fine.grid.shape_bricks, coarse.grid.shape_bricks)
    child = coarse.workspace.get(key)
    if child is None:
        child = _child_slot_map(coarse, fine)
        coarse.workspace[key] = child
    return child
