"""Pluggable smoothers.

The paper smooths with damped point-Jacobi and notes that "alternative
smoothers could include successive over-relaxation or Gauss-Seidel with
similar performance characteristics" (Section IV-C) and lists "other
smoothers" as future work (Section IX).  This module provides them, all
running on bricked storage through the same DSL-generated kernels:

* :class:`JacobiSmoother` — the paper's default,
  ``x := x + gamma (A x - b)`` with ``gamma = omega h^2 / 6``
  (``omega = 1/2`` reproduces the paper's ``h^2/12`` exactly);
* :class:`RedBlackGaussSeidelSmoother` — chequerboard exact point
  solves, two coloured half-sweeps per iteration;
* :class:`SORSmoother` — red-black successive over-relaxation
  (``omega = 1`` degenerates to Gauss-Seidel);
* :class:`ChebyshevSmoother` — a degree-``k`` Chebyshev polynomial in
  the Jacobi-preconditioned operator, targeting the upper part of the
  spectrum (the HPGMG family's smoother of choice).

Every smoother declares how many halo cells one iteration consumes
(``ghost_cells_per_iteration``) so communication-avoiding scheduling
stays correct: coloured sweeps apply the operator twice per iteration
and therefore consume two cells.

Residual convention: when asked for a residual, every smoother writes
``r = b - A x`` with the operator application taken *before* its first
update of the iteration — the same convention as the paper's fused
``smooth+residual`` kernel, keeping all smoothers interchangeable in
Algorithm 2.
"""

from __future__ import annotations

import weakref
from functools import cached_property

import numpy as np

from repro.dsl.codegen import compile_stencil
from repro.dsl.library import (
    APPLY_OP,
    FUSED_APPLY_RESIDUAL,
    FUSED_SMOOTH,
    FUSED_SMOOTH_RESIDUAL,
    RESIDUAL,
    SMOOTH,
    SMOOTH_RESIDUAL,
)
from repro.gmg.level import Level
from repro.instrument import Recorder
from repro.obs.tracer import NULL_TRACER


def _run_kernel(level: Level, stencil, consts: dict, tracer) -> None:
    """Apply one compiled stencil, honouring a pending overlap context.

    In overlap mode the V-cycle driver arms ``level.overlap_ctx`` after
    posting a split-phase exchange; the *first* halo-reading kernel of
    the iterate consumes it (interior pass → ``finish()`` → shell
    pass).  Pointwise kernels and later kernels of the same iterate run
    whole-grid as usual — by then the halo is complete.
    """
    kernel = compile_stencil(stencil, level.grid.brick_dim)
    ctx = getattr(level, "overlap_ctx", None)
    if ctx is not None and kernel.analysis.halo_grids:
        level.overlap_ctx = None
        kernel.apply_split(
            level.fields(), consts, level.workspace,
            partition=ctx.partition, barrier=ctx.finish,
            tracer=tracer, level=level.index,
        )
        return
    kernel.apply(level.fields(), consts, level.workspace)


def _apply_op(level: Level, recorder: Recorder | None, tracer=NULL_TRACER) -> None:
    with tracer.span("applyOp", l=level.index):
        _run_kernel(level, APPLY_OP, level.constants.as_dict(), tracer)
    if recorder is not None:
        recorder.kernel(level.index, "applyOp", level.num_points)


def _residual(level: Level, recorder: Recorder | None, tracer=NULL_TRACER) -> None:
    with tracer.span("residual", l=level.index):
        _run_kernel(level, RESIDUAL, {}, tracer)
    if recorder is not None:
        recorder.kernel(level.index, "residual", level.num_points)


def _apply_op_residual(
    level: Level, recorder: Recorder | None, tracer=NULL_TRACER
) -> None:
    """``Ax = A x`` and ``r = b - Ax`` — one fused kernel when the level
    runs under the engine's fused mode, the staged pair otherwise."""
    if level.fused_kernels:
        with tracer.span(FUSED_APPLY_RESIDUAL.name, l=level.index):
            _run_kernel(
                level, FUSED_APPLY_RESIDUAL, level.constants.as_dict(), tracer
            )
        if recorder is not None:
            recorder.kernel(level.index, FUSED_APPLY_RESIDUAL.name, level.num_points)
        return
    _apply_op(level, recorder, tracer)
    _residual(level, recorder, tracer)


def _scratch(level: Level, name: str) -> np.ndarray:
    """A reusable per-level temporary shaped like the packed fields.

    Hoists the smoothers' per-iteration allocations (``update``, ``r``,
    ``z``, ``d``) into the level workspace; with ~10^3 smoothing
    iterations per solve the allocator traffic is measurable.
    """
    shape, dtype = level.x.data.shape, level.x.data.dtype
    key = ("scratch", name)
    buf = level.workspace.get(key)
    if buf is None or buf.shape != shape or buf.dtype != dtype:
        buf = np.empty(shape, dtype=dtype)
        level.workspace[key] = buf
    return buf


class Smoother:
    """Interface: one smoothing iteration over a level's bricked fields.

    ``iterate`` assumes the ghost shell of ``x`` (and ``b``) holds at
    least ``ghost_cells_per_iteration`` cells of valid halo.
    """

    name: str = "abstract"
    ghost_cells_per_iteration: int = 1
    #: span tracer; the V-cycle driver rebinds this when tracing is on,
    #: so the default path pays only the null tracer's no-op calls
    tracer = NULL_TRACER
    #: whether every iterate routes its first halo-reading kernel
    #: through :func:`_run_kernel` (the overlap-context consumer); the
    #: V-cycle driver falls back to synchronous exchanges otherwise, so
    #: custom smoothers are safe-by-default under ``overlap=True``
    supports_overlap = False

    def iterate(
        self, level: Level, with_residual: bool, recorder: Recorder | None
    ) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class JacobiSmoother(Smoother):
    """Damped point Jacobi — the paper's smoother.

    ``omega = 0.5`` gives the paper's ``gamma = h^2/12`` exactly and is
    the default; kernels fuse the update with the residual when one is
    requested, exactly as in Algorithm 2.
    """

    name = "jacobi"
    ghost_cells_per_iteration = 1
    supports_overlap = True

    def __init__(self, omega: float = 0.5) -> None:
        if not 0.0 < omega <= 1.0:
            raise ValueError(f"Jacobi damping must be in (0, 1]: {omega}")
        self.omega = omega

    def _constants(self, level: Level) -> dict[str, float]:
        consts = level.constants.as_dict()
        # gamma = omega / |alpha| = omega h^2 / 6; the Level's default
        # encodes omega = 1/2 and is kept bit-compatible.
        if self.omega != 0.5:
            consts["gamma"] = self.omega / abs(level.constants.alpha)
        return consts

    def iterate(
        self, level: Level, with_residual: bool, recorder: Recorder | None
    ) -> None:
        if level.fused_kernels:
            # one kernel, one halo gather/refresh: the applyOp subtree is
            # substituted into the update (and residual) expressions and
            # CSE-hoisted, so the float sequence matches the staged path
            stencil = FUSED_SMOOTH_RESIDUAL if with_residual else FUSED_SMOOTH
            with self.tracer.span(stencil.name, l=level.index):
                _run_kernel(level, stencil, self._constants(level), self.tracer)
            if recorder is not None:
                recorder.kernel(level.index, stencil.name, level.num_points)
            return
        _apply_op(level, recorder, self.tracer)
        stencil = SMOOTH_RESIDUAL if with_residual else SMOOTH
        with self.tracer.span(stencil.name, l=level.index):
            _run_kernel(level, stencil, self._constants(level), self.tracer)
        if recorder is not None:
            recorder.kernel(level.index, stencil.name, level.num_points)


class _ColoredSmoother(Smoother):
    """Shared machinery for chequerboard (red-black) sweeps."""

    ghost_cells_per_iteration = 2  # two operator applications
    supports_overlap = True

    def __init__(self, omega: float = 1.0) -> None:
        if not 0.0 < omega < 2.0:
            raise ValueError(f"relaxation factor must be in (0, 2): {omega}")
        self.omega = omega
        # keyed weakly by the grid object itself: an id()-keyed cache
        # can alias a recycled id onto a new, differently-shaped grid
        # after the original is garbage-collected
        self._masks: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    def _color_masks(self, level: Level) -> tuple[np.ndarray, np.ndarray]:
        """Per-slot chequerboard masks of shape ``(num_slots, B, B, B)``.

        Colour is the global parity of the cell coordinates, so the
        pattern is seamless across bricks and (for even subdomains,
        which power-of-two sizing guarantees) across ranks — and
        identical in every rank block of a stacked grid, whose tiled
        ``slot_to_grid`` produces the per-rank masks stacked.
        """
        key = level.grid
        masks = self._masks.get(key)
        if masks is None:
            grid = level.grid
            B = grid.brick_dim
            origin = (grid.slot_to_grid - grid.ghost_bricks) * B
            local = np.arange(B)
            lx = local[:, None, None]
            ly = local[None, :, None]
            lz = local[None, None, :]
            parity = (
                (origin[:, 0, None, None, None] + lx)
                + (origin[:, 1, None, None, None] + ly)
                + (origin[:, 2, None, None, None] + lz)
            ) % 2
            red = parity == 0
            self._masks[key] = masks = (red, ~red)
        return masks

    def _half_sweep(
        self,
        level: Level,
        mask: np.ndarray,
        recorder: Recorder | None,
        op_label: str,
    ) -> None:
        _apply_op(level, recorder, self.tracer)
        with self.tracer.span(op_label, l=level.index):
            self._masked_update(level, mask)
        if recorder is not None:
            recorder.kernel(level.index, op_label, level.num_points // 2)

    def _masked_update(self, level: Level, mask: np.ndarray) -> None:
        """Exact point solve on the coloured cells, over-relaxed:
        ``x_c := x_c + omega (b - A x)_c / alpha_diag``.

        The temporary lives in the level workspace; the ``out=`` forms
        replay the expression ``omega * ((b - Ax) / alpha)`` with the
        same operation order, so results stay bit-identical to the
        allocating form.
        """
        c = level.constants
        x, Ax, b = level.x.data, level.Ax.data, level.b.data
        update = _scratch(level, "update")
        np.subtract(b, Ax, out=update)
        np.divide(update, c.alpha, out=update)
        np.multiply(update, self.omega, out=update)
        np.add(x, update, out=x, where=mask)

    def iterate(
        self, level: Level, with_residual: bool, recorder: Recorder | None
    ) -> None:
        red, black = self._color_masks(level)
        if with_residual:
            # pre-update residual (Algorithm 2's convention) reuses the
            # red half-sweep's operator application
            _apply_op_residual(level, recorder, self.tracer)
            self._half_sweep_given_ax(level, red, recorder)
        else:
            self._half_sweep(level, red, recorder, self._half_label)
        self._half_sweep(level, black, recorder, self._half_label)

    def _half_sweep_given_ax(
        self, level: Level, mask: np.ndarray, recorder: Recorder | None
    ) -> None:
        with self.tracer.span(self._half_label, l=level.index):
            self._masked_update(level, mask)
        if recorder is not None:
            recorder.kernel(level.index, self._half_label, level.num_points // 2)

    @property
    def _half_label(self) -> str:
        return f"{self.name}-half"


class RedBlackGaussSeidelSmoother(_ColoredSmoother):
    """Red-black Gauss-Seidel: exact point solves, two colours."""

    name = "gsrb"

    def __init__(self) -> None:
        super().__init__(omega=1.0)


class SORSmoother(_ColoredSmoother):
    """Red-black successive over-relaxation."""

    name = "sor"

    def __init__(self, omega: float = 1.4) -> None:
        super().__init__(omega=omega)


class ChebyshevSmoother(Smoother):
    """Chebyshev polynomial smoother on the Jacobi-preconditioned operator.

    Targets eigenvalues of ``D^-1 A`` in ``[lambda_max/alpha_ratio,
    lambda_max]``; for the 7-point periodic Poisson operator
    ``D^-1 A`` has spectrum in ``[0, 2)`` with ``lambda_max < 2``.
    One iteration = ``degree`` operator applications, fused into the
    iterate so the CA scheduler sees ``degree`` halo cells consumed.
    """

    name = "chebyshev"
    supports_overlap = True

    def __init__(self, degree: int = 2, eig_upper: float = 1.9,
                 alpha_ratio: float = 8.0) -> None:
        if degree < 1:
            raise ValueError(f"degree must be at least 1: {degree}")
        if eig_upper <= 0 or alpha_ratio <= 1:
            raise ValueError("need eig_upper > 0 and alpha_ratio > 1")
        self.degree = degree
        self.eig_upper = eig_upper
        self.alpha_ratio = alpha_ratio
        self.ghost_cells_per_iteration = degree

    @cached_property
    def _coefficients(self) -> tuple[float, float, list[float]]:
        """Chebyshev recurrence setup for the target interval."""
        lmax = self.eig_upper
        lmin = lmax / self.alpha_ratio
        theta = 0.5 * (lmax + lmin)
        delta = 0.5 * (lmax - lmin)
        return theta, delta, []

    def iterate(
        self, level: Level, with_residual: bool, recorder: Recorder | None
    ) -> None:
        theta, delta, _ = self._coefficients
        c = level.constants
        x = level.x.data
        # workspace-hoisted temporaries; every ``out=`` form below
        # replays the allocating expression's operation order exactly
        r = _scratch(level, "cheb_r")
        z = _scratch(level, "cheb_z")
        d = _scratch(level, "cheb_d")
        if with_residual:
            _apply_op_residual(level, recorder, self.tracer)
        else:
            _apply_op(level, recorder, self.tracer)
        with self.tracer.span("chebyshev-update", l=level.index):
            np.subtract(level.b.data, level.Ax.data, out=r)
            # Chebyshev iteration on the preconditioned residual equation
            # (standard three-term recurrence, e.g. Saad, Alg. 12.1)
            dinv = 1.0 / c.alpha
            np.multiply(r, dinv, out=z)
            np.divide(z, theta, out=d)
            x += d
        sigma = theta / delta
        rho = 1.0 / sigma
        for _ in range(1, self.degree):
            _apply_op(level, recorder, self.tracer)
            with self.tracer.span("chebyshev-update", l=level.index):
                np.subtract(level.b.data, level.Ax.data, out=r)
                np.multiply(r, dinv, out=z)
                rho_new = 1.0 / (2.0 * sigma - rho)
                # d = (rho_new * rho) * d + (2 rho_new / delta) * z, in place
                np.multiply(d, rho_new * rho, out=d)
                np.multiply(z, 2.0 * rho_new / delta, out=z)
                np.add(d, z, out=d)
                x += d
            rho = rho_new
        if recorder is not None:
            recorder.kernel(level.index, "chebyshev-update", level.num_points)


#: Registry used by :class:`repro.gmg.solver.SolverConfig`.
SMOOTHERS: dict[str, type] = {
    "jacobi": JacobiSmoother,
    "gsrb": RedBlackGaussSeidelSmoother,
    "sor": SORSmoother,
    "chebyshev": ChebyshevSmoother,
}


def make_smoother(name: str, **kwargs) -> Smoother:
    """Instantiate a smoother by registry name."""
    cls = SMOOTHERS.get(name)
    if cls is None:
        raise ValueError(f"unknown smoother {name!r}; choose from {sorted(SMOOTHERS)}")
    return cls(**kwargs)
