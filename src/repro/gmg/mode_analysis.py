"""Local Fourier (mode) analysis of the smoother and the V-cycle.

The paper picks 12 damped-Jacobi smooths per level and observes
convergence in 12 V-cycles; this module supplies the classical theory
that explains those numbers and lets tests validate the solver against
predictions rather than just against itself.

For the 7-point operator on a periodic grid, the Fourier modes
``exp(i (theta_x x + theta_y y + theta_z z))`` are eigenvectors of
everything in sight.  Damped Jacobi with weight ``omega`` has the
amplification factor::

    S(theta) = 1 - omega * (1 - (cos tx + cos ty + cos tz) / 3)

(the paper's ``gamma = h^2/12`` is ``omega = 1/2``).  The *smoothing
factor* ``mu`` is ``max |S|`` over the high-frequency harmonics (those
with some ``|theta| >= pi/2``) — the modes coarse grids cannot
represent — and ``mu**nu`` bounds the two-grid convergence per ``nu``
smooths up to inter-grid transfer effects.
"""

from __future__ import annotations

import itertools

import numpy as np


def jacobi_symbol(
    theta: tuple[float, float, float], omega: float = 0.5
) -> float:
    """Amplification factor of damped Jacobi on mode ``theta``."""
    c = (np.cos(theta[0]) + np.cos(theta[1]) + np.cos(theta[2])) / 3.0
    return 1.0 - omega * (1.0 - c)


def operator_symbol(theta: tuple[float, float, float], h: float) -> float:
    """Fourier symbol of the 7-point operator at spacing ``h``."""
    return (
        2.0 * (np.cos(theta[0]) + np.cos(theta[1]) + np.cos(theta[2])) - 6.0
    ) / h**2


def _theta_grid(samples: int) -> np.ndarray:
    """Sample points of (-pi, pi]^3, excluding the zero mode."""
    one = np.linspace(-np.pi, np.pi, samples, endpoint=False)
    pts = np.array(list(itertools.product(one, one, one)))
    keep = np.abs(pts).max(axis=1) > 1e-12
    return pts[keep]


def is_high_frequency(theta: np.ndarray) -> np.ndarray:
    """High-frequency harmonics: invisible on the 2h grid."""
    return np.abs(theta).max(axis=1) >= np.pi / 2.0


def smoothing_factor(omega: float = 0.5, samples: int = 32) -> float:
    """``mu = max |S(theta)|`` over high-frequency modes.

    For omega = 1/2 on the 3-D 7-point operator the supremum is
    attained at ``theta = (pi/2, 0, 0)``-type corners and equals
    ``1 - omega * (1 - 1/3) * ...``; sampling converges to it quickly.
    """
    thetas = _theta_grid(samples)
    hf = thetas[is_high_frequency(thetas)]
    c = np.cos(hf).sum(axis=1) / 3.0
    return float(np.abs(1.0 - omega * (1.0 - c)).max())


def optimal_jacobi_weight() -> float:
    """The omega minimising the 3-D smoothing factor.

    Classical result: equalise ``|S|`` at the extremes of the
    high-frequency range of ``c = (sum cos)/3`` — here ``c`` spans
    ``[-1, 2/3]`` over HF modes, giving ``omega* = 2 / (2 - (-1 + 2/3))
    = 6/7``.
    """
    c_min, c_max = -1.0, 2.0 / 3.0
    return 2.0 / ((1.0 - c_min) + (1.0 - c_max))


def predicted_residual_reduction(nu_total: int, omega: float = 0.5) -> float:
    """Idealised per-cycle reduction from smoothing alone: ``mu**nu``.

    ``nu_total`` is the number of smooths a mode experiences per cycle
    at its finest representation (down + up visits).  Real cycles also
    gain/lose from inter-grid transfers, so this is a guide, not a
    bound; tests check the measured convergence factor lands within a
    reasonable band of it.
    """
    if nu_total < 1:
        raise ValueError(f"nu_total must be positive: {nu_total}")
    return smoothing_factor(omega) ** nu_total


def two_grid_symbols(omega: float, nu: int, samples: int = 16) -> np.ndarray:
    """|two-grid error-propagation symbol| per sampled low mode.

    Simplified scalar LFA: for each low-frequency mode, smoothing
    ``nu`` times then removing the coarse-representable error entirely
    (ideal coarse-grid correction) leaves the high-frequency harmonics'
    smoothed amplitudes; the returned values are upper envelopes
    ``max_harmonic |S|^nu`` per low mode.
    """
    base = np.linspace(-np.pi / 2, np.pi / 2, samples, endpoint=False)
    out = []
    for tx, ty, tz in itertools.product(base, base, base):
        if max(abs(tx), abs(ty), abs(tz)) < 1e-12:
            continue
        worst = 0.0
        for sx, sy, sz in itertools.product((0, 1), repeat=3):
            if (sx, sy, sz) == (0, 0, 0):
                continue  # the low harmonic is corrected exactly
            harm = (
                tx + sx * np.pi * np.sign(tx or 1),
                ty + sy * np.pi * np.sign(ty or 1),
                tz + sz * np.pi * np.sign(tz or 1),
            )
            worst = max(worst, abs(jacobi_symbol(harm, omega)) ** nu)
        out.append(worst)
    return np.asarray(out)


def predicted_vcycle_factor(
    nu_total: int, omega: float = 0.5, samples: int = 16
) -> float:
    """Idealised V-cycle convergence factor: worst two-grid envelope."""
    return float(two_grid_symbols(omega, nu_total, samples).max())
