"""Geometric multigrid core: the paper's primary contribution.

Public entry points:

* :class:`~repro.gmg.solver.GMGSolver` / :class:`~repro.gmg.solver.SolverConfig`
  — the brick-based solver (single- or multi-rank over simulated MPI);
* :class:`~repro.gmg.baseline.ArrayGMG` — the HPGMG-style conventional
  layout baseline of Figure 4;
* :mod:`~repro.gmg.operators` — the five V-cycle operations;
* :mod:`~repro.gmg.problem` — the Section IV-C model problem.
"""

from repro.gmg.agglomerate import (
    AgglomerationPlan,
    AgglomerationTransfer,
    Agglomerator,
)
from repro.gmg.baseline import ArrayGMG
from repro.gmg.boundary import BoundaryCondition, BoundaryFill
from repro.gmg.bottom import (
    BOTTOM_SOLVERS,
    BottomSolver,
    ConjugateGradientBottomSolver,
    FFTBottomSolver,
    RelaxationBottomSolver,
    make_bottom_solver,
)
from repro.gmg.engine import EngineConfig, ExecutionEngine
from repro.gmg.level import Level, level_brick_dim, make_level
from repro.gmg.problem import (
    CONVERGENCE_TOL,
    LevelConstants,
    continuum_solution,
    discrete_operator_eigenvalue,
    discrete_solution,
    rhs_field,
)
from repro.gmg.mixed import MixedPrecisionSolver, MixedSolveResult
from repro.gmg.varcoef import VariableCoefficientSolver
from repro.gmg.smoothers import (
    SMOOTHERS,
    ChebyshevSmoother,
    JacobiSmoother,
    RedBlackGaussSeidelSmoother,
    Smoother,
    SORSmoother,
    make_smoother,
)
from repro.gmg.solver import GMGSolver, SolveResult, SolverConfig
from repro.gmg.vcycle import VCycle

__all__ = [
    "GMGSolver",
    "BoundaryCondition",
    "BoundaryFill",
    "VariableCoefficientSolver",
    "MixedPrecisionSolver",
    "MixedSolveResult",
    "Smoother",
    "JacobiSmoother",
    "RedBlackGaussSeidelSmoother",
    "SORSmoother",
    "ChebyshevSmoother",
    "SMOOTHERS",
    "make_smoother",
    "BottomSolver",
    "RelaxationBottomSolver",
    "ConjugateGradientBottomSolver",
    "FFTBottomSolver",
    "BOTTOM_SOLVERS",
    "make_bottom_solver",
    "SolverConfig",
    "SolveResult",
    "VCycle",
    "EngineConfig",
    "ExecutionEngine",
    "Level",
    "level_brick_dim",
    "make_level",
    "AgglomerationPlan",
    "Agglomerator",
    "AgglomerationTransfer",
    "ArrayGMG",
    "LevelConstants",
    "rhs_field",
    "discrete_solution",
    "discrete_operator_eigenvalue",
    "continuum_solution",
    "CONVERGENCE_TOL",
]
