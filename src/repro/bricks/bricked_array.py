"""A field stored in brick layout.

:class:`BrickedArray` couples a :class:`~repro.bricks.brick_grid.BrickGrid`
with a ``(num_slots, B, B, B)`` storage array.  All cells of one brick
are contiguous — the defining property of fine-grain data blocking —
and the brick order within storage follows the grid's ordering
strategy.

Halo-resident layout: with ``halo_radius = r > 0`` each brick's slot is
allocated at the *extended* size ``(B + 2r)^3`` and ``data`` becomes the
interior view of that storage.  Stencil kernels then read the extended
storage directly and a halo refresh copies only the 26 shell regions
through the adjacency (:func:`repro.bricks.halo_plan.refresh_shell`)
instead of re-gathering the whole field into a scratch buffer on every
kernel invocation — the dominant memory traffic of the gather path.
"""

from __future__ import annotations

import numpy as np

from repro.bricks.brick_grid import BrickGrid


class BrickedArray:
    """One scalar field over a subdomain, in brick layout.

    Parameters
    ----------
    grid:
        The brick arrangement (shared between all fields of one level).
    data:
        Optional existing backing array of shape
        ``(grid.num_slots, B, B, B)``; allocated (zeroed) if omitted.
    dtype:
        Floating-point precision of the field — ``float64`` (the
        paper's experiments) or ``float32`` (the mixed-precision
        extension motivated by the paper's reference [28]).
    halo_radius:
        When positive, allocate the halo-resident extended layout: the
        backing storage is ``(num_slots, B + 2r, B + 2r, B + 2r)``
        (exposed as ``ext_data``) and ``data`` is its interior view.
        Mutually exclusive with passing an explicit ``data`` array.
    """

    SUPPORTED_DTYPES = (np.float64, np.float32)

    def __init__(
        self,
        grid: BrickGrid,
        data: np.ndarray | None = None,
        dtype: np.dtype | type = np.float64,
        halo_radius: int = 0,
        ext_data: np.ndarray | None = None,
    ) -> None:
        B = grid.brick_dim
        dtype = np.dtype(dtype)
        if dtype not in [np.dtype(d) for d in self.SUPPORTED_DTYPES]:
            raise ValueError(f"unsupported field dtype: {dtype}")
        r = int(halo_radius)
        if r < 0:
            raise ValueError(f"halo_radius must be non-negative: {halo_radius}")
        if r > B:
            raise ValueError(f"halo_radius {r} exceeds brick dimension {B}")
        self.halo_radius = r
        self.ext_data: np.ndarray | None = None
        #: opt-in flag: kernels gather this field through the
        #: precomputed flat-index plan instead of the per-direction loop
        self.planned_gather = False
        if r > 0:
            if data is not None:
                raise ValueError(
                    "pass ext_data (not data) for a halo-resident field"
                )
            E = B + 2 * r
            expected_ext = (grid.num_slots, E, E, E)
            if ext_data is None:
                ext_data = np.zeros(expected_ext, dtype=dtype)
            else:
                if ext_data.shape != expected_ext:
                    raise ValueError(
                        f"extended array has shape {ext_data.shape}, "
                        f"expected {expected_ext}"
                    )
                if ext_data.dtype != dtype:
                    raise ValueError(
                        f"extended array must be {dtype}, got {ext_data.dtype}"
                    )
            self.ext_data = ext_data
            data = ext_data[:, r : r + B, r : r + B, r : r + B]
        elif ext_data is not None:
            raise ValueError("ext_data requires a positive halo_radius")
        elif data is None:
            data = np.zeros((grid.num_slots, B, B, B), dtype=dtype)
        else:
            expected = (grid.num_slots, B, B, B)
            if data.shape != expected:
                raise ValueError(
                    f"backing array has shape {data.shape}, expected {expected}"
                )
            if data.dtype != dtype:
                raise ValueError(
                    f"backing array must be {dtype}, got {data.dtype}"
                )
        self.grid = grid
        self.data = data

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def has_resident_halo(self) -> bool:
        """True while the extended layout is intact (``data`` still views
        ``ext_data``) — rebinding ``data`` to a scratch array, as the CG
        bottom solver does, drops a field back to the gather path."""
        return self.ext_data is not None and self.data.base is self.ext_data

    # ------------------------------------------------------------------
    # construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def zeros(
        cls,
        grid: BrickGrid,
        dtype: np.dtype | type = np.float64,
        halo_radius: int = 0,
    ) -> "BrickedArray":
        """A zero-filled field on ``grid``."""
        return cls(grid, dtype=dtype, halo_radius=halo_radius)

    @classmethod
    def from_ijk(
        cls,
        grid: BrickGrid,
        dense: np.ndarray,
        dtype: np.dtype | type = np.float64,
    ) -> "BrickedArray":
        """Brick a conventional ``ijk`` array of the interior cells.

        ``dense`` must have shape ``grid.shape_cells`` (it is cast to
        ``dtype``); ghost bricks are left zeroed (fill them with an
        exchange or :meth:`fill_ghost_periodic`).
        """
        out = cls(grid, dtype=dtype)
        out.set_interior(dense)
        return out

    def set_interior(self, dense: np.ndarray) -> None:
        """Overwrite interior cells from a dense ``ijk`` array."""
        n0, n1, n2 = self.grid.shape_bricks
        B = self.grid.brick_dim
        expected = self.grid.shape_cells
        if dense.shape != expected:
            raise ValueError(f"dense array has shape {dense.shape}, expected {expected}")
        blocks = (
            dense.reshape(n0, B, n1, B, n2, B)
            .transpose(0, 2, 4, 1, 3, 5)
            .reshape(self.grid.num_interior, B, B, B)
        )
        self.data[self.grid.interior_slots] = blocks

    def to_ijk(self) -> np.ndarray:
        """Return the interior cells as a dense ``ijk`` array."""
        n0, n1, n2 = self.grid.shape_bricks
        B = self.grid.brick_dim
        blocks = self.data[self.grid.interior_slots].reshape(n0, n1, n2, B, B, B)
        return np.ascontiguousarray(
            blocks.transpose(0, 3, 1, 4, 2, 5).reshape(n0 * B, n1 * B, n2 * B)
        )

    # ------------------------------------------------------------------
    # ghost handling
    # ------------------------------------------------------------------
    def fill_ghost_periodic(self) -> None:
        """Fill the ghost shell by periodic wrap within this subdomain.

        Correct only when this rank owns the entire periodic domain
        (single-rank runs); distributed runs use
        :class:`repro.comm.exchange.BrickExchanger` instead.
        """
        ghost, src = self.grid.periodic_wrap_pairs
        if self.has_resident_halo:
            # whole-slot copy on the extended storage: contiguous per
            # slot, unlike the strided interior view.  The source shell
            # that rides along is dead data — every shell cell is
            # rewritten by refresh_shell (or bypassed by the per-offset
            # gather plans) before any kernel reads it.
            self.ext_data[ghost] = self.ext_data[src]
        else:
            self.data[ghost] = self.data[src]

    def zero_ghost(self) -> None:
        """Zero the ghost shell (used to prove exchanges actually run)."""
        self.data[self.grid.ghost_slots] = 0.0

    # ------------------------------------------------------------------
    # whole-field operations
    # ------------------------------------------------------------------
    def copy(self) -> "BrickedArray":
        """Deep copy sharing the grid (and the storage layout)."""
        if self.has_resident_halo:
            return BrickedArray(
                self.grid,
                dtype=self.dtype,
                halo_radius=self.halo_radius,
                ext_data=self.ext_data.copy(),
            )
        return BrickedArray(self.grid, self.data.copy(), dtype=self.dtype)

    def fill(self, value: float) -> None:
        """Set every cell (interior and ghost) to ``value``."""
        self.data.fill(value)

    def zero_interior(self) -> None:
        """Zero interior cells only (the V-cycle's ``initZero``)."""
        self.data[self.grid.interior_slots] = 0.0

    def max_abs_interior(self) -> float:
        """Max-norm over interior cells (the convergence functional)."""
        return float(np.max(np.abs(self.data[self.grid.interior_slots])))

    def mean_interior(self) -> float:
        """Mean over interior cells."""
        return float(np.mean(self.data[self.grid.interior_slots]))

    @property
    def nbytes_interior(self) -> int:
        """Bytes of interior payload (excludes the ghost shell)."""
        return (
            self.grid.num_interior * self.grid.cells_per_brick * self.dtype.itemsize
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BrickedArray(grid={self.grid!r})"
