"""Precomputed flat-index halo plans: one fancy index per refresh.

:func:`repro.bricks.halo.gather_extended` assembles each brick's
extended block with a Python loop over the 26 neighbour directions —
simple, but 27 separate strided copies per invocation, re-copying the
*entire* field (centre included) every time.  A :class:`HaloPlan`
flattens that into index arrays computed once per (grid, radius):

* every extended-block cell position is classified by the direction of
  the neighbour it reads from and by its source cell within that
  neighbour, so a *full gather* is a single NumPy fancy-index
  expression over ``(num_slots, ext^3)``;
* for halo-resident fields (:class:`~repro.bricks.bricked_array
  .BrickedArray` with ``halo_radius > 0``) the interior never moves, so
  a *shell refresh* touches only the ``ext^3 - B^3`` shell cells —
  the pack-free surface-exchange argument of the paper applied to the
  on-rank halo: copy the 26 shell regions, never the payload.

Plans are cached by ``grid.geometry_key`` (value identity) in bounded
LRU caches (:mod:`repro.bricks.plan_cache`), so congruent grids —
fresh hierarchies per solve, or the many concurrent requests of a
solve service — share one set of index tables instead of rebuilding
them per grid object.  Duck-typed grids without a geometry key fall
back to a ``WeakKeyDictionary`` keyed by the grid itself (deliberately
*not* an ``id()``-keyed cache, which could alias a recycled id onto a
new grid).
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.bricks.brick_grid import direction_index
from repro.bricks.bricked_array import BrickedArray
from repro.bricks.plan_cache import PlanLRUCache

#: per-(brick_dim, radius) coordinate maps, shared across all grids
_COORD_CACHE: dict[tuple[int, int], tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

#: per-(brick_dim, offset, halo_radius) single-offset maps
_OFFSET_CACHE: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}

#: weak per-grid fallback for duck-typed grids without a geometry key
_PLAN_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

#: geometry-keyed HaloPlans, one entry per (geometry, radius)
_HALO_PLAN_CACHE = PlanLRUCache("halo_plan.halo")


def _coordinate_maps(
    brick_dim: int, radius: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Direction / source-cell classification of every extended cell.

    Returns ``(dirs, src, cell)`` of shape ``(ext**3,)`` each, in the
    row-major order of the extended block: ``dirs[p]`` is the
    :data:`~repro.bricks.brick_grid.DIRECTIONS` index of the neighbour
    cell ``p`` reads from, ``src[p]`` the flat source-cell index within
    that neighbour's *extended* block (interior position), and
    ``cell[p]`` the flat source-cell index within the neighbour's
    *packed* ``B^3`` brick.
    """
    key = (int(brick_dim), int(radius))
    cached = _COORD_CACHE.get(key)
    if cached is not None:
        return cached
    B, r = key
    ext = B + 2 * r
    axis = np.arange(ext)
    # per-axis neighbour step (-1/0/+1) and local source coordinate
    comp = np.where(axis < r, -1, np.where(axis < r + B, 0, 1))
    local = np.where(axis < r, B - r + axis, np.where(axis < r + B, axis - r, axis - r - B))
    cx, cy, cz = np.meshgrid(comp, comp, comp, indexing="ij")
    lx, ly, lz = np.meshgrid(local, local, local, indexing="ij")
    dirs = ((cx + 1) * 9 + (cy + 1) * 3 + (cz + 1)).reshape(-1)
    cell = ((lx * B + ly) * B + lz).reshape(-1)
    src = (((lx + r) * ext + (ly + r)) * ext + (lz + r)).reshape(-1)
    _COORD_CACHE[key] = (dirs, src, cell)
    return _COORD_CACHE[key]


class HaloPlan:
    """Flat-index gather/refresh tables for one grid at one radius.

    ``nbr_all``/``cell_all`` drive the full gather (every extended
    cell); ``shell_pos``/``nbr_shell``/``src_shell`` drive the
    shell-only refresh of halo-resident storage.
    """

    def __init__(self, grid, radius: int) -> None:
        B = grid.brick_dim
        r = int(radius)
        if r < 0:
            raise ValueError(f"radius must be non-negative: {radius}")
        if r > B:
            raise ValueError(f"radius {r} exceeds brick dimension {B}")
        self.grid = grid
        self.radius = r
        self.brick_dim = B
        self.ext = B + 2 * r
        dirs, src, cell = _coordinate_maps(B, r)
        adj = np.ascontiguousarray(grid.adjacency)
        #: (num_slots, ext^3) neighbour slot of every extended cell
        self.nbr_all = np.ascontiguousarray(adj[:, dirs])
        #: (ext^3,) flat packed-brick source cell of every extended cell
        self.cell_all = cell
        #: (num_slots, ext^3) flat index into packed (num_slots*B^3,) storage
        self._gather_flat = self.nbr_all * (B**3) + cell
        shell = dirs != direction_index((0, 0, 0))
        #: (n_shell,) flat extended positions of the shell cells
        self.shell_pos = np.flatnonzero(shell)
        #: (num_slots, n_shell) neighbour slot of every shell cell
        self.nbr_shell = np.ascontiguousarray(adj[:, dirs[shell]])
        #: (n_shell,) flat extended-block source position (interior)
        self.src_shell = src[shell]
        #: (num_slots, n_shell) flat index into extended (num_slots*ext^3,)
        self._shell_flat = self.nbr_shell * (self.ext**3) + self.src_shell

    # ------------------------------------------------------------------
    def gather(self, data: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Full gather of ``data`` (``(num_slots, B, B, B)``) into the
        extended blocks — one fancy index, bit-identical to
        :func:`repro.bricks.halo.gather_extended`."""
        S = self.nbr_all.shape[0]
        E = self.ext
        if data.shape != (S, self.brick_dim, self.brick_dim, self.brick_dim):
            raise ValueError(
                f"data has shape {data.shape}, expected "
                f"{(S, self.brick_dim, self.brick_dim, self.brick_dim)}"
            )
        shape = (S, E, E, E)
        if out is None:
            out = np.empty(shape, dtype=data.dtype)
        elif out.shape != shape or out.dtype != data.dtype:
            raise ValueError(
                f"out has shape {out.shape}/{out.dtype}, expected "
                f"{shape}/{data.dtype}"
            )
        if data.flags.c_contiguous:
            np.take(data.reshape(-1), self._gather_flat, out=out.reshape(S, -1))
        else:
            # strided view (e.g. a per-rank slice of stacked storage):
            # multi-dimensional fancy index, no intermediate copy
            out.reshape(S, -1)[...] = data.reshape(S, -1)[
                self.nbr_all, self.cell_all
            ]
        return out

    def refresh_shell(self, field: BrickedArray) -> None:
        """Refill the shell of a halo-resident field from its bricks'
        current interiors, through the adjacency.

        After the refresh, ``field.ext_data`` is bit-identical to what
        a full :func:`~repro.bricks.halo.gather_extended` of
        ``field.data`` would produce — the centre is already in place
        by construction, so only the 26 shell regions move.
        """
        if not field.has_resident_halo or field.halo_radius != self.radius:
            raise ValueError(
                "refresh_shell needs a halo-resident field of radius "
                f"{self.radius}"
            )
        ext = field.ext_data
        S = ext.shape[0]
        flat = ext.reshape(S, -1)
        flat[:, self.shell_pos] = np.take(flat.reshape(-1), self._shell_flat)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HaloPlan(brick_dim={self.brick_dim}, radius={self.radius})"


def _offset_maps(
    brick_dim: int, offset: tuple[int, int, int], halo_radius: int
) -> tuple[np.ndarray, np.ndarray]:
    """Direction / source-cell maps of every brick cell for one read offset.

    Returns ``(dirs, cell)`` of shape ``(B**3,)``: for brick cell ``c``
    (row-major), ``dirs[c]`` is the neighbour direction the shifted read
    ``c + offset`` falls into, and ``cell[c]`` the flat source index
    within that neighbour — into its packed ``B^3`` brick when
    ``halo_radius == 0``, or into the *interior* of its extended
    ``(B+2r)^3`` slot when the field is halo-resident.
    """
    key = (int(brick_dim), tuple(int(d) for d in offset), int(halo_radius))
    cached = _OFFSET_CACHE.get(key)
    if cached is not None:
        return cached
    B, off, r = key
    if any(abs(d) > B for d in off):
        raise ValueError(f"offset {off} exceeds brick dimension {B}")
    axis = np.arange(B)
    comps, locals_ = [], []
    for d in off:
        coord = axis + d
        comp = np.where(coord < 0, -1, np.where(coord >= B, 1, 0))
        comps.append(comp)
        locals_.append(coord - comp * B)
    cx, cy, cz = np.meshgrid(*comps, indexing="ij")
    lx, ly, lz = np.meshgrid(*locals_, indexing="ij")
    dirs = ((cx + 1) * 9 + (cy + 1) * 3 + (cz + 1)).reshape(-1)
    if r > 0:
        E = B + 2 * r
        cell = (((lx + r) * E + (ly + r)) * E + (lz + r)).reshape(-1)
    else:
        cell = ((lx * B + ly) * B + lz).reshape(-1)
    _OFFSET_CACHE[key] = (dirs, cell)
    return _OFFSET_CACHE[key]


class OffsetGatherPlan:
    """Contiguous per-offset gather: one ``np.take`` per kernel call.

    Extended-block slicing keeps every kernel operand strided, which
    NumPy executes several times slower than contiguous work at small
    brick dimensions.  This plan instead materialises, for each stencil
    read offset, a contiguous ``(num_slots, B, B, B)`` block — all
    ``K`` offsets in a single ``np.take`` over a precomputed
    ``(K, num_slots, B^3)`` flat-index table — so the generated kernel
    runs entirely on contiguous arrays.  Values are bit-identical to
    slicing the gathered extended block: same adjacency, same source
    cells, only the layout changes.

    ``halo_radius == 0`` sources the packed ``(S, B, B, B)`` storage;
    ``halo_radius == r > 0`` sources a halo-resident field's extended
    storage directly, reading *neighbour interiors* through the
    adjacency — no shell refresh is needed at all on this path.
    """

    def __init__(self, grid, offsets, halo_radius: int = 0) -> None:
        B = grid.brick_dim
        r = int(halo_radius)
        if r < 0:
            raise ValueError(f"halo_radius must be non-negative: {halo_radius}")
        self.brick_dim = B
        self.halo_radius = r
        self.offsets = tuple(tuple(int(d) for d in o) for o in offsets)
        if not self.offsets:
            raise ValueError("need at least one read offset")
        stride = (B + 2 * r) ** 3 if r > 0 else B**3
        adj = np.ascontiguousarray(grid.adjacency)
        blocks = []
        for off in self.offsets:
            dirs, cell = _offset_maps(B, off, r)
            blocks.append(adj[:, dirs] * stride + cell)
        #: (K, num_slots, B^3) flat source index of every gathered cell
        self.flat = np.ascontiguousarray(np.stack(blocks))

    def gather(self, source: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Gather all offsets of ``source`` into one contiguous block.

        ``source`` is the (C-contiguous) packed storage — or the
        extended storage for ``halo_radius > 0`` plans.  Returns a
        ``(K, num_slots, B, B, B)`` array; ``out[k]`` holds the shifted
        field for ``self.offsets[k]``.
        """
        K, S, _ = self.flat.shape
        B = self.brick_dim
        shape = (K, S, B, B, B)
        if out is None:
            return np.take(source.reshape(-1), self.flat).reshape(shape)
        if out.shape != shape or out.dtype != source.dtype:
            raise ValueError(
                f"out has shape {out.shape}/{out.dtype}, expected "
                f"{shape}/{source.dtype}"
            )
        # mode='raise' with out= takes a slow bounds-checked store path;
        # the table's indices are in-bounds by construction, so 'clip'
        # is a pure fast-path switch with identical results — and a
        # reused out buffer keeps its pages warm for the kernel, which
        # a fresh allocation (minor page faults every call) does not
        np.take(
            source.reshape(-1), self.flat, out=out.reshape(K, S, -1), mode="clip"
        )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OffsetGatherPlan({len(self.offsets)} offsets, "
            f"brick_dim={self.brick_dim}, halo_radius={self.halo_radius})"
        )


#: offset plans keyed by grid *geometry* (value identity), so congruent
#: grids across solver instances — fresh hierarchies per solve, or the
#: concurrent requests of a solve service — share the index tables
#: instead of rebuilding them; LRU-bounded (see module docstring)
_OFFSET_PLAN_CACHE = PlanLRUCache("halo_plan.offset")


def offset_plan_for(grid, offsets, halo_radius: int = 0) -> OffsetGatherPlan:
    """The (cached) :class:`OffsetGatherPlan` of ``grid`` for ``offsets``."""
    geometry = getattr(grid, "geometry_key", None)
    key = (geometry, tuple(offsets), int(halo_radius))
    if geometry is not None:
        plan = _OFFSET_PLAN_CACHE.get(key)
        if plan is None:
            plan = OffsetGatherPlan(grid, offsets, halo_radius)
            _OFFSET_PLAN_CACHE.put(key, plan)
        return plan
    # duck-typed grid without a geometry key: cache per grid object
    per_grid = _PLAN_CACHE.get(grid)
    if per_grid is None:
        per_grid = {}
        _PLAN_CACHE[grid] = per_grid
    plan = per_grid.get(key)
    if plan is None:
        plan = OffsetGatherPlan(grid, offsets, halo_radius)
        per_grid[key] = plan
    return plan


def clear_offset_plan_cache() -> int:
    """Drop every cached :class:`OffsetGatherPlan` and :class:`HaloPlan`.

    Communicator repair rebuilds the exchange machinery from scratch;
    clearing the shared plan caches forces the index tables to
    re-derive from the (unchanged) grid geometry, proving the rebuilt
    path does not depend on any pre-crash cached state.  Plans are pure
    functions of geometry, so re-derivation is bit-identical.  Returns
    the number of offset plans dropped.
    """
    n = _OFFSET_PLAN_CACHE.clear()
    _HALO_PLAN_CACHE.clear()
    return n


def plan_for(grid, radius: int) -> HaloPlan:
    """The (cached) :class:`HaloPlan` of ``grid`` at ``radius``.

    Keyed by ``grid.geometry_key`` when the grid has one, so congruent
    grids from separate solver instances (or separate service requests)
    share one plan; the gather/refresh tables read only adjacency-
    derived indices, which are equal across congruent grids by
    construction.
    """
    geometry = getattr(grid, "geometry_key", None)
    if geometry is not None:
        key = (geometry, int(radius))
        plan = _HALO_PLAN_CACHE.get(key)
        if plan is None:
            plan = HaloPlan(grid, radius)
            _HALO_PLAN_CACHE.put(key, plan)
        return plan
    per_grid = _PLAN_CACHE.get(grid)
    if per_grid is None:
        per_grid = {}
        _PLAN_CACHE[grid] = per_grid
    plan = per_grid.get(radius)
    if plan is None:
        plan = HaloPlan(grid, radius)
        per_grid[radius] = plan
    return plan


def gather_planned(
    field: BrickedArray, radius: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Planned full gather (drop-in for ``gather_extended``)."""
    return plan_for(field.grid, radius).gather(field.data, out=out)


def refresh_shell(field: BrickedArray) -> None:
    """Refresh the shell of a halo-resident field in place."""
    plan_for(field.grid, field.halo_radius).refresh_shell(field)
