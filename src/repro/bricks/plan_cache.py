"""Bounded, instrumented LRU caches for geometry-keyed plan objects.

The plan caches (:mod:`repro.bricks.halo_plan`,
:mod:`repro.bricks.partition`) key derived index tables by
``grid.geometry_key`` so congruent grids — fresh hierarchies per solve,
or the many requests of a long-lived solve service — share one table
instead of rebuilding it.  Geometry keys are *values*, so unlike the
old ``WeakKeyDictionary`` scheme nothing ever dies with its grid; a
bound plus LRU eviction keeps a service that walks many distinct
geometries from accumulating index tables forever.

Every cache keeps hit/miss/eviction totals;
:meth:`repro.obs.metrics.MetricsRegistry.observe_plan_caches` snapshots
them so service metrics can report plan-reuse rates per cohort.
"""

from __future__ import annotations

from collections import OrderedDict

#: every live cache, in registration order, for global stats/clearing
_REGISTRY: "dict[str, PlanLRUCache]" = {}

#: default bound; generous for one geometry class (a few plans per
#: level per radius), small enough that a geometry sweep cannot pin
#: unbounded index tables
DEFAULT_MAXSIZE = 256


class PlanLRUCache:
    """An LRU-bounded mapping with hit/miss/eviction accounting.

    Not thread-safe (none of the solver machinery is); eviction order
    is least-recently-*used*, where both :meth:`get` hits and
    :meth:`put` count as use.
    """

    def __init__(self, name: str, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive: {maxsize}")
        self.name = name
        self.maxsize = int(maxsize)
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        _REGISTRY[name] = self

    def get(self, key):
        """The cached value for ``key``, or ``None`` (counts hit/miss)."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        """Insert ``key`` (most-recently-used), evicting past the bound."""
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def set_limit(self, maxsize: int) -> None:
        """Rebound the cache, evicting LRU entries if shrinking."""
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive: {maxsize}")
        self.maxsize = int(maxsize)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> int:
        """Drop every entry (stats survive); returns the count dropped."""
        n = len(self._data)
        self._data.clear()
        return n

    def unregister(self) -> None:
        """Remove this cache from the global registry (test hygiene)."""
        _REGISTRY.pop(self.name, None)

    def stats(self) -> dict:
        """``{"size", "maxsize", "hits", "misses", "evictions"}``."""
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanLRUCache({self.name!r}, {len(self._data)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )


def cache_stats() -> dict:
    """Per-cache stats of every registered plan cache, keyed by name."""
    return {name: cache.stats() for name, cache in sorted(_REGISTRY.items())}
