"""Interior/shell brick partition for split-phase (overlap) kernels.

Communication–computation overlap splits every halo-dependent kernel
into two passes: an *interior* pass over bricks whose stencil footprint
never reads a ghost brick (safe to evaluate while halo envelopes are in
flight) and a *shell* pass over the remainder (must wait for
``HaloExchange.finish()``).

The partition is purely geometric.  A stored slot with offset
coordinates ``c`` (see :attr:`BrickGrid.slot_to_grid`) is
interior-deep iff ``g + 1 <= c[d] < g + n[d] - 1`` for every dimension
``d`` — its full 26-neighbourhood then consists of *owned* bricks, so
no gather of radius ``<= brick_dim`` (the DSL's legality bound) can
touch a ghost slot.  Everything else is shell: the owned boundary layer
*and* every ghost brick, because kernels evaluate redundantly over the
ghost shell (the communication-avoiding validity scheme) and ghost
values are rewritten by the exchange.

``interior`` and ``shell`` are each emitted in ascending slot order;
their concatenation covers ``range(num_slots)`` exactly once.  Within a
pass the generated kernel evaluates the same expression tree per
element as the full-grid kernel, and NumPy's elementwise ufuncs are
exactly rounded per element regardless of how the slot axis is chunked,
so splitting reorders no floating-point operation — overlap mode is
bit-identical to the synchronous reference.

Partitions (and the subset gather tables they cache) are keyed by
``geometry_key`` like the offset-plan cache, with a weak per-grid
fallback for duck-typed grids; :func:`clear_partition_cache` mirrors
:func:`repro.bricks.halo_plan.clear_offset_plan_cache` so communicator
repair can prove the rebuilt path re-derives everything from geometry.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.bricks.plan_cache import PlanLRUCache

#: partitions keyed by grid geometry (value identity), shared across
#: solver instances like the offset-plan cache; LRU-bounded so a
#: long-lived service walking many geometries cannot pin unbounded
#: subset tables
_PARTITION_CACHE = PlanLRUCache("partition")

#: per-grid fallback for duck-typed grids without a geometry key
_GRID_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


class BrickPartition:
    """Interior/shell slot split of one grid, plus subset gather tables.

    Works for both :class:`~repro.bricks.brick_grid.BrickGrid` and the
    batched :class:`~repro.bricks.batch.BatchedGrid` — the latter's
    ``slot_to_grid`` tiles the per-rank coordinates, so each rank block
    is partitioned independently and identically.
    """

    def __init__(self, grid) -> None:
        self.grid = grid
        coords = np.asarray(grid.slot_to_grid)
        g = int(grid.ghost_bricks)
        n = np.asarray(grid.shape_bricks, dtype=np.int64)
        lo = g + 1
        hi = g + n - 1  # exclusive; empty when shape_bricks[d] < 3
        deep = np.all((coords >= lo) & (coords < hi), axis=1)
        #: (n_int,) ascending slots whose 26-neighbourhood is owned
        self.interior = np.ascontiguousarray(np.flatnonzero(deep))
        #: (n_shell,) ascending slots: owned boundary + all ghost bricks
        self.shell = np.ascontiguousarray(np.flatnonzero(~deep))
        self.num_slots = int(coords.shape[0])
        #: subset gather tables, keyed by (kind, plan identity, pass)
        self._subsets: dict[tuple, object] = {}

    def select(self, which: str) -> np.ndarray:
        """The slot subset of pass ``which`` (``interior``/``shell``)."""
        if which == "interior":
            return self.interior
        if which == "shell":
            return self.shell
        raise ValueError(f"unknown pass {which!r}")

    # ------------------------------------------------------------------
    def offset_subset(self, plan, which: str) -> np.ndarray:
        """Contiguous ``(K, n_sel, B^3)`` rows of ``plan.flat`` for one pass.

        ``plan`` is an :class:`~repro.bricks.halo_plan.OffsetGatherPlan`
        of this grid; the subset table feeds the same single-``np.take``
        gather as the full plan, restricted to the pass's slots.
        """
        key = ("offset", plan.offsets, plan.halo_radius, which)
        table = self._subsets.get(key)
        if table is None:
            sel = self.select(which)
            table = np.ascontiguousarray(plan.flat[:, sel, :])
            self._subsets[key] = table
        return table

    def halo_subset(self, plan, which: str) -> tuple[np.ndarray, np.ndarray]:
        """``(flat, nbr)`` rows of a :class:`HaloPlan` for one pass.

        ``flat`` indexes packed C-contiguous storage (``np.take`` path);
        ``nbr`` pairs with ``plan.cell_all`` for strided sources.
        """
        key = ("halo", plan.radius, which)
        cached = self._subsets.get(key)
        if cached is None:
            sel = self.select(which)
            cached = (
                np.ascontiguousarray(plan._gather_flat[sel]),
                np.ascontiguousarray(plan.nbr_all[sel]),
            )
            self._subsets[key] = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BrickPartition(interior={self.interior.size}, "
            f"shell={self.shell.size} of {self.num_slots} slots)"
        )


def partition_for(grid) -> BrickPartition:
    """The (cached) :class:`BrickPartition` of ``grid``."""
    geometry = getattr(grid, "geometry_key", None)
    if geometry is not None:
        part = _PARTITION_CACHE.get(geometry)
        if part is None:
            part = BrickPartition(grid)
            _PARTITION_CACHE.put(geometry, part)
        return part
    part = _GRID_CACHE.get(grid)
    if part is None:
        part = BrickPartition(grid)
        _GRID_CACHE[grid] = part
    return part


def clear_partition_cache() -> int:
    """Drop every cached partition (see the module docstring).

    Returns the number of partitions dropped.
    """
    return _PARTITION_CACHE.clear()
