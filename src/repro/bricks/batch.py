"""Cross-rank brick stacking: one index space over congruent subdomains.

The V-cycle simulates every rank of the decomposition in one process,
so the per-rank compute phases are embarrassingly batchable: all ranks
share one :class:`~repro.bricks.brick_grid.BrickGrid` per level and
their kernels perform identical index arithmetic.  A
:class:`BatchedGrid` stacks ``num_ranks`` copies of a base grid into a
single slot space of ``num_ranks * num_slots`` bricks whose adjacency
is block-diagonal (brick neighbourhoods never cross rank blocks —
cross-rank coupling happens only through the explicit ghost exchange).

A :class:`~repro.bricks.bricked_array.BrickedArray` on a batched grid
is then a *stacked field*: rank ``k``'s slice is
``data[k * S : (k + 1) * S]``, and one vectorised kernel invocation
covers every rank — replacing the Python rank loop with a single NumPy
call, which is where the launch-count reduction of the paper's batched
GPU execution shows up in this reproduction.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.bricks.brick_grid import BrickGrid


class BatchedGrid:
    """``num_ranks`` congruent brick grids fused into one slot space.

    Duck-types the :class:`BrickGrid` surface that fields, kernels,
    halo plans and smoothers consume (``brick_dim``, ``num_slots``,
    ``adjacency``, ``interior_slots``, ``slot_to_grid``, …).  The
    per-rank block structure is exposed through ``base``,
    ``num_ranks`` and :meth:`rank_slice`.
    """

    def __init__(self, base: BrickGrid, num_ranks: int) -> None:
        if num_ranks < 1:
            raise ValueError(f"num_ranks must be positive: {num_ranks}")
        self.base = base
        self.num_ranks = int(num_ranks)
        self.brick_dim = base.brick_dim
        self.ghost_bricks = base.ghost_bricks
        self.shape_bricks = base.shape_bricks
        self.ordering = base.ordering
        self.extended_shape = base.extended_shape
        #: slots per rank block
        self.slots_per_rank = base.num_slots
        self.num_slots = self.num_ranks * base.num_slots
        self.num_interior = self.num_ranks * base.num_interior
        #: derived index tables are determined by the base geometry and
        #: the rank count (see BrickGrid.geometry_key)
        self.geometry_key = ("batched", base.geometry_key, self.num_ranks)

    @property
    def cells_per_brick(self) -> int:
        return self.base.cells_per_brick

    @property
    def shape_cells(self) -> tuple[int, int, int]:
        return self.base.shape_cells

    @property
    def ghost_cells(self) -> int:
        return self.base.ghost_cells

    def rank_slice(self, rank: int) -> slice:
        """Storage slice of rank ``rank``'s block."""
        if not 0 <= rank < self.num_ranks:
            raise IndexError(f"rank out of range: {rank}")
        S = self.slots_per_rank
        return slice(rank * S, (rank + 1) * S)

    def _offsets(self) -> np.ndarray:
        S = self.slots_per_rank
        return (np.arange(self.num_ranks, dtype=np.int64) * S)[:, None]

    @cached_property
    def adjacency(self) -> np.ndarray:
        """Block-diagonal neighbour table: base adjacency per rank,
        offset into that rank's slot block."""
        base = self.base.adjacency
        out = np.concatenate(
            [base + k * self.slots_per_rank for k in range(self.num_ranks)]
        )
        return np.ascontiguousarray(out)

    @cached_property
    def interior_slots(self) -> np.ndarray:
        return np.ascontiguousarray(
            (self.base.interior_slots[None, :] + self._offsets()).reshape(-1)
        )

    @cached_property
    def ghost_slots(self) -> np.ndarray:
        return np.ascontiguousarray(
            (self.base.ghost_slots[None, :] + self._offsets()).reshape(-1)
        )

    @cached_property
    def slot_to_grid(self) -> np.ndarray:
        """Per-rank stored coordinates, tiled — colour parity and other
        coordinate-derived masks are identical in every rank block."""
        return np.ascontiguousarray(
            np.tile(self.base.slot_to_grid, (self.num_ranks, 1))
        )

    @cached_property
    def periodic_wrap_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """``(ghost_slots, source_slots)`` of a per-block periodic wrap.

        The base pairs offset into every rank block: each block wraps
        onto itself (the adjacency is block-diagonal), so one
        ``data[ghost] = data[source]`` over the stacked storage is
        element-identical to the per-rank wraps it fuses."""
        ghost, src = self.base.periodic_wrap_pairs
        off = self._offsets()
        return (
            np.ascontiguousarray((ghost[None, :] + off).reshape(-1)),
            np.ascontiguousarray((src[None, :] + off).reshape(-1)),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchedGrid({self.base!r}, num_ranks={self.num_ranks})"
