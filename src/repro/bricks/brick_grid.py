"""Logical brick-grid index arithmetic and adjacency.

A :class:`BrickGrid` describes how the bricks of one rank's subdomain
are arranged: ``shape_bricks`` interior bricks per dimension surrounded
by a ghost shell ``ghost_bricks`` deep.  Bricks live in an *extended*
grid of shape ``n + 2 g`` per dimension; logical coordinates run from
``-g`` (ghost) through ``n + g - 1`` and are stored offset by ``g`` so
they are non-negative.

The grid assigns every extended-grid brick a *storage slot* according
to a configurable ordering (see :mod:`repro.bricks.orderings`) and
precomputes the 27-point adjacency table used by stencil kernels and
the halo gather.
"""

from __future__ import annotations

import itertools
from functools import cached_property

import numpy as np

#: All 27 direction vectors in lexicographic order of ``(dx, dy, dz)``
#: with components in ``{-1, 0, +1}``.  Index 13 is the centre.
DIRECTIONS: tuple[tuple[int, int, int], ...] = tuple(
    itertools.product((-1, 0, 1), repeat=3)
)

#: Index of the ``(0, 0, 0)`` direction within :data:`DIRECTIONS`.
CENTER_DIRECTION_INDEX = 13

#: The 26 non-centre directions (faces, edges, corners).
NEIGHBOR_DIRECTIONS: tuple[tuple[int, int, int], ...] = tuple(
    d for d in DIRECTIONS if d != (0, 0, 0)
)


def direction_index(d: tuple[int, int, int]) -> int:
    """Return the index of direction ``d`` within :data:`DIRECTIONS`."""
    dx, dy, dz = d
    if not all(c in (-1, 0, 1) for c in (dx, dy, dz)):
        raise ValueError(f"direction components must be in {{-1,0,1}}: {d}")
    return (dx + 1) * 9 + (dy + 1) * 3 + (dz + 1)


def opposite_index(idx: int) -> int:
    """Return the direction index of the opposite direction."""
    if not 0 <= idx < 27:
        raise ValueError(f"direction index out of range: {idx}")
    return 26 - idx


def direction_kind(d: tuple[int, int, int]) -> str:
    """Classify a direction as ``'center'``/``'face'``/``'edge'``/``'corner'``."""
    nz = sum(1 for c in d if c != 0)
    return ("center", "face", "edge", "corner")[nz]


class BrickGrid:
    """Brick arrangement for one subdomain: index math + adjacency.

    Parameters
    ----------
    shape_bricks:
        Number of interior bricks per dimension, e.g. ``(8, 8, 8)``.
    brick_dim:
        Cells per brick edge (bricks are cubic, e.g. 8 or 4).
    ghost_bricks:
        Depth of the ghost shell in bricks.  The default of 1 matches
        the paper: the ghost zone is one brick (``brick_dim`` cells)
        deep, enabling up to ``brick_dim`` communication-avoiding
        smoothing steps per exchange.
    ordering:
        Storage-order strategy, one of the keys of
        :data:`repro.bricks.orderings.ORDERINGS`
        (``"lexicographic"`` or ``"surface-major"``).
    """

    def __init__(
        self,
        shape_bricks: tuple[int, int, int],
        brick_dim: int,
        ghost_bricks: int = 1,
        ordering: str = "surface-major",
    ) -> None:
        from repro.bricks.orderings import ORDERINGS

        shape_bricks = tuple(int(n) for n in shape_bricks)
        if len(shape_bricks) != 3:
            raise ValueError("shape_bricks must have three dimensions")
        if any(n < 1 for n in shape_bricks):
            raise ValueError(f"need at least one brick per dim: {shape_bricks}")
        if brick_dim < 1:
            raise ValueError(f"brick_dim must be positive: {brick_dim}")
        if ghost_bricks < 0:
            raise ValueError(f"ghost_bricks must be non-negative: {ghost_bricks}")
        if ordering not in ORDERINGS:
            raise ValueError(
                f"unknown ordering {ordering!r}; choose from {sorted(ORDERINGS)}"
            )

        self.shape_bricks = shape_bricks
        self.brick_dim = int(brick_dim)
        self.ghost_bricks = int(ghost_bricks)
        self.ordering = ordering
        #: value-identity of the derived index tables (adjacency,
        #: orderings, region maps): two grids with equal keys are
        #: interchangeable for precomputed gather/refresh plans
        self.geometry_key = (
            "brick", shape_bricks, self.brick_dim, self.ghost_bricks, ordering
        )

        #: extended grid shape (interior + ghost shell), bricks per dim
        self.extended_shape = tuple(n + 2 * self.ghost_bricks for n in shape_bricks)
        #: total number of storage slots (= bricks in the extended grid)
        self.num_slots = int(np.prod(self.extended_shape))
        #: number of interior bricks
        self.num_interior = int(np.prod(shape_bricks))

        order = ORDERINGS[ordering](shape_bricks, self.ghost_bricks)
        # ``order[k]`` is the extended-grid raveled index stored in slot k.
        if order.shape != (self.num_slots,):
            raise AssertionError("ordering returned wrong number of slots")
        #: slot -> extended raveled grid index
        self._slot_to_ravel = np.ascontiguousarray(order)
        #: extended raveled grid index -> slot
        self._ravel_to_slot = np.empty(self.num_slots, dtype=np.int64)
        self._ravel_to_slot[order] = np.arange(self.num_slots, dtype=np.int64)
        #: grid_to_slot[x, y, z] for offset (stored) extended coordinates
        self.grid_to_slot = self._ravel_to_slot.reshape(self.extended_shape)

    # ------------------------------------------------------------------
    # basic geometry
    # ------------------------------------------------------------------
    @property
    def cells_per_brick(self) -> int:
        """Number of cells in one brick."""
        return self.brick_dim**3

    @property
    def shape_cells(self) -> tuple[int, int, int]:
        """Interior cells per dimension."""
        return tuple(n * self.brick_dim for n in self.shape_bricks)

    @property
    def ghost_cells(self) -> int:
        """Ghost-zone depth in cells (= ghost bricks * brick dim)."""
        return self.ghost_bricks * self.brick_dim

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BrickGrid(shape_bricks={self.shape_bricks}, "
            f"brick_dim={self.brick_dim}, ghost_bricks={self.ghost_bricks}, "
            f"ordering={self.ordering!r})"
        )

    # ------------------------------------------------------------------
    # coordinate transforms
    # ------------------------------------------------------------------
    def slot_of(self, logical: tuple[int, int, int]) -> int:
        """Storage slot of the brick at *logical* coordinates.

        Logical coordinates run from ``-ghost_bricks`` to
        ``shape_bricks + ghost_bricks - 1`` per dimension.
        """
        g = self.ghost_bricks
        stored = tuple(c + g for c in logical)
        for c, e in zip(stored, self.extended_shape):
            if not 0 <= c < e:
                raise IndexError(f"brick coordinate out of range: {logical}")
        return int(self.grid_to_slot[stored])

    @cached_property
    def slot_to_grid(self) -> np.ndarray:
        """``(num_slots, 3)`` stored (offset) coordinates of each slot."""
        coords = np.stack(
            np.unravel_index(self._slot_to_ravel, self.extended_shape), axis=1
        )
        return np.ascontiguousarray(coords.astype(np.int64))

    @cached_property
    def interior_slots(self) -> np.ndarray:
        """Slots of interior bricks in lexicographic interior order.

        The order is over interior grid coordinates, which makes
        dense-array round-trips (:meth:`BrickedArray.to_ijk`)
        deterministic regardless of the storage ordering.
        """
        g = self.ghost_bricks
        n0, n1, n2 = self.shape_bricks
        sl = self.grid_to_slot[g : g + n0, g : g + n1, g : g + n2]
        return np.ascontiguousarray(sl.reshape(-1))

    @cached_property
    def ghost_slots(self) -> np.ndarray:
        """Slots of all ghost-shell bricks (sorted by slot)."""
        mask = np.ones(self.extended_shape, dtype=bool)
        g = self.ghost_bricks
        n0, n1, n2 = self.shape_bricks
        mask[g : g + n0, g : g + n1, g : g + n2] = False
        return np.sort(self.grid_to_slot[mask])

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    @cached_property
    def adjacency(self) -> np.ndarray:
        """``(num_slots, 27)`` neighbour slot table.

        ``adjacency[s, direction_index(d)]`` is the slot of the brick
        one step along ``d`` from the brick in slot ``s``.  Neighbours
        that would fall outside the extended grid are *clamped to self*;
        such reads only ever occur for the outermost ghost bricks whose
        values are redundant by construction (the communication-avoiding
        validity argument in DESIGN.md).
        """
        coords = self.slot_to_grid  # (num_slots, 3) stored coords
        ext = np.asarray(self.extended_shape, dtype=np.int64)
        adj = np.empty((self.num_slots, 27), dtype=np.int64)
        flat = self.grid_to_slot.reshape(-1)
        for di, d in enumerate(DIRECTIONS):
            nb = coords + np.asarray(d, dtype=np.int64)
            inside = np.all((nb >= 0) & (nb < ext), axis=1)
            nb_clamped = np.where(inside[:, None], nb, coords)
            ravel = (
                nb_clamped[:, 0] * ext[1] + nb_clamped[:, 1]
            ) * ext[2] + nb_clamped[:, 2]
            adj[:, di] = flat[ravel]
        return adj

    # ------------------------------------------------------------------
    # exchange regions
    # ------------------------------------------------------------------
    def _region_slots(self, ranges: tuple[tuple[int, int], ...]) -> np.ndarray:
        """Slots of the box given by stored-coordinate half-open ranges,
        in lexicographic grid order."""
        (a0, b0), (a1, b1), (a2, b2) = ranges
        sl = self.grid_to_slot[a0:b0, a1:b1, a2:b2]
        return np.ascontiguousarray(sl.reshape(-1))

    def ghost_region_slots(self, d: tuple[int, int, int]) -> np.ndarray:
        """Slots of the ghost region in direction ``d``.

        The 26 ghost regions are disjoint and tile the ghost shell:
        along each dimension the region covers ``[-g, 0)`` for ``-1``,
        the interior ``[0, n)`` for ``0`` and ``[n, n+g)`` for ``+1``
        (logical coordinates).
        """
        if d == (0, 0, 0):
            raise ValueError("no ghost region for the centre direction")
        g = self.ghost_bricks
        ranges = []
        for c, n in zip(d, self.shape_bricks):
            if c == -1:
                ranges.append((0, g))
            elif c == 0:
                ranges.append((g, g + n))
            else:
                ranges.append((g + n, g + n + g))
        return self._region_slots(tuple(ranges))

    def send_region_slots(self, d: tuple[int, int, int]) -> np.ndarray:
        """Slots of the interior bricks the neighbour along ``d`` needs.

        This is the source region matching the neighbour's ghost region
        in direction ``-d``: along each dimension ``[n-g, n)`` for
        ``+1``, all of ``[0, n)`` for ``0`` and ``[0, g)`` for ``-1``.
        Unlike ghost regions, send regions for different directions
        overlap (a corner brick participates in face, edge and corner
        sends).
        """
        if d == (0, 0, 0):
            raise ValueError("no send region for the centre direction")
        g = self.ghost_bricks
        ranges = []
        for c, n in zip(d, self.shape_bricks):
            if g > n:
                raise ValueError(
                    "ghost shell deeper than the interior: "
                    f"ghost_bricks={g} > {n} bricks"
                )
            if c == -1:
                ranges.append((g, g + g))
            elif c == 0:
                ranges.append((g, g + n))
            else:
                ranges.append((g + n - g, g + n))
        return self._region_slots(tuple(ranges))

    def region_num_bricks(self, d: tuple[int, int, int]) -> int:
        """Number of bricks in the exchange region for direction ``d``."""
        g = self.ghost_bricks
        count = 1
        for c, n in zip(d, self.shape_bricks):
            count *= n if c == 0 else g
        return count

    def region_num_bytes(self, d: tuple[int, int, int], itemsize: int = 8) -> int:
        """Message payload in bytes for the region in direction ``d``."""
        return self.region_num_bricks(d) * self.cells_per_brick * itemsize

    # ------------------------------------------------------------------
    # local (single-rank) periodic wrap
    # ------------------------------------------------------------------
    @cached_property
    def periodic_wrap_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """``(ghost_slots, source_slots)`` for a periodic self-exchange.

        When a rank owns the entire (periodic) domain, ghost bricks are
        filled from the interior brick at the wrapped logical
        coordinate.  Returns matching index arrays so the fill is just
        ``data[ghost] = data[source]``.
        """
        g = self.ghost_bricks
        n = np.asarray(self.shape_bricks, dtype=np.int64)
        ghost = self.ghost_slots
        logical = self.slot_to_grid[ghost] - g
        wrapped = np.mod(logical, n)
        stored = wrapped + g
        ext = np.asarray(self.extended_shape, dtype=np.int64)
        ravel = (stored[:, 0] * ext[1] + stored[:, 1]) * ext[2] + stored[:, 2]
        src = self.grid_to_slot.reshape(-1)[ravel]
        return ghost, np.ascontiguousarray(src)
