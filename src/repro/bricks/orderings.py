"""Brick storage orderings.

BrickLib stores bricks in a physical order chosen to make communication
cheap (Zhao et al., PPoPP'21): if the bricks a message carries occupy a
single contiguous range of storage, the message can be sent straight
out of (or received straight into) the field's backing buffer with no
pack/unpack kernel.

Two orderings are provided:

``lexicographic``
    Bricks stored in raveled extended-grid order.  Simple, but exchange
    regions are scattered across storage, so every message needs a
    gather (pack) on send and a scatter (unpack) on receive.

``surface-major``
    Bricks are grouped by *position class*: first the 26 ghost regions
    (each contiguous, in direction order), then the 26 interior surface
    classes, then the deep interior.  Every ghost (receive) region is a
    single contiguous segment, and every corner send region is a single
    segment; edge/face sends span 3/9 classes and are merged into as
    few contiguous segments as the class layout allows.

An ordering function maps ``(shape_bricks, ghost_bricks)`` to an array
``order`` where ``order[slot]`` is the extended-grid raveled index of
the brick stored in ``slot``.
"""

from __future__ import annotations

import numpy as np

from repro.bricks import brick_grid as _bg


def lexicographic_order(
    shape_bricks: tuple[int, int, int], ghost_bricks: int
) -> np.ndarray:
    """Identity ordering: slot k holds extended raveled index k."""
    ext = tuple(n + 2 * ghost_bricks for n in shape_bricks)
    return np.arange(int(np.prod(ext)), dtype=np.int64)


def _position_classes(
    shape_bricks: tuple[int, int, int], ghost_bricks: int
) -> np.ndarray:
    """Class id of every extended-grid brick.

    Ghost bricks get the direction index of their (unique) ghost region
    (0..26 skipping 13); interior bricks get ``27 + direction index`` of
    their surface class, with the deep interior landing on
    ``27 + 13 = 40``.  Per-dimension interior classification is ``-1``
    if within ``ghost_bricks`` of the low boundary, else ``+1`` if
    within ``ghost_bricks`` of the high boundary, else ``0`` (the low
    side wins when the two overlap on very small grids).
    """
    g = ghost_bricks
    ext = tuple(n + 2 * g for n in shape_bricks)
    per_dim = []
    for n, e in zip(shape_bricks, ext):
        c = np.zeros(e, dtype=np.int64)
        coords = np.arange(e) - g  # logical coordinate
        c[coords < 0] = -2  # low ghost
        c[coords >= n] = +2  # high ghost
        interior = (coords >= 0) & (coords < n)
        low_surface = interior & (coords < g)
        high_surface = interior & (coords >= n - g) & ~low_surface
        c[low_surface] = -1
        c[high_surface] = +1
        per_dim.append(c)

    cx = per_dim[0][:, None, None]
    cy = per_dim[1][None, :, None]
    cz = per_dim[2][None, None, :]
    is_ghost = (np.abs(cx) == 2) | (np.abs(cy) == 2) | (np.abs(cz) == 2)

    # Ghost direction: sign of any |2| component, 0 otherwise.  The
    # ghost regions partition the shell with the interior span mapped
    # to direction component 0.
    def ghost_comp(c: np.ndarray) -> np.ndarray:
        out = np.zeros_like(c)
        out[c == -2] = -1
        out[c == 2] = 1
        return out

    gx, gy, gz = ghost_comp(cx), ghost_comp(cy), ghost_comp(cz)
    ghost_dir = (gx + 1) * 9 + (gy + 1) * 3 + (gz + 1)

    # Surface class for interior bricks from the -1/0/+1 components.
    def surf_comp(c: np.ndarray) -> np.ndarray:
        out = np.zeros_like(c)
        out[c == -1] = -1
        out[c == 1] = 1
        return out

    sx, sy, sz = surf_comp(cx), surf_comp(cy), surf_comp(cz)
    surf_dir = (sx + 1) * 9 + (sy + 1) * 3 + (sz + 1)

    classes = np.where(is_ghost, ghost_dir, 27 + surf_dir)
    return np.broadcast_to(classes, ext).reshape(-1)


def surface_major_order(
    shape_bricks: tuple[int, int, int], ghost_bricks: int
) -> np.ndarray:
    """Communication-optimised ordering (see module docstring)."""
    classes = _position_classes(shape_bricks, ghost_bricks)
    ravel = np.arange(classes.size, dtype=np.int64)
    # Stable sort: group by class, lexicographic within each group.
    order = np.argsort(classes, kind="stable")
    return ravel[order]


def contiguous_segments(slots: np.ndarray) -> list[tuple[int, int]]:
    """Split a set of storage slots into maximal contiguous ranges.

    Returns half-open ``(start, stop)`` slot ranges covering exactly
    ``slots``.  A message whose bricks form one segment needs no
    packing; the segment count is the pack/unpack cost driver used by
    the performance model.
    """
    if len(slots) == 0:
        return []
    s = np.sort(np.asarray(slots, dtype=np.int64))
    if len(np.unique(s)) != len(s):
        raise ValueError("slot set contains duplicates")
    breaks = np.nonzero(np.diff(s) != 1)[0]
    starts = np.concatenate(([0], breaks + 1))
    stops = np.concatenate((breaks, [len(s) - 1]))
    return [(int(s[a]), int(s[b]) + 1) for a, b in zip(starts, stops)]


#: Registry of ordering strategies by name.
ORDERINGS = {
    "lexicographic": lexicographic_order,
    "surface-major": surface_major_order,
}


def num_segments(grid: "_bg.BrickGrid", d: tuple[int, int, int], kind: str) -> int:
    """Number of contiguous storage segments in an exchange region.

    ``kind`` is ``"send"`` or ``"recv"``; a count of 1 means the
    message is pack-free (send) or unpack-free (recv).
    """
    if kind == "send":
        region = grid.send_region_slots(d)
    elif kind == "recv":
        region = grid.ghost_region_slots(d)
    else:
        raise ValueError(f"kind must be 'send' or 'recv': {kind!r}")
    return len(contiguous_segments(region))
