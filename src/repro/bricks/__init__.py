"""Fine-grain data blocking: the brick layout substrate.

This package is the Python analogue of BrickLib's data layout layer
(Zhao et al., P3HPC'18 / SC'19 / PPoPP'21).  A *brick* is a small cubic
block of cells (e.g. ``8**3`` or ``4**3``) stored contiguously in
memory.  A field over a subdomain is stored as an array of bricks plus
an indirection structure (:class:`BrickGrid`) that maps logical brick
coordinates to storage slots and records the 27-point brick adjacency.

Key properties reproduced from the paper:

* ghost *bricks* instead of ghost cells — the ghost zone is one brick
  deep, which enables communication-avoiding smoothing (Section V);
* storage-order permutations — the ``surface-major`` ordering groups
  each of the 26 ghost regions into a single contiguous slot range so
  ghost data can be received without an unpacking pass, and groups
  surface bricks by position class to minimise the number of contiguous
  segments a send must gather (PPoPP'21's layout optimisation);
* neighbour indirection — stencils read halo values through the
  adjacency table rather than through a padded array.
"""

from repro.bricks.batch import BatchedGrid
from repro.bricks.brick_grid import (
    CENTER_DIRECTION_INDEX,
    DIRECTIONS,
    NEIGHBOR_DIRECTIONS,
    BrickGrid,
    direction_index,
    opposite_index,
)
from repro.bricks.bricked_array import BrickedArray
from repro.bricks.halo import gather_extended
from repro.bricks.halo_plan import HaloPlan, gather_planned, plan_for, refresh_shell
from repro.bricks.plan_cache import PlanLRUCache, cache_stats
from repro.bricks.orderings import (
    ORDERINGS,
    contiguous_segments,
    lexicographic_order,
    surface_major_order,
)

__all__ = [
    "BrickGrid",
    "BrickedArray",
    "BatchedGrid",
    "DIRECTIONS",
    "NEIGHBOR_DIRECTIONS",
    "CENTER_DIRECTION_INDEX",
    "direction_index",
    "opposite_index",
    "gather_extended",
    "HaloPlan",
    "gather_planned",
    "plan_for",
    "refresh_shell",
    "PlanLRUCache",
    "cache_stats",
    "ORDERINGS",
    "lexicographic_order",
    "surface_major_order",
    "contiguous_segments",
]
