"""repro — reproduction of "High-Performance, Scalable Geometric
Multigrid via Fine-Grain Data Blocking for GPUs" (SC 2024).

Layered like the system the paper describes:

* :mod:`repro.bricks` — fine-grain data blocking (the BrickLib layout);
* :mod:`repro.dsl` — the stencil DSL, analysis, and NumPy vector code
  generation;
* :mod:`repro.gmg` — the geometric multigrid solver (and the
  HPGMG-style baseline);
* :mod:`repro.comm` — the simulated-MPI communication substrate;
* :mod:`repro.machines` — calibrated Perlmutter/Frontier/Sunspot
  GPU+network models;
* :mod:`repro.perf` — linear latency/bandwidth models, roofline
  fractions, the performance-portability metric;
* :mod:`repro.memsim` — cache simulation demonstrating the layout's
  data-movement advantage from first principles;
* :mod:`repro.harness` — one experiment driver per paper figure/table.

Quickstart::

    from repro.gmg import GMGSolver, SolverConfig
    result = GMGSolver(SolverConfig(global_cells=32, num_levels=3,
                                    brick_dim=4)).solve()
    assert result.converged
"""

__version__ = "1.0.0"

from repro.gmg import GMGSolver, SolveResult, SolverConfig

__all__ = ["GMGSolver", "SolverConfig", "SolveResult", "__version__"]
