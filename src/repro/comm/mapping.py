"""CPU–GPU–NIC binding models (Section V, "Optimal Mapping").

On Perlmutter and Sunspot the NICs hang off the CPUs, so a GPU-resident
message must cross the CPU's PCIe/fabric attach point; on Frontier the
NICs attach directly to the GCDs.  With the *correct* binding
(``MPICH_OFI_NIC_POLICY=GPU`` or manual affinity), each rank talks to
its nearest NIC and pays at most one interconnect hop; with a wrong
binding the message crosses the node's internal fabric an extra time.

The binding model produces a per-message latency/bandwidth penalty pair
consumed by :mod:`repro.machines.network`; the 8-node experiments and
the scaling studies all use the paper's best ("closest") mappings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class NicBinding(enum.Enum):
    """Quality of the rank's CPU–GPU–NIC mapping."""

    CLOSEST = "closest"  # MPICH_OFI_NIC_POLICY=GPU / manual affinity
    DEFAULT = "default"  # first NIC regardless of locality
    WORST = "worst"  # deliberately crossing the whole node fabric


@dataclass(frozen=True)
class BindingPenalty:
    """Extra cost per message from a (mis)binding."""

    latency_s: float
    bandwidth_factor: float  # multiplies attainable NIC bandwidth


#: Hop penalties, calibrated so that a wrong binding costs a few extra
#: microseconds of latency and a sizeable bandwidth haircut from the
#: additional traversal of the on-node fabric — consistent with the
#: paper's insistence that mapping is "crucial" (Section V).
_PENALTIES = {
    NicBinding.CLOSEST: BindingPenalty(latency_s=0.0, bandwidth_factor=1.0),
    NicBinding.DEFAULT: BindingPenalty(latency_s=2.0e-6, bandwidth_factor=0.75),
    NicBinding.WORST: BindingPenalty(latency_s=5.0e-6, bandwidth_factor=0.5),
}


def binding_hop_penalty(
    binding: NicBinding, nic_attached_to_gpu: bool
) -> BindingPenalty:
    """Penalty for one message under ``binding``.

    When the NIC attaches directly to the GPU (Frontier), the closest
    binding is a true zero-hop path; when it attaches to the CPU
    (Perlmutter/Sunspot), even the closest binding crosses the
    CPU-GPU link once, which the network model already accounts for
    via the GPU-aware/host-staged path — so the penalty here is only
    the *additional* cost of a suboptimal choice.
    """
    penalty = _PENALTIES[binding]
    if binding is NicBinding.CLOSEST:
        return penalty
    # Misbindings hurt more when the NIC is GPU-attached, because the
    # detour crosses both the GPU fabric and the CPU complex.
    if nic_attached_to_gpu:
        return BindingPenalty(
            latency_s=penalty.latency_s * 1.5,
            bandwidth_factor=penalty.bandwidth_factor * 0.9,
        )
    return penalty
