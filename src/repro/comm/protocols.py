"""Message protocol selection: eager vs rendezvous, hardware matching.

Slingshot's CXI provider chooses between an *eager* protocol (payload
travels with the envelope; cheap for small messages but requires a
bounce-buffer copy) and a *rendezvous* protocol (handshake first, then
zero-copy RDMA of the payload).  The paper forces rendezvous for all
sizes on Perlmutter and Frontier (``FI_CXI_RDZV_EAGER_SIZE=0``,
``FI_CXI_RDZV_THRESHOLD=0``, ``FI_CXI_RDZV_GET_MIN=0``) and enables
hardware message matching on Frontier
(``FI_CXI_RX_MATCH_MODE=hardware``), observing that this improves
small-message performance deep in the V-cycle.

This module reproduces that selection logic and the latency/overhead
consequences consumed by :mod:`repro.machines.network`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Protocol(enum.Enum):
    """Wire protocol used for one message."""

    EAGER = "eager"
    RENDEZVOUS = "rendezvous"


#: Default CXI eager→rendezvous switchover (bytes), the provider default
#: when the Table I environment variables are not set.
DEFAULT_RDZV_THRESHOLD = 16384


@dataclass(frozen=True)
class CxiSettings:
    """The Table I environment variables that shape message handling.

    ``rdzv_eager_size`` / ``rdzv_threshold`` of 0 force the rendezvous
    protocol for every size; ``hw_match`` models
    ``FI_CXI_RX_MATCH_MODE=hardware`` offloading envelope matching to
    the Cassini NIC.
    """

    rdzv_eager_size: int = DEFAULT_RDZV_THRESHOLD
    rdzv_threshold: int = DEFAULT_RDZV_THRESHOLD
    hw_match: bool = False

    @classmethod
    def paper_perlmutter(cls) -> "CxiSettings":
        """Perlmutter's Table I settings (forced rendezvous)."""
        return cls(rdzv_eager_size=0, rdzv_threshold=0, hw_match=False)

    @classmethod
    def paper_frontier(cls) -> "CxiSettings":
        """Frontier's Table I settings (forced rendezvous + hw match)."""
        return cls(rdzv_eager_size=0, rdzv_threshold=0, hw_match=True)

    @classmethod
    def defaults(cls) -> "CxiSettings":
        """Provider defaults (Sunspot sets none of the variables)."""
        return cls()


def select_protocol(nbytes: int, settings: CxiSettings) -> Protocol:
    """Protocol the provider would pick for a message of ``nbytes``.

    Messages at or above the threshold go rendezvous; setting the
    threshold to zero therefore forces rendezvous for everything.
    """
    if nbytes < 0:
        raise ValueError(f"message size must be non-negative: {nbytes}")
    threshold = min(settings.rdzv_eager_size, settings.rdzv_threshold)
    return Protocol.RENDEZVOUS if nbytes >= threshold else Protocol.EAGER


def matching_overhead_factor(settings: CxiSettings) -> float:
    """Multiplier on per-message software overhead from envelope matching.

    Hardware matching on the Cassini NIC removes the host-side list
    walk; the paper cites [42] for rendezvous+hardware-matching
    improving small-message rates on Frontier.
    """
    return 0.6 if settings.hw_match else 1.0
