"""Communication substrate: simulated MPI over a Cartesian rank grid.

The paper runs on Cray-MPICH with GPU-aware MPI over Slingshot 11; this
environment has no MPI (and no network at all), so the substrate is a
single-process SPMD simulator that preserves MPI's semantics:

* :class:`~repro.comm.topology.CartTopology` — periodic 3-D Cartesian
  decomposition with 26-neighbour connectivity;
* :class:`~repro.comm.simmpi.SimComm` — non-blocking
  ``Isend``/``Irecv``/``Waitall``-style message passing between rank
  mailboxes, with tag matching and per-rank statistics;
* :class:`~repro.comm.exchange.HaloExchange` — the V-cycle's
  ``exchange()``: ghost-brick exchange with all 26 neighbours, message
  aggregation across fields, and pack/unpack segment accounting driven
  by the brick storage ordering;
* :mod:`~repro.comm.protocols` — eager/rendezvous message protocol
  selection mirroring the CXI environment variables of Table I;
* :mod:`~repro.comm.mapping` — CPU–GPU–NIC binding models.

Functional correctness is real: distributed solves move actual NumPy
data between rank subdomains and must match single-rank solves exactly.
Message *timing* is priced separately by :mod:`repro.machines.network`.
"""

from repro.comm.exchange import (
    ExchangeFaultError,
    HaloExchange,
    LocalPeriodicExchange,
    ResilientChannel,
    payload_checksum,
)
from repro.comm.mapping import NicBinding, binding_hop_penalty
from repro.comm.protocols import CxiSettings, Protocol, select_protocol
from repro.comm.simmpi import (
    RecvRequest,
    SendRequest,
    SimComm,
    SubComm,
    UnmatchedReceiveError,
)
from repro.comm.topology import CartTopology

__all__ = [
    "CartTopology",
    "SimComm",
    "SubComm",
    "SendRequest",
    "RecvRequest",
    "UnmatchedReceiveError",
    "HaloExchange",
    "LocalPeriodicExchange",
    "ResilientChannel",
    "ExchangeFaultError",
    "payload_checksum",
    "Protocol",
    "CxiSettings",
    "select_protocol",
    "NicBinding",
    "binding_hop_penalty",
]
