"""Ghost-brick exchange: the V-cycle's ``exchange()`` operation.

Each rank sends, for every one of its 26 neighbour directions, the
interior bricks the neighbour's ghost shell needs, and receives the
matching region into its own ghost bricks.  Because the ghost shell is
a full brick deep, one exchange validates ``brick_dim`` cells of halo —
the basis of communication-avoiding smoothing.

Two cost-relevant properties are recorded per message:

* *aggregation*: multiple fields (``x`` and ``b``) destined for the
  same neighbour travel in one message (Section V's "message
  aggregation across multiple smoothing operations");
* *segments*: the number of contiguous storage ranges the payload
  occupies under the grid's ordering — 1 means pack-free/unpack-free,
  which the surface-major ordering guarantees for every receive.

:class:`LocalPeriodicExchange` provides the single-rank equivalent
(periodic wrap) with the same interface so the V-cycle driver is
decomposition-agnostic.
"""

from __future__ import annotations

import zlib
from typing import Sequence

import numpy as np

from repro.bricks.brick_grid import (
    NEIGHBOR_DIRECTIONS,
    BrickGrid,
    direction_index,
    direction_kind,
)
from repro.bricks.bricked_array import BrickedArray
from repro.bricks.orderings import contiguous_segments
from repro.comm.simmpi import SimComm, UnmatchedReceiveError
from repro.comm.topology import CartTopology
from repro.instrument import Recorder
from repro.obs.tracer import NULL_TRACER


class ExchangeFaultError(RuntimeError):
    """A receive exhausted its retry budget during an exchange.

    Raised only on the resilient path (fault injection active) after
    ``max_retries`` retransmission attempts all failed — the caller
    (the resilient solve driver) converts it into rollback or a
    ``failed_faults`` outcome rather than letting it escape to users.
    """

    def __init__(
        self,
        level: int,
        rank: int,
        src: int,
        direction: tuple[int, int, int] | None,
        attempts: int,
    ) -> None:
        what = (
            f"a valid ghost region from rank {src} along direction "
            f"{direction}"
            if direction is not None
            else f"a valid agglomeration payload from rank {src}"
        )
        super().__init__(
            f"exchange at level {level} gave up after {attempts} retries: "
            f"rank {rank} never received {what}"
        )
        self.level = level
        self.rank = rank
        self.src = src
        self.direction = direction
        self.attempts = attempts


def payload_checksum(payload: np.ndarray) -> int:
    """CRC32 of a message payload (the sender-side integrity header)."""
    return zlib.crc32(np.ascontiguousarray(payload).tobytes())


class LocalPeriodicExchange:
    """Single-rank 'exchange': periodic wrap within the one subdomain.

    Records the same message events a real 26-neighbour exchange would
    (marked ``self_message``) so operation-count validation works
    uniformly.  With a non-periodic ``boundary``, ghost bricks are
    synthesised by the boundary condition instead (no messages at all —
    a single rank owns the whole domain).
    """

    def __init__(
        self,
        grid: BrickGrid,
        recorder: Recorder | None = None,
        boundary=None,
        tracer=None,
    ) -> None:
        from repro.gmg.boundary import BoundaryCondition, BoundaryFill

        self.grid = grid
        self.recorder = recorder
        self.tracer = tracer or NULL_TRACER
        self.boundary = boundary or BoundaryCondition.PERIODIC
        self._fill = None
        if self.boundary is not BoundaryCondition.PERIODIC:
            self._fill = BoundaryFill(
                grid, ((True, True),) * 3, self.boundary
            )
        #: fully-constructed event rows of the 26 recorded messages per
        #: (level, itemsize, nfields) — static per grid, so the per-
        #: exchange record is one bulk extend of shared frozen events
        self._message_events: dict[tuple[int, int, int], list] = {}

    def exchange(
        self, level: int, fields_by_rank: Sequence[Sequence[BrickedArray]]
    ) -> None:
        """Fill ghost shells; ``fields_by_rank`` is ``[[fields of rank 0]]``."""
        if len(fields_by_rank) != 1:
            raise ValueError("LocalPeriodicExchange serves exactly one rank")
        with self.tracer.span(
            "exchange", l=level, nfields=len(fields_by_rank[0])
        ):
            self._fill_ghosts(fields_by_rank[0])
        self._record(level, fields_by_rank[0])

    def begin(
        self, level: int, fields_by_rank: Sequence[Sequence[BrickedArray]]
    ) -> int:
        """Split-phase entry: a single rank has no wire traffic to hide,
        so the whole periodic wrap (or boundary fill) happens eagerly at
        ``begin`` — it writes only ghost bricks, which the interior pass
        never reads.  Returns the pending token for :meth:`finish`."""
        if len(fields_by_rank) != 1:
            raise ValueError("LocalPeriodicExchange serves exactly one rank")
        with self.tracer.span(
            "exchange.begin", l=level, nfields=len(fields_by_rank[0])
        ):
            self._fill_ghosts(fields_by_rank[0])
        self._record(level, fields_by_rank[0])
        return level

    def finish(self, pending: int) -> None:
        """Split-phase completion: everything already happened at
        ``begin``; the span keeps wait-time accounting uniform."""
        with self.tracer.span("exchange.finish", l=pending, nfields=0):
            pass

    def _fill_ghosts(self, fields: Sequence[BrickedArray]) -> None:
        for field in fields:
            if field.grid is not self.grid:
                raise ValueError(
                    "field grid does not match the exchanger's grid"
                )
            if self._fill is None:
                field.fill_ghost_periodic()
            else:
                field.zero_ghost()
                self._fill.apply(field)

    def _record(self, level: int, fields: Sequence[BrickedArray]) -> None:
        if self.recorder is None:
            return
        self.recorder.exchange(level)
        if self._fill is not None:
            return
        nfields = len(fields)
        itemsize = fields[0].data.dtype.itemsize
        key = (level, itemsize, nfields)
        events = self._message_events.get(key)
        if events is None:
            from repro.instrument import MessageEvent

            events = [
                MessageEvent(
                    level,
                    self.grid.region_num_bytes(d, itemsize) * nfields,
                    direction_kind(d),
                    1,
                    True,
                )
                for d in NEIGHBOR_DIRECTIONS
            ]
            self._message_events[key] = events
        self.recorder.messages.extend(events)


class ResilientChannel:
    """Receive-side resilience shared by every ``SimComm`` consumer.

    Halo exchanges and the agglomeration gather/scatter transfers face
    the same wire hazards (drop, corrupt, duplicate, delay), so the
    machinery lives here once: per-envelope sequence tracking, checksum
    and shape validation, duplicate discard, bounded sender-side
    retransmission, and the end-of-solve stale drain.  Subclasses own
    the message topology; this class owns the envelope discipline.

    Ranks passed to the channel are communicator-local; ``_gr`` maps
    them to global ids (via the communicator's ``global_rank`` hook when
    present, e.g. :class:`~repro.comm.simmpi.SubComm`) so fault events,
    injector predicates, and trace spans always name the real rank —
    per-rank accounting stays truthful on agglomerated levels.
    """

    def __init__(
        self,
        comm,
        recorder: Recorder | None = None,
        injector=None,
        max_retries: int = 3,
        tracer=None,
    ) -> None:
        if max_retries < 1:
            raise ValueError(f"max_retries must be positive: {max_retries}")
        self.comm = comm
        self.recorder = recorder
        self.tracer = tracer or NULL_TRACER
        #: optional FaultInjector; when set, sends carry checksums and
        #: receives validate, discard duplicates, and retry via
        #: retransmission instead of raising on the first anomaly.
        self.injector = injector
        self.max_retries = int(max_retries)
        #: next expected sequence number per (rank, src, tag) envelope
        self._next_seq: dict[tuple[int, int, int], int] = {}
        #: level of the most recent exchange on this channel — drained
        #: end-of-solve duplicates belong to the final exchange's level,
        #: not to a level-less ``-1``
        self._last_level = -1

    def _gr(self, rank: int) -> int:
        """Global id of a (possibly communicator-local) rank."""
        mapper = getattr(self.comm, "global_rank", None)
        return rank if mapper is None else mapper(rank)

    def _root_comm(self):
        """The root :class:`SimComm` under any ``SubComm`` views."""
        comm = self.comm
        while hasattr(comm, "parent"):
            comm = comm.parent
        return comm

    def _is_dead(self, rank: int) -> bool:
        """Is communicator-local ``rank`` a dead endpoint?"""
        dead = getattr(self.comm, "is_dead", None)
        return False if dead is None else dead(rank)

    def poll_crashes(self, level: int) -> list[int]:
        """Fire level-pinned ``rank_crash`` specs on entry to a collective.

        Kills the victims' endpoints on the *root* communicator (crash
        specs always name global ranks), so the very next touch of a
        victim raises :class:`~repro.comm.simmpi.RankDeadError` for the
        recovery ladder.  Returns the global ranks killed.
        """
        if self.injector is None:
            return []
        victims = self.injector.crashes_due(level)
        if victims:
            root = self._root_comm()
            for rank in victims:
                root.kill(rank)
        return victims

    def reset_envelopes(self) -> None:
        """Forget per-envelope sequence state after a communicator repair.

        Repair clears the communicator's send logs and sequence
        counters; a channel that kept expecting pre-repair sequence
        numbers would discard every post-repair message as a duplicate.
        """
        self._next_seq.clear()

    def _fault(self, kind: str, level: int, rank: int, src: int, tag: int,
               nbytes: int = 0, attempt: int = 0) -> None:
        if self.recorder is not None:
            vcycle = self.injector.vcycle if self.injector is not None else -1
            self.recorder.fault(
                kind, vcycle=vcycle, level=level, rank=self._gr(rank),
                src=self._gr(src), tag=tag, nbytes=nbytes, attempt=attempt,
            )

    def _receive_payload(
        self,
        level: int,
        rank: int,
        src: int,
        tag: int,
        expected_shape: tuple[int, ...],
        direction: tuple[int, int, int] | None = None,
        context: str = "message",
        what: str = "payload",
    ) -> np.ndarray:
        """One receive, fault-tolerant when an injector is set.

        ``direction`` is the receiver's ghost direction for halo
        receives (retransmissions re-enter the injector with the
        sender's ``-direction``); agglomeration transfers pass ``None``
        and are matched by level/src/rank predicates alone.
        """
        if self.injector is not None:
            return self._receive_resilient(
                level, rank, src, tag, expected_shape, direction, context
            )
        try:
            payload = self.comm.irecv(rank, src, tag, level=level).wait()
        except UnmatchedReceiveError as exc:
            raise UnmatchedReceiveError(
                f"{exc} (while filling {context})"
            ) from None
        if payload.shape != expected_shape:
            raise RuntimeError(
                f"{what} shape mismatch: got {payload.shape}, "
                f"expected {expected_shape} (while filling {context})"
            )
        return payload

    def _receive_resilient(
        self,
        level: int,
        rank: int,
        src: int,
        tag: int,
        expected_shape: tuple[int, ...],
        direction: tuple[int, int, int] | None,
        context: str,
    ) -> np.ndarray:
        """Checksum-validated receive with duplicate discard and bounded
        retry.

        Anomaly handling, in order: a stale sequence number is a
        duplicate (discarded, not an attempt); an empty mailbox first
        flushes the delay queue (a late message landing after the retry
        timeout), then falls back to sender-side retransmission; a
        checksum or shape failure discards the message and requests
        retransmission.  Each retransmission passes through the injector
        again, so persistent faults can defeat the whole budget — after
        ``max_retries`` failed attempts the receive raises
        :class:`ExchangeFaultError` for the recovery layer.
        """
        key = (rank, src, tag)
        sender_d = None if direction is None else tuple(-c for c in direction)
        attempts = 0
        while True:
            msg = self.comm.try_match(rank, src, tag, level=level)
            if msg is not None and msg.seq < self._next_seq.get(key, 0):
                self._fault("detect_duplicate", level, rank, src, tag,
                            nbytes=msg.payload.nbytes)
                continue
            if msg is not None:
                valid = msg.payload.shape == expected_shape and (
                    msg.checksum is None
                    or payload_checksum(msg.payload) == msg.checksum
                )
                if valid:
                    self._next_seq[key] = msg.seq + 1
                    return msg.payload
                self._fault("detect_corrupt", level, rank, src, tag,
                            nbytes=msg.payload.nbytes)
            elif self.comm.release_delayed(rank, src, tag):
                self._fault("detect_delay", level, rank, src, tag)
                attempts += 1
                if attempts > self.max_retries:
                    raise ExchangeFaultError(
                        level, self._gr(rank), self._gr(src), direction,
                        attempts - 1,
                    )
                self._fault("retry", level, rank, src, tag, attempt=attempts,
                            nbytes=self.comm.logged_nbytes(rank, src, tag))
                continue
            else:
                self._fault("detect_drop", level, rank, src, tag)
            attempts += 1
            if attempts > self.max_retries:
                raise ExchangeFaultError(
                    level, self._gr(rank), self._gr(src), direction,
                    attempts - 1,
                )
            self._fault("retry", level, rank, src, tag, attempt=attempts,
                        nbytes=self.comm.logged_nbytes(rank, src, tag))
            action = self.injector.message_action(
                level, self._gr(src), self._gr(rank), tag, sender_d,
                self.comm.logged_nbytes(rank, src, tag),
            )
            try:
                nbytes = self.comm.retransmit(
                    rank, src, tag, fault=action, level=level
                )
            except UnmatchedReceiveError as exc:
                raise UnmatchedReceiveError(
                    f"{exc} (while filling {context})"
                ) from None
            self._fault("retransmit", level, rank, src, tag,
                        nbytes=nbytes, attempt=attempts)

    def drain_stale(self) -> int:
        """Discard leftover duplicates before the end-of-solve drain check.

        A duplicated message whose original was consumed in the solve's
        final exchange on its envelope has no later receive to discard
        it; its stale sequence number identifies it here.  Each discard
        is recorded as a detected duplicate attributed to the channel's
        final exchange level, inside a ``drain-stale`` span on the
        receiving rank's timeline so the instant has an owning span in
        per-rank Chrome exports and critical paths.  Returns the number
        of messages discarded.
        """
        n = 0
        for (rank, src, tag), expected in self._next_seq.items():
            dropped = self.comm.discard_stale(rank, src, tag, expected)
            for _ in range(dropped):
                with self.tracer.child(self._gr(rank)).span(
                    "drain-stale", l=self._last_level, src=self._gr(src),
                    dst=self._gr(rank), tag=tag,
                ):
                    self._fault(
                        "detect_duplicate", self._last_level, rank, src, tag
                    )
            n += dropped
        return n


class HaloExchange(ResilientChannel):
    """Collective 26-neighbour ghost-brick exchange over ``SimComm``.

    The driver runs ranks in lockstep: all sends for all ranks are
    posted first, then all receives complete (``Isend``/``Irecv``/
    ``Waitall`` order within one phase).  Fields are aggregated per
    neighbour into a single message.
    """

    def __init__(
        self,
        grid: BrickGrid,
        topology: CartTopology,
        comm: SimComm,
        recorder: Recorder | None = None,
        boundary=None,
        injector=None,
        max_retries: int = 3,
        tracer=None,
    ) -> None:
        from repro.gmg.boundary import BoundaryCondition, BoundaryFill

        if topology.size != comm.size:
            raise ValueError(
                f"topology has {topology.size} ranks but comm has {comm.size}"
            )
        super().__init__(
            comm, recorder=recorder, injector=injector,
            max_retries=max_retries, tracer=tracer,
        )
        self.grid = grid
        self.topology = topology
        self.boundary = boundary or BoundaryCondition.PERIODIC
        if topology.periodic != (self.boundary is BoundaryCondition.PERIODIC):
            raise ValueError(
                "topology periodicity must match the boundary condition"
            )
        self._fills = None
        if self.boundary is not BoundaryCondition.PERIODIC:
            self._fills = [
                BoundaryFill(grid, topology.boundary_sides(rank), self.boundary)
                for rank in range(topology.size)
            ]
        # Precompute per-direction slot sets and segment counts once.
        self._send_slots = {
            d: grid.send_region_slots(d) for d in NEIGHBOR_DIRECTIONS
        }
        self._ghost_slots = {
            d: grid.ghost_region_slots(d) for d in NEIGHBOR_DIRECTIONS
        }
        self._send_segments = {
            d: len(contiguous_segments(s)) for d, s in self._send_slots.items()
        }
        self._recv_segments = {
            d: len(contiguous_segments(s)) for d, s in self._ghost_slots.items()
        }

    @property
    def recv_is_unpack_free(self) -> bool:
        """True when every receive lands in one contiguous segment."""
        return all(n == 1 for n in self._recv_segments.values())

    def exchange(
        self, level: int, fields_by_rank: Sequence[Sequence[BrickedArray]]
    ) -> None:
        """Exchange ghost bricks for every rank's listed fields.

        ``fields_by_rank`` is the (ordered) list of fields to
        aggregate per rank; all ranks must pass the same number of
        fields.  The whole collective phase (sends, receives including
        any fault retries, boundary fills) runs inside one ``exchange``
        span, so fault instants fired during receives land inside it.

        Level-pinned ``rank_crash`` specs fire on entry; once a rank is
        dead, every send/receive touching it is skipped so the
        collective completes for the survivors (no hung waitall) —
        the crash then surfaces as :class:`RankDeadError` at the next
        residual reduction, which is the recovery ladder's guaranteed
        detection point.
        """
        nfields = len(fields_by_rank[0]) if fields_by_rank else 0
        with self.tracer.span("exchange", l=level, nfields=nfields):
            self._exchange(level, fields_by_rank)

    def begin(
        self, level: int, fields_by_rank: Sequence[Sequence[BrickedArray]]
    ) -> tuple[int, Sequence[Sequence[BrickedArray]]]:
        """Split-phase entry: post every rank's Isends and return.

        Validation, crash polling and the send loop are byte-for-byte
        the synchronous :meth:`exchange`'s first phase, so envelope
        sequencing, checksums and fault injection see an identical
        stream; the receives, boundary fills and exchange accounting
        are deferred to :meth:`finish`.  The caller runs interior
        compute between the two calls.  Returns the pending token that
        :meth:`finish` consumes.
        """
        with self.tracer.span(
            "exchange.begin",
            l=level,
            nfields=len(fields_by_rank[0]) if fields_by_rank else 0,
        ):
            self._validate(level, fields_by_rank)
            self.poll_crashes(level)
            self._post_sends(level, fields_by_rank)
        return (level, fields_by_rank)

    def finish(
        self, pending: tuple[int, Sequence[Sequence[BrickedArray]]]
    ) -> None:
        """Split-phase completion: receives, boundary fills, accounting.

        Polls level-pinned crashes again (a spec that fired at
        :meth:`begin` is already consumed, so this is a no-op re-poll —
        but it keeps the crash-detection contract at both ends of the
        in-flight window) and then completes the collective exactly as
        the synchronous path's receive/fill phases would.
        """
        level, fields_by_rank = pending
        with self.tracer.span(
            "exchange.finish",
            l=level,
            nfields=len(fields_by_rank[0]) if fields_by_rank else 0,
        ):
            self.poll_crashes(level)
            self._complete_receives(level, fields_by_rank)
            self._apply_fills(fields_by_rank)
        if self.recorder is not None:
            self.recorder.exchange(level)

    def _exchange(
        self, level: int, fields_by_rank: Sequence[Sequence[BrickedArray]]
    ) -> None:
        self._validate(level, fields_by_rank)
        self.poll_crashes(level)
        self._post_sends(level, fields_by_rank)
        self._complete_receives(level, fields_by_rank)
        self._apply_fills(fields_by_rank)
        if self.recorder is not None:
            self.recorder.exchange(level)

    def _validate(
        self, level: int, fields_by_rank: Sequence[Sequence[BrickedArray]]
    ) -> None:
        size = self.topology.size
        if len(fields_by_rank) != size:
            raise ValueError(
                f"need fields for all {size} ranks, got {len(fields_by_rank)}"
            )
        self._last_level = level
        nfields = len(fields_by_rank[0])
        if any(len(f) != nfields for f in fields_by_rank):
            raise ValueError("all ranks must exchange the same fields")
        for fields in fields_by_rank:
            for field in fields:
                if field.grid.shape_bricks != self.grid.shape_bricks or (
                    field.grid.brick_dim != self.grid.brick_dim
                ):
                    raise ValueError("field grid incompatible with exchanger grid")

    def _post_sends(
        self, level: int, fields_by_rank: Sequence[Sequence[BrickedArray]]
    ) -> None:
        size = self.topology.size
        nfields = len(fields_by_rank[0])
        # Phase 1: every rank posts one aggregated send per direction.
        for rank in range(size):
            if self._is_dead(rank):
                continue  # a dead endpoint posts nothing
            fields = fields_by_rank[rank]
            for d in NEIGHBOR_DIRECTIONS:
                dst = self.topology.neighbor(rank, d)
                if dst is None:
                    continue  # domain boundary: nothing to send
                if self._is_dead(dst):
                    continue  # no endpoint to deliver to
                payload = np.stack(
                    [f.data[self._send_slots[d]] for f in fields]
                )
                tag = direction_index(d)
                checksum = action = None
                if self.injector is not None:
                    checksum = payload_checksum(payload)
                    action = self.injector.message_action(
                        level, self._gr(rank), self._gr(dst), tag, d,
                        payload.nbytes,
                    )
                self.comm.isend(
                    rank, dst, tag, payload, checksum=checksum, fault=action,
                    level=level,
                )
                if self.recorder is not None:
                    self.recorder.message(
                        level,
                        payload.nbytes,
                        direction_kind(d),
                        segments=self._send_segments[d] * nfields,
                        self_message=(dst == rank),
                    )

    def _complete_receives(
        self, level: int, fields_by_rank: Sequence[Sequence[BrickedArray]]
    ) -> None:
        size = self.topology.size
        nfields = len(fields_by_rank[0])
        # Phase 2: every rank completes its 26 receives.  Data arriving
        # from the neighbour along d was sent with tag direction(d)
        # (the sender's direction towards us is -(-d) = d as the tag of
        # its send region towards direction d... the send loop tags by
        # the *sender's* direction, which from our neighbour at -d
        # pointing back to us is d's opposite); see the matching rule
        # in BrickGrid.send_region_slots.
        for rank in range(size):
            if self._is_dead(rank):
                continue  # a dead endpoint receives nothing
            fields = fields_by_rank[rank]
            for d in NEIGHBOR_DIRECTIONS:
                src = self.topology.neighbor(rank, d)
                if src is None:
                    continue  # filled by the boundary condition below
                if self._is_dead(src):
                    continue  # sender died: ghost stays stale until recovery
                # Our ghost region in direction d is the neighbour's
                # send region in direction -d, tagged with -d's index.
                tag = direction_index(tuple(-c for c in d))
                ghost = self._ghost_slots[d]
                expected = (nfields, len(ghost)) + (self.grid.brick_dim,) * 3
                payload = self._receive(level, rank, src, tag, d, expected)
                with self.tracer.child(self._gr(rank)).span(
                    "unpack", l=level, src=self._gr(src), dst=self._gr(rank),
                    tag=tag, bytes=int(payload.nbytes),
                ):
                    for f_idx, field in enumerate(fields):
                        field.data[ghost] = payload[f_idx]

    def _apply_fills(
        self, fields_by_rank: Sequence[Sequence[BrickedArray]]
    ) -> None:
        # Phase 3: boundary conditions synthesise the outward ghosts
        # (after all receives — corner mirrors read exchanged ghosts).
        if self._fills is None:
            return
        for rank in range(self.topology.size):
            if self._is_dead(rank):
                continue
            for field in fields_by_rank[rank]:
                self._fills[rank].apply(field)

    def _receive(
        self,
        level: int,
        rank: int,
        src: int,
        tag: int,
        d: tuple[int, int, int],
        expected_shape: tuple[int, ...],
    ) -> np.ndarray:
        """One ghost-region receive, fault-tolerant when an injector is set."""
        return self._receive_payload(
            level, rank, src, tag, expected_shape, direction=d,
            context=(
                f"rank {self._gr(rank)}'s ghost region along direction "
                f"{d} at level {level}"
            ),
            what="ghost region",
        )
