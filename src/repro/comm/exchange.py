"""Ghost-brick exchange: the V-cycle's ``exchange()`` operation.

Each rank sends, for every one of its 26 neighbour directions, the
interior bricks the neighbour's ghost shell needs, and receives the
matching region into its own ghost bricks.  Because the ghost shell is
a full brick deep, one exchange validates ``brick_dim`` cells of halo —
the basis of communication-avoiding smoothing.

Two cost-relevant properties are recorded per message:

* *aggregation*: multiple fields (``x`` and ``b``) destined for the
  same neighbour travel in one message (Section V's "message
  aggregation across multiple smoothing operations");
* *segments*: the number of contiguous storage ranges the payload
  occupies under the grid's ordering — 1 means pack-free/unpack-free,
  which the surface-major ordering guarantees for every receive.

:class:`LocalPeriodicExchange` provides the single-rank equivalent
(periodic wrap) with the same interface so the V-cycle driver is
decomposition-agnostic.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bricks.brick_grid import (
    NEIGHBOR_DIRECTIONS,
    BrickGrid,
    direction_index,
    direction_kind,
)
from repro.bricks.bricked_array import BrickedArray
from repro.bricks.orderings import contiguous_segments
from repro.comm.simmpi import SimComm
from repro.comm.topology import CartTopology
from repro.instrument import Recorder


class LocalPeriodicExchange:
    """Single-rank 'exchange': periodic wrap within the one subdomain.

    Records the same message events a real 26-neighbour exchange would
    (marked ``self_message``) so operation-count validation works
    uniformly.  With a non-periodic ``boundary``, ghost bricks are
    synthesised by the boundary condition instead (no messages at all —
    a single rank owns the whole domain).
    """

    def __init__(
        self,
        grid: BrickGrid,
        recorder: Recorder | None = None,
        boundary=None,
    ) -> None:
        from repro.gmg.boundary import BoundaryCondition, BoundaryFill

        self.grid = grid
        self.recorder = recorder
        self.boundary = boundary or BoundaryCondition.PERIODIC
        self._fill = None
        if self.boundary is not BoundaryCondition.PERIODIC:
            self._fill = BoundaryFill(
                grid, ((True, True),) * 3, self.boundary
            )

    def exchange(
        self, level: int, fields_by_rank: Sequence[Sequence[BrickedArray]]
    ) -> None:
        """Fill ghost shells; ``fields_by_rank`` is ``[[fields of rank 0]]``."""
        if len(fields_by_rank) != 1:
            raise ValueError("LocalPeriodicExchange serves exactly one rank")
        for field in fields_by_rank[0]:
            if field.grid is not self.grid:
                raise ValueError("field grid does not match the exchanger's grid")
            if self._fill is None:
                field.fill_ghost_periodic()
            else:
                field.zero_ghost()
                self._fill.apply(field)
        if self._fill is not None:
            if self.recorder is not None:
                self.recorder.exchange(level)
            return
        if self.recorder is not None:
            self.recorder.exchange(level)
            nfields = len(fields_by_rank[0])
            itemsize = fields_by_rank[0][0].data.dtype.itemsize
            for d in NEIGHBOR_DIRECTIONS:
                nbytes = self.grid.region_num_bytes(d, itemsize) * nfields
                self.recorder.message(
                    level,
                    nbytes,
                    direction_kind(d),
                    segments=1,
                    self_message=True,
                )


class HaloExchange:
    """Collective 26-neighbour ghost-brick exchange over ``SimComm``.

    The driver runs ranks in lockstep: all sends for all ranks are
    posted first, then all receives complete (``Isend``/``Irecv``/
    ``Waitall`` order within one phase).  Fields are aggregated per
    neighbour into a single message.
    """

    def __init__(
        self,
        grid: BrickGrid,
        topology: CartTopology,
        comm: SimComm,
        recorder: Recorder | None = None,
        boundary=None,
    ) -> None:
        from repro.gmg.boundary import BoundaryCondition, BoundaryFill

        if topology.size != comm.size:
            raise ValueError(
                f"topology has {topology.size} ranks but comm has {comm.size}"
            )
        self.grid = grid
        self.topology = topology
        self.comm = comm
        self.recorder = recorder
        self.boundary = boundary or BoundaryCondition.PERIODIC
        if topology.periodic != (self.boundary is BoundaryCondition.PERIODIC):
            raise ValueError(
                "topology periodicity must match the boundary condition"
            )
        self._fills = None
        if self.boundary is not BoundaryCondition.PERIODIC:
            self._fills = [
                BoundaryFill(grid, topology.boundary_sides(rank), self.boundary)
                for rank in range(topology.size)
            ]
        # Precompute per-direction slot sets and segment counts once.
        self._send_slots = {
            d: grid.send_region_slots(d) for d in NEIGHBOR_DIRECTIONS
        }
        self._ghost_slots = {
            d: grid.ghost_region_slots(d) for d in NEIGHBOR_DIRECTIONS
        }
        self._send_segments = {
            d: len(contiguous_segments(s)) for d, s in self._send_slots.items()
        }
        self._recv_segments = {
            d: len(contiguous_segments(s)) for d, s in self._ghost_slots.items()
        }

    @property
    def recv_is_unpack_free(self) -> bool:
        """True when every receive lands in one contiguous segment."""
        return all(n == 1 for n in self._recv_segments.values())

    def exchange(
        self, level: int, fields_by_rank: Sequence[Sequence[BrickedArray]]
    ) -> None:
        """Exchange ghost bricks for every rank's listed fields.

        ``fields_by_rank[rank]`` is the (ordered) list of fields to
        aggregate; all ranks must pass the same number of fields.
        """
        size = self.topology.size
        if len(fields_by_rank) != size:
            raise ValueError(
                f"need fields for all {size} ranks, got {len(fields_by_rank)}"
            )
        nfields = len(fields_by_rank[0])
        if any(len(f) != nfields for f in fields_by_rank):
            raise ValueError("all ranks must exchange the same fields")
        for fields in fields_by_rank:
            for field in fields:
                if field.grid.shape_bricks != self.grid.shape_bricks or (
                    field.grid.brick_dim != self.grid.brick_dim
                ):
                    raise ValueError("field grid incompatible with exchanger grid")

        # Phase 1: every rank posts one aggregated send per direction.
        for rank in range(size):
            fields = fields_by_rank[rank]
            for d in NEIGHBOR_DIRECTIONS:
                dst = self.topology.neighbor(rank, d)
                if dst is None:
                    continue  # domain boundary: nothing to send
                payload = np.stack(
                    [f.data[self._send_slots[d]] for f in fields]
                )
                tag = direction_index(d)
                self.comm.isend(rank, dst, tag, payload)
                if self.recorder is not None:
                    self.recorder.message(
                        level,
                        payload.nbytes,
                        direction_kind(d),
                        segments=self._send_segments[d] * nfields,
                        self_message=(dst == rank),
                    )

        # Phase 2: every rank completes its 26 receives.  Data arriving
        # from the neighbour along d was sent with tag direction(d)
        # (the sender's direction towards us is -(-d) = d as the tag of
        # its send region towards direction d... the send loop tags by
        # the *sender's* direction, which from our neighbour at -d
        # pointing back to us is d's opposite); see the matching rule
        # in BrickGrid.send_region_slots.
        for rank in range(size):
            fields = fields_by_rank[rank]
            for d in NEIGHBOR_DIRECTIONS:
                src = self.topology.neighbor(rank, d)
                if src is None:
                    continue  # filled by the boundary condition below
                # Our ghost region in direction d is the neighbour's
                # send region in direction -d, tagged with -d's index.
                tag = direction_index(tuple(-c for c in d))
                payload = self.comm.irecv(rank, src, tag).wait()
                ghost = self._ghost_slots[d]
                expected = (nfields, len(ghost)) + (self.grid.brick_dim,) * 3
                if payload.shape != expected:
                    raise RuntimeError(
                        f"ghost region shape mismatch: got {payload.shape}, "
                        f"expected {expected}"
                    )
                for f_idx, field in enumerate(fields):
                    field.data[ghost] = payload[f_idx]

        # Phase 3: boundary conditions synthesise the outward ghosts
        # (after all receives — corner mirrors read exchanged ghosts).
        if self._fills is not None:
            for rank in range(size):
                for field in fields_by_rank[rank]:
                    self._fills[rank].apply(field)

        if self.recorder is not None:
            self.recorder.exchange(level)
