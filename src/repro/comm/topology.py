"""Periodic 3-D Cartesian rank topology with 26-neighbour connectivity.

Ranks are laid out in a ``(p0, p1, p2)`` grid in row-major order, the
same decomposition the paper uses for its cubic domains.  Every rank
has exactly 26 neighbours (faces, edges, corners) under periodic
boundary conditions; on small rank grids several of those neighbours
may coincide (including with the rank itself), exactly as with
``MPI_Cart_create`` and periodic wrap.
"""

from __future__ import annotations

import numpy as np

from repro.bricks.brick_grid import NEIGHBOR_DIRECTIONS, direction_kind


class CartTopology:
    """A periodic Cartesian process grid.

    Parameters
    ----------
    dims:
        Ranks per dimension, e.g. ``(2, 2, 2)`` for 8 ranks.
    ranks_per_node:
        How many consecutive ranks share a node (4 on Perlmutter, 8 on
        Frontier, 12 on Sunspot).  Used to classify messages as intra-
        vs inter-node for the network model.
    """

    def __init__(
        self,
        dims: tuple[int, int, int],
        ranks_per_node: int = 1,
        periodic: bool = True,
    ) -> None:
        dims = tuple(int(d) for d in dims)
        if len(dims) != 3 or any(d < 1 for d in dims):
            raise ValueError(f"dims must be three positive integers: {dims}")
        if ranks_per_node < 1:
            raise ValueError(f"ranks_per_node must be positive: {ranks_per_node}")
        self.dims = dims
        self.size = dims[0] * dims[1] * dims[2]
        self.ranks_per_node = int(ranks_per_node)
        self.periodic = bool(periodic)

    @property
    def num_nodes(self) -> int:
        """Number of nodes (last node may be partially filled)."""
        return -(-self.size // self.ranks_per_node)

    def coords_of(self, rank: int) -> tuple[int, int, int]:
        """Cartesian coordinates of ``rank`` (row-major layout)."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for size {self.size}")
        p0, p1, p2 = self.dims
        return (rank // (p1 * p2), (rank // p2) % p1, rank % p2)

    def rank_of(self, coords: tuple[int, int, int]) -> int:
        """Rank at (periodically wrapped) Cartesian coordinates."""
        p = self.dims
        c = tuple(int(coords[d]) % p[d] for d in range(3))
        return (c[0] * p[1] + c[1]) * p[2] + c[2]

    def neighbor(self, rank: int, d: tuple[int, int, int]) -> int | None:
        """The rank one step along direction ``d``.

        Periodic topologies wrap; non-periodic topologies return
        ``None`` when the step would leave the domain (boundary
        conditions fill those ghost regions instead).
        """
        c = self.coords_of(rank)
        target = (c[0] + d[0], c[1] + d[1], c[2] + d[2])
        if not self.periodic:
            if any(not 0 <= t < p for t, p in zip(target, self.dims)):
                return None
        return self.rank_of(target)

    def neighbors(self, rank: int) -> dict[tuple[int, int, int], int | None]:
        """All 26 neighbours of ``rank`` keyed by direction."""
        return {d: self.neighbor(rank, d) for d in NEIGHBOR_DIRECTIONS}

    def boundary_sides(self, rank: int) -> tuple[tuple[bool, bool], ...]:
        """Per-axis (low, high) flags: does this rank touch the domain
        boundary on that side?  All False for periodic topologies."""
        if self.periodic:
            return ((False, False),) * 3
        c = self.coords_of(rank)
        return tuple(
            (c[d] == 0, c[d] == self.dims[d] - 1) for d in range(3)
        )

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank`` (consecutive-rank placement)."""
        return rank // self.ranks_per_node

    def is_intra_node(self, a: int, b: int) -> bool:
        """Whether ranks ``a`` and ``b`` share a node."""
        return self.node_of(a) == self.node_of(b)

    def buddy_rank(self, rank: int) -> int:
        """Checkpoint partner for ``rank``: the nearest off-node rank.

        Buddy checkpointing replicates a rank's state on a partner so a
        crash can be repaired from the replica; a partner on the same
        node would share the failure domain (a node loss takes both
        copies), so the scan prefers the first rank on a different
        node, falling back to the next rank on-node only when the whole
        communicator is one node.  The mapping is a pure function of
        the topology, so every rank derives the same pairing without
        communication.
        """
        if self.size == 1:
            raise ValueError(
                "buddy checkpointing needs at least 2 ranks — a single "
                "rank has no partner to hold its replica"
            )
        for step in range(1, self.size):
            cand = (rank + step) % self.size
            if not self.is_intra_node(rank, cand):
                return cand
        return (rank + 1) % self.size

    def remote_neighbor_fraction(self, rank: int) -> float:
        """Fraction of this rank's 26 neighbour links that leave the node.

        A link to a neighbour direction counts once even if periodic
        wrap makes several directions resolve to the same rank — this
        matches message counting, where one message is sent per
        direction regardless.
        """
        remote = sum(
            0 if nb is None or self.is_intra_node(rank, nb) else 1
            for nb in self.neighbors(rank).values()
        )
        return remote / 26.0

    def subdomain_origin(
        self, rank: int, cells_per_rank: tuple[int, int, int]
    ) -> tuple[int, int, int]:
        """Global cell coordinates of this rank's subdomain corner."""
        c = self.coords_of(rank)
        return tuple(c[d] * cells_per_rank[d] for d in range(3))

    @staticmethod
    def direction_kind(d: tuple[int, int, int]) -> str:
        """'face' / 'edge' / 'corner' classification of a direction."""
        return direction_kind(d)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CartTopology(dims={self.dims}, ranks_per_node={self.ranks_per_node})"


def factor_ranks(size: int) -> tuple[int, int, int]:
    """A near-cubic 3-D factorisation of ``size`` (largest dims first).

    Mirrors ``MPI_Dims_create``: repeatedly peel the smallest prime
    factor onto the currently smallest dimension.
    """
    if size < 1:
        raise ValueError(f"size must be positive: {size}")
    dims = np.ones(3, dtype=np.int64)
    remaining = size
    f = 2
    factors = []
    while remaining > 1:
        while remaining % f == 0:
            factors.append(f)
            remaining //= f
        f += 1 if f == 2 else 2
        if f * f > remaining and remaining > 1:
            factors.append(remaining)
            break
    for p in sorted(factors, reverse=True):
        dims[np.argmin(dims)] *= p
    return tuple(int(d) for d in sorted(dims, reverse=True))
