"""Single-process simulated MPI with non-blocking semantics.

The solver's exchange follows the paper's pattern — ``MPI_Isend`` /
``MPI_Irecv`` / ``MPI_Waitall`` with 26 neighbours — so the simulator
exposes the same shape: sends are posted (payload snapshotted, as a
correct MPI program may reuse its buffer after completion), receives
are posted against ``(source, tag)`` and completed by ``wait``.

The driver executes ranks in lockstep phases, so by the time any rank
waits on a receive, the matching send has been posted; an unmatched
wait is therefore a protocol bug and raises
:class:`UnmatchedReceiveError`.  Message payloads are real NumPy arrays
— distributed solves genuinely move data between rank subdomains.

Fault modelling (``repro.faults``): every message carries an in-band
header — a per-envelope sequence number and an optional sender-side
checksum — and ``isend`` accepts a
:class:`~repro.faults.injector.FaultAction` describing what the "wire"
does to this transmission: drop it, flip a bit (after the checksum is
computed, as real corruption would), duplicate it, or park it in a
delay queue until the receiver's retry timeout flushes it.  The pristine
payload of the last send per envelope is retained (the MPI send-buffer
analogue) so :meth:`SimComm.retransmit` can model a sender-side resend.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass

import numpy as np

from repro.obs.tracer import NULL_TRACER


class UnmatchedReceiveError(RuntimeError):
    """A receive waited on an envelope that was never sent.

    With no fault injection active this is always a protocol bug
    (mismatched send/receive bookkeeping), hence the 'deadlock' wording;
    the exchange layer re-raises it with direction and level context.
    """


class RankDeadError(RuntimeError):
    """An operation touched a crashed rank's endpoint.

    The simulator's analogue of ``MPI_ERR_PROC_FAILED``: after
    :meth:`SimComm.kill`, every send to, receive from, or collective
    including the dead rank raises this — so the failure surfaces to
    every peer that touches the victim, exactly as ULFM error handlers
    deliver it.  The recovery driver catches it, agrees on the dead set
    (:meth:`SimComm.agree_dead`) and repairs the communicator
    (:meth:`SimComm.repair`); it never escapes a resilient solve.
    """

    def __init__(self, rank: int, op: str = "") -> None:
        self.rank = int(rank)
        msg = f"rank {rank} is dead"
        if op:
            msg += f" ({op})"
        super().__init__(msg)


@dataclass
class _Message:
    """One in-flight transmission: payload plus resilience header."""

    payload: np.ndarray
    checksum: int | None
    seq: int


@dataclass
class SendRequest:
    """Completed-at-post send handle (buffered-send semantics)."""

    dst: int
    tag: int
    nbytes: int

    def wait(self) -> None:
        """Sends complete at post time in the simulator."""


class RecvRequest:
    """A posted receive; :meth:`wait` returns the payload."""

    def __init__(
        self, comm: "SimComm", dst: int, src: int, tag: int, level: int = -1
    ) -> None:
        self._comm = comm
        self._dst = dst
        self._src = src
        self._tag = tag
        self._level = level
        self._payload: np.ndarray | None = None
        self._done = False

    def wait(self) -> np.ndarray:
        """Complete the receive, returning the message payload."""
        if not self._done:
            self._payload = self._comm._match(
                self._dst, self._src, self._tag, level=self._level
            ).payload
            self._done = True
        assert self._payload is not None
        return self._payload


class SimComm:
    """Mailbox-based message passing among ``size`` simulated ranks.

    ``tracer`` is an optional :class:`~repro.obs.tracer.Tracer`: every
    send, receive completion and retransmission is mirrored as a span on
    the *per-rank child tracer* of the rank doing the work (the sender
    for ``isend``/``retransmit``, the receiver for matched receives),
    attributed with ``(src, dst, tag, bytes, seq)`` and the exchange
    level the caller threads through.  The default null tracer keeps the
    un-traced path allocation-free.
    """

    def __init__(self, size: int, tracer=None) -> None:
        if size < 1:
            raise ValueError(f"size must be positive: {size}")
        self.size = int(size)
        self.tracer = tracer or NULL_TRACER
        # (dst, src, tag) -> FIFO of messages, preserving MPI's
        # non-overtaking order for identical envelopes.
        self._mailboxes: dict[tuple[int, int, int], deque] = defaultdict(deque)
        # Faulted 'delay' transmissions parked until a retry flushes them.
        self._delayed: dict[tuple[int, int, int], deque] = defaultdict(deque)
        # Last pristine transmission per envelope (send-buffer analogue).
        self._send_log: dict[tuple[int, int, int], _Message] = {}
        self._send_seq: dict[tuple[int, int, int], int] = defaultdict(int)
        self.sent_messages = 0
        self.sent_bytes = 0
        self.retransmissions = 0
        self.bytes_by_pair: dict[tuple[int, int], int] = defaultdict(int)
        #: crashed endpoints; every operation touching one raises
        #: RankDeadError until repair() revives it
        self._dead: set[int] = set()
        self.repairs = 0

    def _check_rank(self, rank: int, what: str) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"{what} {rank} out of range for size {self.size}")

    # ------------------------------------------------------------------
    # rank failure (ULFM-style)
    # ------------------------------------------------------------------
    def kill(self, rank: int) -> None:
        """Crash a rank's endpoint.

        Every subsequent operation touching it — sends to it, receives
        or retransmission requests from it, collectives including it —
        raises :class:`RankDeadError` until :meth:`repair` revives it.
        """
        self._check_rank(rank, "crashed rank")
        self._dead.add(int(rank))

    def is_dead(self, rank: int) -> bool:
        return rank in self._dead

    def dead_ranks(self) -> tuple[int, ...]:
        return tuple(sorted(self._dead))

    def agree_dead(self) -> tuple[int, ...]:
        """Collective agreement on the dead set.

        The ``MPIX_Comm_agree`` analogue: in the lockstep simulation
        every survivor observes the same communicator state, so the
        agreed set is simply the sorted dead set.
        """
        return self.dead_ranks()

    def repair(self, revive=()) -> int:
        """ULFM-style communicator repair.

        Discards all in-flight traffic (the revoke), forgets send logs
        and per-envelope sequence numbering (the repaired communicator
        starts fresh — channel objects must reset their expectations to
        match), and revives the given endpoints (the respawn analogue:
        same decomposition slot, blank memory).  Returns the number of
        purged messages.
        """
        purged = self.reset_in_flight()
        self._send_log.clear()
        self._send_seq.clear()
        for rank in revive:
            self._dead.discard(int(rank))
        self.repairs += 1
        return purged

    def _check_alive(self, dst: int, src: int, op: str) -> None:
        if src in self._dead:
            raise RankDeadError(src, op=f"{op} from rank {src}")
        if dst in self._dead:
            raise RankDeadError(dst, op=f"{op} to rank {dst}")

    # ------------------------------------------------------------------
    # point to point
    # ------------------------------------------------------------------
    def isend(
        self,
        src: int,
        dst: int,
        tag: int,
        payload: np.ndarray,
        checksum: int | None = None,
        fault=None,
        level: int = -1,
    ) -> SendRequest:
        """Post a send; the payload is snapshotted at post time.

        ``checksum`` is carried in-band (computed by the sender over the
        pristine data).  ``fault`` is an optional
        :class:`~repro.faults.injector.FaultAction` the "wire" applies
        to this transmission.  ``level`` tags the traced span with the
        multigrid level the exchange serves.
        """
        self._check_rank(src, "source rank")
        self._check_rank(dst, "destination rank")
        self._check_alive(dst, src, "isend")
        key = (dst, src, tag)
        seq = self._send_seq[key]
        with self.tracer.child(src).span(
            "isend", l=level, src=src, dst=dst, tag=tag,
            bytes=int(payload.nbytes), seq=seq,
        ):
            data = np.ascontiguousarray(payload).copy()
            self._send_seq[key] = seq + 1
            msg = _Message(data, checksum, seq)
            self._send_log[key] = msg
            self.sent_messages += 1
            self.sent_bytes += data.nbytes
            self.bytes_by_pair[(src, dst)] += data.nbytes
            self._transmit(key, msg, fault)
        return SendRequest(dst=dst, tag=tag, nbytes=data.nbytes)

    def _transmit(self, key: tuple[int, int, int], msg: _Message, fault) -> None:
        """Put one transmission on the wire, applying any fault action."""
        if fault is None:
            self._mailboxes[key].append(msg)
            return
        if fault.kind == "drop":
            return  # vanishes on the wire
        if fault.kind == "corrupt":
            corrupted = msg.payload.copy()
            flat = corrupted.view(np.uint8).reshape(-1)
            flat[fault.corrupt_byte % flat.size] ^= np.uint8(
                1 << (fault.corrupt_bit % 8)
            )
            self._mailboxes[key].append(_Message(corrupted, msg.checksum, msg.seq))
            return
        if fault.kind == "duplicate":
            self._mailboxes[key].append(msg)
            self._mailboxes[key].append(_Message(msg.payload, msg.checksum, msg.seq))
            return
        if fault.kind == "delay":
            self._delayed[key].append(msg)
            return
        raise ValueError(f"unknown fault action {fault.kind!r}")

    def irecv(self, dst: int, src: int, tag: int, level: int = -1) -> RecvRequest:
        """Post a receive for ``(src, tag)`` at rank ``dst``."""
        self._check_rank(src, "source rank")
        self._check_rank(dst, "destination rank")
        return RecvRequest(self, dst, src, tag, level)

    def _record_recv(self, dst: int, src: int, tag: int, level: int,
                     msg: _Message) -> None:
        """Mirror one matched receive as a span on ``dst``'s timeline."""
        with self.tracer.child(dst).span(
            "irecv", l=level, src=src, dst=dst, tag=tag,
            bytes=int(msg.payload.nbytes), seq=msg.seq,
        ):
            pass

    def _match(self, dst: int, src: int, tag: int, level: int = -1) -> _Message:
        self._check_alive(dst, src, "receive")
        box = self._mailboxes.get((dst, src, tag))
        if not box:
            raise UnmatchedReceiveError(
                f"deadlock: rank {dst} waits on a message from rank {src} "
                f"tag {tag} that was never sent"
            )
        msg = box.popleft()
        self._record_recv(dst, src, tag, level, msg)
        return msg

    def try_match(
        self, dst: int, src: int, tag: int, level: int = -1
    ) -> _Message | None:
        """Pop the next message for an envelope, or ``None`` if empty.

        The resilient receive path in
        :class:`~repro.comm.exchange.HaloExchange` uses this instead of
        :meth:`irecv`'s raising wait so a missing message becomes a
        detected fault rather than an exception.  A dead peer still
        raises: no amount of retrying revives a crashed endpoint.
        """
        self._check_alive(dst, src, "receive")
        box = self._mailboxes.get((dst, src, tag))
        if not box:
            return None
        msg = box.popleft()
        self._record_recv(dst, src, tag, level, msg)
        return msg

    def release_delayed(self, dst: int, src: int, tag: int) -> int:
        """Flush parked 'delay' transmissions into the mailbox.

        Models the receiver's retry timeout expiring after which the
        late message finally lands; returns how many were released.
        """
        key = (dst, src, tag)
        parked = self._delayed.get(key)
        if not parked:
            return 0
        n = len(parked)
        self._mailboxes[key].extend(parked)
        parked.clear()
        return n

    def retransmit(
        self, dst: int, src: int, tag: int, fault=None, level: int = -1
    ) -> int:
        """Resend the last transmission of an envelope from the send log.

        Models a sender-side resend out of the retained send buffer
        (same sequence number and checksum, pristine payload — the
        original fault is not baked in, though ``fault`` may strike the
        retransmission too).  Returns the payload size in bytes; raises
        :class:`UnmatchedReceiveError` when nothing was ever sent on the
        envelope, which is a protocol bug rather than a fault.
        """
        self._check_alive(dst, src, "retransmit")
        key = (dst, src, tag)
        logged = self._send_log.get(key)
        if logged is None:
            raise UnmatchedReceiveError(
                f"deadlock: rank {dst} requested retransmission from rank "
                f"{src} tag {tag} but nothing was ever sent on that envelope"
            )
        with self.tracer.child(src).span(
            "retransmit", l=level, src=src, dst=dst, tag=tag,
            bytes=int(logged.payload.nbytes), seq=logged.seq,
        ):
            msg = _Message(logged.payload, logged.checksum, logged.seq)
            self.sent_messages += 1
            self.retransmissions += 1
            self.sent_bytes += msg.payload.nbytes
            self.bytes_by_pair[(src, dst)] += msg.payload.nbytes
            self._transmit(key, msg, fault)
        return int(msg.payload.nbytes)

    def logged_nbytes(self, dst: int, src: int, tag: int) -> int:
        """Payload size of the last transmission on an envelope (0 if none)."""
        logged = self._send_log.get((dst, src, tag))
        return 0 if logged is None else int(logged.payload.nbytes)

    def discard_stale(self, dst: int, src: int, tag: int, below_seq: int) -> int:
        """Drop leading mailbox messages with ``seq < below_seq``.

        Used by the exchange layer to clear already-consumed duplicates
        (recognised by their stale sequence numbers) before the
        end-of-solve drain check.
        """
        box = self._mailboxes.get((dst, src, tag))
        n = 0
        while box and box[0].seq < below_seq:
            box.popleft()
            n += 1
        return n

    def waitall(self, requests: list) -> list:
        """Complete a batch of requests, returning receive payloads.

        Traced as one ``waitall`` span on the root timeline; each
        completed receive still lands as an ``irecv`` span on its
        destination rank's child timeline.
        """
        with self.tracer.span("waitall", n=len(requests)):
            return [req.wait() for req in requests]

    # ------------------------------------------------------------------
    # collectives (lockstep driver supplies all ranks' values at once)
    # ------------------------------------------------------------------
    def allreduce_max(self, values: list[float]) -> float:
        """MAX all-reduce over one contribution per rank.

        NaN-propagating (``np.max``): a poisoned local residual must
        surface globally for the solver's health checks, exactly as an
        ``MPI_MAX`` over a NaN does on real systems.  Raises
        :class:`RankDeadError` when any rank is dead — the collective is
        the guaranteed detection point for a crash, like ULFM's
        ``MPI_ERR_PROC_FAILED`` from a collective.
        """
        if self._dead:
            raise RankDeadError(
                min(self._dead), op="allreduce over a communicator with dead ranks"
            )
        if len(values) != self.size:
            raise ValueError(
                f"allreduce needs one value per rank: got {len(values)}, "
                f"size {self.size}"
            )
        return float(np.max(values))

    def allreduce_sum(self, values: list[float]) -> float:
        """SUM all-reduce over one contribution per rank."""
        if self._dead:
            raise RankDeadError(
                min(self._dead), op="allreduce over a communicator with dead ranks"
            )
        if len(values) != self.size:
            raise ValueError(
                f"allreduce needs one value per rank: got {len(values)}, "
                f"size {self.size}"
            )
        return float(sum(values))

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def in_flight(self) -> dict[tuple[int, int, int], int]:
        """``{(dst, src, tag): pending message count}``, delayed included."""
        out: dict[tuple[int, int, int], int] = {}
        for key, box in self._mailboxes.items():
            if box:
                out[key] = len(box)
        for key, parked in self._delayed.items():
            if parked:
                out[key] = out.get(key, 0) + len(parked)
        return out

    def reset_in_flight(self) -> int:
        """Discard every undelivered message (mailboxes and delay queues).

        The recovery path calls this after an unrecoverable exchange
        fault before rolling back — the analogue of revoking and
        re-creating a communicator so stale traffic from the aborted
        cycle cannot be mistaken for fresh data.  Returns the number of
        messages discarded.
        """
        n = sum(len(b) for b in self._mailboxes.values())
        n += sum(len(p) for p in self._delayed.values())
        self._mailboxes.clear()
        self._delayed.clear()
        return n

    def assert_drained(self) -> None:
        """Raise if any posted message was never received.

        Called at the end of a solve: leftover messages mean mismatched
        send/receive bookkeeping even though results looked right.  The
        error names every leaking mailbox by destination, source, and
        tag so the offending envelope is identifiable.
        """
        leftovers = self.in_flight()
        if leftovers:
            detail = "; ".join(
                f"dst={dst} src={src} tag={tag}: {n} pending"
                for (dst, src, tag), n in sorted(leftovers.items())
            )
            raise RuntimeError(
                f"undelivered messages remain in {len(leftovers)} "
                f"mailbox(es): {detail}"
            )


class SubComm:
    """A communicator view over a subset of a parent :class:`SimComm`.

    The distributed-MPI analogue is ``MPI_Comm_split``: agglomerated
    coarse levels run their halo exchanges over the *active* ranks only,
    so the exchange layer needs a communicator whose local ranks
    ``0..n-1`` map onto the chosen global ranks.  All traffic physically
    moves through the parent — ``sent_messages``, ``bytes_by_pair`` and
    the per-rank trace spans keep global rank ids, so communication
    accounting stays truthful on agglomerated levels.

    Tags are shifted by ``tag_offset`` into a band reserved for this
    sub-communicator, mirroring MPI's guarantee that messages never
    cross communicators: the active exchange's direction tags ``0..26``
    must not share envelopes (and hence FIFO order and sequence
    numbering) with the full-grid exchanges between the same rank pair.
    """

    def __init__(
        self, parent: SimComm, global_ranks, tag_offset: int
    ) -> None:
        ranks = tuple(int(r) for r in global_ranks)
        if not ranks:
            raise ValueError("SubComm needs at least one rank")
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"duplicate ranks in SubComm: {ranks}")
        for r in ranks:
            parent._check_rank(r, "SubComm rank")
        if tag_offset < 0:
            raise ValueError(f"tag_offset must be non-negative: {tag_offset}")
        self.parent = parent
        self.global_ranks = ranks
        self.size = len(ranks)
        self.tag_offset = int(tag_offset)

    def global_rank(self, local: int) -> int:
        """Global id of communicator-local rank ``local``."""
        if not 0 <= local < self.size:
            raise ValueError(
                f"local rank {local} out of range for SubComm size {self.size}"
            )
        return self.global_ranks[local]

    # -- point to point, local ranks in / parent envelopes out ----------
    def isend(self, src, dst, tag, payload, checksum=None, fault=None,
              level=-1):
        return self.parent.isend(
            self.global_rank(src), self.global_rank(dst),
            tag + self.tag_offset, payload, checksum=checksum, fault=fault,
            level=level,
        )

    def irecv(self, dst, src, tag, level=-1):
        return self.parent.irecv(
            self.global_rank(dst), self.global_rank(src),
            tag + self.tag_offset, level=level,
        )

    def try_match(self, dst, src, tag, level=-1):
        return self.parent.try_match(
            self.global_rank(dst), self.global_rank(src),
            tag + self.tag_offset, level=level,
        )

    def release_delayed(self, dst, src, tag):
        return self.parent.release_delayed(
            self.global_rank(dst), self.global_rank(src),
            tag + self.tag_offset,
        )

    def retransmit(self, dst, src, tag, fault=None, level=-1):
        return self.parent.retransmit(
            self.global_rank(dst), self.global_rank(src),
            tag + self.tag_offset, fault=fault, level=level,
        )

    def logged_nbytes(self, dst, src, tag):
        return self.parent.logged_nbytes(
            self.global_rank(dst), self.global_rank(src),
            tag + self.tag_offset,
        )

    def discard_stale(self, dst, src, tag, below_seq):
        return self.parent.discard_stale(
            self.global_rank(dst), self.global_rank(src),
            tag + self.tag_offset, below_seq,
        )

    # -- rank-failure view ----------------------------------------------
    def is_dead(self, local: int) -> bool:
        """Is communicator-local rank ``local`` dead in the parent?"""
        return self.parent.is_dead(self.global_rank(local))

    def dead_ranks(self) -> tuple[int, ...]:
        """Global ids of this view's members that are dead."""
        return tuple(r for r in self.global_ranks if self.parent.is_dead(r))

    # -- collectives over the active ranks ------------------------------
    def _check_members_alive(self) -> None:
        dead = self.dead_ranks()
        if dead:
            raise RankDeadError(
                dead[0], op="allreduce over a SubComm with dead ranks"
            )

    def allreduce_max(self, values) -> float:
        self._check_members_alive()
        if len(values) != self.size:
            raise ValueError(
                f"allreduce needs one value per active rank: got "
                f"{len(values)}, size {self.size}"
            )
        return float(np.max(values))

    def allreduce_sum(self, values) -> float:
        self._check_members_alive()
        if len(values) != self.size:
            raise ValueError(
                f"allreduce needs one value per active rank: got "
                f"{len(values)}, size {self.size}"
            )
        return float(np.sum(values))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SubComm(size={self.size}, ranks={self.global_ranks}, "
            f"tag_offset={self.tag_offset})"
        )
