"""Single-process simulated MPI with non-blocking semantics.

The solver's exchange follows the paper's pattern — ``MPI_Isend`` /
``MPI_Irecv`` / ``MPI_Waitall`` with 26 neighbours — so the simulator
exposes the same shape: sends are posted (payload snapshotted, as a
correct MPI program may reuse its buffer after completion), receives
are posted against ``(source, tag)`` and completed by ``wait``.

The driver executes ranks in lockstep phases, so by the time any rank
waits on a receive, the matching send has been posted; an unmatched
wait is therefore a protocol bug and raises.  Message payloads are real
NumPy arrays — distributed solves genuinely move data between rank
subdomains.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass

import numpy as np


@dataclass
class SendRequest:
    """Completed-at-post send handle (buffered-send semantics)."""

    dst: int
    tag: int
    nbytes: int

    def wait(self) -> None:
        """Sends complete at post time in the simulator."""


class RecvRequest:
    """A posted receive; :meth:`wait` returns the payload."""

    def __init__(self, comm: "SimComm", dst: int, src: int, tag: int) -> None:
        self._comm = comm
        self._dst = dst
        self._src = src
        self._tag = tag
        self._payload: np.ndarray | None = None
        self._done = False

    def wait(self) -> np.ndarray:
        """Complete the receive, returning the message payload."""
        if not self._done:
            self._payload = self._comm._match(self._dst, self._src, self._tag)
            self._done = True
        assert self._payload is not None
        return self._payload


class SimComm:
    """Mailbox-based message passing among ``size`` simulated ranks."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"size must be positive: {size}")
        self.size = int(size)
        # (dst, src, tag) -> FIFO of payloads, preserving MPI's
        # non-overtaking order for identical envelopes.
        self._mailboxes: dict[tuple[int, int, int], deque] = defaultdict(deque)
        self.sent_messages = 0
        self.sent_bytes = 0
        self.bytes_by_pair: dict[tuple[int, int], int] = defaultdict(int)

    def _check_rank(self, rank: int, what: str) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"{what} {rank} out of range for size {self.size}")

    # ------------------------------------------------------------------
    # point to point
    # ------------------------------------------------------------------
    def isend(self, src: int, dst: int, tag: int, payload: np.ndarray) -> SendRequest:
        """Post a send; the payload is snapshotted at post time."""
        self._check_rank(src, "source rank")
        self._check_rank(dst, "destination rank")
        data = np.ascontiguousarray(payload).copy()
        self._mailboxes[(dst, src, tag)].append(data)
        self.sent_messages += 1
        self.sent_bytes += data.nbytes
        self.bytes_by_pair[(src, dst)] += data.nbytes
        return SendRequest(dst=dst, tag=tag, nbytes=data.nbytes)

    def irecv(self, dst: int, src: int, tag: int) -> RecvRequest:
        """Post a receive for ``(src, tag)`` at rank ``dst``."""
        self._check_rank(src, "source rank")
        self._check_rank(dst, "destination rank")
        return RecvRequest(self, dst, src, tag)

    def _match(self, dst: int, src: int, tag: int) -> np.ndarray:
        box = self._mailboxes.get((dst, src, tag))
        if not box:
            raise RuntimeError(
                f"deadlock: rank {dst} waits on a message from rank {src} "
                f"tag {tag} that was never sent"
            )
        return box.popleft()

    def waitall(self, requests: list) -> list:
        """Complete a batch of requests, returning receive payloads."""
        return [req.wait() for req in requests]

    # ------------------------------------------------------------------
    # collectives (lockstep driver supplies all ranks' values at once)
    # ------------------------------------------------------------------
    def allreduce_max(self, values: list[float]) -> float:
        """MAX all-reduce over one contribution per rank."""
        if len(values) != self.size:
            raise ValueError(
                f"allreduce needs one value per rank: got {len(values)}, "
                f"size {self.size}"
            )
        return float(max(values))

    def allreduce_sum(self, values: list[float]) -> float:
        """SUM all-reduce over one contribution per rank."""
        if len(values) != self.size:
            raise ValueError(
                f"allreduce needs one value per rank: got {len(values)}, "
                f"size {self.size}"
            )
        return float(sum(values))

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def assert_drained(self) -> None:
        """Raise if any posted message was never received.

        Called at the end of a solve: leftover messages mean mismatched
        send/receive bookkeeping even though results looked right.
        """
        leftovers = {k: len(v) for k, v in self._mailboxes.items() if v}
        if leftovers:
            raise RuntimeError(f"undelivered messages remain: {leftovers}")
