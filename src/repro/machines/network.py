"""Network timing model for the Slingshot-11 exchange.

Section VI-A fits the exchange to the same linear model as kernels:
``f(x) = x / (alpha + x/beta)`` with ``x`` the total message size —
i.e. exchange time ``t = alpha + x/beta``.  This module produces those
times from first principles per message and per rank, accounting for:

* per-message software/NIC overhead, reduced by hardware message
  matching (Frontier's ``FI_CXI_RX_MATCH_MODE=hardware``) and shaped by
  eager-vs-rendezvous selection (Table I variables);
* GPU-aware vs host-staged paths: without GPU-aware MPI (Sunspot) each
  message crosses the CPU-GPU link twice (D2H before send, H2D after
  receive), which both caps effective bandwidth — bringing Sunspot's
  ~14 GB/s fabric down to the ~7 GB/s the paper measures — and adds
  staging-launch latency;
* intra- vs inter-node messages (on-node fabric vs NIC), with the two
  progressing concurrently within an exchange;
* per-rank NIC bandwidth share when ranks outnumber NICs (Frontier's
  8 GCDs over 4 NICs, Sunspot's 12 tiles over 8);
* a mild latency contention term growing with log2(node count), the
  empirical shared-fabric effect the paper notes ("typical shared
  network variability").
"""

from __future__ import annotations

import math

from repro.comm.protocols import (
    Protocol,
    matching_overhead_factor,
    select_protocol,
)
from repro.machines.specs import MachineSpec

#: Bandwidth haircut for eager messages (bounce-buffer copy).
_EAGER_BW_FACTOR = 0.6
#: Overhead factor for eager messages (no handshake round-trip).
_EAGER_ALPHA_FACTOR = 0.8
#: Host-staging kernel launches (D2H + H2D copies) per message.
_STAGING_LAUNCHES = 2


def scale_latency_factor(machine: MachineSpec, num_nodes: int) -> float:
    """Latency inflation from fabric sharing at ``num_nodes`` nodes."""
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be positive: {num_nodes}")
    return 1.0 + machine.network.contention_coeff * math.log2(max(num_nodes, 1))


def scale_bandwidth_factor(machine: MachineSpec, num_nodes: int) -> float:
    """Sustained-bandwidth degradation beyond the 8-node baseline.

    The Section VI experiments (8 nodes) calibrate the sustained rates,
    so contention is measured relative to that scale; larger jobs share
    more global links and lose bandwidth logarithmically.
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be positive: {num_nodes}")
    excess = math.log2(max(num_nodes / 8.0, 1.0))
    return 1.0 / (1.0 + machine.network.bw_contention_coeff * excess)


def nic_share(machine: MachineSpec, ranks_per_node: int | None = None) -> float:
    """Fraction of one NIC's bandwidth available to one rank."""
    rpn = ranks_per_node or machine.node.ranks_per_node
    return min(1.0, machine.node.nics_per_node / rpn)


def effective_inter_node_bandwidth(
    machine: MachineSpec, ranks_per_node: int | None = None
) -> float:
    """Sustained GB/s one rank can push through its NIC allocation."""
    bw = machine.network.fabric_sustained_gbs * nic_share(machine, ranks_per_node)
    if not machine.gpu_aware_mpi:
        # Host staging serialises the NIC stream with two PCIe copies.
        link = machine.node.cpu_gpu_link_gbs
        bw = 1.0 / (1.0 / bw + _STAGING_LAUNCHES / link)
    return bw


def message_overhead(machine: MachineSpec, nbytes: int, num_nodes: int = 1) -> float:
    """Per-message overhead (seconds) including protocol effects."""
    alpha = machine.network.per_message_overhead_s
    alpha *= matching_overhead_factor(machine.cxi)
    if select_protocol(nbytes, machine.cxi) is Protocol.EAGER:
        alpha *= _EAGER_ALPHA_FACTOR
    return alpha * scale_latency_factor(machine, num_nodes)


def staging_overhead(machine: MachineSpec) -> float:
    """Per-exchange launch cost of host staging (D2H + H2D copies).

    Without GPU-aware MPI the exchange buffers are copied to and from
    the host once per exchange phase (the copies are batched across the
    26 messages); the byte cost of those copies is already folded into
    :func:`effective_inter_node_bandwidth`.
    """
    if machine.gpu_aware_mpi:
        return 0.0
    return _STAGING_LAUNCHES * machine.gpu.kernel_launch_latency_s


def message_time(
    machine: MachineSpec,
    nbytes: int,
    intra_node: bool = False,
    num_nodes: int = 1,
    ranks_per_node: int | None = None,
) -> float:
    """Seconds for one point-to-point message of ``nbytes``."""
    if nbytes < 0:
        raise ValueError(f"message size must be non-negative: {nbytes}")
    if intra_node:
        t = machine.node.intra_node_latency_s
        if not machine.gpu_aware_mpi:
            t += nbytes / (machine.node.cpu_gpu_link_gbs * 1e9)
        return t + nbytes / (machine.node.intra_node_link_gbs * 1e9)
    bw = effective_inter_node_bandwidth(machine, ranks_per_node)
    bw *= scale_bandwidth_factor(machine, num_nodes)
    if select_protocol(nbytes, machine.cxi) is Protocol.EAGER:
        bw *= _EAGER_BW_FACTOR
    return message_overhead(machine, nbytes, num_nodes) + nbytes / (bw * 1e9)


def exchange_time(
    machine: MachineSpec,
    message_sizes_remote: list[int],
    message_sizes_local: list[int] = (),
    num_nodes: int = 1,
    ranks_per_node: int | None = None,
) -> float:
    """One rank's ``exchange()`` time for its posted messages.

    Remote messages serialise through the rank's NIC allocation (their
    times sum); intra-node messages ride the on-node fabric
    concurrently with the NIC stream, so the exchange completes at the
    slower of the two.
    """
    t_remote = sum(
        message_time(machine, n, False, num_nodes, ranks_per_node)
        for n in message_sizes_remote
    )
    t_local = sum(
        message_time(machine, n, True, num_nodes, ranks_per_node)
        for n in message_sizes_local
    )
    t = max(t_remote, t_local)
    if message_sizes_remote or message_sizes_local:
        t += staging_overhead(machine)
    return t


#: Detection timeout before the first retransmission, as a multiple of
#: the per-message overhead (the receiver must out-wait normal jitter
#: before declaring a message lost).
RETRY_TIMEOUT_MULTIPLE = 20.0


def retransmit_time(
    machine: MachineSpec,
    nbytes: int,
    attempt: int = 1,
    num_nodes: int = 1,
    ranks_per_node: int | None = None,
) -> float:
    """Seconds one retry of a lost/corrupt message costs (timeout + resend).

    The detection timeout doubles per attempt (exponential backoff on
    the receiver's retry timer); the resend itself is an ordinary
    point-to-point message.  This is how the resilience layer's retries
    are priced in the same units as the paper's exchange model.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be positive: {attempt}")
    timeout = (
        RETRY_TIMEOUT_MULTIPLE
        * message_overhead(machine, nbytes, num_nodes)
        * 2.0 ** (attempt - 1)
    )
    return timeout + message_time(machine, nbytes, False, num_nodes, ranks_per_node)


def allreduce_time(machine: MachineSpec, num_ranks: int, num_nodes: int = 1) -> float:
    """A MAX all-reduce of one double (Algorithm 1's convergence check).

    Modelled as a binomial tree of small messages: depth log2(P), one
    8-byte message per hop.
    """
    if num_ranks < 1:
        raise ValueError(f"num_ranks must be positive: {num_ranks}")
    if num_ranks == 1:
        return 0.0
    depth = math.ceil(math.log2(num_ranks))
    hop = message_time(machine, 8, intra_node=False, num_nodes=num_nodes)
    # allreduce = reduce + broadcast
    return 2.0 * depth * hop
