"""Roofline model (Williams et al. [8]) and derived fractions.

Used two ways, mirroring the paper's Section VII:

* per-machine ceilings for kernel throughput (every V-cycle operation
  is memory-bound, so the ceiling is ``bandwidth x AI``);
* efficiency fractions ``e_i(a, p)`` feeding the performance
  portability metric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsl.library import OPERATOR_INFO
from repro.machines.specs import GPUSpec, MachineSpec


@dataclass(frozen=True)
class Roofline:
    """A two-ceiling roofline: peak FLOP rate and memory bandwidth."""

    peak_gflops: float
    bandwidth_gbs: float

    def attainable_gflops(self, ai: float) -> float:
        """min(peak, bandwidth * AI) — the classic roofline."""
        if ai <= 0:
            raise ValueError(f"arithmetic intensity must be positive: {ai}")
        return min(self.peak_gflops, self.bandwidth_gbs * ai)

    def ridge_point(self) -> float:
        """AI at which the kernel stops being memory-bound."""
        return self.peak_gflops / self.bandwidth_gbs

    def is_memory_bound(self, ai: float) -> bool:
        return ai < self.ridge_point()


def machine_roofline(gpu: GPUSpec, empirical: bool = True) -> Roofline:
    """The GPU's roofline (empirical = measured bandwidth, mixbench-style)."""
    bw = gpu.hbm_measured_gbs if empirical else gpu.hbm_peak_gbs
    return Roofline(peak_gflops=gpu.peak_fp64_gflops, bandwidth_gbs=bw)


def roofline_fraction(attained_gflops: float, ai: float, roof: Roofline) -> float:
    """Fraction of the roofline a kernel attains at intensity ``ai``."""
    ceiling = roof.attainable_gflops(ai)
    if attained_gflops < 0:
        raise ValueError(f"attained rate must be non-negative: {attained_gflops}")
    return attained_gflops / ceiling


def all_ops_memory_bound(machine: MachineSpec) -> bool:
    """The paper's premise: every V-cycle operation is memory-bound.

    True on all three machines since the largest theoretical AI
    (applyOp, 0.5 FLOP/B) sits far left of every ridge point
    (~7-17 FLOP/B).
    """
    roof = machine_roofline(machine.gpu)
    return all(
        roof.is_memory_bound(info.arithmetic_intensity)
        for info in OPERATOR_INFO.values()
    )
