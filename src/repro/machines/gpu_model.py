"""GPU kernel timing model.

The paper (Section VI-A) shows kernel time per invocation follows the
linear model ``t = alpha + points/rate``: a fixed launch/scheduling
latency plus streaming at an attainable rate.  The attainable rate for
a memory-bound operation is::

    rate [stencil/s] = e_roofline * f_ai * BW_measured / bytes_per_point

where ``bytes_per_point`` is the operation's compulsory traffic (DSL
analysis / Table IV), ``f_ai`` is the fraction of theoretical AI the
cache hierarchy achieves (Table V — f_ai < 1 means extra data moves,
dividing throughput), and ``e_roofline`` is the fraction of the
measured-bandwidth roofline the generated code sustains (Table III).

The dashed "theoretical peak" lines of Figure 5 correspond to
``BW_measured / bytes_per_point`` with both efficiencies at 1 —
e.g. 1420/16 = 88.75 GStencil/s for applyOp on the A100, the number
quoted in the paper's text.
"""

from __future__ import annotations

from repro.dsl.library import OPERATOR_INFO
from repro.machines.specs import MachineSpec

#: Traffic for ops not covered by OPERATOR_INFO, bytes/point.
_EXTRA_OP_BYTES = {
    "initZero": 8,  # one write
    "residual": 24,  # read Ax, b; write r
    "pack": 16,  # read + write each packed byte... per byte basis below
}


def bytes_per_point(op: str) -> int:
    """Compulsory traffic per point for any modelled operation."""
    info = OPERATOR_INFO.get(op)
    if info is not None:
        return info.bytes_per_point
    if op in _EXTRA_OP_BYTES:
        return _EXTRA_OP_BYTES[op]
    raise KeyError(f"unknown operation {op!r}")


def _efficiencies(machine: MachineSpec, op: str) -> tuple[float, float]:
    gpu = machine.gpu
    e_roof = gpu.op_roofline_fraction.get(op)
    f_ai = gpu.op_ai_fraction.get(op)
    if e_roof is None:
        # ops outside the paper's five (initZero, residual, pack) run at
        # the machine's smooth-like streaming efficiency
        e_roof = gpu.op_roofline_fraction["smooth"]
    if f_ai is None:
        f_ai = gpu.op_ai_fraction["smooth"]
    return e_roof, f_ai


def theoretical_gstencil_ceiling(machine: MachineSpec, op: str) -> float:
    """Figure 5's dashed line: measured BW / compulsory bytes, in GStencil/s."""
    return machine.gpu.hbm_measured_gbs / bytes_per_point(op)


def attainable_gstencil_rate(machine: MachineSpec, op: str) -> float:
    """Sustained points/s (in units of 1e9) for large problem sizes."""
    e_roof, f_ai = _efficiencies(machine, op)
    return e_roof * f_ai * theoretical_gstencil_ceiling(machine, op)


def kernel_time(machine: MachineSpec, op: str, points: int) -> float:
    """Seconds for one kernel invocation over ``points`` output points."""
    if points < 0:
        raise ValueError(f"points must be non-negative: {points}")
    if points == 0:
        return machine.gpu.kernel_launch_latency_s
    rate = attainable_gstencil_rate(machine, op) * 1e9
    return machine.gpu.kernel_launch_latency_s + points / rate


def pack_time(machine: MachineSpec, nbytes: int) -> float:
    """One pack (or unpack) pass over ``nbytes`` of message payload.

    A gather/scatter kernel reads and writes each byte once at the
    machine's streaming rate; charged only when the storage ordering
    (or a conventional layout) leaves message regions non-contiguous.
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative: {nbytes}")
    if nbytes == 0:
        return 0.0
    e_roof, _ = _efficiencies(machine, "smooth")
    rate = e_roof * machine.gpu.hbm_measured_gbs * 1e9
    return machine.gpu.kernel_launch_latency_s + 2.0 * nbytes / rate


def gstencil_per_invocation(machine: MachineSpec, op: str, points: int) -> float:
    """Figure 5's y-axis: 1e-9 * points / time-per-invocation."""
    return points / kernel_time(machine, op, points) / 1e9
