"""Calibrated machine models for Perlmutter, Frontier and Sunspot.

We do not have A100/MI250X/PVC silicon or a Slingshot fabric, so every
timed experiment prices the solver's (exactly counted) operations and
messages with analytic models — the same linear latency/bandwidth
models the paper itself fits to its measurements (Section VI-A).  The
calibration constants live in :mod:`repro.machines.specs`, each
annotated with the paper section or vendor datasheet it came from; the
models that consume them are:

* :mod:`repro.machines.gpu_model` — kernel time = launch latency +
  points / attainable rate, with the attainable rate derived from
  measured HBM bandwidth, the operation's compulsory traffic, and the
  per-operation code-generation/cache efficiencies of Tables III/V;
* :mod:`repro.machines.network` — message time = overhead + size /
  sustained bandwidth, with protocol effects (eager/rendezvous,
  hardware matching), GPU-aware vs host-staged paths, NIC sharing and
  a mild scale-dependent contention term;
* :mod:`repro.machines.roofline` — Roofline ceilings and fractions
  used by the portability metrics.
"""

from repro.machines.gpu_model import (
    attainable_gstencil_rate,
    kernel_time,
    pack_time,
    theoretical_gstencil_ceiling,
)
from repro.machines.network import (
    allreduce_time,
    exchange_time,
    message_time,
    scale_latency_factor,
)
from repro.machines.roofline import Roofline, roofline_fraction
from repro.machines.specs import (
    FRONTIER,
    MACHINES,
    PERLMUTTER,
    SUNSPOT,
    GPUSpec,
    MachineSpec,
    NetworkSpec,
    NodeSpec,
)

__all__ = [
    "GPUSpec",
    "NodeSpec",
    "NetworkSpec",
    "MachineSpec",
    "PERLMUTTER",
    "FRONTIER",
    "SUNSPOT",
    "MACHINES",
    "kernel_time",
    "pack_time",
    "attainable_gstencil_rate",
    "theoretical_gstencil_ceiling",
    "message_time",
    "exchange_time",
    "allreduce_time",
    "scale_latency_factor",
    "Roofline",
    "roofline_fraction",
]
