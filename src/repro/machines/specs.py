"""Hardware specifications and calibration constants.

Every number here is an *input* to the simulator, documented with its
provenance: the paper's Section IV-A hardware descriptions, its
measured values (Figs. 5/6, Tables III/V), or vendor datasheets.  All
downstream results — per-level times, fitted latencies/bandwidths,
portability harmonic means, scaling efficiencies, HPGMG ratios — are
computed from these by the models, never transcribed.

Units: GB/s are 1e9 bytes/s, GFLOP/s are 1e9 FLOP/s, times in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.comm.protocols import CxiSettings


@dataclass(frozen=True)
class GPUSpec:
    """One GPU/GCD/tile — the unit one MPI rank binds to.

    ``op_roofline_fraction`` is the fraction of the empirical Roofline
    each V-cycle operation attains (paper Table III: how well generated
    code saturates measured bandwidth).  ``op_ai_fraction`` is the
    fraction of theoretical (compulsory-traffic) arithmetic intensity
    achieved (paper Table V: how little extra data the cache hierarchy
    moves).  Both are measured quantities on real silicon and therefore
    calibration inputs here.
    """

    name: str
    programming_model: str
    peak_fp64_gflops: float
    hbm_peak_gbs: float
    hbm_measured_gbs: float
    kernel_launch_latency_s: float
    simd_width: int
    op_roofline_fraction: Mapping[str, float]
    op_ai_fraction: Mapping[str, float]

    def __post_init__(self) -> None:
        for table in (self.op_roofline_fraction, self.op_ai_fraction):
            for op, frac in table.items():
                if not 0.0 < frac <= 1.0:
                    raise ValueError(f"{self.name}: bad efficiency {op}={frac}")


@dataclass(frozen=True)
class NodeSpec:
    """Node organisation: rank/GPU/NIC counts and on-node links."""

    ranks_per_node: int
    nics_per_node: int
    nic_attached_to_gpu: bool
    cpu_gpu_link_gbs: float  # PCIe/other CPU<->GPU path (host staging)
    intra_node_link_gbs: float  # GPU<->GPU fabric (NVLink/IF/Xe)
    intra_node_latency_s: float


@dataclass(frozen=True)
class NetworkSpec:
    """Slingshot-11 parameters as seen by one rank."""

    nic_peak_gbs: float  # per-NIC line rate (25 GB/s for Slingshot 11)
    fabric_sustained_gbs: float  # achievable point-to-point stream
    exchange_overhead_s: float  # fitted alpha for a full 26-msg exchange
    contention_coeff: float  # latency growth per log2(nodes) doubling
    #: sustained-bandwidth degradation per doubling of node count beyond
    #: the 8-node baseline — the "typical shared network variability"
    #: the paper notes; drives the weak-scaling efficiency decay.
    bw_contention_coeff: float = 0.09

    @property
    def per_message_overhead_s(self) -> float:
        """Software+NIC overhead of one of the 26 exchange messages."""
        return self.exchange_overhead_s / 26.0


@dataclass(frozen=True)
class MachineSpec:
    """One of the three GPU-accelerated systems."""

    name: str
    gpu: GPUSpec
    node: NodeSpec
    network: NetworkSpec
    cxi: CxiSettings
    gpu_aware_mpi: bool
    brick_dim: int  # paper Section V: 8 on Perlmutter/Frontier, 4 on Sunspot

    @property
    def rank_label(self) -> str:
        return {"Perlmutter": "A100 GPU", "Frontier": "MI250X GCD", "Sunspot": "PVC tile"}.get(
            self.name, self.name
        )


def _frozen(d: dict) -> Mapping[str, float]:
    return MappingProxyType(dict(d))


# ----------------------------------------------------------------------
# Perlmutter: 4x NVIDIA A100 per node (Section IV-A)
# ----------------------------------------------------------------------
_A100 = GPUSpec(
    name="A100",
    programming_model="CUDA",
    peak_fp64_gflops=9_770.0,  # paper: "about 9.77 TFLOP/s"
    hbm_peak_gbs=1_555.0,  # 40 GB HBM2e at 1.5 TB/s (paper/datasheet)
    hbm_measured_gbs=1_420.0,  # paper Section VI-A: "measured HBM with 1420 GB/s"
    kernel_launch_latency_s=5.0e-6,  # paper Fig 5: lowest of the 5-20us range
    simd_width=32,  # warp; paper Section V threads-per-block choice
    op_roofline_fraction=_frozen(  # paper Table III, CUDA column
        {
            "applyOp": 0.90,
            "smooth": 0.98,
            "smooth+residual": 0.94,
            "restriction": 0.95,
            "interpolation+increment": 0.88,
        }
    ),
    op_ai_fraction=_frozen(  # paper Table V, CUDA column
        {
            "applyOp": 0.98,
            "smooth": 0.96,
            "smooth+residual": 1.00,
            "restriction": 0.99,
            "interpolation+increment": 1.00,
        }
    ),
)

PERLMUTTER = MachineSpec(
    name="Perlmutter",
    gpu=_A100,
    node=NodeSpec(
        ranks_per_node=4,  # one rank per A100
        nics_per_node=4,
        nic_attached_to_gpu=False,  # NICs hang off the CPU (Section V)
        cpu_gpu_link_gbs=32.0,  # PCIe 4.0 x16 (Section IV-A)
        intra_node_link_gbs=100.0,  # NVLink3 between the 4 GPUs
        intra_node_latency_s=3.0e-6,
    ),
    network=NetworkSpec(
        nic_peak_gbs=25.0,  # Slingshot 11 (Section IV-A)
        fabric_sustained_gbs=14.0,  # paper Fig 6: "peak bandwidths ... 14"
        exchange_overhead_s=50.0e-6,  # Fig 6 latency range, mid
        contention_coeff=0.04,
    ),
    cxi=CxiSettings.paper_perlmutter(),
    gpu_aware_mpi=True,
    brick_dim=8,
)

# ----------------------------------------------------------------------
# Frontier: 4x AMD MI250X per node = 8 GCD ranks (Section IV-A)
# ----------------------------------------------------------------------
_MI250X_GCD = GPUSpec(
    name="MI250X-GCD",
    programming_model="HIP",
    peak_fp64_gflops=23_950.0,  # paper: "about 24 TFLOP/s" per GCD
    hbm_peak_gbs=1_600.0,  # paper: 4 HBM stacks providing 1.6 TB/s
    hbm_measured_gbs=1_380.0,  # mixbench-style sustained (~86% of peak)
    kernel_launch_latency_s=10.0e-6,  # mid of the paper's 5-20us range
    simd_width=64,  # wavefront
    op_roofline_fraction=_frozen(  # paper Table III, HIP column
        {
            "applyOp": 0.77,
            "smooth": 0.87,
            "smooth+residual": 0.87,
            "restriction": 0.79,
            "interpolation+increment": 0.42,
        }
    ),
    op_ai_fraction=_frozen(  # paper Table V, HIP column
        {
            "applyOp": 0.88,
            "smooth": 1.00,
            "smooth+residual": 1.00,
            "restriction": 0.99,
            "interpolation+increment": 0.74,
        }
    ),
)

FRONTIER = MachineSpec(
    name="Frontier",
    gpu=_MI250X_GCD,
    node=NodeSpec(
        ranks_per_node=8,  # one rank per GCD
        nics_per_node=4,
        nic_attached_to_gpu=True,  # NICs attach directly to GCDs (Section IV-A)
        cpu_gpu_link_gbs=36.0,  # Infinity Fabric CPU<->GCD
        intra_node_link_gbs=100.0,  # Infinity Fabric GCD<->GCD
        intra_node_latency_s=3.0e-6,
    ),
    network=NetworkSpec(
        nic_peak_gbs=25.0,
        fabric_sustained_gbs=16.0,  # paper Fig 6: "highest bandwidth at 16 GB/s"
        exchange_overhead_s=25.0e-6,  # paper Fig 6: lowest overhead
        contention_coeff=0.04,
    ),
    cxi=CxiSettings.paper_frontier(),
    gpu_aware_mpi=True,
    brick_dim=8,
)

# ----------------------------------------------------------------------
# Sunspot: 6x Intel PVC per node = 12 tile ranks (Section IV-A)
# ----------------------------------------------------------------------
_PVC_TILE = GPUSpec(
    name="PVC-tile",
    programming_model="SYCL",
    peak_fp64_gflops=16_000.0,  # paper: "about 16 TFLOP/s ... per stack"
    hbm_peak_gbs=1_640.0,  # paper: "1.64 TB/s of memory bandwidth per stack"
    hbm_measured_gbs=1_400.0,  # Advisor-measured sustained (~85% of peak)
    kernel_launch_latency_s=20.0e-6,  # top of the paper's 5-20us range
    simd_width=16,  # paper Section V: 16 "most optimal" on PVC
    op_roofline_fraction=_frozen(  # paper Table III, SYCL column
        {
            "applyOp": 0.66,
            "smooth": 0.64,
            "smooth+residual": 0.71,
            "restriction": 0.62,
            "interpolation+increment": 0.52,
        }
    ),
    op_ai_fraction=_frozen(  # paper Table V, SYCL column
        {
            "applyOp": 0.86,
            "smooth": 0.94,
            "smooth+residual": 0.71,
            "restriction": 0.86,
            "interpolation+increment": 1.00,
        }
    ),
)

SUNSPOT = MachineSpec(
    name="Sunspot",
    gpu=_PVC_TILE,
    node=NodeSpec(
        ranks_per_node=12,  # one rank per tile
        nics_per_node=8,
        nic_attached_to_gpu=False,  # NICs off the CPUs (Section V)
        cpu_gpu_link_gbs=32.0,  # host staging path
        intra_node_link_gbs=80.0,  # Xe links
        intra_node_latency_s=5.0e-6,
    ),
    network=NetworkSpec(
        nic_peak_gbs=25.0,
        fabric_sustained_gbs=14.0,  # same Slingshot fabric; host staging
        # and stack immaturity (below) bring the effective rate to the
        # ~7 GB/s the paper observes
        exchange_overhead_s=150.0e-6,  # Fig 6: latencies up to ~200us
        contention_coeff=0.05,
    ),
    cxi=CxiSettings.defaults(),  # Sunspot sets no CXI variables (Table I)
    gpu_aware_mpi=False,  # paper: host pointers performed better on Sunspot
    brick_dim=4,  # paper Section V: 4^3 bricks on Sunspot
)

#: All three systems keyed by name.
MACHINES: dict[str, MachineSpec] = {
    m.name: m for m in (PERLMUTTER, FRONTIER, SUNSPOT)
}
