"""Discrete-event simulation of one exchange phase.

The closed-form :func:`repro.machines.network.exchange_time` prices a
rank's exchange as overheads plus serialized bytes.  This module checks
and refines that picture with an event-driven model of the node:

* every rank posts its messages at a configurable post time (the
  ``MPI_Isend`` loop; default zero) and then waits (``MPI_Waitall``) —
  either immediately, the synchronous schedule, or after an interior
  compute pass, the overlap schedule (:meth:`ExchangeEventSim.overlap`
  prices both through the same event machinery: the exposed cost is
  whatever communication outlasts the compute);
* each *NIC* is a FIFO server: a message occupies its source NIC for
  ``overhead + bytes/rate`` and arrives at the destination after the
  wire latency;
* ranks sharing a NIC (Frontier's 2 GCDs per NIC at full node, Sunspot's
  12 tiles over 8 NICs) contend for it in post order;
* intra-node messages ride the on-node fabric, one FIFO per node,
  concurrently with NIC traffic;
* a rank's exchange completes when all of its sends have left its NIC
  and all expected messages have arrived.

For one rank per NIC the event simulation reproduces the closed form
(tests assert agreement to a few percent); with NIC sharing it exposes
the serialisation the closed form approximates with a bandwidth share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machines.network import (
    message_overhead,
    scale_bandwidth_factor,
    staging_overhead,
)
from repro.machines.specs import MachineSpec


@dataclass(frozen=True)
class SimMessage:
    """One point-to-point message of an exchange phase."""

    src: int
    dst: int
    nbytes: int


@dataclass
class ExchangeOutcome:
    """Per-rank completion times of one simulated exchange."""

    send_complete: dict[int, float] = field(default_factory=dict)
    recv_complete: dict[int, float] = field(default_factory=dict)

    def rank_time(self, rank: int) -> float:
        return max(
            self.send_complete.get(rank, 0.0), self.recv_complete.get(rank, 0.0)
        )

    @property
    def barrier_time(self) -> float:
        """When the slowest rank finishes (the exchange's cost)."""
        ranks = set(self.send_complete) | set(self.recv_complete)
        return max((self.rank_time(r) for r in ranks), default=0.0)


@dataclass(frozen=True)
class OverlapOutcome:
    """Cost split of one exchange overlapped with an interior compute.

    ``comm_s`` is the full wire cost (barrier minus post), ``hidden_s``
    the part absorbed by the concurrent compute, ``exposed_s`` the
    remainder the shell pass still waits for.  ``compute_s = 0``
    degenerates to the synchronous schedule (everything exposed), so
    both schedules are priced by one model.
    """

    barrier_time: float
    post_time: float
    compute_s: float

    @property
    def comm_s(self) -> float:
        return max(0.0, self.barrier_time - self.post_time)

    @property
    def exposed_s(self) -> float:
        return max(0.0, self.comm_s - self.compute_s)

    @property
    def hidden_s(self) -> float:
        return self.comm_s - self.exposed_s

    @property
    def efficiency(self) -> float:
        """Fraction of the wire cost hidden behind compute (1.0 when
        there was nothing to hide)."""
        return self.hidden_s / self.comm_s if self.comm_s > 0.0 else 1.0


class ExchangeEventSim:
    """Event-driven exchange on one machine's node organisation.

    Parameters
    ----------
    machine:
        Supplies NIC rates, overheads and node geometry.
    ranks_per_node:
        Ranks sharing one node (and its NICs).  ``nic_of`` maps a rank
        to its NIC index: ranks are dealt round-robin across the node's
        NICs, so with 8 ranks over 4 NICs each NIC serves two.
    num_nodes:
        For the latency contention factor.
    """

    def __init__(
        self,
        machine: MachineSpec,
        ranks_per_node: int | None = None,
        num_nodes: int = 1,
    ) -> None:
        self.machine = machine
        self.ranks_per_node = ranks_per_node or machine.node.ranks_per_node
        self.num_nodes = num_nodes
        # each rank pushes through a full NIC; sharing emerges from the
        # FIFO rather than from a bandwidth share
        self._nic_rate = (
            machine.network.fabric_sustained_gbs
            * 1e9
            * scale_bandwidth_factor(machine, num_nodes)
        )
        if not machine.gpu_aware_mpi:
            link = machine.node.cpu_gpu_link_gbs
            self._nic_rate = 1.0 / (1.0 / self._nic_rate + 2.0 / (link * 1e9))
        self._fabric_rate = machine.node.intra_node_link_gbs * 1e9

    def node_of(self, rank: int) -> int:
        return rank // self.ranks_per_node

    def nic_of(self, rank: int) -> tuple[int, int]:
        """(node, NIC index) serving ``rank``."""
        node = self.node_of(rank)
        local = rank % self.ranks_per_node
        return node, local % self.machine.node.nics_per_node

    def run(
        self, messages: list[SimMessage], post_time: float = 0.0
    ) -> ExchangeOutcome:
        """Simulate one exchange phase; all sends post at ``post_time``.

        The synchronous and overlap schedules share this one code path:
        the default ``post_time=0.0`` is the classic post-then-wait
        model, while a split-phase caller shifts the whole phase to the
        instant its ``begin()`` fires and prices the interior compute
        separately (see :meth:`overlap`).
        """
        outcome = ExchangeOutcome()
        nic_free: dict[tuple[int, int], float] = {}
        fabric_free: dict[int, float] = {}
        arrivals: dict[int, list[float]] = {}
        staging = staging_overhead(self.machine)

        # process in post order per source rank (stable by list order)
        for msg in messages:
            intra = self.node_of(msg.src) == self.node_of(msg.dst)
            if intra:
                server = self.node_of(msg.src)
                start = fabric_free.get(server, post_time)
                occupy = (
                    self.machine.node.intra_node_latency_s
                    + msg.nbytes / self._fabric_rate
                )
                done = start + occupy
                fabric_free[server] = done
                arrive = done
            else:
                server = self.nic_of(msg.src)
                start = nic_free.get(server, post_time)
                occupy = (
                    message_overhead(self.machine, msg.nbytes, self.num_nodes)
                    + msg.nbytes / self._nic_rate
                )
                done = start + occupy
                nic_free[server] = done
                arrive = done  # wire latency folded into the overhead
            outcome.send_complete[msg.src] = max(
                outcome.send_complete.get(msg.src, 0.0), done
            )
            arrivals.setdefault(msg.dst, []).append(arrive)

        for rank, times in arrivals.items():
            outcome.recv_complete[rank] = max(times) + staging
        for rank in outcome.send_complete:
            outcome.send_complete[rank] += staging
        return outcome

    # ------------------------------------------------------------------
    def overlap(
        self,
        messages: list[SimMessage],
        compute_s: float = 0.0,
        post_time: float = 0.0,
    ) -> OverlapOutcome:
        """Price one exchange overlapped with ``compute_s`` of interior
        work posted at ``post_time``.

        Runs the same event simulation as :meth:`run` and splits the
        barrier cost into hidden and exposed components; the
        synchronous schedule is the ``compute_s = 0`` special case.
        """
        outcome = self.run(messages, post_time=post_time)
        return OverlapOutcome(
            barrier_time=outcome.barrier_time,
            post_time=post_time,
            compute_s=compute_s,
        )

    def exchange_barrier_time(
        self, message_sizes_remote: list[int], message_sizes_local: list[int] = ()
    ) -> float:
        """Single-rank view matching the closed-form helper's inputs."""
        msgs = [SimMessage(0, 1, n) for n in message_sizes_remote]
        msgs += [
            SimMessage(0, 0, n) for n in message_sizes_local
        ]  # same-node destination
        # place ranks 0 and 1 on different nodes
        sim_rpn = 1
        sim = ExchangeEventSim(self.machine, sim_rpn, self.num_nodes)
        outcome = sim.run(msgs)
        return outcome.send_complete.get(0, 0.0)
