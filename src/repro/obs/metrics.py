"""Counters and gauges, bridged from the event :class:`Recorder`.

The :class:`~repro.instrument.Recorder` keeps raw event lists (every
kernel, every message, every fault); a :class:`MetricsRegistry` is the
aggregated, exportable view — one flat snapshot of counters and gauges
suitable for JSON artifacts, the profile report, or scraping.  It also
surfaces ``Recorder.reductions``, which the event layer counted but no
aggregation ever reported.
"""

from __future__ import annotations

from repro.instrument import Recorder


class MetricsRegistry:
    """A flat namespace of monotonic counters and point-in-time gauges."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        #: registering owner per name (``None`` for unowned writes)
        self._owners: dict[str, object] = {}

    # ------------------------------------------------------------------
    def _claim(self, name: str, kind: str, owner) -> None:
        """Kind-collision policy shared by :meth:`counter`/:meth:`gauge`.

        A name is either a counter or a gauge, never both: :meth:`get`
        (and the flat snapshot consumers) could not tell which series a
        value belongs to.  In a long-lived process the *same* component
        legitimately re-registers its metrics every solve, so a kind
        conflict from one non-``None`` owner is an idempotent
        redefinition (the stale series is dropped); a conflict across
        different owners — or from unowned writes, where nothing proves
        the two writers are the same component — keeps the error.
        """
        other = self._gauges if kind == "counter" else self._counters
        if name not in other:
            if name not in self._owners:
                self._owners[name] = owner
            return
        prior = self._owners.get(name)
        if owner is not None and owner == prior:
            del other[name]
            self._owners[name] = owner
            return
        held = "gauge" if kind == "counter" else "counter"
        raise ValueError(f"{name!r} is already a {held}, not a {kind}")

    def counter(self, name: str, value: float = 1.0, owner=None) -> None:
        """Add ``value`` to counter ``name`` (creating it at 0).

        ``owner`` scopes registration for long-lived registries: see
        :meth:`_claim` for the collision policy.
        """
        if value < 0:
            raise ValueError(f"counters only increase: {name}={value}")
        self._claim(name, "counter", owner)
        self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float, owner=None) -> None:
        """Set gauge ``name`` to ``value`` (last write wins).

        ``owner`` scopes registration for long-lived registries: see
        :meth:`_claim` for the collision policy.
        """
        self._claim(name, "gauge", owner)
        self._gauges[name] = float(value)

    def get(self, name: str, default: float = 0.0) -> float:
        if name in self._counters:
            return self._counters[name]
        return self._gauges.get(name, default)

    # ------------------------------------------------------------------
    def observe_recorder(self, recorder: Recorder) -> None:
        """Fold one solve's event record into the registry.

        Kernels, messages, exchanges, reductions and faults all become
        counters; per-level detail keeps the ``<name>.level<l>`` key
        shape so snapshots stay flat.
        """
        for (lev, op), n in recorder.kernel_counts().items():
            self.counter(f"kernels.level{lev}.{op}", n)
        for (lev, op), pts in recorder.kernel_points().items():
            self.counter(f"kernel_points.level{lev}.{op}", pts)
        self.counter("kernels.total", len(recorder.kernels))
        self.counter("messages.total", len(recorder.messages))
        self.counter(
            "messages.bytes", sum(ev.nbytes for ev in recorder.messages)
        )
        for lev, n in recorder.message_counts_by_level().items():
            self.counter(f"messages.level{lev}.count", n)
        for lev, nbytes in recorder.message_bytes_by_level().items():
            self.counter(f"messages.level{lev}.bytes", nbytes)
        for lev, n in recorder.exchange_counts().items():
            self.counter(f"exchanges.level{lev}", n)
        self.counter("exchanges.total", sum(recorder.exchange_counts().values()))
        self.counter("reductions.total", recorder.reductions)
        for kind, n in recorder.fault_counts().items():
            self.counter(f"faults.{kind}", n)
        self.counter("faults.injected", recorder.injected_faults)
        self.counter("faults.detected", recorder.detected_faults)

    def observe_plan_caches(self) -> None:
        """Snapshot the geometry-keyed plan caches' hit statistics.

        One gauge per cache per stat (``cache.<name>.hits`` etc.) —
        gauges, not counters, because the underlying totals are
        process-cumulative and an observe-per-cohort registry would
        otherwise double-count them.
        """
        from repro.bricks.plan_cache import cache_stats

        for cache_name, stats in cache_stats().items():
            for stat, value in stats.items():
                self.gauge(
                    f"cache.{cache_name}.{stat}", value, owner="plan_caches"
                )

    def observe_recovery(self, result) -> None:
        """Record a solve's rank-crash recovery SLO metrics.

        ``result`` is a :class:`~repro.gmg.solver.SolveResult`; gauges
        cover mean-time-to-repair, bytes adopted from buddy replicas,
        committed cycles discarded, and how many ranks came back — the
        numbers the chaos ledger gates on.
        """
        self.gauge("recovery.mttr_ms", result.mttr_s * 1e3)
        self.gauge("recovery.bytes_restored", result.bytes_restored)
        self.gauge("recovery.cycles_lost", result.cycles_lost)
        self.gauge("recovery.recovered_ranks", len(result.recovered_ranks))

    def observe_agglomeration(self, agglomerator) -> None:
        """Record the active-rank shape of an agglomerated solve.

        One gauge per level: how many ranks computed it, plus the
        merged per-rank point count — the structural facts behind any
        drop in the per-level message counters.
        """
        plan = agglomerator.plan
        for lev in range(plan.num_levels):
            self.gauge(
                f"agglomeration.level{lev}.active_ranks",
                plan.active_count(lev),
            )
            cells = plan.level_cells(lev)
            self.gauge(
                f"agglomeration.level{lev}.points_per_rank",
                cells[0] * cells[1] * cells[2],
            )
        self.gauge(
            "agglomeration.threshold_points", plan.threshold_points
        )

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One exportable view: ``{"counters": {...}, "gauges": {...}}``.

        Counter values that are whole numbers export as ints so JSON
        artifacts stay diff-friendly.
        """

        def _tidy(v: float):
            return int(v) if float(v).is_integer() else v

        return {
            "counters": {
                k: _tidy(v) for k, v in sorted(self._counters.items())
            },
            "gauges": {k: _tidy(v) for k, v in sorted(self._gauges.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)})"
        )


def solve_metrics(
    recorder: Recorder, tracer=None, agglomerator=None, result=None
) -> MetricsRegistry:
    """Registry for one finished solve.

    Bridges the recorder and, when a recording tracer is supplied, adds
    trace-derived gauges (span counts and total traced wall-clock); an
    agglomerated solve additionally reports its active-rank shape, and
    a :class:`~repro.gmg.solver.SolveResult` adds the rank-crash
    recovery gauges.
    """
    registry = MetricsRegistry()
    registry.observe_recorder(recorder)
    registry.observe_plan_caches()
    if tracer is not None and getattr(tracer, "enabled", False):
        registry.gauge("trace.spans", len(tracer.spans))
        registry.gauge("trace.instants", len(tracer.instants))
        registry.gauge("trace.wallclock_s", tracer.total_time())
        from repro.obs.rank import overlap_efficiency

        eff = overlap_efficiency(tracer)
        if eff is not None:
            # only present when the solve ran split-phase exchanges
            registry.gauge("overlap.efficiency", eff)
    if agglomerator is not None:
        registry.observe_agglomeration(agglomerator)
    if result is not None:
        registry.observe_recovery(result)
    return registry
