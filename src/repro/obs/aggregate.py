"""Per-level, per-operation aggregation of measured spans.

Turns a solve trace into the paper's breakdown rows —
``level 0 applyOp [min, avg, max] (sigma: ...)`` — with the samples
being the individual kernel-span durations (the paper samples across
ranks; the simulated lockstep ranks share one process, so invocations
are the natural sample population and the row format is identical).
:func:`measured_vs_model_report` then renders those measured rows
side-by-side with the calibrated machine model's predictions for the
same schedule (the measured-vs-model comparison behind the paper's
Fig. 9 discussion), and :func:`span_coverage` quantifies how much of
the root solve span the instrumented phases account for.
"""

from __future__ import annotations

from collections import defaultdict

from repro.obs.tracer import SpanRecord, Tracer
from repro.perf.timers import TimingStat, format_level_timing

#: span names that are pure structure (parents of the op spans below);
#: excluded from per-op aggregation so nothing is double-counted
STRUCTURE_SPANS = frozenset(
    {"solve", "vcycle", "level", "smooth-visit", "bottom", "residual-check",
     "cg-iteration", "engine-adopt"}
)

#: measured span name -> operation key of the machine model's
#: per-level breakdown (``TimedSolve.solve_level_times``); fused
#: pipeline spans cover the model's staged pair
MODEL_OP_FOR = {
    "applyOp": ("applyOp",),
    "smooth": ("smooth",),
    "smooth+residual": ("smooth+residual",),
    "applyOp>smooth": ("applyOp", "smooth"),
    "applyOp>smooth+residual": ("applyOp", "smooth+residual"),
    "applyOp>residual": ("applyOp",),
    "exchange": ("exchange",),
    "restriction": ("restriction",),
    "interpolation+increment": ("interpolation+increment",),
    "initZero": ("initZero",),
}


def op_spans(tracer: Tracer) -> list[SpanRecord]:
    """Leaf operation spans (structure spans filtered out)."""
    return [s for s in tracer.ordered_spans() if s.name not in STRUCTURE_SPANS]


def aggregate_by_level_op(tracer: Tracer) -> dict[tuple[int, str], TimingStat]:
    """``{(level, op): TimingStat over span durations}``.

    The level comes from each span's ``l`` attribute; spans without one
    (none are emitted by the instrumented solve path) aggregate under
    level ``-1``.
    """
    samples: dict[tuple[int, str], list[float]] = defaultdict(list)
    for s in op_spans(tracer):
        samples[(int(s.attrs.get("l", -1)), s.name)].append(s.duration)
    return {key: TimingStat.from_samples(v) for key, v in samples.items()}


def total_by_level_op(tracer: Tracer) -> dict[tuple[int, str], float]:
    """``{(level, op): summed measured seconds}``."""
    out: dict[tuple[int, str], float] = defaultdict(float)
    for s in op_spans(tracer):
        out[(int(s.attrs.get("l", -1)), s.name)] += s.duration
    return dict(out)


def span_coverage(tracer: Tracer, root_name: str = "solve") -> float:
    """Fraction of the root span's wall-clock covered by its descendants.

    Descendant intervals are unioned (never summed), so nested spans
    cannot push coverage past 1.0; multiple roots contribute
    duration-weighted.  Returns 0.0 when no root span exists.
    """
    roots = [s for s in tracer.ordered_spans() if s.name == root_name]
    if not roots:
        return 0.0
    by_parent: dict[int, list[SpanRecord]] = defaultdict(list)
    for s in tracer.ordered_spans():
        if s.parent is not None:
            by_parent[s.parent].append(s)

    covered_total = 0.0
    duration_total = 0.0
    for root in roots:
        intervals: list[tuple[float, float]] = []
        frontier = list(by_parent.get(root.index, ()))
        # direct children only: deeper spans are contained in them, so
        # the union over depth-1 children is the honest coverage figure
        for s in frontier:
            intervals.append((s.start, s.end))
        intervals.sort()
        covered = 0.0
        cur_start, cur_end = None, None
        for a, b in intervals:
            if cur_end is None or a > cur_end:
                if cur_end is not None:
                    covered += cur_end - cur_start
                cur_start, cur_end = a, b
            else:
                cur_end = max(cur_end, b)
        if cur_end is not None:
            covered += cur_end - cur_start
        covered_total += min(covered, root.duration)
        duration_total += root.duration
    if duration_total == 0.0:
        return 1.0
    return covered_total / duration_total


# ----------------------------------------------------------------------
# measured vs model
# ----------------------------------------------------------------------
def model_level_times(config, machine, num_vcycles: int) -> list[dict]:
    """The machine model's per-level op totals for ``config``'s schedule.

    Mirrors :func:`repro.gmg.solver.estimate_solve_time`'s bridge into
    the performance harness; requires a periodic configuration.
    """
    from repro.harness.vcycle_sim import TimedSolve, WorkloadConfig

    if config.boundary != "periodic":
        raise ValueError("the performance harness models periodic runs only")
    workload = WorkloadConfig(
        per_rank_cells=config.cells_per_rank,
        num_levels=config.num_levels,
        max_smooths=config.max_smooths,
        bottom_smooths=config.bottom_smooths,
        num_vcycles=max(num_vcycles, 1),
        rank_dims=config.rank_dims,
        ranks_per_node=config.ranks_per_node,
        communication_avoiding=config.communication_avoiding,
        ordering=config.ordering,
        brick_dim=config.brick_dim,
        precision=config.precision,
    )
    return TimedSolve(machine, workload).solve_level_times()


def measured_vs_model_rows(
    tracer: Tracer, config, machine, num_vcycles: int
) -> list[dict]:
    """One dict per measured (level, op) row, model column attached.

    ``model_s`` is the machine model's prediction for the same
    operation totals (None for operations outside the model's
    breakdown, e.g. the convergence check's ``residual``).
    """
    stats = aggregate_by_level_op(tracer)
    totals = total_by_level_op(tracer)
    model = (
        model_level_times(config, machine, num_vcycles)
        if machine is not None
        else None
    )
    rows = []
    for (lev, op) in sorted(stats):
        model_s = None
        if model is not None and 0 <= lev < len(model):
            keys = MODEL_OP_FOR.get(op)
            if keys is not None:
                model_s = sum(model[lev].get(k, 0.0) for k in keys)
        rows.append(
            {
                "level": lev,
                "op": op,
                "stat": stats[(lev, op)],
                "measured_total_s": totals[(lev, op)],
                "model_s": model_s,
            }
        )
    return rows


def render_measured_vs_model(
    rows: list[dict], machine_name: str | None = None
) -> str:
    """The profile report's breakdown block, artifact row format first.

    Each line is the paper's ``level L op [min, avg, max] (sigma: s)``
    row over the measured samples, extended with the measured total and
    (when a machine is given) the model's predicted total for the same
    operations — predictions are for the paper's GPU machines, so the
    interesting quantity is the *shape* agreement across levels and
    operations, not the absolute ratio.
    """
    header = "measured per-level breakdown"
    if machine_name:
        header += f" (model: {machine_name})"
    lines = [header]
    for row in rows:
        line = "  " + format_level_timing(row["level"], row["op"], row["stat"])
        line += f" total {row['measured_total_s']:.6g}s"
        if row["model_s"] is not None:
            line += f" | model {row['model_s']:.6g}s"
        lines.append(line)
    return "\n".join(lines)
