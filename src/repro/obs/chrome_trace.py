"""Chrome trace-event export: open solver traces in Perfetto.

Serialises a :class:`~repro.obs.tracer.Tracer` into the Trace Event
Format's JSON object form (``{"traceEvents": [...]}``) consumed by
``chrome://tracing`` and https://ui.perfetto.dev: complete events
(``ph: "X"``) for spans, instant events (``ph: "i"``) for fault
instants, timestamps in microseconds.  :func:`validate_chrome_trace`
is the schema checker the test-suite and the CI profile-smoke job both
run against emitted files.
"""

from __future__ import annotations

import json

from repro.obs.tracer import Tracer

#: process/thread ids for the single-process simulated solve
_PID = 1
_TID = 1

#: event phases this exporter emits
_SPAN_PHASE = "X"
_INSTANT_PHASE = "i"


def _category(name: str) -> str:
    """Coarse event category shown as a Perfetto filter chip."""
    if name.startswith("fault:"):
        return "fault"
    if name in ("exchange",):
        return "comm"
    if name in ("solve", "vcycle", "level", "smooth-visit", "bottom"):
        return "structure"
    return "kernel"


def to_chrome_trace(tracer: Tracer, metadata: dict | None = None) -> dict:
    """The tracer's records as a Trace Event Format object.

    ``metadata`` lands in ``otherData`` (Perfetto shows it in the trace
    info panel) — the CLI puts the solver configuration there.
    """
    events: list[dict] = []
    for s in tracer.ordered_spans():
        events.append(
            {
                "name": s.name,
                "cat": _category(s.name),
                "ph": _SPAN_PHASE,
                "ts": s.start * 1e6,
                "dur": s.duration * 1e6,
                "pid": _PID,
                "tid": _TID,
                "args": dict(s.attrs),
            }
        )
    for i in tracer.instants:
        events.append(
            {
                "name": i.name,
                "cat": _category(i.name),
                "ph": _INSTANT_PHASE,
                "s": "t",  # thread-scoped instant
                "ts": i.timestamp * 1e6,
                "pid": _PID,
                "tid": _TID,
                "args": dict(i.attrs),
            }
        )
    events.sort(key=lambda e: e["ts"])
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }


def write_chrome_trace(
    tracer: Tracer, path, metadata: dict | None = None
) -> dict:
    """Serialise to ``path`` and return the exported object."""
    obj = to_chrome_trace(tracer, metadata)
    with open(path, "w") as fh:
        json.dump(obj, fh, indent=1)
    return obj


def validate_chrome_trace(obj: dict) -> dict:
    """Check ``obj`` against the Trace Event Format subset we emit.

    Raises :class:`ValueError` on the first violation; returns
    ``{"spans": n, "instants": m}`` so callers (the CI smoke job) can
    assert the trace is non-trivial.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"trace must be a JSON object, got {type(obj).__name__}")
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace must carry a 'traceEvents' list")
    counts = {"spans": 0, "instants": 0}
    last_ts = float("-inf")
    for k, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{k}] is not an object")
        for req in ("name", "ph", "ts", "pid", "tid"):
            if req not in ev:
                raise ValueError(f"traceEvents[{k}] missing required key {req!r}")
        if not isinstance(ev["name"], str) or not ev["name"]:
            raise ValueError(f"traceEvents[{k}] has an empty name")
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"traceEvents[{k}] has invalid ts {ts!r}")
        if ts < last_ts:
            raise ValueError(f"traceEvents[{k}] not sorted by ts")
        last_ts = ts
        ph = ev["ph"]
        if ph == _SPAN_PHASE:
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"traceEvents[{k}] complete event needs dur >= 0, got {dur!r}"
                )
            counts["spans"] += 1
        elif ph == _INSTANT_PHASE:
            if ev.get("s") not in ("t", "p", "g"):
                raise ValueError(
                    f"traceEvents[{k}] instant needs scope s in t/p/g"
                )
            counts["instants"] += 1
        else:
            raise ValueError(f"traceEvents[{k}] has unsupported phase {ph!r}")
        if "args" in ev and not isinstance(ev["args"], dict):
            raise ValueError(f"traceEvents[{k}] args must be an object")
    return counts


def validate_chrome_trace_file(path) -> dict:
    """Load ``path`` and validate it; returns the event counts."""
    with open(path) as fh:
        return validate_chrome_trace(json.load(fh))
