"""Chrome trace-event export: open solver traces in Perfetto.

Serialises a :class:`~repro.obs.tracer.Tracer` into the Trace Event
Format's JSON object form (``{"traceEvents": [...]}``) consumed by
``chrome://tracing`` and https://ui.perfetto.dev: complete events
(``ph: "X"``) for spans, instant events (``ph: "i"``) for fault
instants, timestamps in microseconds.  :func:`validate_chrome_trace`
is the schema checker the test-suite and the CI profile-smoke job both
run against emitted files.
"""

from __future__ import annotations

import json

from repro.obs.tracer import Tracer

#: process/thread ids for the global (lockstep driver) timeline
_PID = 1
_TID = 1
#: rank ``r``'s child timeline exports as pid ``r + _RANK_PID_BASE``
_RANK_PID_BASE = 2
#: the ``k``-th fork timeline exports as tid ``k + _FORK_TID_BASE``
_FORK_TID_BASE = 2

#: event phases this exporter emits
_SPAN_PHASE = "X"
_INSTANT_PHASE = "i"
_METADATA_PHASE = "M"


def rank_pid(rank: int) -> int:
    """The Chrome-trace process id rank ``rank``'s timeline exports as."""
    return int(rank) + _RANK_PID_BASE


def _category(name: str) -> str:
    """Coarse event category shown as a Perfetto filter chip."""
    if name.startswith("fault:"):
        return "fault"
    if name in ("exchange", "isend", "irecv", "unpack", "retransmit",
                "waitall"):
        return "comm"
    if name in ("solve", "vcycle", "level", "smooth-visit", "bottom"):
        return "structure"
    return "kernel"


def fork_tid(position: int) -> int:
    """The Chrome-trace thread id of the ``position``-th fork timeline."""
    return int(position) + _FORK_TID_BASE


def _span_events(tracer: Tracer, pid: int, tid: int = _TID) -> list[dict]:
    return [
        {
            "name": s.name,
            "cat": _category(s.name),
            "ph": _SPAN_PHASE,
            "ts": s.start * 1e6,
            "dur": s.duration * 1e6,
            "pid": pid,
            "tid": tid,
            "args": dict(s.attrs),
        }
        for s in tracer.ordered_spans()
    ]


def to_chrome_trace(tracer: Tracer, metadata: dict | None = None) -> dict:
    """The tracer's records as a Trace Event Format object.

    The root tracer's spans export under pid 1 (the lockstep driver's
    logical timeline); every per-rank child tracer exports under its own
    pid (:func:`rank_pid`), with ``process_name`` metadata events so
    Perfetto labels each process ``rank N``.  Instants carrying a
    non-negative ``rank`` attribute — fault events name the rank that
    detected or suffered the fault — are routed to that rank's pid, so
    e.g. a ``fault:detect_drop`` lands on the timeline of the rank whose
    receive failed rather than on the global driver timeline; instants
    without a rank (solve-wide rollbacks) stay global.

    Fork timelines (:meth:`~repro.obs.tracer.Tracer.fork` — one per
    interleaved solve/cohort of a service run) share the root tracer's
    epoch, so they export on the same time axis as separate *threads*:
    the ``k``-th fork's spans carry tid :func:`fork_tid`, with
    ``thread_name`` metadata labelling each thread with its fork key;
    a fork's own per-rank children export under the rank's pid with the
    fork's tid.

    ``metadata`` lands in ``otherData`` (Perfetto shows it in the trace
    info panel) — the CLI puts the solver configuration there.
    """
    events: list[dict] = _span_events(tracer, _PID)
    used_rank_pids: dict[int, int] = {}
    #: thread_name metadata labels keyed by (pid, tid)
    thread_labels: dict[tuple[int, int], str] = {}

    def _emit_timeline(timeline: Tracer, pid: int, tid: int) -> None:
        events.extend(_span_events(timeline, pid, tid))
        for i in timeline.instants:
            events.append(_instant_event(i, pid, tid))

    for rank, child in sorted(tracer.children.items()):
        pid = rank_pid(rank)
        used_rank_pids[rank] = pid
        _emit_timeline(child, pid, _TID)
    for pos, (key, fork) in enumerate(tracer.forks.items()):
        tid = fork_tid(pos)
        label = f"fork {key}"
        events.extend(_span_events(fork, _PID, tid))
        thread_labels[(_PID, tid)] = label
        for i in fork.instants:
            rank = i.attrs.get("rank", -1)
            if isinstance(rank, int) and not isinstance(rank, bool) and rank >= 0:
                pid = used_rank_pids.setdefault(rank, rank_pid(rank))
            else:
                pid = _PID
            events.append(_instant_event(i, pid, tid))
        for rank, child in sorted(fork.children.items()):
            pid = rank_pid(rank)
            used_rank_pids[rank] = pid
            _emit_timeline(child, pid, tid)
            thread_labels[(pid, tid)] = label
    for i in tracer.instants:
        rank = i.attrs.get("rank", -1)
        if isinstance(rank, int) and not isinstance(rank, bool) and rank >= 0:
            pid = used_rank_pids.setdefault(rank, rank_pid(rank))
        else:
            pid = _PID
        events.append(_instant_event(i, pid))
    events.sort(key=lambda e: e["ts"])
    names = [(_PID, "solve (global timeline)")]
    names += [(pid, f"rank {rank}") for rank, pid in sorted(used_rank_pids.items())]
    process_names = [
        {
            "name": "process_name",
            "ph": _METADATA_PHASE,
            "ts": 0,
            "pid": pid,
            "tid": _TID,
            "args": {"name": label},
        }
        for pid, label in names
    ]
    thread_names = [
        {
            "name": "thread_name",
            "ph": _METADATA_PHASE,
            "ts": 0,
            "pid": pid,
            "tid": tid,
            "args": {"name": label},
        }
        for (pid, tid), label in sorted(thread_labels.items())
    ]
    return {
        "traceEvents": process_names + thread_names + events,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }


def _instant_event(instant, pid: int, tid: int = _TID) -> dict:
    return {
        "name": instant.name,
        "cat": _category(instant.name),
        "ph": _INSTANT_PHASE,
        "s": "t",  # thread-scoped instant
        "ts": instant.timestamp * 1e6,
        "pid": pid,
        "tid": tid,
        "args": dict(instant.attrs),
    }


def write_chrome_trace(
    tracer: Tracer, path, metadata: dict | None = None
) -> dict:
    """Serialise to ``path`` and return the exported object."""
    obj = to_chrome_trace(tracer, metadata)
    with open(path, "w") as fh:
        json.dump(obj, fh, indent=1)
    return obj


def validate_chrome_trace(obj: dict) -> dict:
    """Check ``obj`` against the Trace Event Format subset we emit.

    Raises :class:`ValueError` on the first violation; returns
    ``{"spans": n, "instants": m}`` so callers (the CI smoke job) can
    assert the trace is non-trivial.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"trace must be a JSON object, got {type(obj).__name__}")
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace must carry a 'traceEvents' list")
    counts = {"spans": 0, "instants": 0, "metadata": 0, "pids": 0}
    pids: set = set()
    last_ts = float("-inf")
    for k, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{k}] is not an object")
        for req in ("name", "ph", "ts", "pid", "tid"):
            if req not in ev:
                raise ValueError(f"traceEvents[{k}] missing required key {req!r}")
        if not isinstance(ev["name"], str) or not ev["name"]:
            raise ValueError(f"traceEvents[{k}] has an empty name")
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"traceEvents[{k}] has invalid ts {ts!r}")
        ph = ev["ph"]
        if ph == _METADATA_PHASE:
            # metadata events are emitted as a preamble and are exempt
            # from the monotonic-ts requirement (they all carry ts 0)
            if not isinstance(ev.get("args"), dict) or "name" not in ev["args"]:
                raise ValueError(
                    f"traceEvents[{k}] metadata event needs args.name"
                )
            counts["metadata"] += 1
            pids.add(ev["pid"])
            continue
        if ts < last_ts:
            raise ValueError(f"traceEvents[{k}] not sorted by ts")
        last_ts = ts
        pids.add(ev["pid"])
        if ph == _SPAN_PHASE:
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"traceEvents[{k}] complete event needs dur >= 0, got {dur!r}"
                )
            counts["spans"] += 1
        elif ph == _INSTANT_PHASE:
            if ev.get("s") not in ("t", "p", "g"):
                raise ValueError(
                    f"traceEvents[{k}] instant needs scope s in t/p/g"
                )
            counts["instants"] += 1
        else:
            raise ValueError(f"traceEvents[{k}] has unsupported phase {ph!r}")
        if "args" in ev and not isinstance(ev["args"], dict):
            raise ValueError(f"traceEvents[{k}] args must be an object")
    counts["pids"] = len(pids)
    return counts


def validate_chrome_trace_file(path) -> dict:
    """Load ``path`` and validate it; returns the event counts."""
    with open(path) as fh:
        return validate_chrome_trace(json.load(fh))
