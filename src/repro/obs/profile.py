"""Profiled solves: run, aggregate, render — the ``repro profile`` core.

One entry point, :func:`profile_solve`, runs a fully traced functional
solve and returns a :class:`ProfileReport` bundling the trace, the
measured per-level breakdown, the machine-model comparison, the
bridged metrics snapshot and the span-coverage figure.  The CLI's
``profile`` subcommand and the CI profile-smoke job are thin wrappers
over this module, so tests can exercise the whole path in-process.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.obs.aggregate import (
    measured_vs_model_rows,
    render_measured_vs_model,
    span_coverage,
)
from repro.obs.chrome_trace import write_chrome_trace
from repro.obs.metrics import solve_metrics
from repro.obs.tracer import Tracer

#: root spans that represent blocking on halo completion: a whole
#: synchronous exchange, or the split-phase wait of an overlapped one
_WAIT_SPAN_NAMES = ("exchange", "exchange.finish")


def wait_fraction(tracer: Tracer) -> tuple[float, float]:
    """``(wait_s, fraction)`` of V-cycle wall time blocked on halos.

    Sums the durations of :data:`_WAIT_SPAN_NAMES` spans inside the
    ``vcycle`` windows and divides by total V-cycle time.  In overlap
    mode the ``exchange.begin`` posting time is deliberately excluded —
    it runs concurrently with interior compute and is not a wait.
    """
    windows = tracer.find("vcycle")
    total = sum(w.duration for w in windows)
    if total <= 0.0:
        return 0.0, 0.0
    waits = [s for s in tracer.spans if s.name in _WAIT_SPAN_NAMES]
    wait = sum(
        s.duration
        for s in waits
        if any(w.start <= s.start and s.end <= w.end for w in windows)
    )
    return wait, wait / total


@dataclass
class ProfileReport:
    """Everything one profiled solve produced."""

    config: object
    result: object = field(repr=False)
    tracer: Tracer = field(repr=False)
    wallclock_s: float
    coverage: float
    rows: list[dict] = field(repr=False)
    machine_name: str | None
    metrics: dict = field(repr=False)
    #: seconds the V-cycles spent waiting on halo completion — the
    #: synchronous ``exchange`` spans plus the split-phase
    #: ``exchange.finish`` waits (the overlap path's residual blocking)
    wait_s: float = 0.0
    #: ``wait_s`` as a share of total ``vcycle`` wall time
    wait_fraction: float = 0.0

    def render(self) -> str:
        """The full human-readable profile report."""
        cfg = self.config
        lines = [
            f"profiled solve: {cfg.global_cells}^3 over {cfg.num_ranks} "
            f"rank(s), {cfg.num_levels} levels, brick {cfg.brick_dim}^3",
            f"  status={self.result.status} vcycles={self.result.num_vcycles} "
            f"wallclock={self.wallclock_s:.6g}s",
            f"  trace: {len(self.tracer.spans)} spans, "
            f"{len(self.tracer.instants)} instants, "
            f"coverage {self.coverage:.1%} of the solve span",
            f"  wait fraction: {self.wait_fraction:.1%} of V-cycle time "
            f"blocked on halo completion ({self.wait_s:.6g}s in "
            f"exchange/exchange.finish)",
            "",
            render_measured_vs_model(self.rows, self.machine_name),
            "",
            "metrics snapshot:",
        ]
        counters = self.metrics["counters"]
        for key in (
            "kernels.total",
            "exchanges.total",
            "messages.total",
            "messages.bytes",
            "reductions.total",
            "faults.injected",
            "faults.detected",
        ):
            if key in counters:
                lines.append(f"  {key} = {counters[key]}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """Machine-readable form of the report (trace excluded)."""
        return {
            "wallclock_s": self.wallclock_s,
            "coverage": self.coverage,
            "machine": self.machine_name,
            "wait_s": self.wait_s,
            "wait_fraction": self.wait_fraction,
            "rows": [
                {
                    "level": r["level"],
                    "op": r["op"],
                    "min": r["stat"].min,
                    "avg": r["stat"].avg,
                    "max": r["stat"].max,
                    "sigma": r["stat"].stdev,
                    "count": r["stat"].count,
                    "measured_total_s": r["measured_total_s"],
                    "model_s": r["model_s"],
                }
                for r in self.rows
            ],
            "metrics": self.metrics,
        }


def profile_solve(
    config,
    machine_name: str | None = "Perlmutter",
    trace_path=None,
    fault_plan=None,
) -> ProfileReport:
    """Run one traced solve of ``config`` and aggregate the results.

    ``machine_name`` selects the model column (None skips it — also
    the fallback for non-periodic boundaries, which the performance
    harness does not model); ``trace_path`` additionally writes the
    Chrome trace-event file.
    """
    from repro.gmg.solver import GMGSolver

    tracer = Tracer()
    solver = GMGSolver(config, fault_plan=fault_plan, tracer=tracer)
    t0 = time.perf_counter()
    result = solver.solve()
    wallclock = time.perf_counter() - t0

    machine = None
    if machine_name is not None and config.boundary == "periodic":
        from repro.machines import MACHINES

        machine = MACHINES[machine_name]
    else:
        machine_name = None
    rows = measured_vs_model_rows(
        tracer, config, machine, max(result.num_vcycles, 1)
    )
    wait_s, wait_frac = wait_fraction(tracer)
    report = ProfileReport(
        config=config,
        result=result,
        tracer=tracer,
        wallclock_s=wallclock,
        coverage=span_coverage(tracer),
        rows=rows,
        machine_name=machine_name,
        metrics=solve_metrics(
            result.recorder, tracer, agglomerator=solver.agglomerator
        ).snapshot(),
        wait_s=wait_s,
        wait_fraction=wait_frac,
    )
    if trace_path is not None:
        write_chrome_trace(
            tracer,
            trace_path,
            metadata={
                "tool": "repro profile",
                "global_cells": config.global_cells,
                "num_levels": config.num_levels,
                "status": result.status,
            },
        )
    return report
