"""Observability: span tracing, metrics, and profiling reports.

* :mod:`~repro.obs.tracer` — hierarchical wall-clock spans and
  zero-duration instants with a zero-overhead null fast path;
* :mod:`~repro.obs.chrome_trace` — Chrome trace-event JSON export
  (``chrome://tracing`` / Perfetto) plus the schema validator;
* :mod:`~repro.obs.aggregate` — per-level, per-op ``TimingStat`` rows
  from measured spans, side-by-side with the machine model;
* :mod:`~repro.obs.metrics` — counters/gauges bridging the event
  :class:`~repro.instrument.Recorder` into one snapshot;
* :mod:`~repro.obs.profile` — the ``python -m repro profile`` core;
* :mod:`~repro.obs.rank` — rank x rank traffic matrices, per-rank time
  breakdowns, and per-V-cycle critical paths from the per-rank span
  timelines (the ``python -m repro commviz`` core);
* :mod:`~repro.obs.ledger` — the persistent performance ledger behind
  ``python -m repro perfgate`` (imported lazily; see the module).
"""

from repro.obs.aggregate import (
    aggregate_by_level_op,
    measured_vs_model_rows,
    render_measured_vs_model,
    span_coverage,
    total_by_level_op,
)
from repro.obs.chrome_trace import (
    to_chrome_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry, solve_metrics
from repro.obs.profile import ProfileReport, profile_solve
from repro.obs.rank import (
    CommMatrix,
    CriticalPath,
    PathStep,
    critical_paths,
    fit_message_model,
    rank_time_breakdown,
    traffic_matrix,
)
from repro.obs.tracer import (
    NULL_TRACER,
    InstantRecord,
    NullTracer,
    SpanRecord,
    Tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanRecord",
    "InstantRecord",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "aggregate_by_level_op",
    "total_by_level_op",
    "span_coverage",
    "measured_vs_model_rows",
    "render_measured_vs_model",
    "MetricsRegistry",
    "solve_metrics",
    "ProfileReport",
    "profile_solve",
    "CommMatrix",
    "CriticalPath",
    "PathStep",
    "traffic_matrix",
    "rank_time_breakdown",
    "critical_paths",
    "fit_message_model",
]
