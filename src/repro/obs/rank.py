"""Rank-resolved communication analysis over per-rank span timelines.

The tracing layer (:meth:`~repro.obs.tracer.Tracer.child`) gives every
simulated rank its own timeline: each ``isend``/``irecv``/``unpack``/
``retransmit`` lands as a span on the rank doing the work, attributed
with ``(src, dst, tag, bytes, seq)`` and the multigrid level.  This
module turns those timelines into the three communication views the
``repro commviz`` command renders:

* :func:`traffic_matrix` — the rank x rank matrix of messages, bytes
  and retransmissions (per level and in total), cross-checkable against
  :attr:`~repro.comm.simmpi.SimComm.bytes_by_pair`;
* :func:`rank_time_breakdown` — seconds per span name per rank, the
  "who spends their time where" table;
* :func:`critical_paths` — per V-cycle, the longest dependency chain
  through the span DAG (same-rank sequential edges plus matched
  send -> recv edges), priced against the network model's ``alpha +
  n/beta`` cost so measured chains can be compared with what the model
  predicts for the same messages.

The matched-edge construction relies on the lockstep execution order:
all sends of an exchange are posted before any receive completes, so a
send span always starts (and ends) before its matching receive span and
sorting by start time is a valid topological order of the DAG.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.tracer import SpanRecord, Tracer

#: span names that represent one wire transmission by the *sender*
_SEND_NAMES = ("isend", "retransmit")
#: span names counted as communication work in the breakdown
COMM_SPAN_NAMES = ("isend", "irecv", "unpack", "retransmit")


@dataclass
class CommMatrix:
    """Rank x rank traffic, totalled and per multigrid level.

    ``messages[src][dst]`` counts transmissions (retransmissions
    included, matching :class:`~repro.comm.simmpi.SimComm`'s
    ``sent_messages``/``bytes_by_pair`` accounting); ``nbytes`` sums
    payload bytes the same way; ``retransmissions`` counts only the
    resends.  ``level_messages``/``level_nbytes`` split the totals by
    the exchange's multigrid level (-1 when the caller did not tag one).
    """

    size: int
    messages: np.ndarray
    nbytes: np.ndarray
    retransmissions: np.ndarray
    level_messages: dict[int, np.ndarray] = field(default_factory=dict)
    level_nbytes: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def total_messages(self) -> int:
        return int(self.messages.sum())

    @property
    def total_bytes(self) -> int:
        return int(self.nbytes.sum())

    @property
    def total_retransmissions(self) -> int:
        return int(self.retransmissions.sum())

    def levels(self) -> list[int]:
        """The multigrid levels traffic was observed on, ascending."""
        return sorted(self.level_messages)


def _infer_size(tracer: Tracer) -> int:
    """Smallest rank count covering every child timeline and endpoint."""
    hi = -1
    for rank, child in tracer.children.items():
        hi = max(hi, rank)
        for s in child.spans:
            hi = max(hi, s.attrs.get("src", -1), s.attrs.get("dst", -1))
    return hi + 1


def traffic_matrix(tracer: Tracer, size: int | None = None) -> CommMatrix:
    """Aggregate per-rank send spans into a :class:`CommMatrix`.

    Only sender-side spans (``isend``, ``retransmit``) are counted, so
    a delivered message contributes exactly once even though it also
    appears as an ``irecv`` span on the receiver's timeline — which is
    what makes the result directly comparable with the simulator's own
    ``bytes_by_pair`` ledger.
    """
    n = _infer_size(tracer) if size is None else int(size)
    if n < 1:
        raise ValueError("no per-rank spans recorded and no size given")
    messages = np.zeros((n, n), dtype=np.int64)
    nbytes = np.zeros((n, n), dtype=np.int64)
    retrans = np.zeros((n, n), dtype=np.int64)
    level_messages: dict[int, np.ndarray] = {}
    level_nbytes: dict[int, np.ndarray] = {}
    for child in tracer.children.values():
        for s in child.spans:
            if s.name not in _SEND_NAMES:
                continue
            src, dst = s.attrs["src"], s.attrs["dst"]
            if not (0 <= src < n and 0 <= dst < n):
                raise ValueError(
                    f"span {s.name!r} endpoint ({src}->{dst}) out of range "
                    f"for size {n}"
                )
            b = int(s.attrs.get("bytes", 0))
            messages[src, dst] += 1
            nbytes[src, dst] += b
            if s.name == "retransmit":
                retrans[src, dst] += 1
            lev = int(s.attrs.get("l", -1))
            if lev not in level_messages:
                level_messages[lev] = np.zeros((n, n), dtype=np.int64)
                level_nbytes[lev] = np.zeros((n, n), dtype=np.int64)
            level_messages[lev][src, dst] += 1
            level_nbytes[lev][src, dst] += b
    return CommMatrix(
        size=n,
        messages=messages,
        nbytes=nbytes,
        retransmissions=retrans,
        level_messages=level_messages,
        level_nbytes=level_nbytes,
    )


def rank_time_breakdown(tracer: Tracer) -> dict[int, dict[str, float]]:
    """Seconds spent per span name on each rank's timeline.

    ``{rank: {span_name: total_seconds}}``, ranks ascending.  Covers
    every span recorded on the child timelines (communication plus
    e.g. the engine's per-rank ``adopt-rank`` copies), so the table is
    a complete account of attributed per-rank work.
    """
    out: dict[int, dict[str, float]] = {}
    for rank in sorted(tracer.children):
        by_name: dict[str, float] = {}
        for s in tracer.children[rank].spans:
            by_name[s.name] = by_name.get(s.name, 0.0) + s.duration
        out[rank] = by_name
    return out


# ----------------------------------------------------------------------
# critical path
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PathStep:
    """One span on a critical path."""

    rank: int
    name: str
    level: int
    nbytes: int
    start_s: float
    duration_s: float


@dataclass
class CriticalPath:
    """The longest dependency chain through one V-cycle's comm spans.

    ``duration_s`` sums the chain's span durations; because the chain's
    spans are pairwise disjoint intervals inside the V-cycle window,
    it is always bounded by ``window_s``, the measured duration of the
    enclosing ``vcycle`` root span.  ``model_s`` is the network model's
    ``alpha + n/beta`` price for the same chain (None without a
    machine): each distinct wire message on the path once, plus the
    timeout-and-resend cost of any retransmission.
    """

    vcycle: int
    window_s: float
    duration_s: float
    steps: list[PathStep]
    model_s: float | None = None

    @property
    def comm_bytes(self) -> int:
        return sum(s.nbytes for s in self.steps)


def _message_key(span: SpanRecord) -> tuple:
    a = span.attrs
    return (a.get("src"), a.get("dst"), a.get("tag"), a.get("seq"))


def _path_model_s(steps: list[PathStep], raw: list[SpanRecord], machine) -> float:
    """Price a chain's communication with the network model."""
    from repro.machines.network import message_time, retransmit_time

    seen: set[tuple] = set()
    total = 0.0
    for step, span in zip(steps, raw):
        if step.name == "retransmit":
            total += retransmit_time(machine, step.nbytes)
        elif step.name in ("isend", "irecv"):
            key = _message_key(span)
            if key not in seen:
                seen.add(key)
                total += message_time(machine, step.nbytes)
    return total


def critical_paths(tracer: Tracer, machine=None) -> list[CriticalPath]:
    """The longest per-rank dependency chain inside each V-cycle.

    Builds, per ``vcycle`` root span, a DAG over every child-timeline
    span in the window: consecutive spans on the same rank are ordered
    (a rank is one logical execution stream), and an ``irecv`` depends
    on the ``isend``/``retransmit`` that put its ``(src, dst, tag,
    seq)`` envelope on the wire.  Spans sorted by start time are a
    topological order (lockstep posts every send before any matching
    wait), so one forward longest-path DP pass suffices.
    """
    paths: list[CriticalPath] = []
    events: list[tuple[int, SpanRecord]] = [
        (rank, s)
        for rank, child in sorted(tracer.children.items())
        for s in child.ordered_spans()
    ]
    for window in tracer.find("vcycle"):
        inside = sorted(
            (
                (rank, s)
                for rank, s in events
                if window.start <= s.start and s.end <= window.end
            ),
            key=lambda rs: (rs[1].start, rs[0]),
        )
        if not inside:
            continue
        # longest-path DP over the implicit DAG
        dist: list[float] = []
        pred: list[int | None] = []
        last_on_rank: dict[int, int] = {}
        sends: dict[tuple, int] = {}
        for i, (rank, s) in enumerate(inside):
            best, best_pred = 0.0, None
            j = last_on_rank.get(rank)
            if j is not None and dist[j] > best:
                best, best_pred = dist[j], j
            if s.name == "irecv":
                j = sends.get(_message_key(s))
                if j is not None and dist[j] > best:
                    best, best_pred = dist[j], j
            dist.append(best + s.duration)
            pred.append(best_pred)
            last_on_rank[rank] = i
            if s.name in _SEND_NAMES:
                sends[_message_key(s)] = i
        end = int(np.argmax(dist))
        chain: list[int] = []
        k: int | None = end
        while k is not None:
            chain.append(k)
            k = pred[k]
        chain.reverse()
        steps = [
            PathStep(
                rank=rank,
                name=s.name,
                level=int(s.attrs.get("l", -1)),
                nbytes=int(s.attrs.get("bytes", 0)),
                start_s=s.start,
                duration_s=s.duration,
            )
            for rank, s in (inside[i] for i in chain)
        ]
        raw = [inside[i][1] for i in chain]
        paths.append(
            CriticalPath(
                vcycle=int(window.attrs.get("v", len(paths))),
                window_s=window.duration,
                duration_s=float(dist[end]),
                steps=steps,
                model_s=(
                    _path_model_s(steps, raw, machine)
                    if machine is not None
                    else None
                ),
            )
        )
    return paths


# ----------------------------------------------------------------------
# communication–computation overlap
# ----------------------------------------------------------------------
@dataclass
class OverlapRow:
    """Exposed-vs-hidden communication accounting for one V-cycle.

    Built from the root timeline's split-phase spans: a synchronous
    ``exchange`` is fully exposed; an overlapped exchange contributes
    its ``exchange.begin`` + ``exchange.finish`` machinery time, of
    which up to the concurrent ``interior`` compute time counts as
    hidden (the paper's overlap claim: in-flight wire time behind
    interior work costs nothing).  Because the simulation executes the
    phases sequentially in one process, ``hidden_s`` is the *model*
    credit — ``min(interior, begin + finish)`` per exchange — not a
    second wall clock.
    """

    vcycle: int
    sync_exchanges: int
    overlapped_exchanges: int
    comm_s: float
    exposed_s: float
    hidden_s: float
    interior_s: float

    #: exposed seconds belonging to overlapped exchanges only (sync
    #: exchanges are exposed by definition and excluded here)
    _overlapped_exposed_s: float = 0.0

    @property
    def efficiency(self) -> float | None:
        """Hidden fraction of the overlapped machinery time (None when
        nothing was overlapped this cycle)."""
        denom = self.hidden_s + self._overlapped_exposed_s
        if self.overlapped_exchanges == 0 or denom <= 0.0:
            return None
        return self.hidden_s / denom


def _overlap_scan(spans) -> tuple[int, int, float, float, float, float, float]:
    """One pass of the begin → interior → finish state machine.

    ``spans`` is a start-sorted iterable of root-timeline spans.
    Overlap contexts never nest (the driver finishes each exchange
    before the next begins), so a single pending ``begin`` suffices;
    ``interior`` spans seen while one is pending are the compute that
    ran against the in-flight envelopes.
    """
    sync = overlapped = 0
    comm = exposed = hidden = interior_total = ov_exposed = 0.0
    pending = None
    interior_acc = 0.0
    for s in spans:
        if s.name == "exchange":
            sync += 1
            comm += s.duration
            exposed += s.duration
        elif s.name == "exchange.begin":
            pending = s
            interior_acc = 0.0
        elif s.name == "interior":
            # a degenerate partition (fewer than 3 bricks per dim)
            # emits zero-slot interior passes: span overhead, not
            # compute — it hides nothing
            if s.attrs.get("slots", 0):
                interior_total += s.duration
                if pending is not None:
                    interior_acc += s.duration
        elif s.name == "exchange.finish" and pending is not None:
            machinery = pending.duration + s.duration
            hid = min(interior_acc, machinery)
            overlapped += 1
            comm += machinery
            hidden += hid
            exposed += machinery - hid
            ov_exposed += machinery - hid
            pending = None
    return sync, overlapped, comm, exposed, hidden, interior_total, ov_exposed


def overlap_report(tracer: Tracer) -> list[OverlapRow]:
    """Per-V-cycle exposed-vs-hidden communication rows.

    Scans each ``vcycle`` window's root-timeline spans with
    :func:`_overlap_scan`; the ``repro commviz`` overlap panel renders
    the result next to the traffic matrix.
    """
    events = sorted(tracer.spans, key=lambda s: s.start)
    rows: list[OverlapRow] = []
    for window in tracer.find("vcycle"):
        inside = [
            s
            for s in events
            if s is not window and window.start <= s.start and s.end <= window.end
        ]
        sync, ovl, comm, exp, hid, interior, ov_exp = _overlap_scan(inside)
        if sync == 0 and ovl == 0:
            continue
        row = OverlapRow(
            vcycle=int(window.attrs.get("v", len(rows))),
            sync_exchanges=sync,
            overlapped_exchanges=ovl,
            comm_s=comm,
            exposed_s=exp,
            hidden_s=hid,
            interior_s=interior,
        )
        row._overlapped_exposed_s = ov_exp
        rows.append(row)
    return rows


def overlap_efficiency(tracer: Tracer) -> float | None:
    """Hidden fraction of all overlapped exchange machinery time.

    ``sum(min(interior, begin + finish)) / sum(begin + finish)`` over
    every overlapped exchange on the root timeline (V-cycle bodies and
    residual checks alike); None when the solve never overlapped.
    """
    events = sorted(tracer.spans, key=lambda s: s.start)
    _, ovl, _, _, hidden, _, ov_exposed = _overlap_scan(events)
    if ovl == 0:
        return None
    denom = hidden + ov_exposed
    return hidden / denom if denom > 0.0 else 1.0


def render_overlap_report(rows: list[OverlapRow]) -> str:
    """The commviz exposed-vs-hidden table."""
    if not rows:
        return "overlap: no exchanges traced"
    lines = [
        "communication overlap (exposed vs hidden, per V-cycle):",
        "  cycle  sync  ovl   comm_s      exposed_s   hidden_s    eff",
    ]
    for r in rows:
        eff = r.efficiency
        lines.append(
            f"  {r.vcycle:>5} {r.sync_exchanges:>5} {r.overlapped_exchanges:>4} "
            f"  {r.comm_s:<11.4g} {r.exposed_s:<11.4g} {r.hidden_s:<11.4g} "
            f"{'-' if eff is None else format(eff, '.1%')}"
        )
    total_comm = sum(r.comm_s for r in rows)
    total_exp = sum(r.exposed_s for r in rows)
    total_hid = sum(r.hidden_s for r in rows)
    lines.append(
        f"  total comm {total_comm:.4g}s  exposed {total_exp:.4g}s  "
        f"hidden {total_hid:.4g}s"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# model fit
# ----------------------------------------------------------------------
def message_time_samples(tracer: Tracer) -> tuple[np.ndarray, np.ndarray]:
    """Measured ``(bytes, seconds)`` pairs of every send span.

    The raw series behind the commviz model-fit panel: one sample per
    ``isend``/``retransmit`` across all rank timelines.
    """
    xs, ts = [], []
    for child in tracer.children.values():
        for s in child.spans:
            if s.name in _SEND_NAMES and s.attrs.get("bytes", 0) > 0:
                if s.duration > 0:
                    xs.append(float(s.attrs["bytes"]))
                    ts.append(float(s.duration))
    return np.asarray(xs), np.asarray(ts)


def fit_message_model(tracer: Tracer):
    """OLS fit of measured send times to ``t = alpha + n/beta``.

    Returns a
    :class:`~repro.perf.linear_model.LatencyBandwidthFit`, or None when
    the trace holds fewer than two distinct message sizes (the fit
    needs a slope).
    """
    from repro.perf.linear_model import fit_from_times

    xs, ts = message_time_samples(tracer)
    if len(np.unique(xs)) < 2:
        return None
    return fit_from_times(xs, ts)
