"""Hierarchical wall-clock span tracer for the solve hot path.

The paper's whole analysis hangs off per-level, per-operation wall
times (``level 0 applyOp [min, avg, max] (sigma)``); everything in
:mod:`repro.perf` *formats* such rows from modelled times, but until
now nothing in the repo *measured* them.  A :class:`Tracer` records a
tree of nested spans — ``solve`` → ``vcycle`` → ``level`` → ``smooth``
→ ``applyOp`` — each with a ``perf_counter`` start and duration plus
free-form attributes, and zero-duration *instants* (fault injections,
detections, recovery actions) that land inside whatever span was open
when they fired.

Tracing is strictly opt-in.  Every instrumented call site holds a
tracer reference that defaults to the shared :data:`NULL_TRACER`, whose
``span()`` returns one preallocated no-op context manager — the
disabled path costs one attribute lookup and one method call per span,
measured at well under 2% of the tier-1 solve
(``benchmarks/bench_trace_overhead.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class SpanRecord:
    """One finished span.

    ``start``/``duration`` are seconds on the tracer's monotonic clock
    (``start`` is relative to the tracer's construction, so traces from
    one run share an epoch).  ``index`` is the span's *opening* order —
    a depth-first preorder of the span tree — and ``parent`` is the
    opening index of the enclosing span (``None`` for roots).
    """

    name: str
    start: float
    duration: float
    depth: int
    index: int
    parent: int | None
    attrs: dict = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def contains(self, t: float) -> bool:
        """Whether clock offset ``t`` falls inside this span."""
        return self.start <= t <= self.end


@dataclass(frozen=True)
class InstantRecord:
    """A zero-duration event (e.g. a fault) at one clock offset.

    ``parent`` is the opening index of the span that was live when the
    instant fired (``None`` when none was open), which is what lets a
    ``fault:detect_drop`` line up with the exchange it interrupted.
    """

    name: str
    timestamp: float
    parent: int | None
    attrs: dict = field(default_factory=dict)


class _NullSpan:
    """The no-op context manager the null tracer hands out.

    One shared instance; ``__enter__``/``__exit__`` do nothing, so a
    disabled call site costs a dict-free method call and nothing else.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Instrumented components default to the shared :data:`NULL_TRACER`
    so the un-traced solve path never branches on ``tracer is None``.
    """

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **attrs) -> None:
        return None

    def child(self, rank: int) -> "NullTracer":
        """Per-rank child of the disabled tracer: itself."""
        return self

    def fork(self, key) -> "NullTracer":
        """Sibling timeline of the disabled tracer: itself."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTracer()"


#: The shared disabled tracer every instrumented call site defaults to.
NULL_TRACER = NullTracer()


class _SpanContext:
    """Context manager for one open span of a recording tracer."""

    __slots__ = ("tracer", "name", "attrs", "start", "index", "parent", "depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_SpanContext":
        tr = self.tracer
        self.index = tr._next_index
        tr._next_index += 1
        stack = tr._stack
        self.parent = stack[-1].index if stack else None
        self.depth = len(stack)
        stack.append(self)
        self.start = tr._clock() - tr._epoch
        return self

    def __exit__(self, *exc) -> None:
        tr = self.tracer
        end = tr._clock() - tr._epoch
        popped = tr._stack.pop()
        if popped is not self:  # pragma: no cover - defensive
            raise RuntimeError(
                f"span {self.name!r} closed out of order (expected "
                f"{popped.name!r} to close first)"
            )
        tr.spans.append(
            SpanRecord(
                name=self.name,
                start=self.start,
                duration=end - self.start,
                depth=self.depth,
                index=self.index,
                parent=self.parent,
                attrs=self.attrs,
            )
        )


class Tracer:
    """Records a tree of wall-clock spans plus zero-duration instants.

    Use as::

        tracer = Tracer()
        with tracer.span("vcycle", v=3):
            with tracer.span("level", l=0):
                with tracer.span("smooth"):
                    ...
        tracer.instant("fault:detect_drop", rank=1)

    Spans close in LIFO order (enforced); ``spans`` holds finished
    spans in *completion* order, ``ordered_spans()`` re-sorts into the
    opening (preorder) order most consumers want.  ``clock`` is
    injectable for deterministic tests.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self._next_index = 0
        self._stack: list[_SpanContext] = []
        self.spans: list[SpanRecord] = []
        self.instants: list[InstantRecord] = []
        #: per-rank child tracers created by :meth:`child`, keyed by rank
        self.children: dict[int, "Tracer"] = {}
        #: the rank this tracer records for (None for the root timeline)
        self.rank: int | None = None
        #: sibling logical timelines created by :meth:`fork`, keyed by
        #: the caller-chosen key, in creation order
        self.forks: dict = {}
        #: the key this tracer was forked under (None for the root)
        self.fork_key = None

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a nested span; use as a ``with`` context manager."""
        return _SpanContext(self, name, attrs)

    def child(self, rank: int) -> "Tracer":
        """The per-rank child tracer for ``rank`` (created on first use).

        Children share this tracer's clock *and* epoch, so their span
        timestamps are directly comparable with the root timeline's —
        which is what lets the critical-path extractor order a send on
        one rank against the matching receive on another, and what lets
        the Chrome exporter emit each rank as its own pid on a common
        time axis.  Children have their own span stacks (one logical
        timeline per rank) and their own preorder indices.
        """
        tracer = self.children.get(rank)
        if tracer is None:
            tracer = Tracer(clock=self._clock)
            tracer._epoch = self._epoch
            tracer.rank = int(rank)
            self.children[rank] = tracer
        return tracer

    def fork(self, key) -> "Tracer":
        """A sibling logical timeline for ``key`` (created on first use).

        The span stack and preorder indices of a :class:`Tracer` encode
        *one* logical timeline: a second root span opened while another
        is still live would nest under it, and two interleaved solves
        sharing one tracer would therefore corrupt each other's parent
        links and Chrome export ordering.  A *fork* is a separate
        timeline — its own stack, indices and records — that shares
        this tracer's clock **and** epoch, so timestamps stay directly
        comparable and the Chrome exporter can emit each fork as its
        own thread on one common time axis.  A long-lived service forks
        once per solve/cohort and interleaves them freely.
        """
        tracer = self.forks.get(key)
        if tracer is None:
            tracer = Tracer(clock=self._clock)
            tracer._epoch = self._epoch
            tracer.fork_key = key
            self.forks[key] = tracer
        return tracer

    def instant(self, name: str, **attrs) -> None:
        """Record a zero-duration event inside the currently open span."""
        parent = self._stack[-1].index if self._stack else None
        self.instants.append(
            InstantRecord(
                name=name,
                timestamp=self._clock() - self._epoch,
                parent=parent,
                attrs=attrs,
            )
        )

    # ------------------------------------------------------------------
    @property
    def open_depth(self) -> int:
        """Number of currently open (unfinished) spans."""
        return len(self._stack)

    def ordered_spans(self) -> list[SpanRecord]:
        """Finished spans in opening (depth-first preorder) order."""
        return sorted(self.spans, key=lambda s: s.index)

    def roots(self) -> list[SpanRecord]:
        """Finished top-level spans in opening order."""
        return [s for s in self.ordered_spans() if s.parent is None]

    def children_of(self, span: SpanRecord) -> list[SpanRecord]:
        """Direct children of ``span`` in opening order."""
        return [s for s in self.ordered_spans() if s.parent == span.index]

    def find(self, name: str) -> list[SpanRecord]:
        """All finished spans with the given name, in opening order."""
        return [s for s in self.ordered_spans() if s.name == name]

    def total_time(self) -> float:
        """Summed duration of the root spans."""
        return sum(s.duration for s in self.roots())

    def clear(self) -> None:
        """Drop all finished records (open spans stay on the stack).

        Child tracers are cleared recursively but stay registered, so
        call sites holding a child reference keep recording into it.
        """
        self.spans.clear()
        self.instants.clear()
        for tracer in self.children.values():
            tracer.clear()
        for tracer in self.forks.values():
            tracer.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer(spans={len(self.spans)}, instants={len(self.instants)}, "
            f"open={self.open_depth})"
        )
