"""Persistent performance ledger with noise-aware regression gating.

Benchmark runs come and go; the repo's perf trajectory should not.  A
:class:`PerfLedger` is an append-only store of schema-versioned JSONL
entries — one line per benchmark run — under
``benchmarks/results/ledger/``, so committed history accumulates across
PRs and any checkout can ask "is this candidate slower than what we
have recorded?".

Entries are flat ``{metric_name: value}`` maps where every value is a
wallclock measure (lower is better): the nested benchmark payloads
(``BENCH_pr2.json``'s ``end_to_end_ms.*`` / ``micro.*.*``) and
``repro profile`` reports are flattened on ingest.  Comparison is
noise-aware in two ways:

* the baseline for each metric is the **min over the last k entries**
  (min-of-k): the fastest observed time is the least noisy estimate of
  what the machine can do, and a window keeps one ancient outlier from
  gating forever — and the min is **robust**: window values flagged by
  the MAD outlier test (:func:`repro.perf.stats.mad_outliers`) are
  excluded, so one corrupt or freak-fast entry cannot set an
  impossible bar;
* a candidate only *regresses* when it exceeds the baseline by a
  **relative threshold** (default 15%), absorbing run-to-run jitter;
* with :func:`metric_dispersions` / :func:`noise_thresholds` the
  threshold becomes **noise-scaled**: each metric's tolerated slowdown
  is ``max(floor, scale * rel_IQR)`` measured from its own history, so
  a regression must clear the series' measured noise floor rather than
  a fixed percentage — quiet metrics gate tightly, noisy ones do not
  flake.

``python -m repro perfgate`` wraps this into an exit code: non-zero on
regression (unless ``--warn-only``), zero on a clean run — the CI
perf-gate job and local pre-merge checks share the same path.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

#: bump when the entry layout changes; readers reject unknown versions
LEDGER_SCHEMA_VERSION = 1

#: default relative slowdown tolerated before a metric counts as regressed
DEFAULT_THRESHOLD = 0.15

#: default min-of-k window for the per-metric baseline
DEFAULT_WINDOW = 3

#: default multiplier on a metric's historical rel-IQR when the gate
#: runs noise-scaled: the tolerated slowdown is
#: ``max(floor, NOISE_SCALE * rel_iqr)``
NOISE_SCALE = 2.0


@dataclass
class LedgerEntry:
    """One benchmark run: flat lower-is-better metrics plus context.

    ``metrics`` maps dotted metric names (``end_to_end_ms.full``,
    ``micro.fused_vs_unfused_us.fused_engine``) to wallclock values;
    ``context`` carries the non-gated run description (problem size,
    rounds, quick flag, machine).  ``recorded_at`` is an ISO timestamp,
    empty for deterministic test entries.
    """

    benchmark: str
    metrics: dict[str, float]
    source: str = "bench"
    context: dict = field(default_factory=dict)
    recorded_at: str = ""
    schema: int = LEDGER_SCHEMA_VERSION

    def to_json(self) -> dict:
        return {
            "schema": self.schema,
            "benchmark": self.benchmark,
            "source": self.source,
            "recorded_at": self.recorded_at,
            "context": self.context,
            "metrics": self.metrics,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "LedgerEntry":
        schema = obj.get("schema")
        if schema != LEDGER_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported ledger schema {schema!r} "
                f"(this reader understands {LEDGER_SCHEMA_VERSION})"
            )
        if not obj.get("benchmark") or not isinstance(obj.get("metrics"), dict):
            raise ValueError("ledger entry needs 'benchmark' and 'metrics'")
        metrics = {}
        for name, value in obj["metrics"].items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"metric {name!r} is not numeric: {value!r}")
            metrics[str(name)] = float(value)
        return cls(
            benchmark=str(obj["benchmark"]),
            metrics=metrics,
            source=str(obj.get("source", "bench")),
            context=dict(obj.get("context", {})),
            recorded_at=str(obj.get("recorded_at", "")),
            schema=int(schema),
        )


class PerfLedger:
    """Append-only JSONL store, one file per benchmark name."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    def path(self, benchmark: str) -> Path:
        return self.root / f"{benchmark}.jsonl"

    def record(self, entry: LedgerEntry) -> Path:
        """Append one entry; creates the ledger directory on first use."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(entry.benchmark)
        with open(path, "a") as fh:
            fh.write(json.dumps(entry.to_json(), sort_keys=True) + "\n")
        return path

    def entries(self, benchmark: str) -> list[LedgerEntry]:
        """All recorded entries for a benchmark, oldest first."""
        path = self.path(benchmark)
        if not path.exists():
            return []
        out = []
        with open(path) as fh:
            for k, line in enumerate(fh):
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(LedgerEntry.from_json(json.loads(line)))
                except (json.JSONDecodeError, ValueError) as exc:
                    raise ValueError(f"{path}:{k + 1}: {exc}") from exc
        return out

    def benchmarks(self) -> list[str]:
        """Benchmark names with a ledger file, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.jsonl"))

    def baseline_metrics(
        self,
        benchmark: str,
        window: int = DEFAULT_WINDOW,
        robust: bool = True,
    ) -> dict[str, float]:
        """Per-metric min over the last ``window`` entries (min-of-k).

        With ``robust`` (the default) the min skips window values the
        MAD test flags as outliers, so one corrupt entry — a truncated
        run that recorded 5 ms against a 100 ms series — cannot poison
        the baseline and gate every honest candidate as a regression.
        """
        recent = self.entries(benchmark)[-max(window, 1):]
        return baseline_from_entries(recent, robust=robust)


def baseline_from_entries(
    entries: list[LedgerEntry], robust: bool = True
) -> dict[str, float]:
    """Min-of-k over already-selected entries (see ``baseline_metrics``)."""
    series: dict[str, list[float]] = {}
    for entry in entries:
        for name, value in entry.metrics.items():
            series.setdefault(name, []).append(value)
    best: dict[str, float] = {}
    for name, values in series.items():
        kept = values
        if robust:
            from repro.perf.stats import mad_outliers

            mask = mad_outliers(values)
            kept = [v for v, bad in zip(values, mask) if not bad] or values
        best[name] = min(kept)
    return best


@dataclass(frozen=True)
class MetricDispersion:
    """One metric's spread across a ledger window (cross-run noise)."""

    name: str
    count: int
    median: float
    iqr: float
    rel_iqr: float
    #: values the MAD test flagged — excluded from the robust baseline
    outliers: tuple[float, ...] = ()


def metric_dispersions(
    entries: list[LedgerEntry], window: int = DEFAULT_WINDOW
) -> dict[str, MetricDispersion]:
    """Per-metric dispersion over the last ``window`` entries.

    The rel-IQR here is the measured run-to-run noise floor of each
    metric — what :func:`noise_thresholds` scales the gate by.
    """
    recent = entries[-max(window, 1):]
    series: dict[str, list[float]] = {}
    for entry in recent:
        for name, value in entry.metrics.items():
            series.setdefault(name, []).append(value)
    out: dict[str, MetricDispersion] = {}
    for name, values in series.items():
        from repro.perf.stats import SampleStats, mad_outliers

        stats = SampleStats.from_samples(values)
        flagged = tuple(
            v for v, bad in zip(values, mad_outliers(values)) if bad
        )
        out[name] = MetricDispersion(
            name=name,
            count=len(values),
            median=stats.median,
            iqr=stats.iqr,
            rel_iqr=stats.rel_iqr,
            outliers=flagged,
        )
    return out


def noise_thresholds(
    dispersions: dict[str, MetricDispersion],
    floor: float = DEFAULT_THRESHOLD,
    scale: float = NOISE_SCALE,
) -> dict[str, float]:
    """Per-metric tolerated slowdown: ``max(floor, scale * rel_iqr)``.

    A metric whose history is quiet gates at the floor; a noisy one
    gets a proportionally wider band, so the gate's false-positive
    rate stays flat across metrics instead of tracking their jitter.
    """
    return {
        name: max(floor, scale * d.rel_iqr)
        for name, d in dispersions.items()
    }


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetricComparison:
    """One metric's candidate-vs-baseline verdict."""

    name: str
    baseline: float | None
    candidate: float | None
    ratio: float | None  # candidate / baseline
    status: str  # ok | regression | improvement | new | missing
    #: the tolerated relative slowdown this row was judged against
    #: (differs per metric when the gate runs noise-scaled)
    threshold: float | None = None


@dataclass
class ComparisonResult:
    """The gate's verdict over every metric."""

    benchmark: str
    threshold: float
    rows: list[MetricComparison]
    #: True when per-metric noise-scaled thresholds were applied
    noise_scaled: bool = False

    @property
    def regressions(self) -> list[MetricComparison]:
        return [r for r in self.rows if r.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        mode = (
            f"noise-scaled thresholds, floor {self.threshold:.0%}"
            if self.noise_scaled
            else f"threshold {self.threshold:.0%}"
        )
        lines = [
            f"perf gate: {self.benchmark} ({mode}, min-of-k baseline)",
            f"  {'metric':<44}{'baseline':>12}{'candidate':>12}"
            f"{'ratio':>8}{'thr':>7}  status",
        ]
        for r in self.rows:
            base = f"{r.baseline:.2f}" if r.baseline is not None else "-"
            cand = f"{r.candidate:.2f}" if r.candidate is not None else "-"
            ratio = f"{r.ratio:.3f}" if r.ratio is not None else "-"
            thr = f"{r.threshold:.0%}" if r.threshold is not None else "-"
            lines.append(
                f"  {r.name:<44}{base:>12}{cand:>12}{ratio:>8}{thr:>7}"
                f"  {r.status}"
            )
        verdict = (
            "OK — no regressions"
            if self.ok
            else f"REGRESSION in {len(self.regressions)} metric(s)"
        )
        lines.append(f"  => {verdict}")
        return "\n".join(lines)


def compare_metrics(
    baseline: dict[str, float],
    candidate: dict[str, float],
    benchmark: str = "",
    threshold: float = DEFAULT_THRESHOLD,
    thresholds: dict[str, float] | None = None,
) -> ComparisonResult:
    """Gate ``candidate`` against ``baseline`` (both lower-is-better).

    A metric regresses when ``candidate > baseline * (1 + threshold)``
    and improves when ``candidate < baseline * (1 - threshold)``;
    in between is ``ok`` (noise).  Metrics only one side has are
    reported (``new`` / ``missing``) but never gate.

    ``thresholds`` (typically from :func:`noise_thresholds`) overrides
    the flat threshold per metric, but never below it: the flat value
    acts as the floor, so a zero-dispersion history cannot produce a
    hair-trigger gate.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative: {threshold}")
    rows = []
    for name in sorted(set(baseline) | set(candidate)):
        b, c = baseline.get(name), candidate.get(name)
        if b is None:
            rows.append(MetricComparison(name, None, c, None, "new"))
            continue
        if c is None:
            rows.append(MetricComparison(name, b, None, None, "missing"))
            continue
        thr = threshold
        if thresholds is not None:
            thr = max(threshold, thresholds.get(name, threshold))
        ratio = c / b if b > 0 else float("inf") if c > 0 else 1.0
        if ratio > 1.0 + thr:
            status = "regression"
        elif ratio < 1.0 - thr:
            status = "improvement"
        else:
            status = "ok"
        rows.append(MetricComparison(name, b, c, ratio, status, thr))
    return ComparisonResult(
        benchmark=benchmark,
        threshold=threshold,
        rows=rows,
        noise_scaled=thresholds is not None,
    )


# ----------------------------------------------------------------------
# ingest
# ----------------------------------------------------------------------
def _flatten(prefix: str, obj, out: dict[str, float]) -> None:
    if isinstance(obj, dict):
        for key, value in obj.items():
            _flatten(f"{prefix}.{key}" if prefix else str(key), value, out)
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[prefix] = float(obj)


def entry_from_bench_payload(
    payload: dict, source: str = "bench", recorded_at: str = ""
) -> LedgerEntry:
    """Flatten a benchmark payload (the ``BENCH_pr2.json`` shape).

    ``end_to_end_ms.*`` and ``micro.*.*`` become dotted metrics;
    ``speedup`` is derived (higher-is-better) so it goes to context,
    alongside the problem description and round counts.
    """
    if "benchmark" not in payload:
        raise ValueError("bench payload needs a 'benchmark' name")
    metrics: dict[str, float] = {}
    for section in ("end_to_end_ms", "micro"):
        if section in payload:
            _flatten(section, payload[section], metrics)
    if not metrics:
        raise ValueError("bench payload has no timing sections to ingest")
    context = {
        key: payload[key]
        for key in ("problem", "rounds", "quick", "speedup",
                    "bit_identical_histories")
        if key in payload
    }
    return LedgerEntry(
        benchmark=str(payload["benchmark"]),
        metrics=metrics,
        source=source,
        context=context,
        recorded_at=recorded_at,
    )


def entry_from_profile(report, recorded_at: str = "") -> LedgerEntry:
    """Ingest a :class:`~repro.obs.profile.ProfileReport`.

    Wallclock plus every per-level per-op measured total become
    metrics; coverage and the machine-model column stay in context
    (coverage is higher-is-better and model times are predictions, so
    neither belongs in a lower-is-better gate).
    """
    cfg = report.config
    metrics = {"wallclock_ms": report.wallclock_s * 1e3}
    for row in report.rows:
        metrics[f"l{row['level']}.{row['op']}_ms"] = (
            row["measured_total_s"] * 1e3
        )
    return LedgerEntry(
        benchmark="profile_solve",
        metrics=metrics,
        source="profile",
        context={
            "global_cells": cfg.global_cells,
            "num_levels": cfg.num_levels,
            "num_ranks": cfg.num_ranks,
            "coverage": report.coverage,
            "machine": report.machine_name,
            "status": report.result.status,
        },
        recorded_at=recorded_at,
    )


def measure_hotpath(
    rounds: int = 3, quick: bool | None = None, overlap: bool = False
) -> LedgerEntry:
    """Measure the tier-1 end-to-end hot path as a gate candidate.

    A trimmed in-process rerun of the end-to-end section of
    ``benchmarks/bench_kernel_hotpath.py`` — interleaved best-of-
    ``rounds`` over the seed and full-engine configurations — so
    ``repro perfgate`` can produce a candidate without the benchmark
    suite.  Metric names match the bench's (``end_to_end_ms.*``), which
    is what makes the two comparable in one ledger.  ``overlap`` runs
    the same configurations under the split-phase exchange schedule
    (bit-identical numerics), gating the overlap path against the same
    baseline series — the schedule must not regress the hot path.
    """
    import time

    from repro.gmg import GMGSolver, SolverConfig

    if quick is None:
        quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    rounds = max(1, rounds if not quick else min(rounds, 2))
    tier1 = dict(global_cells=32, num_levels=3, brick_dim=4, overlap=overlap)
    modes = {
        "seed": {},
        "full": dict(halo_resident=True, fuse_kernels=True, batch_ranks=True),
    }
    best = {name: float("inf") for name in modes}
    for _ in range(rounds):
        for name, flags in modes.items():
            t0 = time.perf_counter()
            GMGSolver(SolverConfig(**tier1, **flags)).solve()
            best[name] = min(best[name], time.perf_counter() - t0)
    return LedgerEntry(
        benchmark="kernel_hotpath",
        metrics={
            f"end_to_end_ms.{name}": round(v * 1e3, 2)
            for name, v in best.items()
        },
        source="perfgate",
        context={"problem": tier1, "rounds": rounds, "quick": quick},
    )


def load_candidate(path) -> LedgerEntry:
    """Load a candidate from disk: a ledger entry or a bench payload.

    Accepts either the schema-versioned entry form (``BENCH_pr4.json``)
    or the raw nested bench payload (``BENCH_pr2.json``), making
    backfill a one-command affair.
    """
    with open(path) as fh:
        obj = json.load(fh)
    if "schema" in obj:
        return LedgerEntry.from_json(obj)
    return entry_from_bench_payload(obj)
