"""Figure 5: GStencil/s per invocation for applyOp and smooth+residual.

Across the six V-cycle levels (512^3 down to 16^3 per rank), kernel
throughput follows the latency/bandwidth model f(x) = x/(alpha + x/beta):
near the theoretical bandwidth ceiling at the finest levels, dropping
linearly once launch latency dominates.  Paper claims reproduced here:

* fitted empirical latencies land between 5 us and 20 us, NVIDIA lowest;
* the A100 applyOp ceiling is 88.75 GStencil/s (1420 GB/s / 16 B);
* smooth+residual saturates near the paper's 40 GStencil/s reference;
* NVIDIA delivers the highest throughput per process.
"""

import pytest

from benchmarks.conftest import report
from repro.harness import experiments as E
from repro.harness import reporting as R
from repro.harness.ascii_plot import plot_kernel_throughput


@pytest.mark.parametrize("op", ["applyOp", "smooth+residual"])
def test_fig5_kernel_throughput(benchmark, op):
    series = benchmark.pedantic(
        E.fig5_kernel_throughput, args=(op,), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    report(
        f"fig5_{op.replace('+', '_')}",
        R.render_fig5(series) + "\n" + plot_kernel_throughput(series),
    )

    for s in series.values():
        assert 4e-6 <= s.fit.alpha <= 21e-6
        assert s.fit.r_squared > 0.999
        rates = [r for _, r in sorted(zip(s.points, s.gstencil))]
        assert all(a < b for a, b in zip(rates, rates[1:]))
        assert max(s.gstencil) < s.ceiling_gstencil

    p = series["Perlmutter"]
    assert p.fit.alpha < series["Frontier"].fit.alpha
    assert p.fit.alpha < series["Sunspot"].fit.alpha
    assert p.fit.beta > series["Frontier"].fit.beta
    if op == "applyOp":
        assert p.ceiling_gstencil == pytest.approx(88.75)
    else:
        assert max(p.gstencil) == pytest.approx(40.0, abs=8.0)
