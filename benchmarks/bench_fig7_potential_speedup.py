"""Figure 7: potential speedup scatter.

Each (machine, operation) pair plots at (fraction of theoretical AI,
fraction of Roofline); potential speedup = 1/(x*y).  Paper claims:
NVIDIA points all within ~1.2x of ideal; MI250X mostly 1.2-1.5x with
the interpolation+increment outlier near 4x; PVC between ~1.5x and
~2x (its weakest op slightly above).
"""

from benchmarks.conftest import report
from repro.harness import experiments as E
from repro.harness import reporting as R
from repro.perf import iso_speedup_curve


def test_fig7_potential_speedup(benchmark):
    points = benchmark.pedantic(
        E.fig7_potential_speedup, rounds=5, iterations=1
    )
    report("fig7_potential_speedup", R.render_fig7(points))

    nvidia = [sp for _, _, sp in points["Perlmutter"].values()]
    assert max(nvidia) <= 1.25

    amd = points["Frontier"]
    _, _, interp = amd["interpolation+increment"]
    assert 3.0 <= interp <= 4.0
    others = [sp for op, (_, _, sp) in amd.items()
              if op != "interpolation+increment"]
    assert all(1.0 <= sp <= 1.65 for sp in others)

    intel = [sp for _, _, sp in points["Sunspot"].values()]
    assert all(1.2 <= sp <= 2.8 for sp in intel)


def test_fig7_iso_curves(benchmark):
    """The iso-speedup curves the figure overlays."""
    curves = benchmark.pedantic(
        lambda: {s: iso_speedup_curve(s) for s in (1.2, 1.5, 2.0, 4.0)},
        rounds=3,
        iterations=1,
    )
    for s, (x, y) in curves.items():
        assert ((1.0 / (x * y)) - s).max() < 1e-9
