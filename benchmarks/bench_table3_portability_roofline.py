"""Table III: performance portability Phi from Roofline fractions.

Phi is the harmonic mean of per-platform fraction-of-empirical-Roofline
efficiencies (Pennycook et al.).  Paper: per-op Phi of 76/80/83/76/55%
and an overall metric of 73%.
"""

import pytest

from benchmarks.conftest import report
from repro.harness import experiments as E
from repro.harness import reporting as R


def test_table3_portability(benchmark):
    result = benchmark.pedantic(
        E.table3_portability_roofline, rounds=5, iterations=1
    )
    report(
        "table3_portability_roofline",
        R.render_portability(result, "Table III — Phi (fraction of Roofline)"),
    )

    assert result.overall_phi == pytest.approx(0.73, abs=0.01)
    paper_per_op = {
        "applyOp": 0.76,
        "smooth": 0.80,
        "smooth+residual": 0.83,
        "restriction": 0.76,
        "interpolation+increment": 0.55,
    }
    for op, expected in paper_per_op.items():
        assert result.per_op_phi[op] == pytest.approx(expected, abs=0.01), op
    # harmonic-mean property: Phi never exceeds the best platform
    for op, effs in result.efficiencies.items():
        assert result.per_op_phi[op] <= max(effs.values())
        assert result.per_op_phi[op] >= min(effs.values())
