"""Shared benchmark-runner plumbing.

Every bench script used to carry its own copy of the same four rituals:
the ``REPRO_BENCH_QUICK`` round-cutting flag, the interleaved
best-of-N timing loop, the double-write of ``BENCH_*.json`` artifacts
(canonical copy under ``benchmarks/results/`` plus a repo-root mirror
for CI artifact pickup), and the ``REPRO_BENCH_RECORD`` dance that
stamps a ledger entry and appends it to the committed perf history.
This module is the single home for all four; the bench scripts keep
only what is actually specific to their measurement.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Callable, TypeVar

from benchmarks.conftest import RESULTS_DIR

T = TypeVar("T")

#: set ``REPRO_BENCH_QUICK=1`` to cut rounds/iterations for smoke runs
QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def pick(full: T, quick: T) -> T:
    """``full`` normally, ``quick`` under ``REPRO_BENCH_QUICK=1``."""
    return quick if QUICK else full


def interleaved_best(
    cases: dict[str, Callable[[], object]], rounds: int, inner: int = 1
) -> dict[str, float]:
    """Best wallclock seconds per case over round-robin rounds.

    Interleaving (mode A, B, C, ... then again) cancels the slow drift
    of shared-machine noise that back-to-back repetition folds into
    whichever mode runs last; ``inner`` amortises the timer over short
    microbenchmark bodies.
    """
    best = {name: float("inf") for name in cases}
    for _ in range(rounds):
        for name, fn in cases.items():
            t0 = time.perf_counter()
            for _ in range(inner):
                fn()
            dt = (time.perf_counter() - t0) / inner
            best[name] = min(best[name], dt)
    return best


def write_bench_json(name: str, obj, root: bool = True) -> str:
    """Write one canonical JSON artifact (sorted keys, trailing newline).

    The canonical copy lands under ``benchmarks/results/``; with
    ``root`` (the default) a byte-identical mirror lands at the repo
    root, where the CI perf jobs pick artifacts up.  Returns the
    serialised blob.
    """
    blob = json.dumps(obj, indent=2, sort_keys=True) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(blob)
    if root:
        (REPO_ROOT / name).write_text(blob)
    return blob


def publish_entry(json_name: str, payload_or_entry):
    """Emit a run's schema-versioned ledger-entry artifact.

    Accepts either a raw bench payload dict (converted through
    :func:`repro.obs.ledger.entry_from_bench_payload`) or a
    ready-built :class:`~repro.obs.ledger.LedgerEntry`.  Writes
    ``json_name`` via :func:`write_bench_json` and — when
    ``REPRO_BENCH_RECORD=1`` — stamps the entry with a UTC timestamp
    and appends it to the committed ledger at
    ``benchmarks/results/ledger/``.  Returns the entry.
    """
    from repro.obs.ledger import (
        LedgerEntry,
        PerfLedger,
        entry_from_bench_payload,
    )

    entry = (
        payload_or_entry
        if isinstance(payload_or_entry, LedgerEntry)
        else entry_from_bench_payload(payload_or_entry)
    )
    write_bench_json(json_name, entry.to_json())
    if os.environ.get("REPRO_BENCH_RECORD"):
        from datetime import datetime, timezone

        entry.recorded_at = datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        )
        PerfLedger(RESULTS_DIR / "ledger").record(entry)
    return entry
