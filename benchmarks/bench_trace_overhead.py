"""Tracer overhead: what observability costs when off, null, and on.

Measures the tier-1 solve wall-clock three ways:

* **off** — no tracer argument at all (production default; every call
  site holds the shared :data:`~repro.obs.tracer.NULL_TRACER`);
* **null** — an explicit :class:`~repro.obs.tracer.NullTracer` passed
  in, proving the opt-in plumbing itself costs nothing beyond the
  default path;
* **full** — a recording :class:`~repro.obs.tracer.Tracer`, the cost
  of actually capturing every span.

Rounds are interleaved (off, null, full, off, ...) so shared-machine
drift cancels instead of accruing to whichever mode runs last.  The
headline claim — disabled-tracer overhead under 2% on the tier-1
solve — is asserted with CI headroom and recorded in the JSON artifact
at ``benchmarks/results/trace_overhead.json``; DESIGN.md quotes the
measured numbers.

Set ``REPRO_BENCH_QUICK=1`` to cut rounds for smoke runs.
"""

from __future__ import annotations

import statistics
import time

from benchmarks._runner import pick, write_bench_json
from benchmarks.conftest import report
from repro.gmg import GMGSolver, SolverConfig
from repro.obs import NullTracer, Tracer

ROUNDS = pick(10, 3)

#: the tier-1 model problem (ROADMAP): 32^3, three levels, B = 4
TIER1 = dict(global_cells=32, num_levels=3, brick_dim=4)

#: the <2% budget from the observability design, with headroom for CI
#: timer noise (best-of rounds bounds it tightly; see the artifact for
#: the actual measured figure, typically well under 1%)
DISABLED_OVERHEAD_CEILING = 0.10


def _solve_seconds(tracer) -> float:
    config = SolverConfig(**TIER1)
    solver = (
        GMGSolver(config) if tracer is None else GMGSolver(config, tracer=tracer)
    )
    t0 = time.perf_counter()
    solver.solve()
    return time.perf_counter() - t0


def test_trace_overhead(benchmark):
    modes = {
        "off": lambda: _solve_seconds(None),
        "null": lambda: _solve_seconds(NullTracer()),
        "full": lambda: _solve_seconds(Tracer()),
    }
    samples: dict[str, list[float]] = {name: [] for name in modes}

    def run_all() -> None:
        for name, fn in modes.items():
            samples[name].append(fn())

    benchmark.pedantic(run_all, rounds=ROUNDS, iterations=1, warmup_rounds=1)

    best = {name: min(vals) for name, vals in samples.items()}
    med = {name: statistics.median(vals) for name, vals in samples.items()}

    def overhead(name: str) -> float:
        return best[name] / best["off"] - 1.0

    rows = {
        name: {
            "best_s": best[name],
            "median_s": med[name],
            "overhead_vs_off": overhead(name),
        }
        for name in modes
    }
    artifact = {
        "benchmark": "trace_overhead",
        "problem": TIER1,
        "rounds": ROUNDS,
        "modes": rows,
        "disabled_overhead_budget": 0.02,
        "disabled_overhead_ceiling": DISABLED_OVERHEAD_CEILING,
    }
    write_bench_json("trace_overhead.json", artifact, root=False)

    lines = [
        "tracer overhead on the tier-1 solve "
        f"(32^3, 3 levels, best of {ROUNDS} interleaved rounds)",
    ]
    for name in ("off", "null", "full"):
        lines.append(
            f"  {name:5s} best {best[name] * 1e3:8.1f} ms   "
            f"median {med[name] * 1e3:8.1f} ms   "
            f"overhead {overhead(name):+7.2%}"
        )
    report("trace_overhead", "\n".join(lines) + "\n")

    # opt-in means opt-out is free: off and null must be within noise
    # of each other, and both far under the recording tracer's cost
    assert overhead("null") < DISABLED_OVERHEAD_CEILING
    # a recording tracer may cost real time but must stay usable —
    # profiling that 10x-es the solve would distort what it measures
    assert best["full"] < 3.0 * best["off"]
