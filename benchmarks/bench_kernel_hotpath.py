"""Kernel hot-path wallclock: what the execution engine buys, measured.

Three microbenchmarks isolate the engine's levers on the tier-1
problem's finest-level geometry — the gather-vs-compute split of one
kernel invocation, fused vs unfused smoothing pipelines, and one
batched call vs a Python rank loop — followed by the end-to-end tier-1
solve under every engine configuration.  Timings use interleaved
best-of-N rounds (mode A, B, C, … then again), which cancels the slow
drift of shared-machine noise that back-to-back repetition folds into
whichever mode runs last.

Results go to ``benchmarks/results/kernel_hotpath.txt`` (human), to
``BENCH_pr2.json`` (the raw payload, kept for trajectory continuity)
and — through the performance ledger
(:mod:`repro.obs.ledger`) — to ``BENCH_pr4.json``, the schema-versioned
ledger-entry form the ``repro perfgate`` command consumes.  Both JSON
files land at the repo root *and* under ``benchmarks/results/``; the CI
perf-smoke job uploads them.  Set ``REPRO_BENCH_RECORD=1`` to also
append the run to the committed ledger at
``benchmarks/results/ledger/kernel_hotpath.jsonl``.

Set ``REPRO_BENCH_QUICK=1`` to cut rounds for smoke runs.
"""

from __future__ import annotations

import numpy as np

from benchmarks._runner import (
    QUICK,
    interleaved_best,
    pick,
    publish_entry,
    write_bench_json,
)
from benchmarks.conftest import report
from repro.bricks import BrickGrid, BrickedArray, gather_extended
from repro.bricks.batch import BatchedGrid
from repro.bricks.halo_plan import offset_plan_for
from repro.dsl.codegen import compile_stencil
from repro.dsl.library import APPLY_OP, FUSED_SMOOTH_RESIDUAL, SMOOTH_RESIDUAL
from repro.gmg import GMGSolver, SolverConfig

#: interleaved rounds (best-of) for micro / end-to-end sections
MICRO_ROUNDS = pick(9, 3)
MICRO_INNER = pick(20, 5)
SOLVE_ROUNDS = pick(6, 2)

#: the tier-1 model problem (ROADMAP): 32^3, three levels, B = 4
TIER1 = dict(global_cells=32, num_levels=3, brick_dim=4)

ENGINE_MODES = {
    "halo-resident": dict(halo_resident=True),
    "fused": dict(fuse_kernels=True),
    "batched": dict(batch_ranks=True),
    "full": dict(halo_resident=True, fuse_kernels=True, batch_ranks=True),
}

FACE_OFFSETS = (
    (-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0), (0, 0, -1), (0, 0, 1),
)

#: accumulated across the test functions; flushed by the end-to-end test
_RESULTS: dict = {"micro": {}}


def _tier1_grid() -> BrickGrid:
    cells = TIER1["global_cells"]
    B = TIER1["brick_dim"]
    return BrickGrid((cells // B,) * 3, B)


def _random_field(grid, seed=7) -> BrickedArray:
    rng = np.random.default_rng(seed)
    f = BrickedArray.from_ijk(grid, rng.random(grid.shape_cells))
    f.fill_ghost_periodic()
    return f


def test_micro_gather_vs_compute():
    """The seed path's full extended gather vs the engine's planned
    per-offset gather, against the kernel invocation they feed."""
    grid = _tier1_grid()
    x = _random_field(grid)
    planned_x = _random_field(grid)
    planned_x.planned_gather = True
    kernel = compile_stencil(APPLY_OP, grid.brick_dim)
    plan = offset_plan_for(grid, FACE_OFFSETS)
    plan.gather(x.data)  # warm the index tables
    seed_fields = {"x": x, "Ax": BrickedArray.zeros(grid)}
    engine_fields = {"x": planned_x, "Ax": BrickedArray.zeros(grid)}
    ws_seed: dict = {}
    ws_engine: dict = {}

    best = interleaved_best(
        {
            "gather_extended": lambda: gather_extended(x, 1),
            "offset_plan_gather": lambda: plan.gather(x.data),
            "applyOp_seed": lambda: kernel.apply(seed_fields, CONSTS, ws_seed),
            "applyOp_engine": lambda: kernel.apply(engine_fields, CONSTS, ws_engine),
        },
        MICRO_ROUNDS,
        MICRO_INNER,
    )
    _RESULTS["micro"]["gather_vs_compute_us"] = {
        k: round(v * 1e6, 2) for k, v in best.items()
    }
    # the planned gather must beat re-copying the whole extended field
    assert best["offset_plan_gather"] < best["gather_extended"]
    assert best["applyOp_engine"] < best["applyOp_seed"]


CONSTS = {"alpha": -6.0, "beta": 1.0, "gamma": 1.0 / 12.0}


def test_micro_fused_vs_unfused():
    """The seed smoothing iteration (staged applyOp + smooth+residual,
    full extended gather) vs the engine's single fused kernel fed by
    one planned gather — one gather and one launch instead of two."""
    grid = _tier1_grid()
    seed_fields = {
        name: _random_field(grid, seed)
        for seed, name in enumerate(("x", "b", "Ax", "r"))
    }
    engine_fields = {name: f.copy() for name, f in seed_fields.items()}
    for f in engine_fields.values():
        f.planned_gather = True
    op = compile_stencil(APPLY_OP, grid.brick_dim)
    tail = compile_stencil(SMOOTH_RESIDUAL, grid.brick_dim)
    fused = compile_stencil(FUSED_SMOOTH_RESIDUAL, grid.brick_dim)
    ws_a: dict = {}
    ws_b: dict = {}

    def staged_seed():
        op.apply(seed_fields, CONSTS, ws_a)
        tail.apply(seed_fields, CONSTS, ws_a)

    best = interleaved_best(
        {
            "staged_seed": staged_seed,
            "fused_engine": lambda: fused.apply(engine_fields, CONSTS, ws_b),
        },
        MICRO_ROUNDS,
        MICRO_INNER,
    )
    _RESULTS["micro"]["fused_vs_unfused_us"] = {
        k: round(v * 1e6, 2) for k, v in best.items()
    }
    # both mutate their own field set with identical float sequences
    np.testing.assert_array_equal(
        engine_fields["x"].data, seed_fields["x"].data
    )
    assert best["fused_engine"] < best["staged_seed"]


def test_micro_batched_vs_looped():
    """One vectorised call over ``num_ranks x num_slots`` bricks vs the
    per-rank Python loop it replaces.  Uses coarse-level geometry (16
    ranks of 8^3 cells) — the launch-bound regime where the bottom
    solver spends its hundred smooths and per-call overhead dominates."""
    ranks = 16
    base = BrickGrid((2, 2, 2), 4)
    batched = BatchedGrid(base, ranks)
    per_rank = [
        {"x": _random_field(base, k), "Ax": BrickedArray.zeros(base)}
        for k in range(ranks)
    ]
    stacked_fields = {
        "x": BrickedArray(
            batched, np.concatenate([f["x"].data for f in per_rank])
        ),
        "Ax": BrickedArray.zeros(batched),
    }
    stacked_fields["x"].planned_gather = True
    for f in per_rank:
        f["x"].planned_gather = True
    kernel = compile_stencil(APPLY_OP, base.brick_dim)
    workspaces = [dict() for _ in range(ranks)]
    ws_stacked: dict = {}

    def looped():
        for f, ws in zip(per_rank, workspaces):
            kernel.apply(f, CONSTS, ws)

    best = interleaved_best(
        {
            "rank_loop": looped,
            "batched": lambda: kernel.apply(stacked_fields, CONSTS, ws_stacked),
        },
        MICRO_ROUNDS,
        MICRO_INNER,
    )
    _RESULTS["micro"]["batched_vs_looped_us"] = {
        k: round(v * 1e6, 2) for k, v in best.items()
    }
    assert best["batched"] < best["rank_loop"]


def test_end_to_end_engine_speedup():
    """Tier-1 solve under every engine configuration: wallclock
    trajectory, identical residual histories, and the headline
    full-engine speedup.  Writes BENCH_pr2.json."""
    histories: dict[str, list[float]] = {}

    def solve(label, flags):
        def run():
            solver = GMGSolver(SolverConfig(**TIER1, **flags))
            result = solver.solve()
            histories[label] = result.residual_history
        return run

    cases = {
        label: solve(label, flags)
        for label, flags in {"seed": {}, **ENGINE_MODES}.items()
    }
    best = interleaved_best(cases, SOLVE_ROUNDS)

    for name in ENGINE_MODES:
        assert histories[name] == histories["seed"], name

    seed_ms = best["seed"] * 1e3
    rows = [("seed", seed_ms, 1.0)]
    for name in ENGINE_MODES:
        ms = best[name] * 1e3
        rows.append((name, ms, seed_ms / ms))

    lines = [
        "Kernel hot-path: tier-1 solve wallclock by engine configuration",
        f"(32^3, 3 levels, B=4; interleaved best of {SOLVE_ROUNDS})",
        "",
        f"{'configuration':<16}{'ms':>10}{'speedup':>10}",
    ]
    for name, ms, speed in rows:
        lines.append(f"{name:<16}{ms:>10.1f}{speed:>9.2f}x")
    lines.append("")
    for section, table in _RESULTS["micro"].items():
        lines.append(section)
        for k, us in table.items():
            lines.append(f"  {k:<24}{us:>10.1f} us")
    text = "\n".join(lines) + "\n"
    report("kernel_hotpath", text)

    payload = {
        "benchmark": "kernel_hotpath",
        "problem": TIER1,
        "rounds": SOLVE_ROUNDS,
        "quick": QUICK,
        "end_to_end_ms": {name: round(ms, 2) for name, ms, _ in rows},
        "speedup": {name: round(speed, 3) for name, ms, speed in rows},
        "micro": _RESULTS["micro"],
        "bit_identical_histories": True,
    }
    write_bench_json("BENCH_pr2.json", payload)
    # ledger-driven emission: the same run as a schema-versioned entry,
    # optionally appended to the committed perf history
    publish_entry("BENCH_pr4.json", payload)

    # the acceptance target is 2x; assert a noise-tolerant floor so a
    # loaded CI runner does not flake the suite
    assert payload["speedup"]["full"] > 1.3
