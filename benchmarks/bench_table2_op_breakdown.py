"""Table II: percentage of finest-level time per V-cycle operation.

Paper values (A100/MI250X GCD/PVC tile): applyOp 25.0/30.7/22.5%,
smooth+residual 54.5/50.0/53.1%, restriction ~1%, interpolation ~2-5%,
exchange 17.5/12.8/20.4%.  The bench asserts each share within 8
percentage points and the qualitative ordering (smooth+residual
dominates everywhere; inter-grid operations are minor).
"""

from benchmarks.conftest import report
from repro.harness import experiments as E
from repro.harness import reporting as R


def test_table2_op_breakdown(benchmark):
    fractions = benchmark.pedantic(
        E.table2_op_breakdown, rounds=3, iterations=1, warmup_rounds=1
    )
    lines = [R.render_table2(fractions), "paper reference:"]
    for m, paper in E.TABLE2_PAPER.items():
        lines.append(
            f"  {m}: " + ", ".join(f"{op} {v * 100:.1f}%" for op, v in paper.items())
        )
    report("table2_op_breakdown", "\n".join(lines) + "\n")

    for machine, paper in E.TABLE2_PAPER.items():
        ours = fractions[machine]
        for op, expected in paper.items():
            assert abs(ours[op] - expected) <= 0.08, (machine, op)
        assert ours["smooth+residual"] == max(ours.values())
        assert ours["restriction"] < 0.05
