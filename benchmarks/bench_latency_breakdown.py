"""Section IX analysis: where strong scaling's time goes.

The paper attributes the Fig. 9 efficiency collapse to kernel-launch
and MPI latency/overheads that stop amortising as the per-rank problem
shrinks ("communication overheads being close to ten times larger than
kernel launching overheads").  This bench decomposes each V-cycle along
the strong-scaling ladder into latency and streaming buckets and
asserts the diagnosis quantitatively.
"""

import pytest

from benchmarks.conftest import report
from repro.harness.experiments import strong_scaling_breakdown


@pytest.mark.parametrize("machine", ["Perlmutter", "Frontier", "Sunspot"])
def test_latency_breakdown(benchmark, machine):
    bd = benchmark.pedantic(
        strong_scaling_breakdown, args=(machine,), rounds=1, iterations=1
    )
    lines = [f"{machine} strong-scaling V-cycle decomposition (ms):"]
    header = f"{'nodes':>6s} {'launch':>8s} {'k-stream':>9s} " + (
        f"{'net-ovh':>8s} {'n-stream':>9s} {'latency%':>9s}"
    )
    lines.append(header)
    for nodes, d, f in zip(bd.nodes, bd.decompositions, bd.latency_fractions):
        lines.append(
            f"{nodes:>6d} {d['kernel_launch'] * 1e3:>8.2f} "
            f"{d['kernel_stream'] * 1e3:>9.2f} "
            f"{d['net_overhead'] * 1e3:>8.2f} "
            f"{d['net_stream'] * 1e3:>9.2f} {f * 100:>8.1f}%"
        )
    report(f"latency_breakdown_{machine}", "\n".join(lines) + "\n")

    f = bd.latency_fractions
    assert all(a < b for a, b in zip(f, f[1:]))  # monotone growth
    assert f[0] < 0.10  # streaming-bound at the base
    # the fraction at the top of the ladder depends on how far the
    # ladder goes (Sunspot stops at 16 nodes)
    assert f[-1] > (0.20 if machine == "Sunspot" else 0.30)


def test_paper_overhead_ratio(benchmark):
    """Section IX: MPI per-message overhead is close to 10x the kernel
    launch overhead (which motivates deep ghost zones)."""
    from repro.machines import MACHINES
    from repro.machines.network import message_overhead

    def ratios():
        out = {}
        for name, m in MACHINES.items():
            per_exchange = 26 * message_overhead(m, 4096)
            out[name] = per_exchange / m.gpu.kernel_launch_latency_s
        return out

    r = benchmark.pedantic(ratios, rounds=1, iterations=1)
    report(
        "overhead_ratio",
        "\n".join(
            f"{name}: per-exchange MPI overhead / kernel launch = {v:.1f}x"
            for name, v in r.items()
        )
        + "\n",
    )
    # the paper's remark ("close to ten times larger") holds on
    # Perlmutter; every machine pays at least a full launch per exchange
    assert r["Perlmutter"] == pytest.approx(10.0, rel=0.3)
    assert all(v >= 1.0 for v in r.values())
