"""Table V: Phi from fraction of theoretical arithmetic intensity.

Efficiency here is achieved AI over the compulsory-traffic (infinite
cache) bound — a measure of how little extra data the brick layout lets
the cache hierarchy move.  Paper: per-op 90/97/88/94/90% and 92%
overall.  A memsim cross-check confirms the direction on a simulated
cache: the brick layout's sweep traffic sits far closer to compulsory
than the conventional layout's.
"""

import pytest

from benchmarks.conftest import report
from repro.harness import experiments as E
from repro.harness import reporting as R
from repro.memsim import BrickLayout, CacheConfig, RowMajorLayout, measure_sweep


def test_table5_portability(benchmark):
    result = benchmark.pedantic(E.table5_portability_ai, rounds=5, iterations=1)
    report(
        "table5_portability_ai",
        R.render_portability(result, "Table V — Phi (fraction of theoretical AI)"),
    )
    assert result.overall_phi == pytest.approx(0.92, abs=0.02)
    paper_per_op = {
        "applyOp": 0.90,
        "smooth": 0.97,
        "smooth+residual": 0.88,
        "restriction": 0.94,
        "interpolation+increment": 0.90,
    }
    for op, expected in paper_per_op.items():
        assert result.per_op_phi[op] == pytest.approx(expected, abs=0.01), op


def test_table5_memsim_cross_check(benchmark):
    """First-principles support: on a simulated cache, the brick layout
    achieves a higher fraction of theoretical AI than a tiled
    conventional layout."""

    def measure():
        cache = CacheConfig(capacity_bytes=4096, line_bytes=64, ways=8)
        return (
            measure_sweep(BrickLayout(16, 4), 4, cache),
            measure_sweep(RowMajorLayout(16), 4, cache),
        )

    brick, tiled = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "table5_memsim_cross_check",
        f"brick layout:    achieved AI fraction {brick.ai_fraction:.3f} "
        f"(traffic {brick.traffic_ratio:.2f}x compulsory)\n"
        f"rowmajor tiled:  achieved AI fraction {tiled.ai_fraction:.3f} "
        f"(traffic {tiled.traffic_ratio:.2f}x compulsory)\n",
    )
    assert brick.ai_fraction > tiled.ai_fraction
