"""Figure 6: exchange() GB/s vs total message size across levels.

Single NIC per rank (one rank per node), 26-neighbour ghost-brick
exchange.  Paper claims reproduced:

* Frontier sustains the highest bandwidth (~16 GB/s) with the lowest
  overhead (forced rendezvous + hardware matching);
* Perlmutter follows (~14 GB/s); Sunspot trails (~7 GB/s) because it
  stages through the host instead of GPU-aware MPI;
* fitted latencies range from ~25 us to ~200 us;
* latency dominates for total message sizes below ~1 MB (the coarse
  levels), where the CXI protocol settings matter.
"""

import pytest

from benchmarks.conftest import report
from repro.harness import experiments as E
from repro.harness import reporting as R
from repro.harness.ascii_plot import plot_exchange_bandwidth


def test_fig6_exchange_bandwidth(benchmark):
    series = benchmark.pedantic(
        E.fig6_exchange_bandwidth, rounds=3, iterations=1, warmup_rounds=1
    )
    report(
        "fig6_exchange_bandwidth",
        R.render_fig6(series) + "\n" + plot_exchange_bandwidth(series),
    )

    peaks = {m: max(s.gbs) for m, s in series.items()}
    assert peaks["Frontier"] == pytest.approx(16.0, abs=2.0)
    assert peaks["Perlmutter"] == pytest.approx(14.0, abs=2.0)
    assert peaks["Sunspot"] == pytest.approx(7.0, abs=1.5)
    assert peaks["Frontier"] > peaks["Perlmutter"] > peaks["Sunspot"]

    alphas = {m: s.fit.alpha for m, s in series.items()}
    assert alphas["Frontier"] < alphas["Perlmutter"] < alphas["Sunspot"]
    assert 10e-6 <= alphas["Frontier"] <= 60e-6
    assert alphas["Sunspot"] <= 350e-6

    for s in series.values():
        assert max(s.gbs) < s.nic_peak_gbs  # under the 25 GB/s line rate
        assert s.fit.half_rate_size() > 1e5  # latency-bound under ~1 MB
