"""Section IX remedy, modelled: coarse-level agglomeration.

The paper proposes "pack[ing] more computation from several ranks into
fewer ones" to rescue latency-bound strong scaling.  This bench prices
that restructuring: levels below a size threshold are gathered onto
fewer ranks (greedy per-level choice, binomial-tree gathers), the
coarsest levels collapse onto one rank where the 100-smooth bottom
solve runs with no network at all.

Expected shape: no regression anywhere on the ladder, and a measurable
time/efficiency win at the high-concurrency end on Perlmutter, whose
per-exchange overhead is the largest of the three.  On Frontier
(hardware-matched, GPU-attached NICs) the greedy per-level tuner
correctly concludes there is too little latency to reclaim and leaves
the schedule untouched — a machine-dependent outcome the model
discovers rather than assumes.
"""

import pytest

from benchmarks.conftest import report
from repro.harness.agglomeration import (
    render_agglomeration,
    strong_scaling_with_agglomeration,
)


@pytest.mark.parametrize("machine", ["Perlmutter", "Frontier", "Sunspot"])
def test_agglomeration_strong_scaling(benchmark, machine):
    result = benchmark.pedantic(
        strong_scaling_with_agglomeration, args=(machine,), rounds=1,
        iterations=1,
    )
    report(f"agglomeration_{machine}", render_agglomeration(result))

    for base, aggl in zip(
        result.baseline_seconds, result.agglomerated_seconds
    ):
        assert aggl <= base * 1.01  # never meaningfully slower
    if machine == "Perlmutter":
        # wins where per-exchange overhead is high; on Frontier the
        # hardware-matched, GPU-attached NICs leave little latency to
        # reclaim and the greedy tuner correctly declines to gather —
        # a machine-dependent result the model surfaces on its own
        assert result.agglomerated_seconds[-1] < result.baseline_seconds[-1]
        assert (
            result.agglomerated_efficiency[-1]
            > result.baseline_efficiency[-1]
        )


# ----------------------------------------------------------------------
# In-solver agglomeration (PR 5): the merge is real, not modelled.
# The solver gathers coarse levels below ``--agglomerate-threshold``
# onto a factor-of-8-smaller active rank grid; this bench verifies the
# bit-identity acceptance property, measures the structural traffic
# reduction on the merged level, prices the modelled coarse-level
# visit, and emits ``BENCH_pr5.json`` (ledger-entry form) plus — with
# ``REPRO_BENCH_RECORD=1`` — an entry in the committed ledger at
# ``benchmarks/results/ledger/coarse_agglomeration.jsonl``.
# ----------------------------------------------------------------------

def test_in_solver_agglomeration_identity_and_traffic():
    import time

    import numpy as np

    from benchmarks._runner import QUICK as quick
    from benchmarks._runner import pick, publish_entry
    from repro.gmg import GMGSolver, SolverConfig
    from repro.harness.agglomeration import AgglomeratedTimedSolve
    from repro.harness.vcycle_sim import TimedSolve, WorkloadConfig
    from repro.machines.specs import MACHINES
    from repro.obs.ledger import LedgerEntry
    from repro.obs.metrics import solve_metrics

    rounds = pick(5, 2)
    problem = dict(
        global_cells=32, num_levels=4, brick_dim=4, max_smooths=6,
        bottom_smooths=20, max_vcycles=8, rank_dims=(2, 2, 2),
    )
    threshold = 64

    def run(threshold_points):
        cfg = SolverConfig(**problem, agglomerate_threshold=threshold_points)
        solver = GMGSolver(cfg)
        return solver, solver.solve()

    # interleaved best-of-N wallclock, identity asserted on every round
    best = {"seed": float("inf"), "agglomerated": float("inf")}
    solvers = {}
    for _ in range(rounds):
        for label, thr in (("seed", None), ("agglomerated", threshold)):
            t0 = time.perf_counter()
            solver, result = run(thr)
            best[label] = min(best[label], time.perf_counter() - t0)
            solvers[label] = (solver, result)

    off, r_off = solvers["seed"]
    on, r_on = solvers["agglomerated"]
    assert on.agglomerator is not None
    assert r_on.residual_history == r_off.residual_history
    assert np.array_equal(on.solution(), off.solution())

    c_off = solve_metrics(off.recorder).snapshot()["counters"]
    c_on = solve_metrics(
        on.recorder, agglomerator=on.agglomerator
    ).snapshot()["counters"]
    merged_lev = problem["num_levels"] - 1

    # modelled coarse-level cost per V-cycle (Perlmutter pricing): the
    # same workload shape through the PR-3 performance model, baseline
    # vs agglomerated schedule
    machine = MACHINES["Perlmutter"]
    w = WorkloadConfig(
        per_rank_cells=(16, 16, 16), num_levels=4, max_smooths=6,
        bottom_smooths=20, num_vcycles=r_on.num_vcycles,
        rank_dims=(2, 2, 2), ranks_per_node=4, brick_dim=4,
    )
    def coarse_ms(sim):
        times = sim.vcycle_level_times()
        return sum(sum(lv.values()) for lv in times[1:]) * 1e3

    model_base = coarse_ms(TimedSolve(machine, w))
    model_aggl = coarse_ms(AgglomeratedTimedSolve(machine, w, threshold))

    plan = on.agglomerator.plan
    entry = LedgerEntry(
        benchmark="coarse_agglomeration",
        metrics={
            "end_to_end_ms.seed": round(best["seed"] * 1e3, 2),
            "end_to_end_ms.agglomerated": round(best["agglomerated"] * 1e3, 2),
            "model_ms.coarse_levels_baseline": round(model_base, 4),
            "model_ms.coarse_levels_agglomerated": round(model_aggl, 4),
        },
        context={
            "problem": problem,
            "threshold_points": threshold,
            "rounds": rounds,
            "quick": quick,
            "bit_identical_history": True,
            "bit_identical_solution": True,
            "active_dims": [list(d) for d in plan.active_dims],
            "merged_level": merged_lev,
            "traffic": {
                f"exchanges.level{merged_lev}": {
                    "seed": c_off[f"exchanges.level{merged_lev}"],
                    "agglomerated": c_on[f"exchanges.level{merged_lev}"],
                },
                f"messages.level{merged_lev}.count": {
                    "seed": c_off[f"messages.level{merged_lev}.count"],
                    "agglomerated": c_on[f"messages.level{merged_lev}.count"],
                },
                f"messages.level{merged_lev}.bytes": {
                    "seed": c_off[f"messages.level{merged_lev}.bytes"],
                    "agglomerated": c_on[f"messages.level{merged_lev}.bytes"],
                },
            },
        },
    )

    # the structural claims the JSON records must actually hold
    traffic = entry.context["traffic"]
    assert traffic[f"exchanges.level{merged_lev}"]["agglomerated"] < (
        traffic[f"exchanges.level{merged_lev}"]["seed"]
    )
    assert traffic[f"messages.level{merged_lev}.count"]["agglomerated"] < (
        traffic[f"messages.level{merged_lev}.count"]["seed"] / 8
    )
    assert model_aggl < model_base
    for key, val in c_off.items():
        if key.startswith("kernel_points."):
            assert c_on[key] == val, key

    lines = [
        "In-solver coarse-level agglomeration (32^3, 4 levels, "
        "2x2x2 ranks, threshold 64 points/rank):",
        f"  plan: {' -> '.join('x'.join(map(str, d)) for d in plan.active_dims)}",
        "  histories and solutions bit-identical: True",
        f"  exchanges.level{merged_lev}: "
        f"{traffic[f'exchanges.level{merged_lev}']['seed']} -> "
        f"{traffic[f'exchanges.level{merged_lev}']['agglomerated']}",
        f"  messages.level{merged_lev}.count: "
        f"{traffic[f'messages.level{merged_lev}.count']['seed']} -> "
        f"{traffic[f'messages.level{merged_lev}.count']['agglomerated']}",
        f"  messages.level{merged_lev}.bytes: "
        f"{traffic[f'messages.level{merged_lev}.bytes']['seed']} -> "
        f"{traffic[f'messages.level{merged_lev}.bytes']['agglomerated']}",
        f"  modelled coarse-level ms/V-cycle (Perlmutter): "
        f"{model_base:.4f} -> {model_aggl:.4f}",
        f"  end-to-end ms (best of {rounds}): "
        f"seed {best['seed'] * 1e3:.1f}, "
        f"agglomerated {best['agglomerated'] * 1e3:.1f}",
    ]
    report("agglomeration_in_solver", "\n".join(lines) + "\n")

    publish_entry("BENCH_pr5.json", entry)
