"""Section IX remedy, modelled: coarse-level agglomeration.

The paper proposes "pack[ing] more computation from several ranks into
fewer ones" to rescue latency-bound strong scaling.  This bench prices
that restructuring: levels below a size threshold are gathered onto
fewer ranks (greedy per-level choice, binomial-tree gathers), the
coarsest levels collapse onto one rank where the 100-smooth bottom
solve runs with no network at all.

Expected shape: no regression anywhere on the ladder, and a measurable
time/efficiency win at the high-concurrency end on Perlmutter, whose
per-exchange overhead is the largest of the three.  On Frontier
(hardware-matched, GPU-attached NICs) the greedy per-level tuner
correctly concludes there is too little latency to reclaim and leaves
the schedule untouched — a machine-dependent outcome the model
discovers rather than assumes.
"""

import pytest

from benchmarks.conftest import report
from repro.harness.agglomeration import (
    render_agglomeration,
    strong_scaling_with_agglomeration,
)


@pytest.mark.parametrize("machine", ["Perlmutter", "Frontier", "Sunspot"])
def test_agglomeration_strong_scaling(benchmark, machine):
    result = benchmark.pedantic(
        strong_scaling_with_agglomeration, args=(machine,), rounds=1,
        iterations=1,
    )
    report(f"agglomeration_{machine}", render_agglomeration(result))

    for base, aggl in zip(
        result.baseline_seconds, result.agglomerated_seconds
    ):
        assert aggl <= base * 1.01  # never meaningfully slower
    if machine == "Perlmutter":
        # wins where per-exchange overhead is high; on Frontier the
        # hardware-matched, GPU-attached NICs leave little latency to
        # reclaim and the greedy tuner correctly declines to gather —
        # a machine-dependent result the model surfaces on its own
        assert result.agglomerated_seconds[-1] < result.baseline_seconds[-1]
        assert (
            result.agglomerated_efficiency[-1]
            > result.baseline_efficiency[-1]
        )
