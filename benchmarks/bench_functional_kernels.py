"""Functional-layer microbenchmarks: the generated NumPy kernels.

These measure this repository's actual Python execution (not the
machine models): DSL-generated brick kernels vs the dense-array
reference, and a full laptop-scale multigrid solve.  They exist to
keep the functional layer honest about its own performance and to give
pytest-benchmark real work to time.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.bricks import BrickGrid, BrickedArray
from repro.dsl import APPLY_OP, SMOOTH_RESIDUAL, compile_stencil
from repro.gmg import ArrayGMG, GMGSolver, SolverConfig

N = 64
B = 8


@pytest.fixture(scope="module")
def bricked_fields():
    grid = BrickGrid((N // B,) * 3, B)
    rng = np.random.default_rng(0)
    fields = {}
    for name in ("x", "b", "Ax", "r"):
        f = BrickedArray.from_ijk(grid, rng.random((N, N, N)))
        f.fill_ghost_periodic()
        fields[name] = f
    return fields


def test_bench_generated_apply_op(benchmark, bricked_fields):
    kernel = compile_stencil(APPLY_OP, B)
    ws: dict = {}
    consts = {"alpha": -6.0, "beta": 1.0}
    result = benchmark(lambda: kernel.apply(bricked_fields, consts, ws))
    points = N**3
    rate = points / benchmark.stats["mean"] / 1e9
    report(
        "functional_apply_op",
        f"generated applyOp on {N}^3 ({B}^3 bricks): "
        f"{rate:.3f} GStencil/s in pure NumPy\n",
    )


def test_bench_generated_smooth_residual(benchmark, bricked_fields):
    kernel = compile_stencil(SMOOTH_RESIDUAL, B)
    ws: dict = {}
    benchmark(lambda: kernel.apply(bricked_fields, {"gamma": 1e-4}, ws))


def test_bench_serial_solve(benchmark):
    def solve():
        cfg = SolverConfig(global_cells=32, num_levels=3, brick_dim=4,
                           max_smooths=8, bottom_smooths=40)
        return GMGSolver(cfg).solve()

    result = benchmark.pedantic(solve, rounds=2, iterations=1, warmup_rounds=1)
    assert result.converged


def test_bench_baseline_solve(benchmark):
    def solve():
        gmg = ArrayGMG(global_cells=32, num_levels=3, max_smooths=8,
                       bottom_smooths=40)
        return gmg.solve()

    history = benchmark.pedantic(solve, rounds=2, iterations=1, warmup_rounds=1)
    assert history[-1] <= 1e-10


def test_bench_halo_gather(benchmark, bricked_fields):
    from repro.bricks import gather_extended

    x = bricked_fields["x"]
    buf = np.empty((x.grid.num_slots, B + 2, B + 2, B + 2))
    benchmark(lambda: gather_extended(x, 1, out=buf))
