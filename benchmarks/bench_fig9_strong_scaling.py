"""Figure 9: strong scaling on fixed global domains.

1024^3 on Perlmutter, 2x1024^3 on Frontier, 3x1024^3 on Sunspot,
doubling ranks up to 512 GPUs (P/F) / 96 GPUs (S).  Paper claims:

* total throughput keeps growing but parallel efficiency nose-dives as
  shrinking per-rank problems become latency/overhead bound;
* Frontier's absolute throughput is roughly double Perlmutter's (its
  domain and rank count are double);
* Sunspot tracks Perlmutter despite more GPUs, due to its MPI path.
"""

import pytest

from benchmarks.conftest import report
from repro.harness import experiments as E
from repro.harness import reporting as R
from repro.harness.ascii_plot import plot_scaling


@pytest.mark.parametrize("machine", ["Perlmutter", "Frontier", "Sunspot"])
def test_fig9_strong_scaling(benchmark, machine):
    result = benchmark.pedantic(
        E.fig9_strong_scaling, args=(machine,), rounds=1, iterations=1
    )
    report(f"fig9_strong_{machine}", R.render_scaling(result) + "\n" + plot_scaling([result]))

    # throughput still grows with ranks...
    assert all(a < b for a, b in zip(result.gstencil, result.gstencil[1:]))
    # ...but efficiency decays monotonically and ends badly (Sunspot's
    # ladder stops at 16 nodes, so its decline is shallower)
    assert all(a >= b for a, b in zip(result.efficiency, result.efficiency[1:]))
    assert result.efficiency[-1] < (0.75 if machine == "Sunspot" else 0.55)


def test_fig9_efficiency_worse_than_weak(benchmark):
    """Strong scaling loses far more efficiency than weak scaling at
    the same node count — the paper's central Fig 8 vs Fig 9 contrast."""

    def both():
        return (
            E.fig8_weak_scaling("Perlmutter"),
            E.fig9_strong_scaling("Perlmutter"),
        )

    weak, strong = benchmark.pedantic(both, rounds=1, iterations=1)
    report(
        "fig9_weak_vs_strong",
        f"Perlmutter at {weak.nodes[-1]} nodes: weak efficiency "
        f"{weak.efficiency[-1] * 100:.1f}%, strong efficiency "
        f"{strong.efficiency[-1] * 100:.1f}%\n",
    )
    assert strong.efficiency[-1] < weak.efficiency[-1] - 0.3
