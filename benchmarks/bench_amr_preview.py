"""Section IX future work, previewed: AMR load balancing is critical.

A centrally refined region (10% of patches, one 2x refinement level)
priced through each machine's kernel model: naive block assignment
loses ~15-20% of the machine to load imbalance, while Morton-order
interleaving recovers ~99% — quantifying why the paper flags load
balancing as the critical AMR concern.
"""

from benchmarks.conftest import report
from repro.harness.amr_preview import load_balance, render_balance
from repro.machines import MACHINES


def test_amr_load_balance(benchmark):
    def run():
        out = []
        for machine in MACHINES.values():
            for policy in ("block", "morton"):
                out.append(load_balance(machine, num_ranks=8, policy=policy))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report("amr_load_balance", render_balance(results))

    by_key = {(r.machine, r.policy): r for r in results}
    for machine in MACHINES:
        block = by_key[(machine, "block")]
        morton = by_key[(machine, "morton")]
        assert morton.efficiency > block.efficiency + 0.05
        assert morton.efficiency >= 0.95
