"""Table IV: theoretical arithmetic intensity of the V-cycle operations.

Unlike the other tables these numbers are *derived*, not calibrated:
the DSL analysis counts FLOPs and compulsory traffic from the kernel
expressions themselves (8 flops / 16 B for applyOp, etc.).  The bench
compares against the paper's printed values; the only divergence is
smooth+residual (ours 0.125, paper 0.15 — a one-flop counting
convention difference documented in EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import report
from repro.harness import reporting as R
from repro.perf import ai_comparison_rows


def test_table4_theoretical_ai(benchmark):
    rows = benchmark.pedantic(ai_comparison_rows, rounds=5, iterations=1)
    report("table4_theoretical_ai", R.render_table4(rows))

    by_op = {op: (ours, paper) for op, ours, paper, _ in rows}
    assert by_op["applyOp"][0] == pytest.approx(0.50)
    assert by_op["smooth"][0] == pytest.approx(0.125)
    assert by_op["restriction"][0] == pytest.approx(0.111, abs=0.001)
    assert by_op["interpolation+increment"][0] == pytest.approx(0.059, abs=0.001)
    for op, ours, paper, diff in rows:
        assert diff <= 0.03, op
    # the ordering of operations by intensity matches the paper
    order = sorted(by_op, key=lambda op: by_op[op][0], reverse=True)
    assert order[0] == "applyOp"
    assert order[-1] == "interpolation+increment"
