"""Figure 8: weak scaling, 512^3 per rank, up to 512 GPUs.

Full nodes this time: 4 ranks/node on Perlmutter (one per A100), 8 on
Frontier (one per GCD), 12 on Sunspot (one per tile); 2 to 128 nodes on
Perlmutter/Frontier, 2 to 16 on Sunspot (testbed limit).  Paper claims:

* parallel efficiency stays above 87% everywhere;
* Frontier delivers roughly double Perlmutter's GStencil/s per node
  (twice the ranks, comparable per-GCD performance);
* Sunspot's throughput trails, dominated by its MPI path.
"""

import pytest

from benchmarks.conftest import report
from repro.harness import experiments as E
from repro.harness import reporting as R
from repro.harness.ascii_plot import plot_scaling


@pytest.mark.parametrize("machine", ["Perlmutter", "Frontier", "Sunspot"])
def test_fig8_weak_scaling(benchmark, machine):
    result = benchmark.pedantic(
        E.fig8_weak_scaling, args=(machine,), rounds=1, iterations=1
    )
    report(f"fig8_weak_{machine}", R.render_scaling(result) + "\n" + plot_scaling([result]))

    assert min(result.efficiency) >= 0.85
    assert result.efficiency[0] == 1.0
    # throughput grows nearly linearly with ranks
    ideal = result.ranks[-1] / result.ranks[0]
    assert result.gstencil[-1] / result.gstencil[0] >= 0.85 * ideal
    if machine != "Sunspot":
        assert result.ranks[-1] >= 512


def test_fig8_frontier_vs_perlmutter_per_node(benchmark):
    def both():
        return E.fig8_weak_scaling("Perlmutter"), E.fig8_weak_scaling("Frontier")

    p, f = benchmark.pedantic(both, rounds=1, iterations=1)
    ratio = f.gstencil[-1] / p.gstencil[-1]
    report(
        "fig8_frontier_vs_perlmutter",
        f"GStencil/s at 128 nodes: Frontier {f.gstencil[-1]:.1f}, "
        f"Perlmutter {p.gstencil[-1]:.1f} -> ratio {ratio:.2f} "
        "(paper: 'almost double')\n",
    )
    assert 1.3 <= ratio <= 2.2


def test_fig8_sunspot_trails(benchmark):
    def both():
        return E.fig8_weak_scaling("Perlmutter"), E.fig8_weak_scaling("Sunspot")

    p, s = benchmark.pedantic(both, rounds=1, iterations=1)
    # compare at equal node counts (16 nodes): Sunspot has 3x the ranks
    # of Perlmutter yet delivers less than 3x the throughput
    i_p = p.nodes.index(16)
    i_s = s.nodes.index(16)
    per_rank_p = p.gstencil[i_p] / p.ranks[i_p]
    per_rank_s = s.gstencil[i_s] / s.ranks[i_s]
    assert per_rank_s < per_rank_p
