"""Ablations over the Section V optimisations.

Not a paper figure, but the design-choice evidence DESIGN.md calls
for: each optimisation is disabled in turn on the 8-node Perlmutter
workload and the V-cycle time compared.

Expected structure:
* communication-avoiding is the largest single lever (the exchange
  count per level visit drops from 12 to ceil(12/8) = 2);
* GPU-aware MPI matters (host staging caps bandwidth);
* the surface-major ordering saves the pack/unpack passes;
* the HPGMG-style baseline (all of the above off + conventional
  layout) is the slowest variant.
"""

import pytest

from benchmarks.conftest import report
from repro.harness import experiments as E
from repro.harness import reporting as R


@pytest.mark.parametrize("machine", ["Perlmutter", "Frontier", "Sunspot"])
def test_ablation_optimizations(benchmark, machine):
    result = benchmark.pedantic(
        E.ablation_optimizations, args=(machine,), rounds=1, iterations=1
    )
    report(f"ablation_{machine}", R.render_ablation(result))

    t = result.vcycle_seconds
    base = t["all-optimizations"]
    assert t["no-communication-avoiding"] > 1.5 * base
    assert t["lexicographic-ordering"] > base
    assert t["hpgmg-baseline"] > 1.3 * base
    if machine != "Sunspot":  # Sunspot already runs host-staged
        assert t["no-gpu-aware-mpi"] > 1.05 * base


def test_ablation_ca_is_biggest_comm_lever(benchmark):
    result = benchmark.pedantic(
        E.ablation_optimizations, args=("Perlmutter",), rounds=1, iterations=1
    )
    t = result.vcycle_seconds
    base = t["all-optimizations"]
    ca_gain = t["no-communication-avoiding"] / base
    ordering_gain = t["lexicographic-ordering"] / base
    aware_gain = t["no-gpu-aware-mpi"] / base
    report(
        "ablation_levers",
        f"communication-avoiding: {ca_gain:.2f}x\n"
        f"gpu-aware MPI:          {aware_gain:.2f}x\n"
        f"surface-major ordering: {ordering_gain:.2f}x\n",
    )
    assert ca_gain > aware_gain > 1.0
    assert ca_gain > ordering_gain > 1.0
