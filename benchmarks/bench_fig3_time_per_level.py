"""Figure 3: total execution time per multigrid level.

Workload: 1024^3 global domain on 8 nodes, one rank per node binding a
single A100 / MI250X GCD / PVC tile, 512^3 per rank, six levels, 12
smooths per level, 100 bottom smooths, communication-avoiding on, 12
V-cycles to convergence.

Paper shape to reproduce: per-level time falls by ~4-8x per level on
the way down; the coarsest level costs *more* than the one above it
(the 100-iteration bottom solve); Sunspot is slowest at the coarse,
latency-bound levels where CXI settings and GPU-aware MPI pay off for
Perlmutter and Frontier.
"""

from benchmarks.conftest import report
from repro.harness import experiments as E
from repro.harness import reporting as R


def test_fig3_time_per_level(benchmark):
    result = benchmark.pedantic(
        E.fig3_time_per_level, rounds=3, iterations=1, warmup_rounds=1
    )
    report("fig3_time_per_level", R.render_fig3(result))

    for machine, totals in result.level_totals.items():
        # monotone decrease down to the bottom-solver level
        assert all(a > b for a, b in zip(totals[:-2], totals[1:-1])), machine
        # bottom-solver bump at the coarsest level
        assert totals[-1] > totals[-2], machine
        # fine-level ratio sits between the 4x surface and 8x volume laws
        assert 4.0 <= totals[0] / totals[1] <= 8.5, machine
    # Sunspot slowest at the latency-bound coarse levels
    for lev in (3, 4, 5):
        assert (
            result.level_totals["Sunspot"][lev]
            > result.level_totals["Perlmutter"][lev]
        )
