"""Communication overlap: exposed-vs-hidden sweep over brick sizes.

Sweeps the tier-1 distributed solve (32^3 over 8 ranks, 3 levels)
across brick dimensions with the split-phase overlap schedule on and
off.  For every configuration the two schedules must produce
byte-equal residual histories; the measured payoff is the *exposed*
communication time — with overlap, the ``exchange.begin`` posting work
runs concurrently with interior compute, so only the
``exchange.finish`` wait stays on the critical path.

The brick dimension controls the interior/shell ratio: B=2 gives each
rank an 8^3 brick grid (6^3 of it deep interior, 42% of slots), B=4 a
4^3 grid (2^3 interior, 3%), and B=8 a 2^3 grid whose interior is
empty — the degenerate case where overlap legally hides nothing.

Results go to ``benchmarks/results/overlap.txt`` (human) and
``BENCH_pr7.json`` (repo root and ``benchmarks/results/``, both the
raw payload and via the schema-versioned ledger entry next to the
kernel-hotpath series).  Set ``REPRO_BENCH_RECORD=1`` to append the
run to ``benchmarks/results/ledger/overlap.jsonl``;
``REPRO_BENCH_QUICK=1`` cuts rounds for smoke runs.
"""

from __future__ import annotations

import time

from benchmarks._runner import QUICK, pick, publish_entry, write_bench_json
from benchmarks.conftest import report
from repro.gmg import GMGSolver, SolverConfig
from repro.obs.rank import overlap_report
from repro.obs.tracer import Tracer

ROUNDS = pick(5, 2)

#: the tier-1 distributed problem; brick dimension is the sweep axis
BASE = dict(
    global_cells=32,
    num_levels=3,
    rank_dims=(2, 2, 2),
    max_vcycles=4,
    batch_ranks=True,
)
BRICK_DIMS = (2, 4, 8)


def _solve(brick_dim: int, overlap: bool):
    tracer = Tracer()
    solver = GMGSolver(
        SolverConfig(**BASE, brick_dim=brick_dim, overlap=overlap),
        tracer=tracer,
    )
    result = solver.solve()
    return result, tracer


def _comm_seconds(tracer: Tracer) -> tuple[float, float]:
    """(exposed_s, hidden_s) summed over the V-cycle overlap rows."""
    rows = overlap_report(tracer)
    return (
        sum(r.exposed_s for r in rows),
        sum(r.hidden_s for r in rows),
    )


def test_overlap_sweep():
    table: dict[str, dict] = {}
    wall_ms: dict[str, float] = {}

    for brick in BRICK_DIMS:
        histories = {}
        for overlap in (False, True):
            label = f"B{brick}_{'overlap' if overlap else 'sync'}"
            best_wall = float("inf")
            for _ in range(ROUNDS):
                t0 = time.perf_counter()
                result, tracer = _solve(brick, overlap)
                best_wall = min(best_wall, time.perf_counter() - t0)
            histories[overlap] = result.residual_history
            exposed, hidden = _comm_seconds(tracer)
            wall_ms[label] = round(best_wall * 1e3, 2)
            table[label] = {
                "brick_dim": brick,
                "overlap": overlap,
                "exposed_comm_ms": round(exposed * 1e3, 3),
                "hidden_comm_ms": round(hidden * 1e3, 3),
            }
        # the overlap schedule must not perturb a single bit
        assert histories[True] == histories[False], f"brick {brick}"

    # a non-degenerate interior hides a positive share of the exchange
    # machinery time — i.e. the overlapped run exposes strictly less
    # than its own wire cost (sync, by definition, exposes all of it)
    for brick in (2, 4):
        row = table[f"B{brick}_overlap"]
        assert row["hidden_comm_ms"] > 0.0, f"brick {brick}"
    # B=8 leaves 2^3 bricks per rank: the interior is empty, every slot
    # is shell, and overlap legally hides nothing
    assert table["B8_overlap"]["hidden_comm_ms"] == 0.0
    for brick in BRICK_DIMS:
        assert table[f"B{brick}_sync"]["hidden_comm_ms"] == 0.0

    lines = [
        "Communication overlap: exposed vs hidden comm by brick size",
        f"(32^3 over 2x2x2 ranks, 3 levels, 4 V-cycles; best of {ROUNDS})",
        "",
        f"{'configuration':<14}{'wall ms':>10}{'exposed ms':>12}{'hidden ms':>11}",
    ]
    for label, row in table.items():
        lines.append(
            f"{label:<14}{wall_ms[label]:>10.1f}"
            f"{row['exposed_comm_ms']:>12.2f}{row['hidden_comm_ms']:>11.2f}"
        )
    lines.append("")
    lines.append("histories bit-identical for every brick size")
    report("overlap", "\n".join(lines) + "\n")

    payload = {
        "benchmark": "overlap",
        "problem": {k: BASE[k] for k in ("global_cells", "num_levels")},
        "rounds": ROUNDS,
        "quick": QUICK,
        "end_to_end_ms": wall_ms,
        "micro": {
            "comm_ms": {
                label: row["exposed_comm_ms"] for label, row in table.items()
            }
        },
        "bit_identical_histories": True,
    }
    publish_entry("BENCH_pr7.json", payload)
    write_bench_json("overlap_raw.json", payload, root=False)


def test_model_before_after_critical_path():
    """The analytic before/after: pricing the tier-1 level-0 exchange
    through the event model, the overlapped schedule's exposed cost is
    strictly below the synchronous barrier whenever there is interior
    compute to hide behind — deterministically, unlike wallclock."""
    from repro.machines import MACHINES
    from repro.machines.eventsim import ExchangeEventSim, SimMessage

    sim = ExchangeEventSim(MACHINES["Perlmutter"], ranks_per_node=4, num_nodes=2)
    # 8 ranks, 6 face messages each: per-rank 16^3 cells, brick-deep
    # (4-cell) halo faces of fp64
    face_bytes = 16 * 16 * 4 * 8
    messages = [
        SimMessage(src, (src + stride) % 8, face_bytes)
        for src in range(8)
        for stride in (1, 7, 2, 6, 4, 4)
    ]
    sync = sim.overlap(messages, compute_s=0.0)
    assert sync.exposed_s == sync.comm_s > 0.0

    interior_compute = sync.comm_s / 2
    overlapped = sim.overlap(messages, compute_s=interior_compute)
    assert overlapped.exposed_s < sync.exposed_s
    assert overlapped.hidden_s > 0.0
    assert overlapped.comm_s == sync.comm_s  # hiding is free, not faster wire
