"""Extension: mixed-precision GMG (motivated by the paper's ref. [28]).

Tsai, Beams & Anzt measured the speedups of low-precision multigrid
cycles inside double-precision iterative refinement on the same three
GPU generations.  This bench reproduces both halves of that story:

* functional: a pure fp32 brick-GMG solve stalls near the
  single-precision floor, while fp64 refinement around fp32 inner
  cycles reaches the paper's 1e-10 tolerance;
* modelled: on bandwidth-bound kernels fp32 halves every byte moved,
  so the machine model prices an fp32 V-cycle at close to half the
  fp64 time on all three machines.
"""


from benchmarks.conftest import report
from repro.gmg import GMGSolver, MixedPrecisionSolver, SolverConfig
from repro.harness.vcycle_sim import TimedSolve, WorkloadConfig
from repro.machines import MACHINES

BASE = dict(global_cells=32, num_levels=3, brick_dim=4,
            max_smooths=8, bottom_smooths=40)


def test_mixed_precision_refinement(benchmark):
    def run():
        fp32 = GMGSolver(SolverConfig(**BASE, precision="fp32",
                                      max_vcycles=15)).solve()
        mixed = MixedPrecisionSolver(SolverConfig(**BASE),
                                     inner_vcycles=2).solve()
        return fp32, mixed

    fp32, mixed = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "mixed_precision_refinement",
        f"pure fp32 solve:   stalls at {fp32.final_residual:.2e} "
        f"after {fp32.num_vcycles} V-cycles (tolerance 1e-10 unreachable)\n"
        f"fp64 refinement:   {mixed.final_residual:.2e} after "
        f"{mixed.outer_iterations} outer iterations "
        f"({mixed.inner_vcycles_total} fp32 inner V-cycles)\n",
    )
    assert not fp32.converged
    assert 1e-8 < fp32.final_residual < 1e-3  # the fp32 floor
    assert mixed.converged
    assert mixed.final_residual <= 1e-10


def test_fp32_vcycle_model_speedup(benchmark):
    def run():
        out = {}
        for name, machine in MACHINES.items():
            t64 = TimedSolve(machine, WorkloadConfig()).time_per_vcycle()
            t32 = TimedSolve(
                machine, WorkloadConfig(precision="fp32")
            ).time_per_vcycle()
            out[name] = (t64, t32, t64 / t32)
        return out

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{name}: fp64 {t64 * 1e3:.1f} ms, fp32 {t32 * 1e3:.1f} ms "
        f"-> {s:.2f}x"
        for name, (t64, t32, s) in speedups.items()
    ]
    report("mixed_precision_model", "\n".join(lines) + "\n")
    for name, (_, _, s) in speedups.items():
        # bandwidth-bound: approaching 2x, eroded by launch/comm latency
        assert 1.5 <= s <= 2.0, name
