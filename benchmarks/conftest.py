"""Benchmark-suite helpers.

Each benchmark regenerates one paper table/figure, asserts its
qualitative shape, and emits the paper-format rows.  Reports are
written to ``benchmarks/results/<name>.txt`` as they are produced and
replayed into the terminal summary after the run (pytest captures
stdout at the fd level, so writing during the test would be lost), so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records
every reproduced figure and table.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: (name, text) pairs accumulated during the session, replayed at the end.
_REPORTS: list[tuple[str, str]] = []


def report(name: str, text: str) -> None:
    """Emit a rendered paper table/figure reproduction."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    _REPORTS.append((name, text))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay every reproduced table/figure after the test output."""
    if not _REPORTS:
        return
    terminalreporter.write_sep(
        "=", "reproduced paper tables and figures", bold=True
    )
    for name, text in _REPORTS:
        terminalreporter.write_sep("-", name)
        terminalreporter.write(text)
        if not text.endswith("\n"):
            terminalreporter.write("\n")
