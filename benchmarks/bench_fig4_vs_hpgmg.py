"""Figure 4: relative performance vs HPGMG (time per V-cycle).

HPGMG-CUDA (the paper's baseline) is CUDA-only, so — as in the paper —
it runs on Perlmutter and each machine's brick-GMG V-cycle time is
compared against it.  Paper values: 1.58x faster on Perlmutter, 1.46x
on Frontier, and "similar performance" on Sunspot.

The baseline's kernel haircut is cross-checked against the memsim
package's first-principles layout-traffic measurement: the conventional
layout must move measurably more DRAM data for the same sweep.
"""

from benchmarks.conftest import report
from repro.harness import experiments as E
from repro.harness import reporting as R
from repro.memsim import BrickLayout, CacheConfig, RowMajorLayout, measure_sweep


def test_fig4_relative_performance(benchmark):
    result = benchmark.pedantic(
        E.fig4_vs_hpgmg, rounds=3, iterations=1, warmup_rounds=1
    )
    report("fig4_vs_hpgmg", R.render_fig4(result))

    rp = result.relative_performance
    assert abs(rp["Perlmutter"] - 1.58) <= 0.15
    assert abs(rp["Frontier"] - 1.46) <= 0.15
    assert 0.6 <= rp["Sunspot"] <= 1.2
    assert rp["Perlmutter"] > rp["Frontier"] > rp["Sunspot"]


def test_fig4_layout_factor_is_first_principles(benchmark):
    """memsim independently confirms the direction and rough size of the
    baseline's layout penalty used in the Fig 4 model."""

    def measure():
        cache = CacheConfig(capacity_bytes=4096, line_bytes=64, ways=8)
        brick = measure_sweep(BrickLayout(16, 4), 4, cache)
        tiled = measure_sweep(RowMajorLayout(16), 4, cache)
        return brick, tiled

    brick, tiled = benchmark.pedantic(measure, rounds=1, iterations=1)
    factor = brick.dram_bytes / tiled.dram_bytes
    report(
        "fig4_layout_traffic",
        f"brick sweep DRAM traffic:    {brick.dram_bytes:>10d} B "
        f"({brick.traffic_ratio:.2f}x compulsory)\n"
        f"rowmajor sweep DRAM traffic: {tiled.dram_bytes:>10d} B "
        f"({tiled.traffic_ratio:.2f}x compulsory)\n"
        f"brick/rowmajor traffic ratio: {factor:.2f} "
        f"(model's baseline_layout_factor: 0.75)\n",
    )
    assert factor < 0.9  # bricks move measurably less data
