"""Resilience overhead: the faultsweep battery priced on a paper machine.

Runs the full seeded fault sweep (message drop/corrupt/duplicate/delay,
kernel SDC, a random burst, and a persistent drop storm) and reports
recovery behaviour plus the modelled overhead of the detect → retry →
rollback → degrade machinery. Claims checked:

* with injection disabled the hardened path costs only checkpoints —
  well under one V-cycle of modelled time;
* every transient scenario recovers bit-identically to the fault-free
  reference, with retry-only recovery (message faults) costing zero
  extra V-cycles and rollback recovery (SDC) a bounded number;
* the persistent storm degrades to ``failed_faults`` instead of
  raising, with all of its bounded recovery budget spent;
* overhead ranks sanely: checkpoint-only < retry recovery < rollback
  recovery (re-executed V-cycles dominate).
"""

from benchmarks.conftest import report
from repro.faults.sweep import default_config, fault_sweep, render_fault_sweep
from repro.gmg.solver import estimate_solve_time
from repro.machines import MACHINES

MACHINE = "Perlmutter"


def test_fault_overhead(benchmark):
    rows = benchmark.pedantic(
        lambda: fault_sweep(seed=2024, machine_name=MACHINE),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    report("fault_overhead", render_fault_sweep(rows, MACHINE))

    by_name = {r.scenario: r for r in rows}
    base = by_name["no-faults"]
    storm = by_name["drop-storm"]
    transient = [
        r for r in rows if r.scenario not in ("no-faults", "drop-storm")
    ]

    # hardening without faults: bit-identical, checkpoint-only overhead
    vcycle_ms = estimate_solve_time(
        default_config(), MACHINES[MACHINE], num_vcycles=1
    ) * 1e3
    assert base.bit_identical
    assert base.injected == base.detected == 0
    assert base.overhead_ms < vcycle_ms

    # every transient fault is detected and recovered bit-identically
    for r in transient:
        assert r.status == "converged", r.scenario
        assert r.bit_identical, r.scenario
        assert r.detected >= 1, r.scenario
        if r.retries or r.rollbacks:  # duplicate discard is free
            assert r.overhead_ms > base.overhead_ms, r.scenario

    # retry-only recovery costs no extra cycles; rollback recovery does
    assert by_name["drop-message"].extra_vcycles == 0
    assert by_name["sdc-nan-finest"].extra_vcycles > 0
    assert (
        by_name["sdc-nan-finest"].overhead_ms
        > by_name["drop-message"].overhead_ms
    )

    # the storm exhausts its budget and degrades, never raises
    assert storm.status == "failed_faults"
    assert storm.rollbacks > 0
    assert not storm.bit_identical
