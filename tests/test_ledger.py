"""The performance ledger: ingest, min-of-k baselines, regression gate."""

import json

import pytest

from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerEntry,
    PerfLedger,
    compare_metrics,
    entry_from_bench_payload,
    entry_from_profile,
    load_candidate,
    metric_dispersions,
    noise_thresholds,
)

PAYLOAD = {
    "benchmark": "kernel_hotpath",
    "problem": {"global_cells": 32, "num_levels": 3, "brick_dim": 4},
    "rounds": 6,
    "quick": False,
    "end_to_end_ms": {"seed": 640.71, "full": 267.49},
    "speedup": {"seed": 1.0, "full": 2.395},
    "micro": {"gather_vs_compute_us": {"gather_extended": 870.27}},
    "bit_identical_histories": True,
}


class TestLedgerEntry:
    def test_round_trip(self):
        entry = entry_from_bench_payload(PAYLOAD)
        again = LedgerEntry.from_json(json.loads(json.dumps(entry.to_json())))
        assert again == entry

    def test_flattening(self):
        entry = entry_from_bench_payload(PAYLOAD)
        assert entry.metrics == {
            "end_to_end_ms.seed": 640.71,
            "end_to_end_ms.full": 267.49,
            "micro.gather_vs_compute_us.gather_extended": 870.27,
        }
        # higher-is-better and descriptive fields stay out of the gate
        assert entry.context["speedup"]["full"] == 2.395
        assert entry.context["problem"]["global_cells"] == 32

    def test_unknown_schema_rejected(self):
        obj = entry_from_bench_payload(PAYLOAD).to_json()
        obj["schema"] = LEDGER_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="unsupported ledger schema"):
            LedgerEntry.from_json(obj)

    def test_non_numeric_metric_rejected(self):
        obj = entry_from_bench_payload(PAYLOAD).to_json()
        obj["metrics"]["end_to_end_ms.seed"] = "fast"
        with pytest.raises(ValueError, match="not numeric"):
            LedgerEntry.from_json(obj)

    def test_payload_without_timings_rejected(self):
        with pytest.raises(ValueError, match="no timing sections"):
            entry_from_bench_payload({"benchmark": "x", "speedup": {}})


class TestPerfLedger:
    def test_append_and_read_back(self, tmp_path):
        ledger = PerfLedger(tmp_path / "ledger")
        entry = entry_from_bench_payload(PAYLOAD)
        path = ledger.record(entry)
        assert path.name == "kernel_hotpath.jsonl"
        assert ledger.entries("kernel_hotpath") == [entry]
        assert ledger.benchmarks() == ["kernel_hotpath"]

    def test_missing_benchmark_is_empty(self, tmp_path):
        ledger = PerfLedger(tmp_path / "ledger")
        assert ledger.entries("nope") == []
        assert ledger.baseline_metrics("nope") == {}

    def test_corrupt_line_names_file_and_line(self, tmp_path):
        root = tmp_path / "ledger"
        root.mkdir()
        (root / "bad.jsonl").write_text("{not json}\n")
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            PerfLedger(root).entries("bad")

    def test_min_of_k_baseline(self, tmp_path):
        ledger = PerfLedger(tmp_path / "ledger")
        for value in (80.0, 90.0, 120.0, 110.0):
            ledger.record(
                LedgerEntry("b", {"end_to_end_ms.seed": value})
            )
        # window 3 covers only the last three entries (90, 120, 110):
        # the ancient 80 ms outlier no longer sets the bar
        base = ledger.baseline_metrics("b", window=3)
        assert base["end_to_end_ms.seed"] == 90.0
        base1 = ledger.baseline_metrics("b", window=1)
        assert base1["end_to_end_ms.seed"] == 110.0


class TestRobustBaseline:
    def test_injected_outlier_does_not_poison_min(self, tmp_path):
        """A corrupt 5 ms entry against a ~100 ms series must not set
        the bar: every honest ~100 ms candidate would gate forever."""
        ledger = PerfLedger(tmp_path / "ledger")
        for value in (100.0, 101.0, 5.0, 99.5):
            ledger.record(LedgerEntry("b", {"wall_ms": value}))
        base = ledger.baseline_metrics("b", window=4)
        assert base["wall_ms"] == 99.5
        # the non-robust form keeps the raw min, for comparison
        raw = ledger.baseline_metrics("b", window=4, robust=False)
        assert raw["wall_ms"] == 5.0

    def test_all_flagged_falls_back_to_raw_min(self, tmp_path):
        """Degenerate windows (everything 'an outlier' relative to an
        empty consensus) fall back to the plain min, never to nothing."""
        ledger = PerfLedger(tmp_path / "ledger")
        for value in (100.0, 100.0):
            ledger.record(LedgerEntry("b", {"wall_ms": value}))
        assert ledger.baseline_metrics("b")["wall_ms"] == 100.0

    def test_honest_spread_unaffected(self, tmp_path):
        """Ordinary run-to-run jitter is not outlier-flagged; robust
        and raw baselines agree on a well-behaved series."""
        ledger = PerfLedger(tmp_path / "ledger")
        for value in (90.0, 120.0, 110.0):
            ledger.record(LedgerEntry("b", {"wall_ms": value}))
        assert ledger.baseline_metrics("b")["wall_ms"] == 90.0


class TestNoiseScaledThresholds:
    @staticmethod
    def _entries(values, name="wall_ms"):
        return [LedgerEntry("b", {name: v}) for v in values]

    def test_dispersion_measures_the_window(self):
        disp = metric_dispersions(
            self._entries([100.0, 110.0, 90.0, 105.0]), window=4
        )["wall_ms"]
        assert disp.count == 4
        assert disp.median == pytest.approx(102.5)
        assert disp.rel_iqr > 0

    def test_dispersion_reports_flagged_outliers(self):
        disp = metric_dispersions(
            self._entries([100.0, 101.0, 99.0, 5.0]), window=4
        )["wall_ms"]
        assert disp.outliers == (5.0,)

    def test_quiet_metric_gates_at_floor(self):
        disp = metric_dispersions(self._entries([100.0, 100.0, 100.0]))
        thr = noise_thresholds(disp, floor=0.15)
        assert thr["wall_ms"] == 0.15

    def test_noisy_metric_widens_threshold(self):
        disp = metric_dispersions(self._entries([100.0, 130.0, 80.0]))
        thr = noise_thresholds(disp, floor=0.15, scale=2.0)
        assert thr["wall_ms"] == pytest.approx(2.0 * disp["wall_ms"].rel_iqr)
        assert thr["wall_ms"] > 0.15

    def test_noisy_passes_quiet_fails_same_slowdown(self):
        """The point of noise-scaling: a 25% slowdown is damning on a
        quiet metric and unremarkable on one whose history swings 30%.
        """
        history = [
            LedgerEntry("b", {"quiet_ms": 100.0, "noisy_ms": 100.0}),
            LedgerEntry("b", {"quiet_ms": 101.0, "noisy_ms": 130.0}),
            LedgerEntry("b", {"quiet_ms": 99.5, "noisy_ms": 75.0}),
        ]
        thresholds = noise_thresholds(
            metric_dispersions(history, window=3), floor=0.15
        )
        from repro.obs.ledger import baseline_from_entries

        base = baseline_from_entries(history)
        candidate = {
            "quiet_ms": base["quiet_ms"] * 1.25,
            "noisy_ms": base["noisy_ms"] * 1.25,
        }
        result = compare_metrics(
            base, candidate, "b", threshold=0.15, thresholds=thresholds
        )
        by_name = {r.name: r for r in result.rows}
        assert by_name["quiet_ms"].status == "regression"
        assert by_name["noisy_ms"].status == "ok"
        assert by_name["noisy_ms"].threshold > by_name["quiet_ms"].threshold
        assert result.noise_scaled
        assert "noise-scaled" in result.render()

    def test_flat_threshold_is_a_floor_not_a_default(self):
        """Per-metric thresholds can only widen the gate, never tighten
        it below the flat floor — zero dispersion is not a hair trigger.
        """
        result = compare_metrics(
            {"a_ms": 100.0},
            {"a_ms": 110.0},
            threshold=0.15,
            thresholds={"a_ms": 0.001},
        )
        assert result.rows[0].status == "ok"
        assert result.rows[0].threshold == 0.15


class TestCompare:
    def test_clean_rerun_is_ok(self):
        m = {"a_ms": 100.0, "b_ms": 50.0}
        result = compare_metrics(m, dict(m), "bench")
        assert result.ok
        assert all(r.status == "ok" for r in result.rows)

    def test_twenty_percent_slowdown_regresses(self):
        base = {"a_ms": 100.0}
        result = compare_metrics(base, {"a_ms": 120.0}, threshold=0.15)
        assert not result.ok
        assert result.rows[0].status == "regression"
        assert result.rows[0].ratio == pytest.approx(1.2)

    def test_within_threshold_is_noise(self):
        result = compare_metrics({"a_ms": 100.0}, {"a_ms": 114.0})
        assert result.ok and result.rows[0].status == "ok"

    def test_improvement_flagged(self):
        result = compare_metrics({"a_ms": 100.0}, {"a_ms": 60.0})
        assert result.ok and result.rows[0].status == "improvement"

    def test_new_and_missing_never_gate(self):
        result = compare_metrics({"old_ms": 10.0}, {"new_ms": 99.0})
        assert result.ok
        assert {r.status for r in result.rows} == {"missing", "new"}

    def test_render_names_verdict(self):
        text = compare_metrics({"a_ms": 1.0}, {"a_ms": 2.0}, "b").render()
        assert "REGRESSION" in text and "a_ms" in text


class TestProfileIngest:
    def test_profile_report_becomes_entry(self):
        from repro.gmg import SolverConfig
        from repro.obs import profile_solve

        config = SolverConfig(
            global_cells=16, num_levels=2, brick_dim=4, max_smooths=6,
            bottom_smooths=20, max_vcycles=2,
        )
        report = profile_solve(config, machine_name=None)
        entry = entry_from_profile(report)
        assert entry.benchmark == "profile_solve"
        assert entry.source == "profile"
        assert entry.metrics["wallclock_ms"] > 0
        assert any(k.startswith("l0.") for k in entry.metrics)
        assert 0 < entry.context["coverage"] <= 1.0


class TestPerfgateCommand:
    @pytest.fixture()
    def seeded(self, tmp_path):
        """A tmp ledger with one recorded baseline plus a candidate file."""
        ledger_dir = tmp_path / "ledger"
        PerfLedger(ledger_dir).record(entry_from_bench_payload(PAYLOAD))
        candidate = tmp_path / "BENCH.json"
        candidate.write_text(json.dumps(PAYLOAD))
        return ledger_dir, candidate

    def test_clean_rerun_exits_zero(self, seeded, capsys):
        from repro.cli import main

        ledger_dir, candidate = seeded
        rc = main(["perfgate", "--ledger", str(ledger_dir),
                   "--candidate", str(candidate), "--window", "1"])
        assert rc == 0
        assert "no regressions" in capsys.readouterr().out

    def test_synthetic_slowdown_exits_nonzero(self, seeded, capsys):
        from repro.cli import main

        ledger_dir, candidate = seeded
        rc = main(["perfgate", "--ledger", str(ledger_dir),
                   "--candidate", str(candidate), "--window", "1",
                   "--inject-slowdown", "20"])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_warn_only_reports_but_exits_zero(self, seeded, capsys):
        from repro.cli import main

        ledger_dir, candidate = seeded
        rc = main(["perfgate", "--ledger", str(ledger_dir),
                   "--candidate", str(candidate), "--window", "1",
                   "--inject-slowdown", "20", "--warn-only"])
        assert rc == 0
        assert "warn-only" in capsys.readouterr().out

    def test_update_appends_with_timestamp(self, seeded, capsys):
        from repro.cli import main

        ledger_dir, candidate = seeded
        rc = main(["perfgate", "--ledger", str(ledger_dir),
                   "--candidate", str(candidate), "--update"])
        assert rc == 0
        entries = PerfLedger(ledger_dir).entries("kernel_hotpath")
        assert len(entries) == 2
        assert entries[-1].recorded_at  # stamped on record

    def test_update_refuses_injected_candidate(self, seeded, capsys):
        from repro.cli import main

        ledger_dir, candidate = seeded
        main(["perfgate", "--ledger", str(ledger_dir),
              "--candidate", str(candidate),
              "--inject-slowdown", "20", "--update", "--warn-only"])
        assert "refusing" in capsys.readouterr().out
        assert len(PerfLedger(ledger_dir).entries("kernel_hotpath")) == 1

    def test_no_baseline_is_not_a_failure(self, tmp_path, capsys):
        from repro.cli import main

        candidate = tmp_path / "BENCH.json"
        candidate.write_text(json.dumps(PAYLOAD))
        rc = main(["perfgate", "--ledger", str(tmp_path / "empty"),
                   "--candidate", str(candidate)])
        assert rc == 0
        assert "no baseline" in capsys.readouterr().out

    def test_empty_ledger_file_takes_no_baseline_path(self, tmp_path, capsys):
        """A zero-entry ledger file (truncated / fresh reset) must not
        error and must still record the candidate with ``--update``."""
        from repro.cli import main

        ledger_dir = tmp_path / "ledger"
        ledger_dir.mkdir()
        (ledger_dir / "kernel_hotpath.jsonl").write_text("")
        candidate = tmp_path / "BENCH.json"
        candidate.write_text(json.dumps(PAYLOAD))
        rc = main(["perfgate", "--ledger", str(ledger_dir),
                   "--candidate", str(candidate), "--update"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "no baseline" in out
        assert "recorded candidate" in out
        assert len(PerfLedger(ledger_dir).entries("kernel_hotpath")) == 1

    def test_shorter_than_window_history_does_not_gate(self, seeded, capsys):
        """One entry under the default min-of-k window is not a
        baseline: even a slowed candidate passes (exit 0, no gate)."""
        from repro.cli import main

        ledger_dir, candidate = seeded
        rc = main(["perfgate", "--ledger", str(ledger_dir),
                   "--candidate", str(candidate),
                   "--inject-slowdown", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "no baseline" in out
        assert "1 recorded entries < min-of-3 window" in out


class TestPerfgateSeries:
    """``perfgate --series``: gate ledger series in place (the sweep
    path — each matrix cell is a series; the newest entry is the
    candidate, the preceding window the baseline)."""

    @staticmethod
    def _seed(tmp_path, values, benchmark="sweep_t.cell"):
        ledger = PerfLedger(tmp_path / "ledger")
        for v in values:
            ledger.record(LedgerEntry(benchmark, {"wall_ms": v}))
        return tmp_path / "ledger"

    def test_clean_series_passes(self, tmp_path, capsys):
        from repro.cli import main

        ledger_dir = self._seed(tmp_path, [100.0, 101.0, 99.0, 100.5])
        rc = main(["perfgate", "--ledger", str(ledger_dir),
                   "--series", "sweep_t.*", "--noise-scaled"])
        assert rc == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regressed_tail_fails(self, tmp_path, capsys):
        from repro.cli import main

        ledger_dir = self._seed(tmp_path, [100.0, 101.0, 99.0, 150.0])
        rc = main(["perfgate", "--ledger", str(ledger_dir),
                   "--series", "sweep_t.*", "--noise-scaled"])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_noise_scaling_absorbs_jitter_a_flat_gate_would_trip(
        self, tmp_path, capsys
    ):
        """History with a 12% rel-IQR widens the gate to 24%: a
        candidate 20% over the min-of-k baseline trips the flat 15%
        gate but sits inside the measured noise band."""
        values = [100.0, 112.0, 88.0, 88.0 * 1.20]
        ledger_dir = self._seed(tmp_path, values)
        from repro.cli import main

        assert main(["perfgate", "--ledger", str(ledger_dir),
                     "--series", "sweep_t.*"]) == 1
        capsys.readouterr()
        assert main(["perfgate", "--ledger", str(ledger_dir),
                     "--series", "sweep_t.*", "--noise-scaled"]) == 0

    def test_short_series_does_not_gate(self, tmp_path, capsys):
        from repro.cli import main

        ledger_dir = self._seed(tmp_path, [100.0, 101.0])
        rc = main(["perfgate", "--ledger", str(ledger_dir),
                   "--series", "sweep_t.*"])
        assert rc == 0
        assert "not gating" in capsys.readouterr().out

    def test_unmatched_pattern_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        ledger_dir = self._seed(tmp_path, [100.0])
        rc = main(["perfgate", "--ledger", str(ledger_dir),
                   "--series", "nope_*"])
        assert rc == 1
        assert "no ledger series match" in capsys.readouterr().out

    def test_inject_slowdown_trips_inverted_self_test(self, tmp_path):
        from repro.cli import main

        ledger_dir = self._seed(tmp_path, [100.0, 101.0, 99.0, 100.5])
        rc = main(["perfgate", "--ledger", str(ledger_dir),
                   "--series", "sweep_t.*", "--noise-scaled",
                   "--inject-slowdown", "100"])
        assert rc == 1

    def test_list_shows_series_counts_and_noise(self, tmp_path, capsys):
        from repro.cli import main

        ledger_dir = self._seed(tmp_path, [100.0, 110.0, 90.0, 105.0])
        self._seed(tmp_path, [50.0], benchmark="sweep_t.other")
        rc = main(["perfgate", "--ledger", str(ledger_dir), "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sweep_t.cell" in out and "sweep_t.other" in out
        assert "armed" in out  # 4 entries > window: gateable
        assert "n<" in out  # 1 entry: not yet a baseline


class TestLoadCandidate:
    def test_accepts_raw_bench_payload(self, tmp_path):
        p = tmp_path / "raw.json"
        p.write_text(json.dumps(PAYLOAD))
        entry = load_candidate(p)
        assert entry.benchmark == "kernel_hotpath"

    def test_accepts_ledger_entry_form(self, tmp_path):
        p = tmp_path / "entry.json"
        p.write_text(json.dumps(entry_from_bench_payload(PAYLOAD).to_json()))
        entry = load_candidate(p)
        assert entry.metrics["end_to_end_ms.seed"] == 640.71


class TestCommittedLedger:
    def test_backfilled_history_parses(self):
        """The committed ledger must load: schema current, the PR2
        backfill plus the PR4 run present, and every min-of-k baseline
        value bounded by the latest entry (it is a min)."""
        ledger = PerfLedger("benchmarks/results/ledger")
        entries = ledger.entries("kernel_hotpath")
        assert len(entries) >= 2  # PR2 backfill + PR4 run
        assert all(e.schema == LEDGER_SCHEMA_VERSION for e in entries)
        base = ledger.baseline_metrics("kernel_hotpath")
        assert base
        for name, value in entries[-1].metrics.items():
            assert base[name] <= value
