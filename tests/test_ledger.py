"""The performance ledger: ingest, min-of-k baselines, regression gate."""

import json

import pytest

from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerEntry,
    PerfLedger,
    compare_metrics,
    entry_from_bench_payload,
    entry_from_profile,
    load_candidate,
)

PAYLOAD = {
    "benchmark": "kernel_hotpath",
    "problem": {"global_cells": 32, "num_levels": 3, "brick_dim": 4},
    "rounds": 6,
    "quick": False,
    "end_to_end_ms": {"seed": 640.71, "full": 267.49},
    "speedup": {"seed": 1.0, "full": 2.395},
    "micro": {"gather_vs_compute_us": {"gather_extended": 870.27}},
    "bit_identical_histories": True,
}


class TestLedgerEntry:
    def test_round_trip(self):
        entry = entry_from_bench_payload(PAYLOAD)
        again = LedgerEntry.from_json(json.loads(json.dumps(entry.to_json())))
        assert again == entry

    def test_flattening(self):
        entry = entry_from_bench_payload(PAYLOAD)
        assert entry.metrics == {
            "end_to_end_ms.seed": 640.71,
            "end_to_end_ms.full": 267.49,
            "micro.gather_vs_compute_us.gather_extended": 870.27,
        }
        # higher-is-better and descriptive fields stay out of the gate
        assert entry.context["speedup"]["full"] == 2.395
        assert entry.context["problem"]["global_cells"] == 32

    def test_unknown_schema_rejected(self):
        obj = entry_from_bench_payload(PAYLOAD).to_json()
        obj["schema"] = LEDGER_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="unsupported ledger schema"):
            LedgerEntry.from_json(obj)

    def test_non_numeric_metric_rejected(self):
        obj = entry_from_bench_payload(PAYLOAD).to_json()
        obj["metrics"]["end_to_end_ms.seed"] = "fast"
        with pytest.raises(ValueError, match="not numeric"):
            LedgerEntry.from_json(obj)

    def test_payload_without_timings_rejected(self):
        with pytest.raises(ValueError, match="no timing sections"):
            entry_from_bench_payload({"benchmark": "x", "speedup": {}})


class TestPerfLedger:
    def test_append_and_read_back(self, tmp_path):
        ledger = PerfLedger(tmp_path / "ledger")
        entry = entry_from_bench_payload(PAYLOAD)
        path = ledger.record(entry)
        assert path.name == "kernel_hotpath.jsonl"
        assert ledger.entries("kernel_hotpath") == [entry]
        assert ledger.benchmarks() == ["kernel_hotpath"]

    def test_missing_benchmark_is_empty(self, tmp_path):
        ledger = PerfLedger(tmp_path / "ledger")
        assert ledger.entries("nope") == []
        assert ledger.baseline_metrics("nope") == {}

    def test_corrupt_line_names_file_and_line(self, tmp_path):
        root = tmp_path / "ledger"
        root.mkdir()
        (root / "bad.jsonl").write_text("{not json}\n")
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            PerfLedger(root).entries("bad")

    def test_min_of_k_baseline(self, tmp_path):
        ledger = PerfLedger(tmp_path / "ledger")
        for value in (80.0, 90.0, 120.0, 110.0):
            ledger.record(
                LedgerEntry("b", {"end_to_end_ms.seed": value})
            )
        # window 3 covers only the last three entries (90, 120, 110):
        # the ancient 80 ms outlier no longer sets the bar
        base = ledger.baseline_metrics("b", window=3)
        assert base["end_to_end_ms.seed"] == 90.0
        base1 = ledger.baseline_metrics("b", window=1)
        assert base1["end_to_end_ms.seed"] == 110.0


class TestCompare:
    def test_clean_rerun_is_ok(self):
        m = {"a_ms": 100.0, "b_ms": 50.0}
        result = compare_metrics(m, dict(m), "bench")
        assert result.ok
        assert all(r.status == "ok" for r in result.rows)

    def test_twenty_percent_slowdown_regresses(self):
        base = {"a_ms": 100.0}
        result = compare_metrics(base, {"a_ms": 120.0}, threshold=0.15)
        assert not result.ok
        assert result.rows[0].status == "regression"
        assert result.rows[0].ratio == pytest.approx(1.2)

    def test_within_threshold_is_noise(self):
        result = compare_metrics({"a_ms": 100.0}, {"a_ms": 114.0})
        assert result.ok and result.rows[0].status == "ok"

    def test_improvement_flagged(self):
        result = compare_metrics({"a_ms": 100.0}, {"a_ms": 60.0})
        assert result.ok and result.rows[0].status == "improvement"

    def test_new_and_missing_never_gate(self):
        result = compare_metrics({"old_ms": 10.0}, {"new_ms": 99.0})
        assert result.ok
        assert {r.status for r in result.rows} == {"missing", "new"}

    def test_render_names_verdict(self):
        text = compare_metrics({"a_ms": 1.0}, {"a_ms": 2.0}, "b").render()
        assert "REGRESSION" in text and "a_ms" in text


class TestProfileIngest:
    def test_profile_report_becomes_entry(self):
        from repro.gmg import SolverConfig
        from repro.obs import profile_solve

        config = SolverConfig(
            global_cells=16, num_levels=2, brick_dim=4, max_smooths=6,
            bottom_smooths=20, max_vcycles=2,
        )
        report = profile_solve(config, machine_name=None)
        entry = entry_from_profile(report)
        assert entry.benchmark == "profile_solve"
        assert entry.source == "profile"
        assert entry.metrics["wallclock_ms"] > 0
        assert any(k.startswith("l0.") for k in entry.metrics)
        assert 0 < entry.context["coverage"] <= 1.0


class TestPerfgateCommand:
    @pytest.fixture()
    def seeded(self, tmp_path):
        """A tmp ledger with one recorded baseline plus a candidate file."""
        ledger_dir = tmp_path / "ledger"
        PerfLedger(ledger_dir).record(entry_from_bench_payload(PAYLOAD))
        candidate = tmp_path / "BENCH.json"
        candidate.write_text(json.dumps(PAYLOAD))
        return ledger_dir, candidate

    def test_clean_rerun_exits_zero(self, seeded, capsys):
        from repro.cli import main

        ledger_dir, candidate = seeded
        rc = main(["perfgate", "--ledger", str(ledger_dir),
                   "--candidate", str(candidate), "--window", "1"])
        assert rc == 0
        assert "no regressions" in capsys.readouterr().out

    def test_synthetic_slowdown_exits_nonzero(self, seeded, capsys):
        from repro.cli import main

        ledger_dir, candidate = seeded
        rc = main(["perfgate", "--ledger", str(ledger_dir),
                   "--candidate", str(candidate), "--window", "1",
                   "--inject-slowdown", "20"])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_warn_only_reports_but_exits_zero(self, seeded, capsys):
        from repro.cli import main

        ledger_dir, candidate = seeded
        rc = main(["perfgate", "--ledger", str(ledger_dir),
                   "--candidate", str(candidate), "--window", "1",
                   "--inject-slowdown", "20", "--warn-only"])
        assert rc == 0
        assert "warn-only" in capsys.readouterr().out

    def test_update_appends_with_timestamp(self, seeded, capsys):
        from repro.cli import main

        ledger_dir, candidate = seeded
        rc = main(["perfgate", "--ledger", str(ledger_dir),
                   "--candidate", str(candidate), "--update"])
        assert rc == 0
        entries = PerfLedger(ledger_dir).entries("kernel_hotpath")
        assert len(entries) == 2
        assert entries[-1].recorded_at  # stamped on record

    def test_update_refuses_injected_candidate(self, seeded, capsys):
        from repro.cli import main

        ledger_dir, candidate = seeded
        main(["perfgate", "--ledger", str(ledger_dir),
              "--candidate", str(candidate),
              "--inject-slowdown", "20", "--update", "--warn-only"])
        assert "refusing" in capsys.readouterr().out
        assert len(PerfLedger(ledger_dir).entries("kernel_hotpath")) == 1

    def test_no_baseline_is_not_a_failure(self, tmp_path, capsys):
        from repro.cli import main

        candidate = tmp_path / "BENCH.json"
        candidate.write_text(json.dumps(PAYLOAD))
        rc = main(["perfgate", "--ledger", str(tmp_path / "empty"),
                   "--candidate", str(candidate)])
        assert rc == 0
        assert "no baseline" in capsys.readouterr().out

    def test_empty_ledger_file_takes_no_baseline_path(self, tmp_path, capsys):
        """A zero-entry ledger file (truncated / fresh reset) must not
        error and must still record the candidate with ``--update``."""
        from repro.cli import main

        ledger_dir = tmp_path / "ledger"
        ledger_dir.mkdir()
        (ledger_dir / "kernel_hotpath.jsonl").write_text("")
        candidate = tmp_path / "BENCH.json"
        candidate.write_text(json.dumps(PAYLOAD))
        rc = main(["perfgate", "--ledger", str(ledger_dir),
                   "--candidate", str(candidate), "--update"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "no baseline" in out
        assert "recorded candidate" in out
        assert len(PerfLedger(ledger_dir).entries("kernel_hotpath")) == 1

    def test_shorter_than_window_history_does_not_gate(self, seeded, capsys):
        """One entry under the default min-of-k window is not a
        baseline: even a slowed candidate passes (exit 0, no gate)."""
        from repro.cli import main

        ledger_dir, candidate = seeded
        rc = main(["perfgate", "--ledger", str(ledger_dir),
                   "--candidate", str(candidate),
                   "--inject-slowdown", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "no baseline" in out
        assert "1 recorded entries < min-of-3 window" in out


class TestLoadCandidate:
    def test_accepts_raw_bench_payload(self, tmp_path):
        p = tmp_path / "raw.json"
        p.write_text(json.dumps(PAYLOAD))
        entry = load_candidate(p)
        assert entry.benchmark == "kernel_hotpath"

    def test_accepts_ledger_entry_form(self, tmp_path):
        p = tmp_path / "entry.json"
        p.write_text(json.dumps(entry_from_bench_payload(PAYLOAD).to_json()))
        entry = load_candidate(p)
        assert entry.metrics["end_to_end_ms.seed"] == 640.71


class TestCommittedLedger:
    def test_backfilled_history_parses(self):
        """The committed ledger must load: schema current, the PR2
        backfill plus the PR4 run present, and every min-of-k baseline
        value bounded by the latest entry (it is a min)."""
        ledger = PerfLedger("benchmarks/results/ledger")
        entries = ledger.entries("kernel_hotpath")
        assert len(entries) >= 2  # PR2 backfill + PR4 run
        assert all(e.schema == LEDGER_SCHEMA_VERSION for e in entries)
        base = ledger.baseline_metrics("kernel_hotpath")
        assert base
        for name, value in entries[-1].metrics.items():
            assert base[name] <= value
