"""Communication–computation overlap: split kernels, split exchanges.

Acceptance contract (ISSUE 7): the interior/shell partition covers
every brick slot exactly once for every tier-1 geometry; a split
kernel application (interior pass, barrier, shell pass) is bit-identical
to the whole-grid application; an overlap-enabled solve reproduces the
synchronous residual history AND solution byte-for-byte across engine
modes, smoothers, rank decompositions and agglomeration; a rank crash
seeded into an in-flight ``begin()`` recovers bit-identically (buddy
restore and global restart rungs); and the analytic event model prices
the synchronous and overlapped schedules through one code path.
"""

import numpy as np
import pytest

from repro.bricks.batch import BatchedGrid
from repro.bricks.brick_grid import BrickGrid
from repro.bricks.partition import (
    BrickPartition,
    clear_partition_cache,
    partition_for,
)
from repro.faults import FaultPlan, FaultSpec
from repro.gmg import GMGSolver, SolverConfig


def small_config(**overrides) -> SolverConfig:
    base = dict(
        global_cells=16,
        num_levels=2,
        brick_dim=4,
        max_smooths=4,
        bottom_smooths=12,
        max_vcycles=6,
    )
    base.update(overrides)
    return SolverConfig(**base)


def run(config: SolverConfig, **solver_kwargs):
    solver = GMGSolver(config, **solver_kwargs)
    result = solver.solve()
    return result, solver.solution()


def assert_overlap_identical(config_kwargs, **solver_kwargs):
    """Overlap on must match overlap off byte-for-byte."""
    ref_result, ref_solution = run(small_config(**config_kwargs), **solver_kwargs)
    result, solution = run(
        small_config(**config_kwargs, overlap=True), **solver_kwargs
    )
    assert result.status == ref_result.status
    assert result.num_vcycles == ref_result.num_vcycles
    assert result.residual_history == ref_result.residual_history
    np.testing.assert_array_equal(solution, ref_solution)


# ----------------------------------------------------------------------
# partition coverage
# ----------------------------------------------------------------------
#: the tier-1 geometry set: every (shape, brick, ghost depth) the small
#: solver configurations in this suite and the identity suite produce
GEOMETRIES = [
    ((4, 4, 4), 4, 1),
    ((2, 2, 2), 4, 1),
    ((1, 1, 1), 4, 1),
    ((8, 8, 8), 2, 1),
    ((4, 2, 1), 4, 1),
    ((3, 3, 3), 2, 1),
    ((4, 4, 4), 4, 2),
    ((5, 3, 2), 2, 2),
]


class TestPartitionCoverage:
    @pytest.mark.parametrize("shape,bdim,ghost", GEOMETRIES)
    def test_interior_shell_cover_every_slot_once(self, shape, bdim, ghost):
        grid = BrickGrid(shape, bdim, ghost_bricks=ghost)
        part = BrickPartition(grid)
        union = np.sort(np.concatenate([part.interior, part.shell]))
        np.testing.assert_array_equal(union, np.arange(grid.num_slots))

    @pytest.mark.parametrize("shape,bdim,ghost", GEOMETRIES)
    def test_ghost_slots_always_in_shell(self, shape, bdim, ghost):
        grid = BrickGrid(shape, bdim, ghost_bricks=ghost)
        part = BrickPartition(grid)
        assert set(grid.ghost_slots).issubset(set(part.shell))

    @pytest.mark.parametrize("shape,bdim,ghost", GEOMETRIES)
    def test_interior_neighbourhood_is_owned(self, shape, bdim, ghost):
        """Every deep-interior slot's 26-neighbourhood stays inside the
        owned region — a radius-<=B gather from it never reads ghosts."""
        grid = BrickGrid(shape, bdim, ghost_bricks=ghost)
        part = BrickPartition(grid)
        coords = grid.slot_to_grid[part.interior]
        lo = np.array([ghost] * 3)
        hi = np.array([ghost + n for n in shape])
        for d in (-1, 0, 1):
            for e in (-1, 0, 1):
                for f in (-1, 0, 1):
                    nbr = coords + (d, e, f)
                    assert np.all(nbr >= lo) and np.all(nbr < hi)

    def test_degenerate_shapes_have_empty_interior(self):
        # fewer than 3 bricks along any dim: no slot is 1 away from
        # both owned boundaries, so everything is shell
        for shape in [(1, 1, 1), (2, 2, 2), (2, 4, 4)]:
            part = BrickPartition(BrickGrid(shape, 2))
            assert part.interior.size == 0
            assert part.shell.size == BrickGrid(shape, 2).num_slots

    def test_batched_grid_partitions_per_rank_block(self):
        base = BrickGrid((4, 4, 4), 4)
        batched = BatchedGrid(base, 3)
        part = BrickPartition(batched)
        base_part = BrickPartition(base)
        S = base.num_slots
        expect = np.concatenate([base_part.interior + k * S for k in range(3)])
        np.testing.assert_array_equal(np.sort(part.interior), np.sort(expect))
        union = np.sort(np.concatenate([part.interior, part.shell]))
        np.testing.assert_array_equal(union, np.arange(batched.num_slots))

    def test_partition_cache_shared_and_clearable(self):
        clear_partition_cache()
        g1 = BrickGrid((4, 4, 4), 4)
        g2 = BrickGrid((4, 4, 4), 4)
        assert partition_for(g1) is partition_for(g2)
        assert clear_partition_cache() >= 1
        assert partition_for(g1) is not None


# ----------------------------------------------------------------------
# split kernel application
# ----------------------------------------------------------------------
class TestSplitApply:
    def _level(self, cells=16, bdim=4):
        from repro.gmg.level import Level

        level = Level(0, (cells,) * 3, bdim, 1.0 / cells)
        rng = np.random.default_rng(7)
        for f in level.fields().values():
            f.data[...] = rng.standard_normal(f.data.shape)
        return level

    @pytest.mark.parametrize("stencil_name", ["APPLY_OP", "SMOOTH", "RESIDUAL"])
    def test_split_matches_whole_grid(self, stencil_name):
        from repro.dsl import library
        from repro.dsl.codegen import compile_stencil

        stencil = getattr(library, stencil_name)
        ref = self._level()
        split = self._level()
        kernel = compile_stencil(stencil, ref.grid.brick_dim)
        kernel.apply(ref.fields(), ref.constants.as_dict(), ref.workspace)

        calls = []
        kernel.apply_split(
            split.fields(),
            split.constants.as_dict(),
            split.workspace,
            partition=partition_for(split.grid),
            barrier=lambda: calls.append("barrier"),
        )
        assert calls == ["barrier"]
        for name in kernel.analysis.output_grids:
            np.testing.assert_array_equal(
                split.fields()[name].data, ref.fields()[name].data
            )

    def test_rejects_mismatched_partition(self):
        from repro.dsl.codegen import compile_stencil
        from repro.dsl.library import APPLY_OP

        level = self._level()
        other = BrickGrid((2, 2, 2), 4)
        kernel = compile_stencil(APPLY_OP, level.grid.brick_dim)
        with pytest.raises(ValueError, match="partition"):
            kernel.apply_split(
                level.fields(),
                level.constants.as_dict(),
                level.workspace,
                partition=partition_for(other),
                barrier=lambda: None,
            )


# ----------------------------------------------------------------------
# end-to-end bit-identity
# ----------------------------------------------------------------------
ENGINE_MODES = {
    "seed": {},
    "halo": dict(halo_resident=True),
    "fuse": dict(fuse_kernels=True),
    "batch": dict(batch_ranks=True),
    "full": dict(halo_resident=True, fuse_kernels=True, batch_ranks=True),
}


class TestOverlapIdentity:
    def test_single_rank(self):
        assert_overlap_identical({})

    @pytest.mark.parametrize("mode", ENGINE_MODES)
    def test_engine_modes_two_ranks(self, mode):
        assert_overlap_identical(
            {"rank_dims": (2, 1, 1), **ENGINE_MODES[mode]}
        )

    @pytest.mark.parametrize("mode", ["seed", "batch", "full"])
    def test_eight_ranks_tier1(self, mode):
        """The paper's 8-rank tier-1 problem: per-rank 4^3 brick grids
        with a genuinely non-empty deep interior."""
        assert_overlap_identical(
            {
                "global_cells": 32,
                "num_levels": 3,
                "rank_dims": (2, 2, 2),
                "max_vcycles": 4,
                **ENGINE_MODES[mode],
            }
        )

    @pytest.mark.parametrize("smoother", ["jacobi", "gsrb", "sor", "chebyshev"])
    def test_smoothers(self, smoother):
        assert_overlap_identical(
            {"rank_dims": (2, 1, 1), "smoother": smoother}
        )

    @pytest.mark.parametrize("boundary", ["dirichlet", "neumann"])
    def test_nonperiodic_boundaries(self, boundary):
        assert_overlap_identical(
            {"rank_dims": (2, 1, 1), "boundary": boundary}
        )

    def test_under_agglomeration(self):
        assert_overlap_identical(
            {
                "global_cells": 32,
                "num_levels": 3,
                "rank_dims": (2, 2, 2),
                "max_vcycles": 4,
                "agglomerate_threshold": 600,
            }
        )

    def test_unsupported_smoother_falls_back_to_sync(self):
        """A smoother without ``supports_overlap`` must get the
        synchronous schedule even when the solve asks for overlap —
        a custom ``iterate`` could read ghosts before any halo kernel
        runs, so arming it would feed it stale data."""
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        solver = GMGSolver(
            small_config(rank_dims=(2, 1, 1), overlap=True), tracer=tracer
        )
        solver.vcycle.smoother.supports_overlap = False
        result = solver.solve()
        # smoothing exchanges ran the one-shot synchronous path
        assert any(s.name == "exchange" for s in tracer.spans)
        ref_result, _ = run(small_config(rank_dims=(2, 1, 1)))
        assert result.residual_history == ref_result.residual_history

    def test_variable_coefficient_smoother_opts_out(self):
        """The variable-coefficient smoother inherits the safe default:
        its custom apply-op path never sees a split-phase exchange."""
        from repro.gmg.smoothers import Smoother
        from repro.gmg.varcoef import VariableCoefficientJacobi

        assert Smoother.supports_overlap is False
        assert VariableCoefficientJacobi.supports_overlap is False


# ----------------------------------------------------------------------
# overlap under rank crashes
# ----------------------------------------------------------------------
class TestOverlapUnderCrashes:
    def crash_config(self, **overrides):
        return small_config(
            rank_dims=(2, 1, 1),
            max_smooths=6,
            bottom_smooths=20,
            max_vcycles=100,
            **overrides,
        )

    def assert_crash_identical(self, plan_specs):
        plan = FaultPlan(specs=tuple(plan_specs))
        ref_result, ref_solution = run(self.crash_config(), fault_plan=plan)
        result, solution = run(
            self.crash_config(overlap=True),
            fault_plan=FaultPlan(specs=tuple(plan_specs)),
        )
        assert result.status == ref_result.status == "converged"
        assert result.recovered_ranks == ref_result.recovered_ranks
        assert result.residual_history == ref_result.residual_history
        np.testing.assert_array_equal(solution, ref_solution)
        return result

    def test_buddy_restore_replays_identically(self):
        result = self.assert_crash_identical(
            [FaultSpec("rank_crash", rank=1, vcycle=2)]
        )
        assert result.fault_counts["buddy_restore"] == 1

    def test_crash_during_inflight_begin(self):
        """A level-pinned crash strikes at the victim's entry into that
        level's exchange — in overlap mode that is the crash poll
        inside ``begin()``, with envelopes already posted.  Recovery
        must discard the half-finished exchange and replay."""
        result = self.assert_crash_identical(
            [FaultSpec("rank_crash", rank=0, vcycle=3, level=1)]
        )
        assert result.fault_counts["detect_rank_crash"] == 1

    def test_global_restart_replays_identically(self):
        result = self.assert_crash_identical(
            [FaultSpec("rank_crash", rank=1, vcycle=0)]
        )
        assert result.fault_counts["global_restart"] == 1


# ----------------------------------------------------------------------
# analytic model: one code path for both schedules
# ----------------------------------------------------------------------
class TestEventSimOverlap:
    def _sim(self):
        from repro.machines import MACHINES
        from repro.machines.eventsim import ExchangeEventSim

        return ExchangeEventSim(MACHINES["Perlmutter"], ranks_per_node=1)

    def _messages(self):
        from repro.machines.eventsim import SimMessage

        return [SimMessage(0, 1, 1 << 16), SimMessage(1, 0, 1 << 16)]

    def test_post_time_shifts_the_whole_phase(self):
        sim = self._sim()
        base = sim.run(self._messages())
        shifted = sim.run(self._messages(), post_time=1.0)
        assert shifted.barrier_time == pytest.approx(base.barrier_time + 1.0)

    def test_sync_is_the_zero_compute_special_case(self):
        sim = self._sim()
        sync = sim.overlap(self._messages(), compute_s=0.0)
        assert sync.hidden_s == 0.0
        assert sync.exposed_s == pytest.approx(sync.comm_s)
        assert sync.comm_s == pytest.approx(
            sim.run(self._messages()).barrier_time
        )

    def test_compute_hides_communication(self):
        sim = self._sim()
        sync = sim.overlap(self._messages(), compute_s=0.0)
        half = sim.overlap(self._messages(), compute_s=sync.comm_s / 2)
        full = sim.overlap(self._messages(), compute_s=2 * sync.comm_s)
        assert half.exposed_s == pytest.approx(sync.comm_s / 2)
        assert half.efficiency == pytest.approx(0.5)
        assert full.exposed_s == 0.0
        assert full.efficiency == 1.0
        # hiding never changes the wire cost itself
        assert half.comm_s == full.comm_s == sync.comm_s


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------
class TestOverlapObservability:
    def _traced(self, overlap):
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        solver = GMGSolver(
            small_config(rank_dims=(2, 1, 1), overlap=overlap), tracer=tracer
        )
        result = solver.solve()
        return tracer, solver, result

    def test_split_spans_replace_sync_spans(self):
        tracer, _, _ = self._traced(overlap=True)
        names = {s.name for s in tracer.spans}
        assert {"exchange.begin", "exchange.finish", "interior", "shell"} <= names
        assert "exchange" not in names

    def test_efficiency_gauge_present_only_with_overlap(self):
        from repro.obs.metrics import solve_metrics

        tracer, _, result = self._traced(overlap=True)
        snap = solve_metrics(result.recorder, tracer).snapshot()
        assert 0.0 <= snap["gauges"]["overlap.efficiency"] <= 1.0

        tracer, _, result = self._traced(overlap=False)
        snap = solve_metrics(result.recorder, tracer).snapshot()
        assert "overlap.efficiency" not in snap["gauges"]

    def test_overlap_report_rows(self):
        from repro.obs.rank import overlap_report, render_overlap_report

        tracer, _, result = self._traced(overlap=True)
        rows = overlap_report(tracer)
        assert len(rows) == result.num_vcycles
        for row in rows:
            assert row.sync_exchanges == 0
            assert row.overlapped_exchanges > 0
            assert row.comm_s == pytest.approx(row.exposed_s + row.hidden_s)
            assert row.efficiency is not None
        assert "hidden" in render_overlap_report(rows)

    def test_sync_solve_reports_fully_exposed(self):
        from repro.obs.rank import overlap_efficiency, overlap_report

        tracer, _, _ = self._traced(overlap=False)
        assert overlap_efficiency(tracer) is None
        for row in overlap_report(tracer):
            assert row.overlapped_exchanges == 0
            assert row.hidden_s == 0.0
            assert row.exposed_s == pytest.approx(row.comm_s)

    def test_profile_wait_fraction(self):
        from repro.obs.profile import profile_solve

        report = profile_solve(
            small_config(rank_dims=(2, 1, 1), overlap=True), machine_name=None
        )
        assert 0.0 < report.wait_fraction < 1.0
        assert report.wait_s > 0.0
        assert "wait fraction" in report.render()
        assert report.to_json()["wait_fraction"] == report.wait_fraction
