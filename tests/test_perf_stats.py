"""Variance-aware sample statistics behind the sweep and the gate."""

import json

import pytest

from repro.perf.stats import (
    SampleStats,
    mad_outliers,
    relative_dispersion,
)


class TestSampleStats:
    def test_basic_summary(self):
        s = SampleStats.from_samples([4.0, 1.0, 3.0, 2.0, 5.0])
        assert s.count == 5
        assert s.minimum == 1.0 and s.maximum == 5.0
        assert s.median == 3.0
        assert s.q1 == 2.0 and s.q3 == 4.0
        assert s.iqr == 2.0
        assert s.rel_iqr == pytest.approx(2.0 / 3.0)

    def test_single_sample_degenerates_gracefully(self):
        s = SampleStats.from_samples([7.5])
        assert s.count == 1
        assert s.median == s.minimum == s.maximum == 7.5
        assert s.iqr == 0.0 and s.rel_iqr == 0.0
        assert s.stdev == 0.0
        assert s.outliers == ()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SampleStats.from_samples([])

    def test_tukey_outlier_flagged(self):
        # a tight cluster plus one wild value: the fence catches it
        samples = [100.0, 101.0, 99.0, 100.5, 250.0]
        s = SampleStats.from_samples(samples)
        assert 250.0 in s.outliers
        assert all(v not in s.outliers for v in samples[:4])

    def test_quiet_series_has_no_outliers(self):
        s = SampleStats.from_samples([100.0, 100.4, 99.8, 100.5, 100.2])
        assert s.outliers == ()

    def test_to_json_is_serialisable_and_complete(self):
        s = SampleStats.from_samples([1.0, 2.0, 3.0, 400.0])
        obj = json.loads(json.dumps(s.to_json()))
        for key in ("count", "min", "max", "mean", "median", "q1", "q3",
                    "iqr", "rel_iqr", "stdev", "outliers"):
            assert key in obj, key


class TestMadOutliers:
    def test_injected_outlier_flagged(self):
        # a truncated run recording 5 ms against a ~100 ms series
        values = [100.0, 101.0, 99.0, 5.0, 100.5]
        mask = mad_outliers(values)
        assert mask == [False, False, False, True, False]

    def test_slow_outlier_flagged_too(self):
        mask = mad_outliers([100.0, 101.0, 99.0, 400.0])
        assert mask[-1] is True

    def test_short_series_never_flags(self):
        # with fewer than three values there is no notion of "typical"
        assert mad_outliers([1.0, 1000.0]) == [False, False]
        assert mad_outliers([42.0]) == [False]
        assert mad_outliers([]) == []

    def test_zero_mad_flags_nothing(self):
        # identical values: MAD is zero, nothing can be "deviant"
        assert mad_outliers([5.0, 5.0, 5.0, 5.0]) == [False] * 4


class TestRelativeDispersion:
    def test_matches_stats_rel_iqr(self):
        values = [10.0, 12.0, 11.0, 13.0, 14.0]
        assert relative_dispersion(values) == pytest.approx(
            SampleStats.from_samples(values).rel_iqr
        )

    def test_constant_series_is_zero(self):
        assert relative_dispersion([3.0, 3.0, 3.0]) == 0.0
