"""Public solver API: configuration, convergence, distribution."""

import numpy as np
import pytest

from repro.gmg import GMGSolver, SolverConfig, discrete_solution


class TestConfigValidation:
    def test_defaults_are_valid(self):
        SolverConfig()

    def test_too_small_domain(self):
        with pytest.raises(ValueError):
            SolverConfig(global_cells=1)

    def test_rank_dims_must_divide(self):
        with pytest.raises(ValueError, match="does not divide"):
            SolverConfig(global_cells=32, rank_dims=(3, 1, 1))

    def test_levels_must_fit(self):
        with pytest.raises(ValueError):
            SolverConfig(global_cells=8, num_levels=5)

    def test_level_spacing(self):
        cfg = SolverConfig(global_cells=32, num_levels=3)
        assert cfg.level_spacing(0) == pytest.approx(1 / 32)
        assert cfg.level_spacing(2) == pytest.approx(4 / 32)

    def test_derived_properties(self):
        cfg = SolverConfig(global_cells=32, rank_dims=(2, 2, 1))
        assert cfg.num_ranks == 4
        assert cfg.cells_per_rank == (16, 16, 32)


class TestSerialSolve:
    @pytest.fixture(scope="class")
    def result_and_solver(self):
        solver = GMGSolver(
            SolverConfig(global_cells=32, num_levels=3, brick_dim=4)
        )
        return solver.solve(), solver

    def test_converges(self, result_and_solver):
        result, _ = result_and_solver
        assert result.converged
        assert result.final_residual <= 1e-10

    def test_solution_matches_discrete_exact(self, result_and_solver):
        """The solver must land on the closed-form discrete solution."""
        result, solver = result_and_solver
        exact = discrete_solution((32, 32, 32), 1 / 32)
        assert np.abs(solver.solution() - exact).max() < 1e-12

    def test_convergence_factor_is_multigrid_like(self, result_and_solver):
        """GMG reduces the residual by a healthy factor per cycle."""
        result, _ = result_and_solver
        assert result.convergence_factor < 0.15

    def test_residual_dense_matches_history(self, result_and_solver):
        result, solver = result_and_solver
        assert np.abs(solver.residual_dense()).max() == pytest.approx(
            result.final_residual
        )

    def test_recorder_saw_work(self, result_and_solver):
        result, _ = result_and_solver
        counts = result.recorder.kernel_counts()
        assert counts[(0, "applyOp")] > 0
        assert counts[(2, "smooth")] > 0  # bottom solver
        assert result.recorder.reductions == len(result.residual_history)


class TestDistributedEquivalence:
    @pytest.fixture(scope="class")
    def serial_solution(self):
        solver = GMGSolver(
            SolverConfig(global_cells=16, num_levels=2, brick_dim=4,
                         max_smooths=6, bottom_smooths=20)
        )
        solver.solve()
        return solver.solution()

    @pytest.mark.parametrize("dims", [(2, 1, 1), (1, 2, 1), (2, 2, 1), (2, 2, 2)])
    def test_multi_rank_matches_serial_bitwise(self, serial_solution, dims):
        solver = GMGSolver(
            SolverConfig(global_cells=16, num_levels=2, brick_dim=4,
                         max_smooths=6, bottom_smooths=20, rank_dims=dims)
        )
        solver.solve()
        np.testing.assert_array_equal(solver.solution(), serial_solution)

    def test_ordering_does_not_change_results(self, serial_solution):
        solver = GMGSolver(
            SolverConfig(global_cells=16, num_levels=2, brick_dim=4,
                         max_smooths=6, bottom_smooths=20,
                         rank_dims=(2, 1, 1), ordering="lexicographic")
        )
        solver.solve()
        np.testing.assert_array_equal(solver.solution(), serial_solution)

    def test_comm_is_drained_after_solve(self):
        solver = GMGSolver(
            SolverConfig(global_cells=16, num_levels=2, brick_dim=4,
                         max_smooths=4, bottom_smooths=8, rank_dims=(2, 1, 1))
        )
        solver.solve()  # raises internally if messages leak


class TestBrickSizeIndependence:
    def test_brick_dim_does_not_change_numerics(self):
        sols = []
        for b in (2, 4, 8):
            s = GMGSolver(
                SolverConfig(global_cells=16, num_levels=2, brick_dim=b,
                             max_smooths=4, bottom_smooths=10)
            )
            s.solve()
            sols.append(s.solution())
        np.testing.assert_array_equal(sols[0], sols[1])
        np.testing.assert_array_equal(sols[1], sols[2])

    def test_brick_dim_shrinks_on_coarse_levels(self):
        s = GMGSolver(SolverConfig(global_cells=16, num_levels=3, brick_dim=8))
        dims = [lv.grid.brick_dim for lv in s.rank_levels[0]]
        assert dims == [8, 8, 4]


class TestSolveResult:
    def test_zero_cycle_convergence_factor(self):
        from repro.gmg.solver import SolveResult
        from repro.instrument import Recorder

        r = SolveResult(True, 0, [0.0], Recorder())
        assert r.convergence_factor == 1.0

    def test_plain_solve_reports_status(self):
        result = GMGSolver(
            SolverConfig(global_cells=16, num_levels=2, brick_dim=4,
                         max_smooths=6, bottom_smooths=20)
        ).solve()
        assert result.status == "converged"
        assert result.executed_vcycles == result.num_vcycles
        assert result.rollbacks == 0
        assert result.fault_counts == {}

    def test_max_vcycles_status(self):
        result = GMGSolver(
            SolverConfig(global_cells=16, num_levels=2, brick_dim=4,
                         max_smooths=2, bottom_smooths=4, max_vcycles=1)
        ).solve()
        assert not result.converged
        assert result.status == "max_vcycles"
        assert result.num_vcycles == 1


class TestEstimateSolveTime:
    def test_bridges_functional_config_to_machine_model(self):
        from repro.gmg.solver import estimate_solve_time
        from repro.machines import PERLMUTTER

        cfg = SolverConfig(global_cells=512 * 2, num_levels=6, brick_dim=8,
                           rank_dims=(2, 2, 2))
        t = estimate_solve_time(cfg, PERLMUTTER, num_vcycles=12)
        # the paper-scale run: a few seconds on the A100 model
        assert 1.0 < t < 10.0

    def test_actual_cycles_feed_the_estimate(self):
        from repro.gmg.solver import estimate_solve_time
        from repro.machines import PERLMUTTER

        cfg = SolverConfig(global_cells=32, num_levels=3, brick_dim=4,
                           max_smooths=8, bottom_smooths=40)
        result = GMGSolver(cfg).solve()
        t = estimate_solve_time(cfg, PERLMUTTER, result.num_vcycles)
        assert t > 0

    def test_non_periodic_rejected(self):
        from repro.gmg.solver import estimate_solve_time
        from repro.machines import PERLMUTTER

        cfg = SolverConfig(global_cells=32, num_levels=3, brick_dim=4,
                           boundary="dirichlet")
        with pytest.raises(ValueError, match="periodic"):
            estimate_solve_time(cfg, PERLMUTTER, 10)
