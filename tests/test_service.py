"""Tests for the multi-tenant solve service (repro.service).

The load-bearing property is *bit-identity*: a request solved inside a
cohort of any occupancy, on any engine variant, must reproduce the
standalone solver's residual history and solution exactly — floats
compared with ``==`` and arrays with ``array_equal``, no tolerances.
Alongside ride the single-solve-lifetime fixes the service forced:
geometry-keyed plan caches, owner-scoped metric registration, and
per-fork tracer timelines.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.bricks.plan_cache import PlanLRUCache, cache_stats
from repro.gmg.solver import GMGSolver, SolverConfig
from repro.obs.chrome_trace import to_chrome_trace, validate_chrome_trace
from repro.obs.metrics import MetricsRegistry, solve_metrics
from repro.obs.tracer import Tracer
from repro.service import (
    CohortSolver,
    SolveRequest,
    SolveService,
    geometry_key,
    standalone_solve,
)
from repro.service.cohort import StackedLocalExchanger
from repro.service.loadgen import generate_requests, run_loadgen, smoke_config


def tiny_config(**overrides) -> SolverConfig:
    base = dict(
        global_cells=8,
        num_levels=2,
        brick_dim=2,
        max_smooths=2,
        bottom_smooths=8,
        max_vcycles=6,
    )
    base.update(overrides)
    return SolverConfig(**base)


def assert_identical(cohort_result, reference) -> None:
    assert cohort_result.residual_history == reference.residual_history
    assert cohort_result.converged == reference.converged
    assert cohort_result.num_vcycles == reference.num_vcycles
    assert np.array_equal(cohort_result.solution, reference.solution)


# ---------------------------------------------------------------------------
# bit-identity: request-in-cohort == standalone
# ---------------------------------------------------------------------------
ENGINE_VARIANTS = {
    "seed": {},
    "batched": {"batch_ranks": True},
    "resident": {"halo_resident": True, "batch_ranks": True},
    "engine": {
        "halo_resident": True,
        "fuse_kernels": True,
        "batch_ranks": True,
    },
    "overlap": {"overlap": True},
    "overlap-batched": {"overlap": True, "batch_ranks": True},
    "multirank": {"rank_dims": (2, 1, 1)},
    "multirank-agg": {
        "global_cells": 16,
        "num_levels": 3,
        "brick_dim": 4,
        "rank_dims": (2, 2, 1),
        "agglomerate_threshold": 100,
    },
    "multirank-agg-engine": {
        "global_cells": 16,
        "num_levels": 3,
        "brick_dim": 4,
        "rank_dims": (2, 2, 1),
        "agglomerate_threshold": 100,
        "halo_resident": True,
        "fuse_kernels": True,
        "batch_ranks": True,
    },
}


@pytest.mark.parametrize("variant", sorted(ENGINE_VARIANTS))
def test_cohort_bit_identical_to_standalone(variant):
    cfg = tiny_config(**ENGINE_VARIANTS[variant])
    cohort = CohortSolver(cfg, capacity=3)
    requests = [SolveRequest(cfg, amplitude=a) for a in (1.0, 0.7, 1.9)]
    results = {r.request.request_id: r for r in cohort.solve_stream(requests)}
    assert len(results) == 3
    for request in requests:
        assert_identical(results[request.request_id], standalone_solve(request))


def test_single_request_among_idle_slots():
    """One tenant in an otherwise empty capacity-8 cohort sees exactly
    the standalone floats (idle slots hold zeros and never couple)."""
    cfg = tiny_config(batch_ranks=True, fuse_kernels=True)
    cohort = CohortSolver(cfg, capacity=8)
    request = SolveRequest(cfg, amplitude=1.3)
    (result,) = cohort.solve_stream([request])
    assert_identical(result, standalone_solve(request))


def test_retire_and_join_stream_bit_identical():
    """Heterogeneous tolerances through fewer slots than requests:
    retirements free slots, joiners enter at cycle boundaries mid-flight
    of their neighbours — every trajectory stays standalone-exact."""
    cfg = tiny_config(batch_ranks=True, max_vcycles=12)
    cohort = CohortSolver(cfg, capacity=3)
    requests = [
        SolveRequest(
            replace(cfg, tol=[1e-2, 1e-4, 1e-7][k % 3]),
            amplitude=0.5 + 0.3 * k,
        )
        for k in range(8)
    ]
    results = {r.request.request_id: r for r in cohort.solve_stream(requests)}
    assert len(results) == 8
    joined = sorted(results[q.request_id].joined_at_cycle for q in requests)
    assert joined[0] == 0 and joined[-1] > 0  # some really joined late
    for request in requests:
        assert_identical(results[request.request_id], standalone_solve(request))


def test_requests_with_different_tols_share_a_cohort():
    cfg = tiny_config()
    relaxed = replace(cfg, tol=1e-2, max_vcycles=99)
    assert geometry_key(cfg) == geometry_key(relaxed)
    assert geometry_key(cfg) != geometry_key(tiny_config(global_cells=16))


def test_cohort_rejects_reducing_bottom_solver():
    with pytest.raises(ValueError, match="relaxation"):
        CohortSolver(tiny_config(bottom_solver="cg"), capacity=2)


def test_cohort_rejects_foreign_geometry():
    cohort = CohortSolver(tiny_config(), capacity=2)
    alien = SolveRequest(tiny_config(global_cells=16))
    with pytest.raises(ValueError, match="geometry"):
        cohort.solve_stream([alien])


def test_stacked_exchanger_engages_on_smoke_geometry():
    """The single-rank fused exchange is what makes batching pay; make
    sure the smoke path actually uses it at every level."""
    cohort = CohortSolver(smoke_config(), capacity=4)
    assert all(
        isinstance(ex, StackedLocalExchanger)
        for ex in cohort.vcycle.exchangers
    )


# ---------------------------------------------------------------------------
# the service front-end
# ---------------------------------------------------------------------------
def test_service_groups_by_geometry_and_caches_cohorts():
    registry = MetricsRegistry()
    service = SolveService(capacity=2, registry=registry)
    small, large = tiny_config(), tiny_config(global_cells=16)
    requests = [
        SolveRequest(small, amplitude=1.0),
        SolveRequest(large, amplitude=0.8),
        SolveRequest(small, amplitude=1.5),
    ]
    results = service.submit(requests)
    assert len(results) == 3
    assert service.num_cohorts == 2
    assert registry.get("service.cohorts_built") == 2
    for request in requests:
        got = next(r for r in results if r.request is request)
        assert_identical(got, standalone_solve(request))
    # resubmission reuses both cohorts — the workspace cache at work
    service.submit([SolveRequest(small), SolveRequest(large)])
    assert service.num_cohorts == 2
    assert registry.get("service.cohorts_built") == 2
    assert registry.get("service.cohort_cache_hits") == 2
    assert registry.get("service.requests") == 5


def test_loadgen_smoke_reports_speedup_and_ledger_metrics():
    report = run_loadgen(
        smoke_config(), num_requests=4, capacity=4, seed=1, warmup=True
    )
    assert report.num_requests == 4
    assert report.speedup > 0
    assert report.occupancy > 0.5
    assert len(report.latencies_ms) == 4
    assert report.metrics["p50_ms"] <= report.metrics["p95_ms"]
    # lower-is-better keys for the perf ledger
    for key in ("ms_per_solve", "p50_ms", "p95_ms", "sequential_ms_per_solve"):
        assert report.metrics[key] > 0
    payload = report.to_json()
    assert payload["context"]["capacity"] == 4


def test_loadgen_open_loop_arrivals_are_monotone():
    requests, arrivals = generate_requests(
        smoke_config(), 6, seed=3, rate_hz=50.0
    )
    assert len(requests) == len(arrivals) == 6
    assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))
    ids = [r.request_id for r in requests]
    assert len(set(ids)) == 6


# ---------------------------------------------------------------------------
# satellite 1: geometry-keyed bounded plan caches
# ---------------------------------------------------------------------------
def test_plan_lru_cache_eviction_and_stats():
    cache = PlanLRUCache("test.lru", maxsize=2)
    try:
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["size"] == 2
        assert cache_stats()["test.lru"]["hits"] == stats["hits"]
    finally:
        cache.unregister()


def test_congruent_solvers_share_halo_plans():
    from repro.bricks.halo_plan import _OFFSET_PLAN_CACHE

    cfg = tiny_config(fuse_kernels=True, batch_ranks=True)
    GMGSolver(cfg).solve()
    misses_before = _OFFSET_PLAN_CACHE.stats()["misses"]
    hits_before = _OFFSET_PLAN_CACHE.stats()["hits"]
    GMGSolver(cfg).solve()  # congruent geometry: all plans cached
    assert _OFFSET_PLAN_CACHE.stats()["misses"] == misses_before
    assert _OFFSET_PLAN_CACHE.stats()["hits"] > hits_before


# ---------------------------------------------------------------------------
# satellite 2: owner-scoped metric registration
# ---------------------------------------------------------------------------
def test_metrics_owner_idempotent_re_registration():
    registry = MetricsRegistry()
    registry.gauge("svc.depth", 3.0, owner="svc")
    # same owner may redefine the name, even across kinds
    registry.counter("svc.depth", 1.0, owner="svc")
    assert registry.get("svc.depth") == 1.0
    # a different owner may not
    with pytest.raises(ValueError, match="already"):
        registry.gauge("svc.depth", 9.0, owner="other")
    # unowned writes keep the strict collision error
    registry.counter("legacy.count", 1.0)
    with pytest.raises(ValueError, match="already"):
        registry.gauge("legacy.count", 2.0)


def test_two_solves_fold_into_one_registry():
    """The long-lived-service regression: two back-to-back solves must
    observe into one registry without collision errors."""
    cfg = tiny_config()
    registry = MetricsRegistry()
    for _ in range(2):
        solver = GMGSolver(cfg)
        solver.solve()
        registry.observe_recorder(solver.recorder)
        registry.observe_plan_caches()
    assert registry.get("kernels.total") > 0


def test_solve_metrics_includes_plan_cache_gauges():
    cfg = tiny_config()
    solver = GMGSolver(cfg)
    solver.solve()
    registry = solve_metrics(solver.recorder)
    snapshot = registry.snapshot()
    assert any(k.startswith("cache.") for k in snapshot["gauges"])


# ---------------------------------------------------------------------------
# satellite 3: per-fork tracer timelines
# ---------------------------------------------------------------------------
def test_interleaved_forked_solves_export_valid_chrome_trace():
    root = Tracer()
    cfg = tiny_config()
    a, b = root.fork("cohort-0"), root.fork("cohort-1")
    # interleave two solves' spans on sibling timelines
    solver_a, solver_b = GMGSolver(cfg, tracer=a), GMGSolver(cfg, tracer=b)
    with a.span("solve"):
        solver_a.vcycle.run()
        with b.span("solve"):
            solver_b.vcycle.run()
    trace = to_chrome_trace(root)
    counts = validate_chrome_trace(trace)
    assert counts["spans"] > 0
    # both forks appear as named threads under the driver pid
    labels = {
        ev["args"]["name"]
        for ev in trace["traceEvents"]
        if ev.get("ph") == "M" and ev.get("name") == "thread_name"
    }
    assert {"fork cohort-0", "fork cohort-1"} <= labels


def test_fork_timelines_are_isolated_but_share_epoch():
    root = Tracer()
    fork = root.fork("f")
    assert root.fork("f") is fork  # cached by key
    with fork.span("x"):
        pass
    assert not root.spans  # fork records never leak into the root
    assert fork.spans[0].name == "x"


def test_service_traces_each_cohort_into_its_own_fork():
    tracer = Tracer()
    service = SolveService(capacity=2, tracer=tracer)
    service.submit([SolveRequest(tiny_config())])
    assert list(tracer.forks) == ["cohort-0"]
    fork = tracer.forks["cohort-0"]
    assert fork.find("cohort-stream")
    validate_chrome_trace(to_chrome_trace(tracer))
