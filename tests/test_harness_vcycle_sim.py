"""The analytic timed V-cycle: schedule fidelity and cost structure."""

import pytest

from repro.gmg import GMGSolver, SolverConfig
from repro.harness.vcycle_sim import TimedSolve, WorkloadConfig, decompose_for
from repro.machines import FRONTIER, PERLMUTTER, SUNSPOT


class TestWorkloadConfig:
    def test_defaults_are_the_paper_run(self):
        w = WorkloadConfig()
        assert w.per_rank_cells == (512, 512, 512)
        assert w.num_levels == 6
        assert w.num_ranks == 8
        assert w.global_cells == (1024, 1024, 1024)

    def test_divisibility_enforced(self):
        with pytest.raises(ValueError):
            WorkloadConfig(per_rank_cells=(48, 48, 48), num_levels=6)

    def test_positive_counts(self):
        with pytest.raises(ValueError):
            WorkloadConfig(max_smooths=0)

    def test_layout_factor_range(self):
        with pytest.raises(ValueError):
            WorkloadConfig(baseline_layout_factor=0.0)


class TestDecomposeFor:
    def test_cubic(self):
        assert decompose_for((1024, 1024, 1024), 8) == (2, 2, 2)

    def test_non_cubic_global(self):
        dims = decompose_for((2048, 1024, 1024), 16)
        assert dims[0] * dims[1] * dims[2] == 16
        per = tuple(c // d for c, d in zip((2048, 1024, 1024), dims))
        assert all(c % 1 == 0 for c in per)

    def test_factor_of_three(self):
        dims = decompose_for((3072, 1024, 1024), 12)
        assert dims[0] % 3 == 0  # the 3 must land on the 3072 axis

    def test_impossible_raises(self):
        with pytest.raises(ValueError):
            decompose_for((8, 8, 8), 5)  # 5 divides no dimension

    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            decompose_for((8, 8, 8), 0)


class TestScheduleFidelity:
    """The harness must count exactly what the functional solver does."""

    @pytest.fixture(scope="class")
    def pair(self):
        cfg = SolverConfig(
            global_cells=32, num_levels=3, brick_dim=4, max_smooths=5,
            bottom_smooths=7, tol=0.0, max_vcycles=2, rank_dims=(2, 1, 1),
        )
        solver = GMGSolver(cfg)
        result = solver.solve()
        w = WorkloadConfig(
            per_rank_cells=(16, 32, 32), num_levels=3, max_smooths=5,
            bottom_smooths=7, rank_dims=(2, 1, 1), brick_dim=4,
        )
        ts = TimedSolve(PERLMUTTER, w)
        return solver, result, ts

    def test_kernel_counts_match(self, pair):
        solver, result, ts = pair
        expected = ts.schedule_kernel_counts(
            result.num_vcycles, len(result.residual_history)
        )
        assert expected == solver.recorder.kernel_counts()

    def test_exchange_counts_match(self, pair):
        solver, result, ts = pair
        expected = ts.schedule_exchange_counts(
            result.num_vcycles, len(result.residual_history)
        )
        assert expected == solver.recorder.exchange_counts()

    def test_message_bytes_match(self, pair):
        solver, result, ts = pair
        expected = ts.schedule_message_bytes(
            result.num_vcycles, len(result.residual_history)
        )
        assert expected == solver.recorder.message_bytes_by_level()

    def test_non_ca_schedule_also_matches(self):
        cfg = SolverConfig(
            global_cells=16, num_levels=2, brick_dim=4, max_smooths=5,
            bottom_smooths=6, tol=0.0, max_vcycles=1,
            communication_avoiding=False,
        )
        solver = GMGSolver(cfg)
        result = solver.solve()
        w = WorkloadConfig(
            per_rank_cells=(16, 16, 16), num_levels=2, max_smooths=5,
            bottom_smooths=6, rank_dims=(1, 1, 1), brick_dim=4,
            communication_avoiding=False,
        )
        ts = TimedSolve(PERLMUTTER, w)
        assert ts.schedule_exchange_counts(
            result.num_vcycles, len(result.residual_history)
        ) == solver.recorder.exchange_counts()


class TestCostStructure:
    def test_levels_get_cheaper_going_down(self):
        ts = TimedSolve(PERLMUTTER, WorkloadConfig())
        totals = [sum(lv.values()) for lv in ts.vcycle_level_times()]
        # each level is much cheaper than the one above, except the
        # coarsest where the 100-iteration bottom solve bites
        assert all(a > b for a, b in zip(totals[:-2], totals[1:-1]))

    def test_bottom_solver_bump(self):
        """The paper notes the coarsest level costs more than the one
        above it despite having 8x fewer points."""
        ts = TimedSolve(PERLMUTTER, WorkloadConfig())
        totals = [sum(lv.values()) for lv in ts.vcycle_level_times()]
        assert totals[-1] > totals[-2]

    def test_fine_levels_scale_between_4x_and_8x(self):
        """Computation scales 8x per level, surfaces 4x: totals in between."""
        ts = TimedSolve(PERLMUTTER, WorkloadConfig())
        totals = [sum(lv.values()) for lv in ts.vcycle_level_times()]
        ratio = totals[0] / totals[1]
        assert 4.0 <= ratio <= 8.5

    def test_ca_beats_non_ca(self):
        base = TimedSolve(PERLMUTTER, WorkloadConfig()).time_per_vcycle()
        no_ca = TimedSolve(
            PERLMUTTER, WorkloadConfig(communication_avoiding=False)
        ).time_per_vcycle()
        assert no_ca > base * 1.3

    def test_lexicographic_pays_for_packing(self):
        sm = TimedSolve(PERLMUTTER, WorkloadConfig()).time_per_vcycle()
        lex = TimedSolve(
            PERLMUTTER, WorkloadConfig(ordering="lexicographic")
        ).time_per_vcycle()
        assert lex > sm

    def test_gpu_aware_override(self):
        base = TimedSolve(PERLMUTTER, WorkloadConfig()).time_per_vcycle()
        staged = TimedSolve(
            PERLMUTTER, WorkloadConfig(gpu_aware=False)
        ).time_per_vcycle()
        assert staged > base

    def test_baseline_slower_than_bricks(self):
        for machine in (PERLMUTTER, FRONTIER, SUNSPOT):
            brick = TimedSolve(machine, WorkloadConfig()).time_per_vcycle()
            base = TimedSolve(
                machine, WorkloadConfig(baseline=True)
            ).time_per_vcycle()
            assert base > brick

    def test_fractions_sum_to_one(self):
        fr = TimedSolve(PERLMUTTER, WorkloadConfig()).op_fractions_finest()
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_exchange_bytes_scale_4x_between_levels(self):
        """Surface data shrinks ~4x per level (for large levels)."""
        ts = TimedSolve(PERLMUTTER, WorkloadConfig())
        b0 = ts.exchange_total_bytes(0)
        b1 = ts.exchange_total_bytes(1)
        assert b0 / b1 == pytest.approx(4.0, rel=0.15)

    def test_gstencil_metric(self):
        ts = TimedSolve(PERLMUTTER, WorkloadConfig())
        expected = 1024**3 / ts.total_solve_time() / 1e9
        assert ts.gstencil_per_second() == pytest.approx(expected)

    def test_solve_time_includes_convergence_checks(self):
        ts = TimedSolve(PERLMUTTER, WorkloadConfig())
        assert ts.total_solve_time() > 12 * ts.time_per_vcycle()


class TestTimeDecomposition:
    def test_buckets_sum_close_to_vcycle_time(self):
        from repro.machines import PERLMUTTER

        ts = TimedSolve(PERLMUTTER, WorkloadConfig())
        d = ts.time_decomposition()
        total = sum(d.values())
        # decomposition covers one V-cycle + one convergence check's
        # exchange/kernels; compare against the same quantity
        per_cycle = ts.time_per_vcycle() + ts.convergence_check_time()
        assert total == pytest.approx(per_cycle, rel=0.15)

    def test_streaming_dominates_at_paper_scale(self):
        from repro.machines import PERLMUTTER

        ts = TimedSolve(PERLMUTTER, WorkloadConfig())
        assert ts.latency_fraction() < 0.10

    def test_latency_fraction_grows_under_strong_scaling(self):
        from repro.harness.experiments import strong_scaling_breakdown

        bd = strong_scaling_breakdown("Perlmutter")
        f = bd.latency_fractions
        assert all(a < b for a, b in zip(f, f[1:]))
        assert f[0] < 0.05
        assert f[-1] > 0.3

    def test_kernel_launch_constant_under_strong_scaling(self):
        """Launch latency per cycle is schedule-fixed; only the
        streaming terms shrink with the per-rank problem."""
        from repro.harness.experiments import strong_scaling_breakdown

        bd = strong_scaling_breakdown("Frontier")
        launches = [d["kernel_launch"] for d in bd.decompositions]
        assert max(launches) == pytest.approx(min(launches), rel=1e-6)
        streams = [d["kernel_stream"] for d in bd.decompositions]
        assert all(a > b for a, b in zip(streams, streams[1:]))
