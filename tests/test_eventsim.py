"""Discrete-event exchange simulation vs the closed-form model."""

import pytest

from repro.machines import FRONTIER, PERLMUTTER, SUNSPOT
from repro.machines.eventsim import ExchangeEventSim, SimMessage
from repro.machines.network import exchange_time

MB = 1 << 20
EXCHANGE_SIZES = [16 * MB] * 6 + [256 * 1024] * 12 + [4096] * 8


class TestAgreementWithClosedForm:
    @pytest.mark.parametrize("machine", [PERLMUTTER, FRONTIER, SUNSPOT])
    def test_one_rank_per_nic_matches(self, machine):
        """With a dedicated NIC the FIFO degenerates to serialization —
        exactly the closed form's assumption."""
        sim = ExchangeEventSim(machine, ranks_per_node=1)
        t_event = sim.exchange_barrier_time(EXCHANGE_SIZES)
        t_closed = exchange_time(machine, EXCHANGE_SIZES, ranks_per_node=1)
        assert t_event == pytest.approx(t_closed, rel=0.01)

    def test_local_messages_overlap(self):
        sim = ExchangeEventSim(PERLMUTTER, ranks_per_node=1)
        remote_only = sim.exchange_barrier_time([8 * MB])
        with_local = sim.exchange_barrier_time([8 * MB], [MB])
        # the on-node fabric runs concurrently with the NIC
        assert with_local == pytest.approx(remote_only, rel=0.05)


class TestNicSharing:
    def test_shared_nic_serialises(self):
        """Frontier full node: 8 GCD ranks over 4 NICs — the second
        rank on each NIC waits for the first."""
        sim = ExchangeEventSim(FRONTIER, ranks_per_node=8)
        msgs = [SimMessage(src=r, dst=8, nbytes=16 * MB) for r in range(8)]
        out = sim.run(msgs)
        first_wave = [out.send_complete[r] for r in range(4)]
        second_wave = [out.send_complete[r] for r in range(4, 8)]
        assert max(first_wave) < min(second_wave)
        assert min(second_wave) == pytest.approx(2 * max(first_wave), rel=0.01)

    def test_dedicated_nics_do_not_serialise(self):
        """Perlmutter full node: 4 ranks, 4 NICs — no queueing."""
        sim = ExchangeEventSim(PERLMUTTER, ranks_per_node=4)
        msgs = [SimMessage(src=r, dst=4, nbytes=16 * MB) for r in range(4)]
        out = sim.run(msgs)
        times = [out.send_complete[r] for r in range(4)]
        assert max(times) == pytest.approx(min(times), rel=1e-6)

    def test_nic_assignment_round_robin(self):
        sim = ExchangeEventSim(FRONTIER, ranks_per_node=8)
        assert sim.nic_of(0) == (0, 0)
        assert sim.nic_of(4) == (0, 0)  # shares with rank 0
        assert sim.nic_of(3) == (0, 3)
        assert sim.nic_of(8) == (1, 0)  # next node


class TestOutcome:
    def test_recv_completion_tracks_arrivals(self):
        sim = ExchangeEventSim(PERLMUTTER, ranks_per_node=1)
        msgs = [
            SimMessage(src=0, dst=2, nbytes=MB),
            SimMessage(src=1, dst=2, nbytes=16 * MB),
        ]
        out = sim.run(msgs)
        assert out.recv_complete[2] == pytest.approx(
            out.send_complete[1], rel=1e-9
        )
        assert out.rank_time(2) > out.rank_time(0)

    def test_barrier_time_is_max(self):
        sim = ExchangeEventSim(PERLMUTTER, ranks_per_node=1)
        msgs = [SimMessage(src=0, dst=1, nbytes=MB)]
        out = sim.run(msgs)
        assert out.barrier_time == max(out.rank_time(0), out.rank_time(1))

    def test_empty_exchange(self):
        sim = ExchangeEventSim(PERLMUTTER)
        assert sim.run([]).barrier_time == 0.0

    def test_host_staging_adds_to_both_sides(self):
        aware = ExchangeEventSim(PERLMUTTER, ranks_per_node=1)
        msgs = [SimMessage(src=0, dst=1, nbytes=MB)]
        t_aware = aware.run(msgs).barrier_time
        staged = ExchangeEventSim(SUNSPOT, ranks_per_node=1)
        t_staged = staged.run(msgs).barrier_time
        assert t_staged > t_aware
