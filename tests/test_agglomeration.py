"""Coarse-level agglomeration (Section IX remedy) in the machine model."""

import pytest

from repro.harness.agglomeration import (
    AgglomeratedTimedSolve,
    strong_scaling_with_agglomeration,
    render_agglomeration,
)
from repro.harness.vcycle_sim import TimedSolve, WorkloadConfig
from repro.machines import PERLMUTTER


@pytest.fixture(scope="module")
def paper_workload_solver():
    return AgglomeratedTimedSolve(PERLMUTTER, WorkloadConfig())


class TestFactors:
    def test_fine_levels_never_agglomerate(self, paper_workload_solver):
        # 512^3 and 256^3 per rank are far above any sensible threshold
        assert paper_workload_solver.agglomeration_factor(0) == 1
        assert paper_workload_solver.agglomeration_factor(1) == 1

    def test_factor_bounded_by_rank_count(self, paper_workload_solver):
        total = paper_workload_solver.topology.size
        for lev in range(6):
            assert paper_workload_solver.agglomeration_factor(lev) <= total

    def test_active_ranks(self, paper_workload_solver):
        for lev in range(6):
            f = paper_workload_solver.agglomeration_factor(lev)
            assert paper_workload_solver.active_ranks(lev) == max(1, 8 // f)

    def test_greedy_choice_is_at_least_as_good_as_baseline(self):
        """Factor 1 is a candidate, so every level visit is priced at or
        below the baseline visit cost."""
        aggl = AgglomeratedTimedSolve(PERLMUTTER, WorkloadConfig())
        for lev in range(6):
            f = aggl.agglomeration_factor(lev)
            assert aggl._visit_cost(lev, f) <= aggl._visit_cost(lev, 1) + 1e-12

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            AgglomeratedTimedSolve(PERLMUTTER, WorkloadConfig(), threshold_points=0)


class TestCosts:
    def test_gather_free_when_not_agglomerated(self, paper_workload_solver):
        assert paper_workload_solver.gather_scatter_seconds(0) == 0.0

    def test_single_rank_level_has_no_network_exchange(self):
        """When one rank owns a level, the exchange is a device-memory
        wrap — cheaper than any NIC round trip."""
        aggl = AgglomeratedTimedSolve(PERLMUTTER, WorkloadConfig())
        t_wrap = aggl._exchange_at_factor(5, 8, nfields=1)
        t_net = aggl._exchange_at_factor(5, 1, nfields=1)
        assert t_wrap < t_net

    def test_level_times_include_agglomeration_bucket(self):
        aggl = AgglomeratedTimedSolve(PERLMUTTER, WorkloadConfig())
        times = aggl.vcycle_level_times()
        agglomerated = [
            lev for lev in range(6) if aggl.agglomeration_factor(lev) > 1
        ]
        for lev in agglomerated:
            assert times[lev].get("agglomeration", 0.0) > 0.0


class TestStrongScalingComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        return strong_scaling_with_agglomeration("Perlmutter")

    def test_never_meaningfully_slower(self, comparison):
        for base, aggl in zip(
            comparison.baseline_seconds, comparison.agglomerated_seconds
        ):
            assert aggl <= base * 1.01

    def test_helps_at_the_latency_bound_end(self, comparison):
        """Section IX's expectation: the remedy matters where the
        V-cycle is latency bound."""
        assert (
            comparison.agglomerated_seconds[-1]
            < comparison.baseline_seconds[-1] * 0.97
        )
        assert (
            comparison.agglomerated_efficiency[-1]
            > comparison.baseline_efficiency[-1]
        )

    def test_render(self, comparison):
        text = render_agglomeration(comparison)
        assert "agglomeration" in text and "eff" in text
