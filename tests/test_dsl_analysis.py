"""Stencil analysis: offsets, radius, FLOPs, traffic, AI, CSE."""

import pytest

from repro.dsl import (
    APPLY_OP,
    RESIDUAL,
    SMOOTH,
    SMOOTH_RESIDUAL,
    ConstRef,
    Grid,
    Stencil,
    analyze,
    arithmetic_intensity,
    bytes_per_point,
    flops_per_point,
    indices,
    offsets_by_grid,
    stencil_radius,
)
from repro.dsl.analysis import common_subexpressions


class TestOffsets:
    def test_apply_op_offsets(self):
        offs = offsets_by_grid(APPLY_OP)
        assert set(offs) == {"x"}
        assert offs["x"] == {
            (0, 0, 0),
            (1, 0, 0),
            (-1, 0, 0),
            (0, 1, 0),
            (0, -1, 0),
            (0, 0, 1),
            (0, 0, -1),
        }

    def test_pointwise_offsets(self):
        offs = offsets_by_grid(SMOOTH)
        assert all(o == {(0, 0, 0)} for o in offs.values())

    def test_radius(self):
        assert stencil_radius(APPLY_OP) == 1
        assert stencil_radius(SMOOTH) == 0
        assert stencil_radius(RESIDUAL) == 0

    def test_radius_of_wide_stencil(self):
        i, j, k = indices()
        x, y = Grid("x"), Grid("y")
        s = Stencil("wide", [y(i, j, k).assign(x(i + 3, j, k - 2))])
        assert stencil_radius(s) == 3


class TestFlops:
    def test_apply_op_flops_match_paper(self):
        # alpha*x + beta*(sum of 6): 2 multiplies + 6 adds = 8
        assert flops_per_point(APPLY_OP) == 8

    def test_smooth_flops(self):
        # x + gamma*Ax - gamma*b: 2 multiplies, 1 add, 1 subtract
        assert flops_per_point(SMOOTH) == 4

    def test_smooth_residual_flops(self):
        assert flops_per_point(SMOOTH_RESIDUAL) == 5

    def test_residual_flops(self):
        assert flops_per_point(RESIDUAL) == 1

    def test_const_const_folding_not_counted(self):
        i, j, k = indices()
        x, y = Grid("x"), Grid("y")
        expr = (ConstRef("a") * ConstRef("b")) * x(i, j, k)
        s = Stencil("folded", [y(i, j, k).assign(expr)])
        assert flops_per_point(s) == 1


class TestTraffic:
    def test_apply_op_bytes(self):
        assert bytes_per_point(APPLY_OP) == 16  # read x, write Ax

    def test_smooth_bytes(self):
        assert bytes_per_point(SMOOTH) == 32  # read x, Ax, b; write x

    def test_smooth_residual_bytes(self):
        assert bytes_per_point(SMOOTH_RESIDUAL) == 40

    def test_residual_bytes(self):
        assert bytes_per_point(RESIDUAL) == 24

    def test_ai_values(self):
        assert arithmetic_intensity(APPLY_OP) == pytest.approx(0.5)
        assert arithmetic_intensity(SMOOTH) == pytest.approx(0.125)


class TestCSE:
    def test_smooth_residual_shares_ax_and_b(self):
        keys = common_subexpressions(SMOOTH_RESIDUAL)
        grids = {k[1] for k in keys if k[0] == "grid"}
        assert {"Ax", "b"} <= grids

    def test_apply_op_has_no_repeats(self):
        assert common_subexpressions(APPLY_OP) == []

    def test_repeated_compound_term(self):
        i, j, k = indices()
        x, y = Grid("x"), Grid("y")
        t = x(i, j, k) * 2.0
        s = Stencil("rep", [y(i, j, k).assign(t + t)])
        keys = common_subexpressions(s)
        assert any(k[0] == "binop" for k in keys)

    def test_constants_never_hoisted(self):
        i, j, k = indices()
        x, y = Grid("x"), Grid("y")
        c = ConstRef("c")
        s = Stencil("cc", [y(i, j, k).assign(c * x(i, j, k) + c * x(i + 1, j, k))])
        keys = common_subexpressions(s)
        assert all(k[0] != "constref" for k in keys)


class TestAnalyze:
    def test_apply_op_summary(self):
        an = analyze(APPLY_OP)
        assert an.name == "applyOp"
        assert an.radius == 1
        assert an.input_grids == ("x",)
        assert an.output_grids == ("Ax",)
        assert an.halo_grids == ("x",)
        assert set(an.const_names) == {"alpha", "beta"}
        assert an.arithmetic_intensity == pytest.approx(0.5)

    def test_smooth_residual_summary(self):
        an = analyze(SMOOTH_RESIDUAL)
        assert an.halo_grids == ()  # pointwise: no halo gather needed
        assert set(an.input_grids) == {"x", "Ax", "b"}
        assert an.output_grids == ("x", "r")

    def test_offsets_are_frozen(self):
        an = analyze(APPLY_OP)
        assert isinstance(an.offsets["x"], frozenset)
