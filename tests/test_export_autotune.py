"""JSON export and configuration auto-tuning."""

import json

import pytest

from repro.harness.autotune import autotune, render_tuning
from repro.harness.export import experiment_payloads, export_all
from repro.machines import MACHINES, PERLMUTTER, SUNSPOT


class TestExport:
    @pytest.fixture(scope="class")
    def payloads(self):
        return experiment_payloads()

    def test_all_paper_elements_present(self, payloads):
        expected = {
            "fig3", "fig4", "table2", "fig5_applyOp", "fig5_smooth_residual",
            "fig6", "table3", "table4", "table5", "fig7", "fig8", "fig9",
            "ablations",
        }
        assert set(payloads) == expected

    def test_payloads_are_json_serialisable(self, payloads):
        text = json.dumps(payloads)
        assert "Perlmutter" in text

    def test_fig8_series_structure(self, payloads):
        fig8 = payloads["fig8"]["Frontier"]
        assert fig8["mode"] == "weak"
        assert len(fig8["nodes"]) == len(fig8["gstencil"]) == len(
            fig8["efficiency"]
        )

    def test_table4_rows(self, payloads):
        rows = payloads["table4"]
        assert len(rows) == 5
        assert {"operation", "ours", "paper", "diff"} == set(rows[0])

    def test_export_all_writes_files(self, tmp_path):
        written = export_all(tmp_path)
        assert len(written) == 13
        for path in written:
            data = json.loads(path.read_text())
            assert data  # non-empty


class TestAutotune:
    @pytest.fixture(scope="class")
    def result(self):
        return autotune(PERLMUTTER)

    def test_space_size(self, result):
        # 4 brick dims x 2 orderings x 2 CA x 2 gpu-aware
        assert len(result.choices) == 32

    def test_sorted_fastest_first(self, result):
        times = [c.vcycle_seconds for c in result.choices]
        assert times == sorted(times)

    def test_best_uses_the_paper_optimisations(self, result):
        best = result.best
        assert best.communication_avoiding
        assert best.gpu_aware
        assert best.ordering == "surface-major"

    def test_worst_disables_everything(self, result):
        worst = result.worst
        assert not worst.communication_avoiding
        assert not worst.gpu_aware

    def test_meaningful_headroom(self, result):
        assert result.tuning_headroom > 3.0

    def test_sunspot_tuner_wants_gpu_aware(self):
        """The tuner confirms the paper's diagnosis: Sunspot's missing
        GPU-aware MPI path is worth a configuration-level win."""
        r = autotune(SUNSPOT)
        assert r.best.gpu_aware

    def test_render(self, result):
        text = render_tuning(result)
        assert "auto-tuning on Perlmutter" in text
        assert "(worst)" in text

    def test_all_machines_tune(self):
        for m in MACHINES.values():
            r = autotune(m, brick_dims=(4, 8))
            assert len(r.choices) == 16
